"""Quickstart: the QMap model in five minutes.

Reproduces the paper's running example — the 3-dimensional RGB similarity
matrix of Section 1.2 — and walks through the whole pipeline:

1. define a QFD with correlated dimensions,
2. factor it once (Cholesky) into the QMap transform,
3. verify distances are preserved *exactly*,
4. index a database with an unmodified M-tree in the Euclidean space,
5. run kNN and range queries at O(n) per distance.

Run: ``python examples/quickstart.py``
"""

from __future__ import annotations

import numpy as np

from repro import QFDModel, QMap, QMapModel, QuadraticFormDistance


def main() -> None:
    # --- 1. the paper's Section 1.2 example matrix -----------------------
    # Dimensions are (red, green, blue) pixel counts; green and blue are
    # perceptually correlated at 0.5, red is independent.
    a = np.array(
        [
            [1.0, 0.0, 0.0],
            [0.0, 1.0, 0.5],
            [0.0, 0.5, 1.0],
        ]
    )
    qfd = QuadraticFormDistance(a)

    sunset = np.array([0.7, 0.2, 0.1])  # red-ish histogram
    ocean = np.array([0.1, 0.3, 0.6])  # blue-green-ish histogram
    print(f"QFD(sunset, ocean)          = {qfd(sunset, ocean):.6f}")

    # --- 2. factor once: A = B B^T ---------------------------------------
    qmap = QMap(qfd)
    print(f"Cholesky factor B =\n{np.round(qmap.matrix, 4)}")

    # --- 3. distances preserved exactly ----------------------------------
    mapped = qmap.distance_via_map(sunset, ocean)
    print(f"L2(sunset*B, ocean*B)       = {mapped:.6f}")
    assert np.isclose(mapped, qfd(sunset, ocean))

    # --- 4. index a database with an unmodified MAM ----------------------
    rng = np.random.default_rng(0)
    database = rng.dirichlet(np.ones(3), size=5_000)  # random RGB histograms

    qmap_model = QMapModel(a)
    index = qmap_model.build_index("mtree", database, capacity=16)
    print(
        f"\nbuilt an M-tree over {len(database)} histograms "
        f"({index.build_costs.distance_computations} O(n) distances, "
        f"{index.build_costs.transforms} transforms, "
        f"{index.build_costs.seconds:.3f}s)"
    )

    # --- 5. query in the source space ------------------------------------
    hits = index.knn_search(sunset, k=5)
    print("\n5 nearest histograms to the sunset query:")
    for rank, hit in enumerate(hits, start=1):
        print(f"  {rank}. object #{hit.index}: distance {hit.distance:.6f}")

    ball = index.range_search(sunset, radius=hits[-1].distance)
    print(f"range query with the 5th-NN radius returns {len(ball)} objects")

    # The QFD model gives the same answers, just slower per distance.
    qfd_model = QFDModel(a)
    reference = qfd_model.build_index("sequential", database)
    assert [h.index for h in reference.knn_search(sunset, 5)] == [h.index for h in hits]
    print("\nsequential QFD scan agrees with the QMap M-tree — as proved in Section 3.3")


if __name__ == "__main__":
    main()
