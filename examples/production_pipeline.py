"""An operational pipeline: design, persist, reload, grow, serve.

Walks the life-cycle a production deployment of the QMap model goes
through, exercising the persistence layer and the dynamic-growth APIs:

1. **design time** — build the QFD matrix, factor it, persist the QMap;
2. **ingest** — transform the initial corpus once, persist both spaces;
3. **serve** — reload in a fresh "process", build a disk-resident M-tree
   and answer queries with page-level cost accounting;
4. **grow** — insert new arrivals without any re-indexing of old data
   (the paper's "dynamically changing databases without any distortion");
5. **audit** — verify against a brute-force scan and report structure
   statistics.

Run: ``python examples/production_pipeline.py``
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

from repro.color import lab_bin_prototypes
from repro.core import QMap, prototype_similarity_matrix
from repro.datasets import clustered_histograms
from repro.distances import euclidean, euclidean_one_to_many, CountingDistance
from repro.mam import PagedMTree, SequentialFile
from repro.mam.stats import describe_index
from repro.persistence import (
    load_qmap,
    load_transformed_database,
    save_qmap,
    save_transformed_database,
)

BINS = 4  # 64-d keeps the walkthrough snappy; 8 gives the paper's 512-d
INITIAL = 3_000
ARRIVALS = 400


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-pipeline-"))
    rng = np.random.default_rng(33)

    # ---- 1. design time ---------------------------------------------------
    repair = prototype_similarity_matrix(lab_bin_prototypes(BINS))
    qmap = QMap(repair.matrix)
    save_qmap(qmap, workdir / "similarity-model.npz")
    print(f"[design] QFD matrix {repair.matrix.shape}, PD shift {repair.shift}, "
          f"model persisted to {workdir / 'similarity-model.npz'}")

    # ---- 2. ingest --------------------------------------------------------
    corpus = clustered_histograms(INITIAL + ARRIVALS, BINS, themes=10, rng=rng)
    initial, arrivals = corpus[:INITIAL], corpus[INITIAL:]
    t0 = time.perf_counter()
    save_transformed_database(qmap, initial, workdir / "corpus.npz")
    print(f"[ingest] {INITIAL} histograms transformed + persisted "
          f"in {time.perf_counter() - t0:.2f}s")

    # ---- 3. serve (fresh process simulation) -------------------------------
    served_qmap = load_qmap(workdir / "similarity-model.npz")
    _, database, mapped = load_transformed_database(workdir / "corpus.npz")
    counter = CountingDistance(euclidean, one_to_many=euclidean_one_to_many)
    index = PagedMTree(
        mapped, counter, capacity=16, cache_pages=64,
        path=str(workdir / "mtree.pages"),
    )
    print(f"[serve] disk M-tree: {index.node_pages()} node pages on "
          f"{workdir / 'mtree.pages'}")

    query = database[17]
    counter.reset()
    index.cache.stats.reset()
    hits = index.knn_search(served_qmap.transform(query), 5)
    print(f"[serve] 5NN of object #17 -> {[h.index for h in hits]}, "
          f"{counter.count} O(n) distances, "
          f"{index.cache.stats.faults} page faults "
          f"(hit rate {index.cache.stats.hit_rate:.2f})")

    # ---- 4. grow ------------------------------------------------------------
    t0 = time.perf_counter()
    for row in arrivals:
        index.insert(served_qmap.transform(row))
    print(f"[grow] {ARRIVALS} arrivals inserted in {time.perf_counter() - t0:.2f}s "
          f"({index.node_pages()} node pages now); no old vector was touched")

    # ---- 5. audit -----------------------------------------------------------
    everything = np.vstack([mapped, served_qmap.transform_batch(arrivals)])
    truth = SequentialFile(everything, euclidean)
    q_mapped = served_qmap.transform(arrivals[0])
    got = [h.index for h in index.knn_search(q_mapped, 10)]
    expected = [h.index for h in truth.knn_search(q_mapped, 10)]
    assert got == expected, "audit failed!"
    print(f"[audit] 10NN of a fresh arrival matches the brute-force scan: True")
    desc = describe_index(index)
    print(f"[audit] structure: {desc.structure}, {desc.size} objects")
    index.close()
    print(f"\nartifacts kept in {workdir} — delete at will")


if __name__ == "__main__":
    main()
