"""Relevance feedback with a dynamic QFD — the "(not)" side of the paper.

MindReader (Ishikawa et al., paper Section 1.2.1) infers the distance the
user has in mind from scored examples, *changing the QFD matrix every
round*.  This example demonstrates the consequence spelled out in paper
Section 2.2: a MAM index is built for one static distance, so each
feedback round invalidates it — the QMap model must re-factor and
re-transform, and the raw-QFD model must rebuild its index outright.

The script simulates a user looking for "warm, low-blue" images, scores
results over several rounds, and reports (a) how retrieval adapts and
(b) what each round costs in index maintenance under both models.

Run: ``python examples/relevance_feedback.py``
"""

from __future__ import annotations

import time

import numpy as np

from repro import QMapModel
from repro.datasets import clustered_histograms
from repro.dynamic import estimate_distance, matrix_changed

BINS = 4  # 64-d histograms keep the feedback loop snappy
DB_SIZE = 3_000


def user_relevance(histogram: np.ndarray, bins: int = BINS) -> float:
    """The (hidden) preference: lots of red mass, little blue mass."""
    idx = np.arange(bins**3)
    red_bin = idx // (bins * bins)  # leading index = red channel bin
    blue_bin = idx % bins
    warm = float(histogram @ (red_bin >= bins // 2))
    cold = float(histogram @ (blue_bin >= bins // 2))
    return max(warm - cold, 1e-3)


def main() -> None:
    rng = np.random.default_rng(7)
    database = clustered_histograms(DB_SIZE, BINS, themes=12, rng=rng)

    # Round 0: no feedback yet — start from the Euclidean distance.
    matrix = np.eye(BINS**3)
    query = database.mean(axis=0)
    shown: list[int] = []

    for round_no in range(1, 4):
        print(f"\n=== feedback round {round_no} ===")

        # The index must match the *current* matrix; check staleness like a
        # production system would (paper Section 2.2).
        t0 = time.perf_counter()
        model = QMapModel(matrix)
        index = model.build_index("pivot-table", database, n_pivots=24)
        maintenance = time.perf_counter() - t0
        print(
            f"index (re)built for the current matrix in {maintenance:.2f}s "
            f"({index.build_costs.transforms} re-transforms, "
            f"{index.build_costs.distance_computations} O(n) distances)"
        )

        browsed = index.knn_search(query, k=40)
        top10 = [user_relevance(database[h.index]) for h in browsed[:10]]
        mean_score = float(np.mean(top10))
        print(f"mean user relevance of the top-10 results: {mean_score:.4f}")
        shown.append(mean_score)

        # The user scores everything they browsed; sharp scores (the user
        # *really* prefers warm images) give MindReader a strong signal.
        raw = np.array([user_relevance(database[h.index]) for h in browsed])
        scores = np.exp(6.0 * (raw - raw.max()))
        examples = np.array([database[h.index] for h in browsed])
        estimate = estimate_distance(examples, scores)
        stale = matrix_changed(matrix, estimate.distance)
        print(f"matrix changed by feedback: {stale} -> index is now invalid")
        matrix = estimate.distance.matrix
        query = estimate.query_point

    print("\nmean relevance per round:", " -> ".join(f"{s:.4f}" for s in shown))
    assert shown[-1] >= shown[0], "feedback should not hurt"
    print(
        "\ntakeaway: dynamic matrices force per-round index maintenance — "
        "cheap re-transforms in the QMap model, full O(n^2)-distance "
        "rebuilds in the raw QFD model.  For *static* matrices (the common "
        "case, Section 1.2) none of this cost exists: transform once, "
        "index once."
    )


if __name__ == "__main__":
    main()
