"""Content-based image retrieval — the paper's testbed, end to end.

Builds the full Section 5.1 pipeline on a synthetic photo corpus:

* render images (color-blob scenes standing in for Flickr photos),
* extract 512-d RGB histograms (8 bins per channel, unit-normalized),
* build the Hafner QFD matrix from CIE Lab bin prototypes
  (``A_ij = 1 - d_ij / d_max``),
* index with the M-tree in both the QFD and the QMap model,
* answer "find images like this one" queries and compare real time,
* cross-check against the lower-bounding baselines of Section 2.3.1.

Run: ``python examples/image_search.py``
"""

from __future__ import annotations

import time

import numpy as np

from repro import QFDModel, QMapModel, QuadraticFormDistance
from repro.color import lab_bin_prototypes, rgb_bin_prototypes, rgb_histogram
from repro.core import prototype_similarity_matrix
from repro.datasets import SyntheticImageCorpus, clustered_histograms
from repro.lowerbound import FilterRefineScan, SVDReduction, average_color_bound

BINS = 8  # 8 bins/channel -> 512-d histograms, the paper's setting
N_RENDERED = 40  # real rendered images (slow path, end-to-end faithful)
N_SAMPLED = 3_000  # direct histogram samples (fast path) to fill the database


def build_corpus() -> np.ndarray:
    """Histogram database: a few fully rendered images + sampled bulk."""
    corpus = SyntheticImageCorpus(height=24, width=24, themes=8, seed=11)
    rendered = np.vstack(
        [rgb_histogram(corpus.render(i), BINS) for i in range(N_RENDERED)]
    )
    sampled = clustered_histograms(
        N_SAMPLED, BINS, themes=8, rng=np.random.default_rng(12)
    )
    return np.vstack([rendered, sampled])


def main() -> None:
    print("rendering images and extracting histograms ...")
    database = build_corpus()
    print(f"database: {database.shape[0]} histograms, {database.shape[1]} dimensions")

    # The paper's QFD matrix: Lab prototypes, similarity 1 - d/d_max.
    repair = prototype_similarity_matrix(lab_bin_prototypes(BINS))
    print(
        f"Hafner matrix: min eigenvalue {repair.min_eigenvalue:.2e}, "
        f"diagonal shift applied: {repair.shift}"
    )
    matrix = repair.matrix

    query = database[0]  # "find images like the first one"

    # ---- QFD model vs QMap model ----------------------------------------
    results = {}
    for model in (QFDModel(matrix), QMapModel(matrix)):
        t0 = time.perf_counter()
        index = model.build_index("mtree", database, capacity=16)
        build_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        hits = index.knn_search(query, k=8)
        query_s = time.perf_counter() - t0
        results[model.name] = (build_s, query_s, hits)
        print(
            f"\n[{model.name} model] M-tree build {build_s:.2f}s, "
            f"8NN query {query_s * 1000:.1f}ms"
        )
        for rank, hit in enumerate(hits[:4], start=1):
            print(f"   {rank}. image #{hit.index}  distance {hit.distance:.5f}")

    same = [h.index for h in results["qfd"][2]] == [h.index for h in results["qmap"][2]]
    print(f"\nidentical answers from both models: {same}")
    print(
        f"build speedup {results['qfd'][0] / results['qmap'][0]:.1f}x, "
        f"query speedup {results['qfd'][1] / results['qmap'][1]:.1f}x"
    )

    # ---- Section 2.3.1 baselines ----------------------------------------
    print("\nlower-bounding baselines (filter-and-refine, exact results):")
    qfd = QuadraticFormDistance(matrix)
    for name, bound in [
        ("SVD rank-20 reduction (Seidl-Kriegel style)", SVDReduction(qfd, 20)),
        ("QBIC average-color bound (rank 3)", average_color_bound(qfd, rgb_bin_prototypes(BINS))),
    ]:
        scan = FilterRefineScan(database, bound)
        t0 = time.perf_counter()
        hits = scan.knn_search(query, k=8)
        elapsed = time.perf_counter() - t0
        stats = scan.last_stats
        agree = [h.index for h in hits] == [h.index for h in results["qmap"][2]]
        print(
            f"  {name}: {elapsed * 1000:7.1f}ms, "
            f"{stats.candidates} QFD refinements "
            f"({stats.candidate_ratio:.1%} of db), agrees: {agree}"
        )
    print(
        "\ntakeaway: the baselines stay exact but pay O(n^2) per false "
        "positive; QMap pays O(n) per distance with zero false positives."
    )


if __name__ == "__main__":
    main()
