"""Feature signatures and the SQFD — beyond fixed histograms.

The signature quadratic form distance (Beecks et al., paper Section 1.2.1)
compares variable-length descriptors: per-image sets of clustered feature
centroids with weights.  Because every compared pair gets its own dynamic
similarity matrix, there is no static ``A`` to factor — the QMap transform
does not apply, and search falls back to the (still metric) black-box
sequential scan.  This example:

* extracts signatures from rendered images (k-means over color+position),
* searches by SQFD and shows that same-theme images rank first,
* verifies the metric postulates empirically,
* contrasts the per-pair cost with the static-QFD + QMap path.

Run: ``python examples/signature_search.py``
"""

from __future__ import annotations

import time

import numpy as np

from repro.color import rgb_histogram
from repro.core import QMap, prototype_similarity_matrix
from repro.color import lab_bin_prototypes
from repro.datasets import SyntheticImageCorpus
from repro.distances import (
    SignatureQuadraticFormDistance,
    check_metric_postulates,
    gaussian_similarity,
)
from repro.dynamic import extract_signature

N_IMAGES = 24
THEMES = 4


def main() -> None:
    corpus = SyntheticImageCorpus(height=24, width=24, themes=THEMES, seed=21)
    rng = np.random.default_rng(0)

    print(f"extracting signatures from {N_IMAGES} images ...")
    images = [corpus.render(i) for i in range(N_IMAGES)]
    signatures = [
        extract_signature(img, n_clusters=6, rng=np.random.default_rng(i))
        for i, img in enumerate(images)
    ]
    sizes = sorted({sig.size for sig in signatures})
    print(f"signature sizes in the corpus: {sizes} (variable, unlike histograms)")

    sqfd = SignatureQuadraticFormDistance(gaussian_similarity(sigma=0.35))

    # ---- similarity search by SQFD --------------------------------------
    query_id = 0
    t0 = time.perf_counter()
    distances = [(sqfd(signatures[query_id], sig), i) for i, sig in enumerate(signatures)]
    scan_s = time.perf_counter() - t0
    distances.sort()
    print(f"\nSQFD scan over {N_IMAGES} signatures took {scan_s * 1000:.1f}ms")
    print(f"query image #{query_id} (theme {query_id % THEMES}); nearest images:")
    for dist, idx in distances[1:6]:
        print(f"   image #{idx:2d} (theme {idx % THEMES})  SQFD {dist:.5f}")
    same_theme = [idx % THEMES == query_id % THEMES for _, idx in distances[1:4]]
    print(f"top-3 share the query's theme: {sum(same_theme)}/3")

    # ---- it is a metric, so MAMs *could* index it ... --------------------
    report = check_metric_postulates(sqfd, signatures[:10], tolerance=1e-7)
    print(f"\nmetric postulates on a sample: violations = {len(report.violations)}")

    # ---- ... but no static matrix exists to QMap ------------------------
    m_01 = sqfd.dynamic_matrix(signatures[0], signatures[1])
    m_02 = sqfd.dynamic_matrix(signatures[0], signatures[2])
    same_shape = m_01.shape == m_02.shape
    same_values = same_shape and bool(np.allclose(m_01, m_02))
    print(
        f"dynamic matrices per pair: shapes {m_01.shape} vs {m_02.shape}, "
        f"identical values: {same_values} "
        "-> nothing static to Cholesky-factor (paper Section 1.2.1)"
    )

    # ---- contrast: the static-histogram path ----------------------------
    hist = np.vstack([rgb_histogram(img, 4) for img in images])
    matrix = prototype_similarity_matrix(lab_bin_prototypes(4)).matrix
    qmap = QMap(matrix)
    mapped = qmap.transform_batch(hist)
    t0 = time.perf_counter()
    q = mapped[query_id]
    np.sqrt(((mapped - q) ** 2).sum(axis=1))
    static_s = time.perf_counter() - t0
    print(
        f"\nstatic 64-d histograms + QMap: the same scan costs "
        f"{static_s * 1000:.2f}ms ({scan_s / max(static_s, 1e-9):.0f}x less) — "
        "the price of the SQFD's adaptivity is exactly what the paper's "
        "title warns about."
    )


if __name__ == "__main__":
    main()
