"""QFD retrieval beyond images: protein binding-site histograms.

The paper's Section 1.2 lists protein structures among the QFD's
applications (references [4], [15], [16]: nearest-neighbor classification
in 3D protein databases and binding-site retrieval via histogram
comparison).  The essence of those systems: each binding site becomes a
histogram over *geometric feature bins* (e.g. distance or angle ranges),
and neighboring bins correlate — a site with mass in the 4.0-4.5 Å bin is
similar to one with mass in the 4.5-5.0 Å bin.  A band QFD matrix captures
exactly that.

This example synthesizes a labeled corpus of binding-site histograms,
compares retrieval quality (label agreement of nearest neighbors) under
plain L2 vs the band-matrix QFD, and shows the QMap + vp-tree stack
answering classification queries with few distance evaluations.

Run: ``python examples/protein_binding_sites.py``
"""

from __future__ import annotations

import numpy as np

from repro import QMapModel, QuadraticFormDistance
from repro.core import band_matrix
from repro.distances import euclidean

N_BINS = 48  # distance-range bins of the site descriptor
N_FAMILIES = 6  # protein families (the labels)
SITES_PER_FAMILY = 120


def synthesize_sites(rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """Binding-site histograms with within-family bin *shifts*.

    Each family has a characteristic multi-peak profile; individual sites
    jitter the peak positions by a bin or two — the measurement noise that
    makes plain L2 fragile and bin-correlating QFD effective.
    """
    bins = np.arange(N_BINS)
    histograms, labels = [], []
    for family in range(N_FAMILIES):
        peaks = rng.uniform(4, N_BINS - 4, size=3)
        weights = rng.dirichlet(np.ones(3) * 3.0)
        for _ in range(SITES_PER_FAMILY):
            shifted = peaks + rng.normal(0.0, 2.2, size=3)  # the bin shift
            profile = np.zeros(N_BINS)
            for peak, weight in zip(shifted, weights):
                profile += weight * np.exp(-((bins - peak) ** 2) / (2.0 * 1.0**2))
            profile += rng.exponential(0.002, size=N_BINS)  # background noise
            histograms.append(profile / profile.sum())
            labels.append(family)
    return np.array(histograms), np.array(labels)


def knn_label_accuracy(
    database: np.ndarray,
    labels: np.ndarray,
    distance,
    rng: np.random.Generator,
    k: int = 5,
    n_queries: int = 100,
) -> float:
    """Leave-one-out kNN majority-vote accuracy under *distance*."""
    picks = rng.choice(len(database), size=n_queries, replace=False)
    correct = 0
    for q_idx in picks:
        dists = np.array([distance(database[q_idx], row) for row in database])
        dists[q_idx] = np.inf
        nearest = np.argsort(dists)[:k]
        votes = np.bincount(labels[nearest], minlength=N_FAMILIES)
        correct += int(np.argmax(votes) == labels[q_idx])
    return correct / n_queries


def main() -> None:
    rng = np.random.default_rng(2011)
    database, labels = synthesize_sites(rng)
    print(
        f"corpus: {len(database)} binding-site histograms, {N_BINS} bins, "
        f"{N_FAMILIES} families"
    )

    # Neighboring distance-range bins correlate: a band QFD matrix.
    matrix = band_matrix(N_BINS, correlation=0.6, bandwidth=3)
    qfd = QuadraticFormDistance(matrix)

    acc_l2 = knn_label_accuracy(database, labels, euclidean, np.random.default_rng(1))
    acc_qfd = knn_label_accuracy(database, labels, qfd, np.random.default_rng(1))
    print(f"\n5NN family classification accuracy:")
    print(f"  plain L2 (no bin cross-talk): {acc_l2:.3f}")
    print(f"  band-matrix QFD             : {acc_qfd:.3f}")
    if acc_qfd <= acc_l2:
        print("  (tie on this draw; QFD's edge grows with larger bin shifts)")

    # Index with QMap + vp-tree and answer classification queries cheaply.
    model = QMapModel(matrix)
    index = model.build_index("vptree", database, leaf_size=12)
    index.reset_query_costs()
    query = database[0]
    hits = index.knn_search(query, 6)[1:]  # drop the object itself
    families = [int(labels[h.index]) for h in hits]
    costs = index.query_costs()
    print(
        f"\nQMap + vp-tree: 5NN of site #0 -> families {families} "
        f"(true: {labels[0]}), {costs.distance_computations} O(n) distance "
        f"evaluations out of {len(database)} sites"
    )
    print(
        "\ntakeaway: the paper's transform applies verbatim outside image "
        "retrieval — any domain with a static bin-correlation matrix gets "
        "O(n) metric indexing for free."
    )


if __name__ == "__main__":
    main()
