"""Unit tests for the metric instruments and registry (repro.obs.registry)."""

from __future__ import annotations

import threading

import pytest

from repro.obs import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    set_registry,
    use_registry,
)


class TestCounter:
    def test_inc_accumulates_per_label_set(self) -> None:
        c = Counter("evals")
        c.inc(3, model="qfd")
        c.inc(2, model="qfd")
        c.inc(7, model="qmap")
        assert c.value(model="qfd") == 5
        assert c.value(model="qmap") == 7
        assert c.value(model="other") == 0

    def test_label_order_is_irrelevant(self) -> None:
        c = Counter("evals")
        c.inc(1, a="x", b="y")
        c.inc(1, b="y", a="x")
        assert c.value(b="y", a="x") == 2

    def test_label_values_are_stringified(self) -> None:
        c = Counter("evals")
        c.inc(1, dim=64)
        assert c.value(dim="64") == 1

    def test_negative_increment_rejected(self) -> None:
        c = Counter("evals")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)

    def test_samples_carry_kind_and_labels(self) -> None:
        c = Counter("evals")
        c.inc(4, phase="build")
        (sample,) = c.samples()
        assert sample.name == "evals"
        assert sample.kind == "counter"
        assert sample.labels == {"phase": "build"}
        assert sample.value == 4

    def test_concurrent_increments_are_lossless(self) -> None:
        c = Counter("evals")

        def work() -> None:
            for _ in range(1000):
                c.inc(1, worker="shared")

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value(worker="shared") == 8000


class TestGauge:
    def test_set_overwrites_and_inc_shifts(self) -> None:
        g = Gauge("height")
        g.set(3, method="mtree")
        g.set(5, method="mtree")
        assert g.value(method="mtree") == 5
        g.inc(-2, method="mtree")
        assert g.value(method="mtree") == 3


class TestHistogram:
    def test_observations_land_in_log_buckets(self) -> None:
        h = Histogram("seconds", bounds=[1.0, 2.0, 4.0])
        for v in (0.5, 1.0, 3.0, 100.0):
            h.observe(v)
        state = h.state()
        assert state.count == 4
        assert state.total == pytest.approx(104.5)
        # 0.5 and 1.0 fall in the <=1 bucket (bisect_left: 1.0 is inclusive),
        # 3.0 in <=4, 100.0 overflows.
        assert state.counts == (2, 0, 1, 1)

    def test_unsorted_bounds_rejected(self) -> None:
        with pytest.raises(ValueError, match="strictly increase"):
            Histogram("bad", bounds=[1.0, 1.0, 2.0])

    def test_empty_state_is_zeroed(self) -> None:
        h = Histogram("seconds", bounds=[1.0])
        state = h.state(method="never")
        assert state.count == 0 and state.total == 0.0
        assert state.counts == (0, 0)

    def test_values_on_bucket_edges_land_in_that_bucket(self) -> None:
        # Bounds are inclusive upper bounds (bisect_left): a value equal
        # to bounds[i] must land in counts[i], not spill into counts[i+1].
        bounds = [1.0, 2.0, 4.0]
        h = Histogram("edges", bounds=bounds)
        for edge in bounds:
            h.observe(edge)
        state = h.state()
        assert state.counts == (1, 1, 1, 0)

    def test_zero_lands_in_the_first_bucket(self) -> None:
        h = Histogram("edges", bounds=[1.0, 2.0])
        h.observe(0.0)
        state = h.state()
        assert state.counts == (1, 0, 0)
        assert state.total == 0.0

    def test_infinity_lands_in_the_overflow_bucket(self) -> None:
        h = Histogram("edges", bounds=[1.0, 2.0])
        h.observe(float("inf"))
        state = h.state()
        assert state.counts == (0, 0, 1)
        assert state.count == 1

    def test_default_log_grid_edges_are_inclusive(self) -> None:
        # The default grid is powers of two; 2^k must not leak one bucket
        # up, and values just above must.
        h = Histogram("grid")
        h.observe(1.0)      # == 2^0, an exact grid point
        h.observe(1.0001)   # just above it
        state = h.state()
        pos = state.bounds.index(1.0)
        assert state.counts[pos] == 1
        assert state.counts[pos + 1] == 1


class TestMetricsRegistry:
    def test_accessors_are_get_or_create(self) -> None:
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_kind_mismatch_raises(self) -> None:
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("a")

    def test_snapshot_is_registration_ordered(self) -> None:
        reg = MetricsRegistry()
        reg.counter("z").inc(1)
        reg.gauge("a").set(2)
        assert [s.name for s in reg.snapshot()] == ["z", "a"]

    def test_clear_drops_everything(self) -> None:
        reg = MetricsRegistry()
        reg.counter("a").inc(1)
        reg.clear()
        assert reg.snapshot() == []
        assert reg.spans == []


class TestNullRegistry:
    def test_is_disabled_and_all_verbs_are_noops(self) -> None:
        reg = NullRegistry()
        assert reg.enabled is False
        reg.counter("a").inc(5)
        reg.gauge("b").set(5)
        reg.gauge("b").inc(5)
        reg.histogram("c").observe(5)
        assert reg.snapshot() == []
        assert reg.counter("a").value() == 0

    def test_instruments_are_shared_singletons(self) -> None:
        reg = NullRegistry()
        assert reg.counter("a") is reg.counter("b")
        assert reg.histogram("a") is reg.histogram("b")


class TestActiveRegistry:
    def test_default_is_the_null_registry(self) -> None:
        assert get_registry() is NULL_REGISTRY

    def test_set_registry_returns_previous(self) -> None:
        reg = MetricsRegistry()
        previous = set_registry(reg)
        try:
            assert get_registry() is reg
        finally:
            assert set_registry(previous) is reg
        assert get_registry() is NULL_REGISTRY

    def test_use_registry_restores_on_exception(self) -> None:
        reg = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with use_registry(reg):
                assert get_registry() is reg
                raise RuntimeError("boom")
        assert get_registry() is NULL_REGISTRY

    def test_none_restores_the_null_registry(self) -> None:
        set_registry(MetricsRegistry())
        set_registry(None)
        assert get_registry() is NULL_REGISTRY

    def test_worker_threads_see_the_active_registry(self) -> None:
        # The registry is a module global, not a contextvar: threads spawned
        # by the batch engine must observe the same activation.
        reg = MetricsRegistry()
        seen: list[object] = []
        with use_registry(reg):
            t = threading.Thread(target=lambda: seen.append(get_registry()))
            t.start()
            t.join()
        assert seen == [reg]
