"""Tests for repro.dynamic — MindReader and signature extraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import QuadraticFormDistance
from repro.datasets import SyntheticImageCorpus
from repro.dynamic import estimate_distance, extract_signature, kmeans, matrix_changed
from repro.exceptions import DimensionMismatchError, QueryError


class TestMindReader:
    def test_query_point_is_weighted_centroid(self, rng: np.random.Generator) -> None:
        x = rng.random((5, 3))
        pi = np.array([1.0, 1.0, 1.0, 1.0, 6.0])
        est = estimate_distance(x, pi)
        expected = (pi @ x) / pi.sum()
        assert np.allclose(est.query_point, expected)

    def test_matrix_is_pd_and_unit_det(self, rng: np.random.Generator) -> None:
        x = rng.random((30, 4))
        pi = rng.random(30) + 0.1
        est = estimate_distance(x, pi)
        eigs = np.linalg.eigvalsh(est.distance.matrix)
        assert np.all(eigs > 0.0)
        assert np.prod(eigs) == pytest.approx(1.0, rel=1e-6)

    def test_low_variance_dimension_gets_high_weight(self, rng: np.random.Generator) -> None:
        """Dimensions where relevant examples agree matter more — the core
        MindReader intuition."""
        m = 60
        x = np.column_stack([
            rng.normal(0.5, 0.01, m),   # user cares: tight
            rng.normal(0.5, 0.5, m),    # user doesn't: loose
        ])
        est = estimate_distance(x, np.ones(m))
        a = est.distance.matrix
        assert a[0, 0] > a[1, 1]

    def test_correlation_captured_off_diagonal(self, rng: np.random.Generator) -> None:
        m = 100
        t = rng.normal(0.0, 1.0, m)
        x = np.column_stack([t, t + rng.normal(0.0, 0.05, m), rng.normal(0.0, 1.0, m)])
        est = estimate_distance(x, np.ones(m))
        # Strongly correlated dims 0 and 1 -> large |off-diagonal| weight.
        a = est.distance.matrix
        assert abs(a[0, 1]) > abs(a[0, 2]) * 5.0

    def test_needs_two_examples(self) -> None:
        with pytest.raises(QueryError):
            estimate_distance(np.ones((1, 3)), [1.0])

    def test_rejects_nonpositive_scores(self, rng: np.random.Generator) -> None:
        with pytest.raises(QueryError):
            estimate_distance(rng.random((4, 2)), [1.0, 0.0, 1.0, 1.0])

    def test_rank_deficient_examples_regularized(self, rng: np.random.Generator) -> None:
        # m < n: covariance is singular; the ridge must save the day.
        x = rng.random((3, 10))
        est = estimate_distance(x, np.ones(3))
        assert est.regularization > 0.0
        assert np.all(np.linalg.eigvalsh(est.distance.matrix) > 0.0)

    def test_feedback_round_changes_matrix(self, rng: np.random.Generator) -> None:
        """Two feedback rounds produce different matrices — the index
        invalidation scenario of paper Section 2.2."""
        x = rng.random((20, 4))
        est1 = estimate_distance(x, np.ones(20))
        scores2 = np.ones(20)
        scores2[:10] = 10.0
        est2 = estimate_distance(x, scores2)
        assert matrix_changed(est1.distance, est2.distance)


class TestMatrixChanged:
    def test_same_matrix_not_changed(self, spd_16: np.ndarray) -> None:
        assert not matrix_changed(spd_16, spd_16.copy())

    def test_different_matrix_changed(self, spd_16: np.ndarray) -> None:
        other = spd_16 + 0.1 * np.eye(16)
        assert matrix_changed(spd_16, other)

    def test_shape_mismatch_changed(self, spd_16: np.ndarray) -> None:
        assert matrix_changed(spd_16, np.eye(4))

    def test_accepts_distance_objects(self, spd_16: np.ndarray) -> None:
        d = QuadraticFormDistance(spd_16)
        assert not matrix_changed(d, d)


class TestKMeans:
    def test_recovers_separated_clusters(self, rng: np.random.Generator) -> None:
        a = rng.normal(0.0, 0.05, (40, 2))
        b = rng.normal(5.0, 0.05, (40, 2))
        centers, labels = kmeans(np.vstack([a, b]), 2, rng=rng)
        assert centers.shape == (2, 2)
        # Both true centers found (in some order).
        found = sorted(centers[:, 0])
        assert found[0] == pytest.approx(0.0, abs=0.2)
        assert found[1] == pytest.approx(5.0, abs=0.2)
        # Cluster assignment separates the two blobs.
        assert len(set(labels[:40])) == 1 and len(set(labels[40:])) == 1

    def test_k_equals_m(self, rng: np.random.Generator) -> None:
        pts = rng.random((5, 3))
        centers, labels = kmeans(pts, 5, rng=rng)
        assert centers.shape[0] == 5

    def test_fewer_distinct_points_than_k(self) -> None:
        pts = np.tile([1.0, 2.0], (10, 1))
        centers, labels = kmeans(pts, 3)
        assert centers.shape[0] <= 3
        assert np.allclose(centers[labels], pts)

    def test_rejects_bad_k(self, rng: np.random.Generator) -> None:
        with pytest.raises(QueryError):
            kmeans(rng.random((5, 2)), 0)
        with pytest.raises(QueryError):
            kmeans(rng.random((5, 2)), 6)

    def test_rejects_1d_points(self) -> None:
        with pytest.raises(DimensionMismatchError):
            kmeans(np.ones(5), 2)


class TestExtractSignature:
    def test_signature_shape(self) -> None:
        corpus = SyntheticImageCorpus(height=16, width=16, seed=5)
        sig = extract_signature(corpus.render(0), n_clusters=6)
        assert sig.size <= 6
        assert sig.feature_dim == 5  # RGB + (x, y)
        assert sig.weights.sum() == pytest.approx(1.0)

    def test_without_position(self) -> None:
        corpus = SyntheticImageCorpus(height=8, width=8, seed=5)
        sig = extract_signature(corpus.render(1), n_clusters=4, include_position=False)
        assert sig.feature_dim == 3

    def test_variable_sizes_across_images(self) -> None:
        """Flat images yield smaller signatures than busy ones — the
        variable dimensionality the SQFD exists for."""
        flat = np.full((8, 8, 3), 0.5)
        sig = extract_signature(flat, n_clusters=8, include_position=False)
        assert sig.size == 1

    def test_subsampling_cap(self) -> None:
        corpus = SyntheticImageCorpus(height=64, width=64, seed=6)
        sig = extract_signature(corpus.render(0), n_clusters=4, max_pixels=256)
        assert sig.size <= 4

    def test_rejects_bad_image(self) -> None:
        with pytest.raises(DimensionMismatchError):
            extract_signature(np.ones((4, 4)), 2)

    def test_sqfd_pipeline_end_to_end(self) -> None:
        """Signatures from similar images are closer in SQFD than from a
        different theme."""
        from repro.distances import SignatureQuadraticFormDistance

        corpus = SyntheticImageCorpus(height=16, width=16, themes=2, seed=8)
        rng = np.random.default_rng(0)
        # Images 0 and 2 share theme 0; image 1 has theme 1.
        sig_a = extract_signature(corpus.render(0), 5, rng=rng)
        sig_b = extract_signature(corpus.render(2), 5, rng=rng)
        sig_c = extract_signature(corpus.render(1), 5, rng=rng)
        dist = SignatureQuadraticFormDistance()
        assert dist(sig_a, sig_b) < dist(sig_a, sig_c)
