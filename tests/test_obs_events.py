"""Unit tests for the traversal event buffer (repro.obs.events).

The two design guarantees under test:

1. off by default — with no buffer active every emit helper is a no-op
   returning immediately (``emit_node_enter`` hands back :data:`ROOT`);
2. exact totals under bounding — ``max_events`` caps and
   ``sample_every`` thins the *recorded* event list only, while the
   per-node and global aggregates stay exact.
"""

from __future__ import annotations

import math

import pytest

from repro.obs import (
    ROOT,
    EventBuffer,
    TraversalEvent,
    collect_events,
    current_buffer,
    emit_candidate_verify,
    emit_charge,
    emit_lb_check,
    emit_node_enter,
    emit_prune,
    emit_result_add,
    events_enabled,
)


class TestDisabledEmission:
    def test_no_buffer_active_by_default(self) -> None:
        assert current_buffer() is None
        assert not events_enabled()

    def test_emit_helpers_are_noops_when_disabled(self) -> None:
        # Must not raise, must not allocate: node_enter returns ROOT so
        # call sites can thread the token through unconditionally.
        assert emit_node_enter(ROOT, "leaf") == ROOT
        emit_lb_check(ROOT, 0.5, 1.0, pruned=False)
        emit_prune(ROOT, 3)
        emit_candidate_verify(ROOT, 7, 0.25)
        emit_result_add(ROOT, 7, 0.25)
        emit_charge(calls=1, rows=10)
        assert current_buffer() is None

    def test_collect_events_none_is_a_noop(self) -> None:
        with collect_events(None) as buf:
            assert buf is None
            assert not events_enabled()

    def test_collect_events_activates_and_restores(self) -> None:
        buffer = EventBuffer()
        with collect_events(buffer) as active:
            assert active is buffer
            assert current_buffer() is buffer
            assert events_enabled()
        assert current_buffer() is None

    def test_collect_events_restores_on_exception(self) -> None:
        buffer = EventBuffer()
        with pytest.raises(RuntimeError):
            with collect_events(buffer):
                raise RuntimeError("boom")
        assert current_buffer() is None


class TestEventBufferRecording:
    def test_enter_node_allocates_sequential_tokens(self) -> None:
        buf = EventBuffer()
        a = buf.enter_node(ROOT, "root-node")
        b = buf.enter_node(a, "child")
        assert (a, b) == (0, 1)
        assert buf.current == b
        assert buf.nodes_entered == 2
        assert buf.nodes[b].parent == a
        assert buf.children_of(ROOT) == [a]
        assert buf.children_of(a) == [b]

    def test_charge_attributes_to_current_node(self) -> None:
        buf = EventBuffer()
        buf.charge(calls=2)  # before any node: charged to ROOT
        tok = buf.enter_node(ROOT, "leaf")
        buf.charge(calls=1, rows=5)
        assert buf.nodes[ROOT].charged_calls == 2
        assert buf.nodes[tok].charged_calls == 1
        assert buf.nodes[tok].charged_rows == 5
        assert buf.charged_calls == 3
        assert buf.charged_rows == 5
        assert buf.charged_total == 8

    def test_charge_with_zero_work_records_nothing(self) -> None:
        buf = EventBuffer()
        buf.charge(calls=0, rows=0)
        assert buf.charged_total == 0

    def test_unknown_node_token_falls_back_to_root(self) -> None:
        buf = EventBuffer()
        buf.lb_check(999, 0.5, 1.0, pruned=True)
        buf.candidate_verify(999, 3, 0.1)
        buf.result_add(999, 3, 0.1)
        buf.prune(999, 2)
        root = buf.nodes[ROOT]
        assert root.lb_checks == 1
        assert root.candidates == 1
        assert root.results == 1
        assert root.pruned == 2

    def test_prune_ignores_nonpositive_counts(self) -> None:
        buf = EventBuffer()
        buf.prune(ROOT, 0)
        buf.prune(ROOT, -4)
        assert buf.pruned == 0
        assert buf.events == []

    def test_events_for_filters_by_node_and_kind(self) -> None:
        buf = EventBuffer()
        tok = buf.enter_node(ROOT, "leaf")
        buf.lb_check(tok, 0.2, 0.5, pruned=False)
        buf.candidate_verify(tok, 1, 0.3)
        buf.result_add(ROOT, 1, 0.3)
        assert [e.kind for e in buf.events_for(tok)] == [
            "node_enter",
            "lb_check",
            "candidate_verify",
        ]
        assert [e.kind for e in buf.events_for(tok, kinds=("lb_check",))] == [
            "lb_check"
        ]
        assert [e.kind for e in buf.events_for(ROOT)] == ["result_add"]

    def test_sequence_numbers_are_global_and_ordered(self) -> None:
        buf = EventBuffer()
        tok = buf.enter_node(ROOT, "n")
        buf.lb_check(tok, 0.1, 0.2, pruned=False)
        buf.prune(tok, 1)
        assert [e.seq for e in buf.events] == [0, 1, 2]


class TestBoundingAndSampling:
    def test_constructor_validates_parameters(self) -> None:
        with pytest.raises(ValueError, match="max_events"):
            EventBuffer(max_events=-1)
        with pytest.raises(ValueError, match="sample_every"):
            EventBuffer(sample_every=0)

    def test_aggregates_exact_past_the_event_cap(self) -> None:
        buf = EventBuffer(max_events=3)
        tok = buf.enter_node(ROOT, "scan")
        for i in range(10):
            buf.lb_check(tok, float(i), 5.0, pruned=i > 5)
            buf.charge(calls=1)
        assert len(buf.events) == 3  # node_enter + first two checks
        assert buf.dropped == 8
        # Aggregates never stopped counting.
        assert buf.lb_checks == 10
        assert buf.nodes[tok].lb_checks == 10
        assert buf.charged_calls == 10

    def test_zero_max_events_keeps_exact_aggregates(self) -> None:
        buf = EventBuffer(max_events=0)
        tok = buf.enter_node(ROOT, "scan")
        buf.candidate_verify(tok, 4, 0.5)
        buf.charge(rows=12)
        assert buf.events == []
        assert buf.dropped == 2
        assert buf.candidates_verified == 1
        assert buf.charged_rows == 12

    def test_stride_sampling_thins_high_cardinality_kinds(self) -> None:
        buf = EventBuffer(sample_every=3)
        tok = buf.enter_node(ROOT, "scan")
        for i in range(9):
            buf.lb_check(tok, float(i), 10.0, pruned=False)
        recorded = buf.events_for(tok, kinds=("lb_check",))
        assert len(recorded) == 3  # every 3rd of 9
        assert buf.sampled_out == 6
        assert buf.lb_checks == 9  # aggregate stays exact

    def test_structural_kinds_are_never_sampled(self) -> None:
        buf = EventBuffer(sample_every=100)
        tok = buf.enter_node(ROOT, "a")
        buf.prune(tok, 2)
        buf.result_add(tok, 0, 0.1)
        kinds = [e.kind for e in buf.events]
        assert kinds == ["node_enter", "prune", "result_add"]


class TestTraversalEventDict:
    def test_nan_fields_are_omitted(self) -> None:
        ev = TraversalEvent(seq=0, kind="prune", node=2, count=3)
        d = ev.to_dict()
        assert "value" not in d and "threshold" not in d
        assert d == {"seq": 0, "kind": "prune", "node": 2, "count": 3}

    def test_lb_check_always_carries_pruned(self) -> None:
        ev = TraversalEvent(
            seq=1, kind="lb_check", node=0, value=0.4, threshold=0.5, pruned=False
        )
        d = ev.to_dict()
        assert d["pruned"] is False
        assert d["value"] == pytest.approx(0.4)
        assert d["threshold"] == pytest.approx(0.5)

    def test_node_enter_carries_parent(self) -> None:
        ev = TraversalEvent(seq=0, kind="node_enter", node=5, parent=2, label="leaf")
        d = ev.to_dict()
        assert d["parent"] == 2 and d["label"] == "leaf"

    def test_json_roundtrip_has_no_nan(self) -> None:
        import json

        buf = EventBuffer()
        tok = buf.enter_node(ROOT, "n")
        buf.candidate_verify(tok, 1, float("nan"))
        # allow_nan=False raises on any NaN leaking into the payload.
        payload = json.dumps([e.to_dict() for e in buf.events], allow_nan=False)
        assert "NaN" not in payload
        assert math.isnan(buf.events[-1].value)  # the raw event still has it


class TestPerLabelLowerBoundAggregates:
    """lb_labels: exact per-bound-kind (checks, pruned) counts, the data
    behind EXPLAIN's triangle-vs-Ptolemaic side-by-side section."""

    def test_labels_accumulate_checks_and_prunes(self) -> None:
        buf = EventBuffer()
        tok = buf.enter_node(label="pivot-filter")
        buf.lb_check(tok, 1.0, 0.5, pruned=True, label="pivot-linf")
        buf.lb_check(tok, 0.2, 0.5, pruned=False, label="pivot-linf")
        buf.lb_check(tok, 1.4, 0.5, pruned=True, label="pivot-ptolemaic")
        assert buf.lb_labels == {
            "pivot-linf": [2, 1],
            "pivot-ptolemaic": [1, 1],
        }
        assert buf.lb_checks == 3  # the global aggregate still sees all

    def test_unlabeled_checks_do_not_create_entries(self) -> None:
        buf = EventBuffer()
        buf.lb_check(ROOT, 1.0, 0.5, pruned=True)
        assert buf.lb_labels == {}
        assert buf.lb_checks == 1

    def test_labels_stay_exact_under_bounding_and_sampling(self) -> None:
        buf = EventBuffer(max_events=2, sample_every=7)
        for i in range(100):
            buf.lb_check(ROOT, float(i), 50.0, pruned=i > 50, label="pivot-linf")
        assert buf.lb_labels["pivot-linf"] == [100, 49]
        assert len(buf.events) <= 2

    def test_count_parameter_is_respected(self) -> None:
        buf = EventBuffer()
        buf.lb_check(ROOT, 1.0, 0.5, pruned=True, count=10, label="pivot-best")
        assert buf.lb_labels["pivot-best"] == [10, 10]
