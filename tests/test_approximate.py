"""Tests for approximate kNN (MTree epsilon) and repro.evaluation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import clustered_histograms
from repro.distances import CountingDistance, euclidean, euclidean_one_to_many
from repro.evaluation import ApproximationQuality, compare_results, mean_quality
from repro.exceptions import QueryError
from repro.mam import MTree, Neighbor, SequentialFile


@pytest.fixture(scope="module")
def data():
    return clustered_histograms(600, 4, themes=8, rng=np.random.default_rng(111))


@pytest.fixture(scope="module")
def scan(data):
    return SequentialFile(data, euclidean)


class TestEpsilonKNN:
    def test_epsilon_zero_is_exact(self, data, scan) -> None:
        tree = MTree(data, euclidean, capacity=8, epsilon=0.0)
        q = data[0]
        assert [n.index for n in tree.knn_search(q, 10)] == [
            n.index for n in scan.knn_search(q, 10)
        ]

    def test_guarantee_holds(self, data, scan) -> None:
        """Every reported kth distance is within (1+eps) of the true kth."""
        for epsilon in (0.1, 0.5, 2.0):
            tree = MTree(data, euclidean, capacity=8, epsilon=epsilon)
            for q in data[:5]:
                true_kth = scan.knn_search(q, 10)[-1].distance
                got = tree.knn_search(q, 10)
                assert len(got) == 10
                assert got[-1].distance <= true_kth * (1.0 + epsilon) + 1e-12

    def test_larger_epsilon_fewer_evaluations(self, data) -> None:
        evals = []
        for epsilon in (0.0, 1.0):
            counter = CountingDistance(euclidean, one_to_many=euclidean_one_to_many)
            tree = MTree(data, counter, capacity=8, epsilon=epsilon)
            counter.reset()
            for q in data[:10]:
                tree.knn_search(q, 10)
            evals.append(counter.count)
        assert evals[1] < evals[0]

    def test_recall_degrades_gracefully(self, data, scan) -> None:
        tree = MTree(data, euclidean, capacity=8, epsilon=0.3)
        recalls = []
        for q in data[:10]:
            exact = scan.knn_search(q, 10)
            approx = tree.knn_search(q, 10)
            recalls.append(compare_results(exact, approx).recall)
        assert np.mean(recalls) > 0.5  # relaxed but not garbage

    def test_rejects_negative_epsilon(self, data) -> None:
        with pytest.raises(QueryError):
            MTree(data[:10], euclidean, epsilon=-0.1)

    def test_range_queries_stay_exact(self, data, scan) -> None:
        """Epsilon only relaxes kNN; range queries remain exact."""
        tree = MTree(data, euclidean, capacity=8, epsilon=5.0)
        q = data[3]
        nn = scan.knn_search(q, 20)
        radius = (nn[-2].distance + nn[-1].distance) / 2.0
        assert [n.index for n in tree.range_search(q, radius)] == [
            n.index for n in scan.range_search(q, radius)
        ]


class TestEvaluationMetrics:
    def _mk(self, pairs):
        return [Neighbor(d, i) for d, i in pairs]

    def test_perfect_answer(self) -> None:
        exact = self._mk([(0.1, 1), (0.2, 2), (0.3, 3)])
        quality = compare_results(exact, exact)
        assert quality.is_exact
        assert quality.recall == 1.0
        assert quality.rank_displacement == 0.0

    def test_partial_recall(self) -> None:
        exact = self._mk([(0.1, 1), (0.2, 2), (0.3, 3), (0.4, 4)])
        approx = self._mk([(0.1, 1), (0.2, 2), (0.5, 9), (0.6, 8)])
        quality = compare_results(exact, approx)
        assert quality.recall == pytest.approx(0.5)

    def test_relative_error(self) -> None:
        exact = self._mk([(0.1, 1), (0.2, 2)])
        approx = self._mk([(0.1, 1), (0.3, 5)])
        quality = compare_results(exact, approx)
        assert quality.relative_error == pytest.approx(0.5)

    def test_zero_kth_distance_edge(self) -> None:
        exact = self._mk([(0.0, 1)])
        assert compare_results(exact, exact).relative_error == 0.0
        off = self._mk([(0.2, 5)])
        assert compare_results(exact, off).relative_error == float("inf")

    def test_rank_displacement_with_full_ranking(self) -> None:
        full = self._mk([(0.1, 1), (0.2, 2), (0.3, 3), (0.4, 4), (0.5, 5)])
        exact = full[:2]
        approx = self._mk([(0.1, 1), (0.4, 4)])  # 4 has true rank 3, ideal 1
        quality = compare_results(exact, approx, full_ranking=full)
        assert quality.rank_displacement == pytest.approx(1.0)  # (0 + 2) / 2

    def test_unknown_object_gets_fallback_rank(self) -> None:
        exact = self._mk([(0.1, 1), (0.2, 2)])
        approx = self._mk([(0.1, 1), (0.9, 77)])
        quality = compare_results(exact, approx)
        assert quality.rank_displacement > 0.0

    def test_validation(self) -> None:
        with pytest.raises(QueryError):
            compare_results([], [])
        exact = self._mk([(0.1, 1)])
        with pytest.raises(QueryError):
            compare_results(exact, self._mk([(0.1, 1), (0.2, 2)]))

    def test_mean_quality(self) -> None:
        a = ApproximationQuality(1.0, 0.0, 0.0)
        b = ApproximationQuality(0.5, 0.2, 2.0)
        mean = mean_quality([a, b])
        assert mean.recall == pytest.approx(0.75)
        assert mean.relative_error == pytest.approx(0.1)
        assert mean.rank_displacement == pytest.approx(1.0)
        with pytest.raises(QueryError):
            mean_quality([])
