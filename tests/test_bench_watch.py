"""Drift-detector tests: robust statistics, exit codes, metrics diffing."""

from __future__ import annotations

import json
import math

import pytest

from repro.bench import (
    diff_metrics,
    is_count_metric,
    load_metrics_jsonl,
    render_diff,
    robust_zscore,
    watch_history,
)
from repro.bench.history import append_history, history_record


def _write_history(path, bench: str, metric_rows: list[dict]) -> None:
    for metrics in metric_rows:
        append_history(history_record(bench, metrics), path)


class TestRobustZscore:
    def test_centered_value_scores_zero(self) -> None:
        z, med, mad = robust_zscore(10.0, [8.0, 10.0, 12.0, 10.0, 9.0])
        assert med == 10.0
        assert z == 0.0

    def test_scales_like_a_zscore_for_gaussianish_data(self) -> None:
        window = [9.0, 10.0, 11.0, 10.0, 10.0, 9.5, 10.5]
        z, med, mad = robust_zscore(15.0, window)
        assert med == 10.0
        assert mad == 0.5
        assert z == pytest.approx(0.6745 * 5.0 / 0.5)

    def test_constant_window_degenerates(self) -> None:
        z_same, _, mad = robust_zscore(5.0, [5.0, 5.0, 5.0])
        assert mad == 0.0
        assert z_same == 0.0
        z_diff, _, _ = robust_zscore(5.1, [5.0, 5.0, 5.0])
        assert math.isinf(z_diff)


class TestIsCountMetric:
    @pytest.mark.parametrize(
        "key",
        [
            "mtree.qfd.build_evaluations",
            "mtree.qfd.query_transforms",
            "planner.auto.alternatives",
            "results.headline.queries",
            "filter_checks",
            "candidates",
            "dim",
        ],
    )
    def test_count_keys(self, key: str) -> None:
        assert is_count_metric(key)

    @pytest.mark.parametrize(
        "key",
        [
            "mtree.qfd.build_seconds",
            "queries_per_second",
            "peak_rss_bytes",
            "seconds_per_query",
            "rss_over_heap_copy",
        ],
    )
    def test_timing_keys(self, key: str) -> None:
        assert not is_count_metric(key)


class TestWatchHistory:
    def test_clean_history_exits_zero(self, tmp_path) -> None:
        path = tmp_path / "hist.jsonl"
        rows = [{"a.build_evaluations": 100, "a.build_seconds": 1.0 + 0.01 * i} for i in range(5)]
        _write_history(path, "bench-a", rows)
        report = watch_history(path, min_history=3)
        assert report.exit_code == 0
        assert not report.drifted
        (bench,) = report.benches
        assert bench.checked == 2

    def test_count_drift_is_zero_tolerance(self, tmp_path) -> None:
        path = tmp_path / "hist.jsonl"
        rows = [{"a.build_evaluations": 100} for _ in range(4)]
        rows.append({"a.build_evaluations": 101})  # off by one: drift
        _write_history(path, "bench-a", rows)
        report = watch_history(path, min_history=3)
        assert report.exit_code == 1
        (drift,) = report.benches[0].drifts
        assert drift.kind == "count"
        assert drift.status == "drift"

    def test_timing_noise_within_sigma_is_ok(self, tmp_path) -> None:
        path = tmp_path / "hist.jsonl"
        rows = [{"a.seconds": 1.0 + 0.05 * (i % 3)} for i in range(6)]
        rows.append({"a.seconds": 1.06})
        _write_history(path, "bench-a", rows)
        report = watch_history(path, sigma=5.0, min_history=3)
        assert report.exit_code == 0

    def test_timing_blowup_beyond_sigma_drifts(self, tmp_path) -> None:
        path = tmp_path / "hist.jsonl"
        rows = [{"a.seconds": 1.0 + 0.05 * (i % 3)} for i in range(6)]
        rows.append({"a.seconds": 10.0})
        _write_history(path, "bench-a", rows)
        report = watch_history(path, sigma=5.0, min_history=3)
        assert report.exit_code == 1
        (drift,) = report.benches[0].drifts
        assert drift.kind == "timing"
        assert abs(drift.zscore) > 5.0

    def test_insufficient_history_exits_two(self, tmp_path) -> None:
        path = tmp_path / "hist.jsonl"
        _write_history(path, "bench-a", [{"a.x": 1.0}, {"a.x": 1.0}])
        report = watch_history(path, min_history=3)
        assert report.exit_code == 2
        assert report.benches[0].insufficient
        assert "SKIPPED" in report.render()

    def test_new_keys_are_informational_not_drift(self, tmp_path) -> None:
        path = tmp_path / "hist.jsonl"
        rows = [{"a.build_evaluations": 100} for _ in range(4)]
        rows.append({"a.build_evaluations": 100, "a.brand_new_evaluations": 7})
        _write_history(path, "bench-a", rows)
        report = watch_history(path, min_history=3)
        assert report.exit_code == 0
        (bench,) = report.benches
        assert [d.metric for d in bench.news] == ["a.brand_new_evaluations"]

    def test_bench_filter_selects_one_bench(self, tmp_path) -> None:
        path = tmp_path / "hist.jsonl"
        _write_history(path, "bench-a", [{"a.x_evaluations": 1} for _ in range(5)])
        _write_history(path, "bench-b", [{"b.x_evaluations": 1} for _ in range(5)])
        report = watch_history(path, bench="bench-a", min_history=3)
        assert [b.bench for b in report.benches] == ["bench-a"]

    def test_window_limits_the_baseline(self, tmp_path) -> None:
        path = tmp_path / "hist.jsonl"
        # Old regime at 100 evals, recent regime at 200: with a window of
        # 3 the old records must not poison the median.
        rows = [{"a.build_evaluations": 100} for _ in range(5)]
        rows += [{"a.build_evaluations": 200} for _ in range(4)]
        _write_history(path, "bench-a", rows)
        report = watch_history(path, window=3, min_history=3)
        assert report.exit_code == 0

    def test_rejects_bad_parameters(self, tmp_path) -> None:
        path = tmp_path / "hist.jsonl"
        with pytest.raises(ValueError):
            watch_history(path, window=0)
        with pytest.raises(ValueError):
            watch_history(path, min_history=0)

    def test_committed_repo_history_is_clean(self) -> None:
        # The repository's own history must always pass the watch — CI
        # runs this same check as a smoke step.
        report = watch_history("BENCH_history.jsonl", bench="bench-check", min_history=2)
        assert report.exit_code == 0


class TestMetricsDiff:
    def _jsonl(self, path, entries) -> None:
        path.write_text("\n".join(json.dumps(e) for e in entries) + "\n")

    def test_load_flattens_counters_and_histograms(self, tmp_path) -> None:
        path = tmp_path / "metrics.jsonl"
        self._jsonl(
            path,
            [
                {"type": "counter", "name": "repro_x_total", "labels": {"m": "a"}, "value": 3},
                {"type": "histogram", "name": "repro_y_seconds", "labels": {}, "count": 4, "sum": 0.5},
                {"type": "span", "name": "build/index", "seconds": 1.0},
            ],
        )
        flat = load_metrics_jsonl(path)
        assert flat == {
            "repro_x_total{m=a}": 3.0,
            "repro_y_seconds#count": 4.0,
            "repro_y_seconds#sum": 0.5,
        }

    def test_diff_orders_by_absolute_delta(self) -> None:
        deltas = diff_metrics(
            {"a": 1.0, "b": 10.0, "c": 5.0},
            {"a": 2.0, "b": 110.0, "c": 5.0},
        )
        assert [d.key for d in deltas] == ["b", "a", "c"]
        assert deltas[0].delta == 100.0
        assert deltas[-1].delta == 0.0

    def test_diff_tracks_added_and_removed_keys(self) -> None:
        deltas = diff_metrics({"gone": 4.0}, {"new": 9.0})
        by_key = {d.key: d for d in deltas}
        assert by_key["gone"].b is None
        assert by_key["new"].a is None

    def test_render_diff_mentions_changed_keys_only(self) -> None:
        text = render_diff(
            diff_metrics({"same": 1.0, "up": 2.0}, {"same": 1.0, "up": 3.0})
        )
        assert "up" in text
        assert "1 changed / 2 keys" in text

    def test_render_identical_maps(self) -> None:
        text = render_diff(diff_metrics({"k": 1.0}, {"k": 1.0}))
        assert "(identical)" in text
