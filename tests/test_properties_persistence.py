"""Property-based tests (hypothesis) for snapshot round-trips.

For every registered access method, under random databases, matrices and
queries: ``build -> save -> load`` must answer range and kNN queries
bit-identically to the original *and* to a fresh deterministic rebuild,
and the load must perform zero distance evaluations.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import random_spd_matrix
from repro.core.qfd import QuadraticFormDistance
from repro.distances import CountingDistance
from repro.mam.base import DistancePort
from repro.models import MAM_REGISTRY, SAM_REGISTRY
from repro.models.base import instantiate
from repro.persistence import load_index, save_index

ALL_METHODS = sorted(MAM_REGISTRY) + sorted(SAM_REGISTRY)

#: Construction arguments sized for the tiny random databases below.
METHOD_KWARGS: dict[str, dict[str, int]] = {
    "pivot-table": {"n_pivots": 3},
    "mindex": {"n_pivots": 3},
    "mtree": {"capacity": 4},
    "paged-mtree": {"capacity": 4, "cache_pages": 8},
    "vptree": {"leaf_size": 3},
    "gnat": {"arity": 3, "leaf_size": 3},
    "rtree": {"capacity": 4},
    "xtree": {"capacity": 4},
    "vafile": {"bits": 3},
    "disk-sequential": {"page_size": 512},
}


def _counter(matrix: np.ndarray) -> CountingDistance:
    qfd = QuadraticFormDistance(matrix)
    return CountingDistance(qfd, one_to_many=qfd.one_to_many)


def _build(method: str, data: np.ndarray, counter: CountingDistance):
    return instantiate(method, data, counter, dict(METHOD_KWARGS.get(method, {})))


@pytest.mark.parametrize("method", ALL_METHODS)
class TestRoundTripProperty:
    @given(
        seed=st.integers(0, 10_000),
        m=st.integers(8, 60),
        dim=st.integers(2, 5),
        k=st.integers(1, 8),
        radius=st.floats(0.05, 1.5),
    )
    @settings(max_examples=10, deadline=None)
    def test_save_load_preserves_answers(
        self, method, tmp_path_factory, seed, m, dim, k, radius
    ) -> None:
        rng = np.random.default_rng(seed)
        matrix = random_spd_matrix(dim, rng=rng, condition=10.0)
        data = rng.random((m, dim))
        query = rng.random(dim)
        path = tmp_path_factory.mktemp("snap") / f"{method}.npz"

        original = _build(method, data, _counter(matrix))
        save_index(original, path)

        fresh = _counter(matrix)
        distance = DistancePort(fresh) if method in SAM_REGISTRY else fresh
        restored = load_index(path, distance)
        assert fresh.count == 0, f"{method}: load cost {fresh.count} evaluations"

        rebuild_counter = _counter(matrix)
        rebuilt = _build(method, data, rebuild_counter)

        want_knn = [(n.index, n.distance) for n in original.knn_search(query, k)]
        assert [
            (n.index, n.distance) for n in restored.knn_search(query, k)
        ] == want_knn
        assert [
            (n.index, n.distance) for n in rebuilt.knn_search(query, k)
        ] == want_knn

        want_range = [
            (n.index, n.distance) for n in original.range_search(query, radius)
        ]
        assert [
            (n.index, n.distance) for n in restored.range_search(query, radius)
        ] == want_range
        assert [
            (n.index, n.distance) for n in rebuilt.range_search(query, radius)
        ] == want_range
