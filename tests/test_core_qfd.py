"""Tests for repro.core.qfd — the quadratic form distance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import QuadraticFormDistance
from repro.distances import euclidean, weighted_euclidean
from repro.exceptions import (
    DimensionMismatchError,
    NotPositiveDefiniteError,
    NotSymmetricError,
)


class TestConstruction:
    def test_rejects_non_symmetric_by_default(self) -> None:
        a = np.array([[1.0, 0.4], [0.0, 1.0]])
        with pytest.raises(NotSymmetricError):
            QuadraticFormDistance(a)

    def test_symmetrize_input_accepts_general_matrix(self) -> None:
        a = np.array([[1.0, 0.4], [0.0, 1.0]])
        qfd = QuadraticFormDistance(a, symmetrize_input=True)
        assert np.allclose(qfd.matrix, (a + a.T) / 2.0)

    def test_symmetrized_matrix_gives_same_distance(self, rng: np.random.Generator) -> None:
        """Section 3.2.3: a general matrix and its symmetric part agree."""
        skew = rng.random((6, 6)) * 0.1
        a = np.eye(6) + skew  # symmetric part I + (skew+skew.T)/2, PD for small skew
        qfd = QuadraticFormDistance(a, symmetrize_input=True)
        for _ in range(10):
            u, v = rng.random(6), rng.random(6)
            z = u - v
            direct = np.sqrt(max(float(z @ a @ z), 0.0))
            assert qfd(u, v) == pytest.approx(direct, abs=1e-10)

    def test_rejects_indefinite(self) -> None:
        with pytest.raises(NotPositiveDefiniteError):
            QuadraticFormDistance(np.array([[1.0, 2.0], [2.0, 1.0]]))

    def test_matrix_is_read_only(self, spd_16: np.ndarray) -> None:
        qfd = QuadraticFormDistance(spd_16)
        with pytest.raises(ValueError):
            qfd.matrix[0, 0] = 99.0

    def test_dim(self, spd_16: np.ndarray) -> None:
        assert QuadraticFormDistance(spd_16).dim == 16


class TestDegenerateCases:
    """Identity matrix -> L2; diagonal matrix -> weighted L2 (Section 1.2)."""

    def test_identity_reduces_to_euclidean(self, rng: np.random.Generator) -> None:
        qfd = QuadraticFormDistance(np.eye(8))
        for _ in range(10):
            u, v = rng.random(8), rng.random(8)
            assert qfd(u, v) == pytest.approx(euclidean(u, v), abs=1e-12)

    def test_diagonal_reduces_to_weighted_euclidean(self, rng: np.random.Generator) -> None:
        weights = rng.random(8) + 0.5
        qfd = QuadraticFormDistance(np.diag(weights))
        for _ in range(10):
            u, v = rng.random(8), rng.random(8)
            assert qfd(u, v) == pytest.approx(weighted_euclidean(u, v, weights), abs=1e-12)

    def test_paper_rgb_example_ordering(self) -> None:
        """The sunset/tennis-ball/orange story: with the correlated matrix,
        an orange-ish histogram is closer to red than a yellow-vs-green
        mixup would suggest under plain L2."""
        a = np.array([[1.0, 0.0, 0.0], [0.0, 1.0, 0.5], [0.0, 0.5, 1.0]])
        qfd = QuadraticFormDistance(a)
        red = np.array([1.0, 0.0, 0.0])
        green = np.array([0.0, 1.0, 0.0])
        blue = np.array([0.0, 0.0, 1.0])
        # G and B are correlated at 0.5 -> their distance is smaller than
        # R-G or R-B, matching the perceptual claim in Section 1.2.
        assert qfd(green, blue) < qfd(red, green)
        assert qfd(green, blue) < qfd(red, blue)


class TestEvaluation:
    def test_self_distance_zero(self, qfd_64, histograms_64) -> None:
        assert qfd_64(histograms_64[0], histograms_64[0]) == 0.0

    def test_symmetry(self, qfd_64, histograms_64) -> None:
        u, v = histograms_64[0], histograms_64[1]
        assert qfd_64(u, v) == pytest.approx(qfd_64(v, u), abs=1e-12)

    def test_squared_matches(self, qfd_64, histograms_64) -> None:
        u, v = histograms_64[2], histograms_64[3]
        assert qfd_64(u, v) ** 2 == pytest.approx(qfd_64.squared(u, v), abs=1e-12)

    def test_squared_clamped_non_negative(self, spd_16: np.ndarray) -> None:
        qfd = QuadraticFormDistance(spd_16)
        u = np.full(16, 0.125)
        assert qfd.squared(u, u + 1e-300) >= 0.0

    def test_dimension_mismatch(self, qfd_64) -> None:
        with pytest.raises(DimensionMismatchError):
            qfd_64(np.ones(64), np.ones(32))

    def test_one_to_many_matches_scalar(self, qfd_64, histograms_64) -> None:
        q = histograms_64[0]
        batch = histograms_64[1:40]
        vectorized = qfd_64.one_to_many(q, batch)
        scalar = np.array([qfd_64(q, row) for row in batch])
        assert np.allclose(vectorized, scalar, atol=1e-10)

    def test_pairwise_matches_scalar(self, qfd_64, histograms_64) -> None:
        batch = histograms_64[:15]
        matrix = qfd_64.pairwise(batch)
        assert matrix.shape == (15, 15)
        assert np.allclose(np.diag(matrix), 0.0, atol=1e-7)
        for i in range(0, 15, 5):
            for j in range(0, 15, 3):
                assert matrix[i, j] == pytest.approx(qfd_64(batch[i], batch[j]), abs=1e-7)

    def test_pairwise_symmetric(self, qfd_64, histograms_64) -> None:
        matrix = qfd_64.pairwise(histograms_64[:10])
        assert np.allclose(matrix, matrix.T)
