"""Tests for repro.mam.mtree — structure invariants and behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import clustered_histograms
from repro.distances import CountingDistance, euclidean, euclidean_one_to_many
from repro.exceptions import QueryError
from repro.mam import MTree, SequentialFile

from .helpers import assert_same_neighbors


@pytest.fixture(scope="module")
def data():
    return clustered_histograms(400, 4, themes=8, rng=np.random.default_rng(21))


class TestConstruction:
    def test_rejects_capacity_below_two(self, data) -> None:
        with pytest.raises(QueryError):
            MTree(data, euclidean, capacity=1)

    def test_rejects_unknown_split_policy(self, data) -> None:
        with pytest.raises(QueryError):
            MTree(data, euclidean, split_policy="linear")

    def test_single_object_tree(self) -> None:
        tree = MTree(np.ones((1, 4)), euclidean)
        assert tree.height() == 1
        assert tree.knn_search(np.zeros(4), 1)[0].index == 0

    def test_height_grows_logarithmically(self, data) -> None:
        tree = MTree(data, euclidean, capacity=8)
        # 400 objects, capacity 8 -> height around log_4..8(400); sanity bounds.
        assert 2 <= tree.height() <= 8

    def test_invariants_mm_rad(self, data) -> None:
        tree = MTree(data[:200], euclidean, capacity=6, split_policy="mM_RAD")
        tree.validate_invariants()

    def test_invariants_random_split(self, data) -> None:
        tree = MTree(data[:200], euclidean, capacity=6, split_policy="random")
        tree.validate_invariants()

    def test_node_count_positive(self, data) -> None:
        tree = MTree(data[:100], euclidean, capacity=4)
        assert tree.node_count() >= 100 // 4

    def test_capacity_two_works(self, data) -> None:
        tree = MTree(data[:50], euclidean, capacity=2)
        tree.validate_invariants()
        scan = SequentialFile(data[:50], euclidean)
        q = data[60]
        assert_same_neighbors(tree.knn_search(q, 3), scan.knn_search(q, 3))


class TestQueryBehaviour:
    def test_random_split_still_exact(self, data) -> None:
        port = CountingDistance(euclidean, one_to_many=euclidean_one_to_many)
        tree = MTree(data, port, capacity=8, split_policy="random")
        scan = SequentialFile(data, euclidean)
        for q in data[:3]:
            assert_same_neighbors(tree.knn_search(q, 10), scan.knn_search(q, 10))

    def test_knn_prunes_on_clustered_data(self, data) -> None:
        counter = CountingDistance(euclidean, one_to_many=euclidean_one_to_many)
        tree = MTree(data, counter, capacity=16)
        counter.reset()
        tree.knn_search(data[0], 5)
        # Far fewer evaluations than the 400-object scan.
        assert counter.count < 0.6 * len(data)

    def test_range_with_zero_radius(self, data) -> None:
        tree = MTree(data[:100], euclidean, capacity=8)
        hits = tree.range_search(data[5], 0.0)
        assert any(n.index == 5 for n in hits)
        assert all(n.distance == 0.0 for n in hits)

    def test_range_radius_covering_everything(self, data) -> None:
        tree = MTree(data[:80], euclidean, capacity=8)
        hits = tree.range_search(data[0], 1e6)
        assert len(hits) == 80

    def test_knn_more_than_size(self, data) -> None:
        tree = MTree(data[:10], euclidean, capacity=4)
        assert len(tree.knn_search(data[0], 50)) == 10

    def test_build_cost_scales_m_log_m(self) -> None:
        """Distance evaluations per insert should grow slowly (log-ish),
        not linearly, as the database doubles (Section 4.3.1)."""
        rng = np.random.default_rng(33)
        big = clustered_histograms(1600, 4, themes=8, rng=rng)
        costs = []
        for m in (400, 1600):
            counter = CountingDistance(euclidean, one_to_many=euclidean_one_to_many)
            MTree(big[:m], counter, capacity=16)
            costs.append(counter.count / m)
        # Quadrupling m must not quadruple the per-object cost; allow 2.5x
        # slack for split amortization noise.
        assert costs[1] < costs[0] * 2.5

    def test_deterministic_given_seed(self, data) -> None:
        t1 = MTree(data[:100], euclidean, capacity=8, rng=np.random.default_rng(5))
        t2 = MTree(data[:100], euclidean, capacity=8, rng=np.random.default_rng(5))
        q = data[200]
        assert t1.knn_search(q, 7) == t2.knn_search(q, 7)

    def test_properties(self, data) -> None:
        tree = MTree(data[:50], euclidean, capacity=9, split_policy="random")
        assert tree.capacity == 9
        assert tree.split_policy == "random"
