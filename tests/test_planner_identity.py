"""Planner answer identity: every plan answers like the sequential scan.

The acceptance property of the whole planner layer: routing a query
batch through *any* planner alternative — a probe of any of the twelve
access methods under either model, either direct scan, or a
filter-and-refine pipeline — returns the same neighbors as the
sequential raw-QFD baseline (indices exact, distances within the ulp
tolerance the whole suite uses).  The planner only ever moves
*evaluations*, never answers.

Deterministic sweep: one forced probe per (method, model) snapshot.
Hypothesis sweep: random k / radius / query against the planner's own
*chosen* plan.
"""

from __future__ import annotations

import functools

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datasets import calibrate_radius, histogram_workload
from repro.models import MAM_REGISTRY, SAM_REGISTRY, QFDModel, QMapModel
from repro.models.planning import plan_query_batch

from .helpers import assert_same_neighbors

#: Build kwargs per method (mirrors the CLI's `_INDEX_KWARGS`).
_BUILD_KWARGS = {
    "pivot-table": {"n_pivots": 8},
    "mindex": {"n_pivots": 8},
    "mtree": {"capacity": 16},
    "paged-mtree": {"capacity": 16},
    "rtree": {"capacity": 16},
    "xtree": {"capacity": 16},
}

#: All twelve access methods: MAMs under both models, SAMs (which pick
#: the distance at query time) under the QMap model only.
COMBOS = [(method, model) for method in MAM_REGISTRY for model in ("qfd", "qmap")] + [
    (method, "qmap") for method in SAM_REGISTRY
]

M, N_QUERIES, K = 120, 4, 5


@functools.lru_cache(maxsize=1)
def _workload():
    return histogram_workload(M, N_QUERIES, bins_per_channel=4, seed=13)


@functools.lru_cache(maxsize=1)
def _radius() -> float:
    return calibrate_radius(_workload(), 8)


@pytest.fixture(scope="module")
def snapshot_dir(tmp_path_factory):
    """One saved snapshot per (method, model) combo."""
    root = tmp_path_factory.mktemp("identity")
    workload = _workload()
    for method, model_name in COMBOS:
        model_cls = QMapModel if model_name == "qmap" else QFDModel
        built = model_cls(workload.matrix).build_index(
            method, workload.database, **_BUILD_KWARGS.get(method, {})
        )
        built.save(str(root / f"{method}_{model_name}.npz"))
    return root


@pytest.fixture(scope="module")
def baseline():
    index = QFDModel(_workload().matrix).build_index(
        "sequential", _workload().database
    )
    return {
        "knn": [index.knn_search(q, K) for q in _workload().queries],
        "range": [index.range_search(q, _radius()) for q in _workload().queries],
    }


def test_catalog_sees_every_combo(snapshot_dir) -> None:
    planned = plan_query_batch(
        _workload().matrix, _workload().database, _workload().queries,
        k=K, index_dir=str(snapshot_dir),
    )
    probes = [c for c in planned.choice.considered if c.name.startswith("probe[")]
    assert len(probes) == len(COMBOS)
    assert not planned.catalog.warnings


@pytest.mark.parametrize("method,model_name", COMBOS)
def test_forced_probe_matches_sequential_baseline(
    method: str, model_name: str, snapshot_dir, baseline
) -> None:
    workload = _workload()
    for kind, kwargs in (("knn", {"k": K}), ("range", {"radius": _radius()})):
        planned = plan_query_batch(
            workload.matrix, workload.database, workload.queries,
            index_dir=str(snapshot_dir),
            force=f"probe[{method},{model_name}]",
            **kwargs,
        )
        results = planned.execution.run_batch(workload.queries, **kwargs)
        for pos, (got, expected) in enumerate(zip(results, baseline[kind])):
            assert_same_neighbors(
                got, expected, label=f"{method}/{model_name}/{kind} q{pos}"
            )


@given(
    k=st.integers(min_value=1, max_value=12),
    query_pos=st.integers(min_value=0, max_value=N_QUERIES - 1),
)
@settings(
    max_examples=15, deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_chosen_plan_matches_baseline_for_any_k(
    snapshot_dir, k: int, query_pos: int
) -> None:
    """Whatever the argmin picks answers exactly like the baseline."""
    workload = _workload()
    query = workload.queries[query_pos]
    planned = plan_query_batch(
        workload.matrix, workload.database, query.reshape(1, -1),
        k=k, index_dir=str(snapshot_dir),
    )
    expected = (
        QFDModel(workload.matrix)
        .build_index("sequential", workload.database)
        .knn_search(query, k)
    )
    (got,) = planned.execution.run_batch(query.reshape(1, -1), k=k)
    assert_same_neighbors(got, expected, label=planned.plan_name)
