"""Integration: every access method answers exactly like the sequential scan.

DESIGN.md invariant 4 — no false dismissals, no false positives, identical
ordering — checked for all MAMs and SAMs, under both the QFD and the QMap
model, for range and kNN queries across a grid of parameters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import histogram_workload
from repro.models import MAM_REGISTRY, SAM_REGISTRY, QFDModel, QMapModel

from .helpers import assert_same_neighbors

METHOD_KWARGS = {
    "sequential": {},
    "disk-sequential": {"cache_pages": 4},
    "pivot-table": {"n_pivots": 12},
    "mtree": {"capacity": 8},
    "paged-mtree": {"capacity": 8, "cache_pages": 4},
    "vptree": {"leaf_size": 6},
    "gnat": {"arity": 5, "leaf_size": 10},
    "mindex": {"n_pivots": 8},
    "sat": {},
    "rtree": {"capacity": 8},
    "xtree": {"capacity": 8, "max_overlap": 0.75},
    "vafile": {"bits": 4},
}


@pytest.fixture(scope="module")
def workload():
    return histogram_workload(350, 4, bins_per_channel=4, seed=13)


@pytest.fixture(scope="module")
def reference(workload):
    """Ground truth: sequential scan in the QFD model."""
    model = QFDModel(workload.matrix)
    return model.build_index("sequential", workload.database)


@pytest.mark.parametrize("method", sorted(MAM_REGISTRY))
class TestMAMExactness:
    def test_knn_qfd_model(self, method, workload, reference) -> None:
        index = QFDModel(workload.matrix).build_index(
            method, workload.database, **METHOD_KWARGS[method]
        )
        for q in workload.queries:
            for k in (1, 5, 17):
                assert_same_neighbors(
                    index.knn_search(q, k),
                    reference.knn_search(q, k),
                    label=f"{method}/qfd knn k={k}",
                )

    def test_knn_qmap_model(self, method, workload, reference) -> None:
        index = QMapModel(workload.matrix).build_index(
            method, workload.database, **METHOD_KWARGS[method]
        )
        for q in workload.queries:
            for k in (1, 5, 17):
                assert_same_neighbors(
                    index.knn_search(q, k),
                    reference.knn_search(q, k),
                    tol=1e-7,
                    label=f"{method}/qmap knn k={k}",
                )

    def test_range_both_models(self, method, workload, reference) -> None:
        qfd_index = QFDModel(workload.matrix).build_index(
            method, workload.database, **METHOD_KWARGS[method]
        )
        qmap_index = QMapModel(workload.matrix).build_index(
            method, workload.database, **METHOD_KWARGS[method]
        )
        for q in workload.queries[:2]:
            # Radii chosen from the actual distance distribution so each
            # selectivity regime (empty, sparse, dense) is exercised; taken
            # as midpoints between consecutive neighbor distances so no
            # object sits exactly on the query ball boundary (where the
            # two models could disagree by one float ulp).
            nn = reference.knn_search(q, 50)
            radii = [
                0.0,
                (nn[0].distance + nn[1].distance) / 2.0,
                (nn[10].distance + nn[11].distance) / 2.0,
                (nn[-2].distance + nn[-1].distance) / 2.0,
            ]
            for radius in radii:
                truth = reference.range_search(q, radius)
                assert_same_neighbors(
                    qfd_index.range_search(q, radius),
                    truth,
                    label=f"{method}/qfd range r={radius:.4f}",
                )
                assert_same_neighbors(
                    qmap_index.range_search(q, radius),
                    truth,
                    tol=1e-7,
                    label=f"{method}/qmap range r={radius:.4f}",
                )


@pytest.mark.parametrize("method", sorted(SAM_REGISTRY))
class TestSAMExactness:
    """SAMs run in the QMap model only (Section 2.1 / 2.4)."""

    def test_knn(self, method, workload, reference) -> None:
        index = QMapModel(workload.matrix).build_index(
            method, workload.database, **METHOD_KWARGS[method]
        )
        for q in workload.queries:
            for k in (1, 5, 17):
                assert_same_neighbors(
                    index.knn_search(q, k),
                    reference.knn_search(q, k),
                    tol=1e-7,
                    label=f"{method} knn k={k}",
                )

    def test_range(self, method, workload, reference) -> None:
        index = QMapModel(workload.matrix).build_index(
            method, workload.database, **METHOD_KWARGS[method]
        )
        for q in workload.queries[:2]:
            nn = reference.knn_search(q, 30)
            radii = (
                0.0,
                (nn[5].distance + nn[6].distance) / 2.0,
                (nn[-2].distance + nn[-1].distance) / 2.0,
            )
            for radius in radii:
                assert_same_neighbors(
                    index.range_search(q, radius),
                    reference.range_search(q, radius),
                    tol=1e-7,
                    label=f"{method} range r={radius:.4f}",
                )


class TestDuplicateObjects:
    """Databases with exact duplicates must not confuse any index."""

    @pytest.mark.parametrize("method", sorted(MAM_REGISTRY))
    def test_duplicates(self, method, workload) -> None:
        dup = np.vstack([workload.database[:40], workload.database[:10]])
        model = QMapModel(workload.matrix)
        index = model.build_index(method, dup, **METHOD_KWARGS[method])
        scan = model.build_index("sequential", dup)
        q = workload.queries[0]
        assert_same_neighbors(
            index.knn_search(q, 8), scan.knn_search(q, 8), label=f"{method} dup"
        )

    def test_query_equal_to_database_object(self, workload) -> None:
        model = QMapModel(workload.matrix)
        index = model.build_index("mtree", workload.database, capacity=8)
        q = workload.database[17]
        top = index.knn_search(q, 1)[0]
        assert top.index == 17 or top.distance == pytest.approx(0.0, abs=1e-9)


TREE_METHODS = ("mtree", "paged-mtree", "vptree", "gnat", "sat", "mindex")


class TestSelfQueryExactness:
    """Regression: querying with a database object must find that object.

    Stored pruning bounds (covering radii, parent distances, vantage
    medians, GNAT ranges) are frequently *exactly tight* — defined by some
    member's build-time distance — while the batched Gram kernels agree
    with the build arithmetic only to the last few ulps.  Without the
    ulp-scale pruning slack in :mod:`repro.mam.base`, a radius-0
    self-query gets the subtree holding its own zero-distance match
    pruned.  Exercised under QFD, where kernel query contexts guarantee an
    exact 0.0 for identical vectors.
    """

    @pytest.mark.parametrize("probe", (0, 17, 349))
    @pytest.mark.parametrize("method", TREE_METHODS)
    def test_qfd_self_query_is_exact(self, method, probe, workload) -> None:
        index = QFDModel(workload.matrix).build_index(
            method, workload.database, **METHOD_KWARGS[method]
        )
        q = workload.database[probe]
        hits = index.range_search(q, 0.0)
        assert any(n.index == probe and n.distance == 0.0 for n in hits), (
            f"{method}: radius-0 self-query missed object {probe}: {hits}"
        )
        top = index.knn_search(q, 1)[0]
        assert top.index == probe and top.distance == 0.0

    @pytest.mark.parametrize("method", TREE_METHODS)
    def test_qmap_self_query_is_top_hit(self, method, workload) -> None:
        # QMap maps the query through a separate matrix-vector product, so
        # the mapped query differs from the stored mapped row in the last
        # ulp and the self-distance is ~1e-16, not an exact 0 (true of the
        # scalar path too): require the kNN hit rather than range-0
        # membership.
        index = QMapModel(workload.matrix).build_index(
            method, workload.database, **METHOD_KWARGS[method]
        )
        q = workload.database[17]
        top = index.knn_search(q, 1)[0]
        assert top.index == 17 and top.distance < 1e-12
