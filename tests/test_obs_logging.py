"""Structured JSON-lines logger: records, correlation, and null fast path.

Contract of :mod:`repro.obs.logging`:

* one JSON object per line, sorted keys, ``ts``/``event`` always present;
* ``trace_id``/``span_id`` auto-stamped from the active trace context and
  open span — this is what correlates log lines with timeline slices;
* the process-wide default is :data:`NULL_LOGGER` and ``log_event``
  through it is a no-op, so unlogged runs pay one attribute check.
"""

from __future__ import annotations

import io
import json
import threading

from repro.obs import (
    NULL_LOGGER,
    JsonLinesLogger,
    MetricsRegistry,
    NullLogger,
    get_logger,
    log_event,
    set_logger,
    span,
    trace_scope,
    use_logger,
    use_registry,
)


def _lines(stream: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestJsonLinesLogger:
    def test_writes_one_json_object_per_line(self) -> None:
        stream = io.StringIO()
        logger = JsonLinesLogger(stream)
        logger.log("query", model="qmap", k=3)
        logger.log("batch", queries=8)
        first, second = _lines(stream)
        assert first["event"] == "query" and first["model"] == "qmap"
        assert second["event"] == "batch" and second["queries"] == 8
        assert "ts" in first and "ts" in second
        assert logger.records_written == 2

    def test_keys_are_sorted(self) -> None:
        stream = io.StringIO()
        JsonLinesLogger(stream).log("query", zebra=1, alpha=2)
        (line,) = stream.getvalue().splitlines()
        assert line.index('"alpha"') < line.index('"zebra"')

    def test_none_fields_are_dropped(self) -> None:
        stream = io.StringIO()
        JsonLinesLogger(stream).log("build", transforms=None, seconds=1.5)
        (record,) = _lines(stream)
        assert "transforms" not in record
        assert record["seconds"] == 1.5

    def test_non_json_values_fall_back_to_str(self) -> None:
        stream = io.StringIO()
        JsonLinesLogger(stream).log("event", where=Exception("boom"))
        (record,) = _lines(stream)
        assert record["where"] == "boom"

    def test_path_target_appends(self, tmp_path) -> None:
        out = tmp_path / "run.jsonl"
        logger = JsonLinesLogger(out)
        logger.log("query", k=1)
        logger.log("query", k=2)
        logger.close()
        logger.close()  # idempotent
        records = [json.loads(line) for line in out.read_text().splitlines()]
        assert [r["k"] for r in records] == [1, 2]

    def test_concurrent_writes_stay_line_atomic(self, tmp_path) -> None:
        out = tmp_path / "threads.jsonl"
        logger = JsonLinesLogger(out)

        def write(worker: int) -> None:
            for i in range(25):
                logger.log("tick", worker=worker, i=i)

        threads = [threading.Thread(target=write, args=(w,)) for w in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        logger.close()
        records = [json.loads(line) for line in out.read_text().splitlines()]
        assert len(records) == 100
        assert logger.records_written == 100


class TestCorrelation:
    def test_trace_and_span_ids_stamped(self) -> None:
        stream = io.StringIO()
        logger = JsonLinesLogger(stream)
        reg = MetricsRegistry()
        with use_registry(reg), trace_scope() as ctx:
            with span("query/batch/knn"):
                logger.log("query", k=3)
        (record,) = _lines(stream)
        assert record["trace_id"] == ctx.trace_id
        (span_record,) = reg.spans
        assert record["span_id"] == span_record.span_id

    def test_no_context_means_no_ids(self) -> None:
        stream = io.StringIO()
        JsonLinesLogger(stream).log("query", k=3)
        (record,) = _lines(stream)
        assert "trace_id" not in record and "span_id" not in record

    def test_explicit_ids_win_over_ambient(self) -> None:
        stream = io.StringIO()
        logger = JsonLinesLogger(stream)
        with trace_scope():
            logger.log("query", trace_id="feedface")
        (record,) = _lines(stream)
        assert record["trace_id"] == "feedface"


class TestProcessDefault:
    def test_default_is_the_null_logger(self) -> None:
        logger = get_logger()
        assert isinstance(logger, NullLogger)
        assert not logger.enabled

    def test_log_event_through_null_is_a_no_op(self) -> None:
        # Must not raise, allocate a record, or require a target.
        log_event("query", model="qfd", k=3)
        assert NULL_LOGGER.records_written == 0

    def test_set_logger_returns_previous(self) -> None:
        stream = io.StringIO()
        mine = JsonLinesLogger(stream)
        previous = set_logger(mine)
        try:
            assert get_logger() is mine
            log_event("query", k=1)
        finally:
            assert set_logger(previous) is mine
        assert len(_lines(stream)) == 1
        assert isinstance(get_logger(), NullLogger)

    def test_use_logger_restores_on_exit(self) -> None:
        stream = io.StringIO()
        with use_logger(JsonLinesLogger(stream)) as logger:
            assert get_logger() is logger
            log_event("build", method="mtree")
        assert isinstance(get_logger(), NullLogger)
        (record,) = _lines(stream)
        assert record["event"] == "build"

    def test_use_logger_restores_after_error(self) -> None:
        try:
            with use_logger(JsonLinesLogger(io.StringIO())):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert isinstance(get_logger(), NullLogger)
