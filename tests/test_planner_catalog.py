"""Catalog discovery over real snapshots: probing, scanning, `index ls`.

Pinned invariants:

1. ``probe_snapshot`` reads exactly what ``BuiltIndex.save`` wrote —
   method, shape, model marker, pivot layout — without deserializing the
   index (and rejects anything that is not a snapshot);
2. ``IndexCatalog.scan`` turns every readable snapshot into an entry and
   every unreadable ``.npz`` into a *warning* — nothing is silently
   skipped;
3. ``repro index ls`` surfaces both: the table on stdout, the warnings
   on stderr.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.datasets import histogram_workload
from repro.exceptions import StorageError
from repro.models import QFDModel, QMapModel
from repro.persistence import probe_snapshot
from repro.planner import CatalogEntry, IndexCatalog


@pytest.fixture(scope="module")
def workload():
    return histogram_workload(120, 4, bins_per_channel=4, seed=5)


@pytest.fixture(scope="module")
def snapshot_dir(tmp_path_factory, workload):
    """Two restorable snapshots plus two unreadable ``.npz`` files."""
    root = tmp_path_factory.mktemp("catalog")
    QMapModel(workload.matrix).build_index(
        "pivot-table", workload.database, n_pivots=8, bound="best"
    ).save(str(root / "pivot.npz"))
    QFDModel(workload.matrix).build_index("mtree", workload.database, capacity=16).save(
        str(root / "mtree.npz")
    )
    (root / "garbage.npz").write_bytes(b"not a zip archive")
    np.savez(root / "foreign.npz", rows=np.zeros((3, 3)))  # no snapshot markers
    return root


class TestProbeSnapshot:
    def test_probe_matches_save(self, snapshot_dir, workload) -> None:
        probe = probe_snapshot(snapshot_dir / "pivot.npz")
        assert probe.method == "pivot-table"
        assert (probe.size, probe.dim) == workload.database.shape
        assert probe.meta["model"] == "qmap"
        assert probe.state_scalars["bound"] == "best"
        assert probe.state_shapes["pivot_indices"] == (8,)
        # Header-only: the archived matrix is reported by shape, not value.
        assert probe.meta_shapes["matrix"] == workload.matrix.shape

    def test_probe_rejects_non_snapshots(self, snapshot_dir) -> None:
        with pytest.raises(StorageError):
            probe_snapshot(snapshot_dir / "garbage.npz")
        with pytest.raises(StorageError):
            probe_snapshot(snapshot_dir / "foreign.npz")
        with pytest.raises(StorageError):
            probe_snapshot(snapshot_dir / "missing.npz")


class TestCatalogScan:
    def test_entries_and_warnings(self, snapshot_dir, workload) -> None:
        catalog = IndexCatalog.scan(snapshot_dir)
        assert len(catalog) == 2
        by_method = {entry.method: entry for entry in catalog}
        pivot = by_method["pivot-table"]
        assert pivot.model == "qmap" and pivot.bound == "best"
        assert pivot.n_pivots == 8 and pivot.store == "heap"
        assert pivot.label == "pivot-table+best,qmap"
        mtree = by_method["mtree"]
        assert mtree.model == "qfd" and mtree.bound is None
        assert mtree.label == "mtree,qfd"
        assert (mtree.size, mtree.dim) == workload.database.shape
        assert mtree.build_distance_computations > 0
        # Both unreadable files surfaced, each exactly once per file.
        assert len(catalog.warnings) == 2
        assert any("garbage.npz" in w for w in catalog.warnings)
        assert any("foreign.npz" in w for w in catalog.warnings)
        for warning in catalog.warnings:
            name = next(n for n in ("garbage.npz", "foreign.npz") if n in warning)
            assert warning.count(name) == 1, warning  # no stuttered paths

    def test_missing_directory_raises(self, tmp_path) -> None:
        with pytest.raises(StorageError):
            IndexCatalog.scan(tmp_path / "nope")

    def test_compatible_filters_dim_and_model(self, snapshot_dir) -> None:
        catalog = IndexCatalog.scan(snapshot_dir)
        assert len(catalog.compatible(64)) == 2
        assert [e.method for e in catalog.compatible(64, model="qfd")] == ["mtree"]
        assert catalog.compatible(512) == []

    def test_workload_recipe_roundtrips_from_cli_saves(
        self, tmp_path, capsys
    ) -> None:
        assert (
            main(
                [
                    "index", "save", "--method", "pivot-table",
                    "--size", "80", "--queries", "4", "--seed", "3",
                    "--out", str(tmp_path / "snap"),
                ]
            )
            == 0
        )
        capsys.readouterr()
        entry = IndexCatalog.scan(tmp_path).entries[0]
        assert entry.workload == {"size": 80, "bins": 4, "queries": 4, "seed": 3}


class TestIndexLsCommand:
    def test_ls_lists_and_warns(self, snapshot_dir, capsys) -> None:
        assert main(["index", "ls", str(snapshot_dir)]) == 0
        captured = capsys.readouterr()
        assert "2 snapshot(s)" in captured.out
        assert "pivot.npz" in captured.out and "mtree.npz" in captured.out
        assert "best" in captured.out  # the bound column
        assert "warning" in captured.err
        assert "garbage.npz" in captured.err and "foreign.npz" in captured.err

    def test_ls_missing_directory_fails(self, tmp_path, capsys) -> None:
        assert main(["index", "ls", str(tmp_path / "nope")]) != 0


def test_catalog_entry_label_hides_triangle_bound() -> None:
    entry = CatalogEntry(
        path="x.npz", method="pivot-table", model="qfd", bound="triangle",
        size=10, dim=4, dtype="float64", format_version=1, method_version=1,
        n_pivots=4, build_distance_computations=0, build_transforms=0,
        build_seconds=0.0,
    )
    assert entry.label == "pivot-table,qfd"
