"""Tests for repro.analysis — distance distributions and intrinsic dim."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    analyze_distances,
    intrinsic_dimensionality,
    sample_distances,
)
from repro.core import QMap
from repro.distances import euclidean
from repro.exceptions import QueryError


class TestSampleDistances:
    def test_shape_and_positivity(self, histograms_64) -> None:
        out = sample_distances(histograms_64[:100], euclidean, n_pairs=500)
        assert out.shape == (500,)
        assert np.all(out >= 0.0)

    def test_distinct_pairs_only(self) -> None:
        """With all-identical data every sampled distance is zero, but the
        sampler must still pick distinct *indices* (never d(o, o) slots)."""
        data = np.tile([1.0, 2.0], (10, 1))
        out = sample_distances(data, euclidean, n_pairs=100)
        assert np.all(out == 0.0)

    def test_deterministic_given_rng(self, histograms_64) -> None:
        a = sample_distances(histograms_64[:50], euclidean, rng=np.random.default_rng(1))
        b = sample_distances(histograms_64[:50], euclidean, rng=np.random.default_rng(1))
        assert np.array_equal(a, b)

    def test_rejects_tiny_input(self) -> None:
        with pytest.raises(QueryError):
            sample_distances(np.ones((1, 3)), euclidean)
        with pytest.raises(QueryError):
            sample_distances(np.ones((5, 3)), euclidean, n_pairs=0)


class TestIntrinsicDimensionality:
    def test_known_value(self) -> None:
        # mu = 2, var = 1 -> rho = 4 / 2 = 2.
        distances = np.array([1.0, 3.0, 1.0, 3.0])
        assert intrinsic_dimensionality(distances) == pytest.approx(2.0)

    def test_concentrated_space_has_high_rho(self, rng) -> None:
        tight = rng.normal(10.0, 0.01, 1000)
        loose = rng.normal(10.0, 3.0, 1000)
        assert intrinsic_dimensionality(tight) > intrinsic_dimensionality(loose)

    def test_uniform_hypercube_grows_with_dim(self, rng) -> None:
        """Classic sanity check: L2 on uniform [0,1]^d concentrates as d
        grows, so rho must increase."""
        rhos = []
        for dim in (2, 8, 32):
            data = rng.random((300, dim))
            rhos.append(intrinsic_dimensionality(sample_distances(data, euclidean)))
        assert rhos[0] < rhos[1] < rhos[2]

    def test_degenerate_zero_variance(self) -> None:
        assert intrinsic_dimensionality([2.0, 2.0, 2.0]) == float("inf")
        assert intrinsic_dimensionality([0.0, 0.0]) == 0.0

    def test_rejects_single_value(self) -> None:
        with pytest.raises(QueryError):
            intrinsic_dimensionality([1.0])


class TestQMapPreservesDistribution:
    """The formal core of paper Section 4's 'same number of distance
    computations' claim: identical distances => identical distribution =>
    identical intrinsic dimensionality."""

    def test_identical_idim(self, qfd_64, histograms_64) -> None:
        qmap = QMap(qfd_64)
        data = histograms_64[:200]
        mapped = qmap.transform_batch(data)
        rng_a, rng_b = np.random.default_rng(3), np.random.default_rng(3)
        d_qfd = sample_distances(data, qfd_64, n_pairs=800, rng=rng_a)
        d_l2 = sample_distances(mapped, euclidean, n_pairs=800, rng=rng_b)
        assert np.allclose(d_qfd, d_l2, atol=1e-9)
        assert intrinsic_dimensionality(d_qfd) == pytest.approx(
            intrinsic_dimensionality(d_l2), rel=1e-9
        )

    def test_qfd_vs_plain_l2_differ(self, qfd_64, histograms_64) -> None:
        """Correlating bins genuinely changes the geometry: the QFD space
        and the naive-L2-on-histograms space have different intrinsic
        dimensionalities (it is NOT the identity transform)."""
        data = histograms_64[:200]
        rng_a, rng_b = np.random.default_rng(3), np.random.default_rng(3)
        rho_qfd = intrinsic_dimensionality(
            sample_distances(data, qfd_64, n_pairs=800, rng=rng_a)
        )
        rho_l2 = intrinsic_dimensionality(
            sample_distances(data, euclidean, n_pairs=800, rng=rng_b)
        )
        assert abs(rho_qfd - rho_l2) / rho_l2 > 0.05


class TestAnalyzeDistances:
    def test_summary_fields(self, rng) -> None:
        distances = rng.random(500) + 0.5
        summary = analyze_distances(distances, bins=16)
        assert summary.minimum <= summary.mean <= summary.maximum
        assert summary.histogram.sum() == 500
        assert summary.bin_edges.shape == (17,)
        assert summary.concentration() == pytest.approx(summary.std / summary.mean)

    def test_rejects_bad_bins(self, rng) -> None:
        with pytest.raises(QueryError):
            analyze_distances(rng.random(10), bins=0)
