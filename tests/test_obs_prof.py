"""Sampling-profiler tests: attribution, formats, and inertness.

The profiler must (1) attribute samples to the sampled thread's open
span, (2) export valid collapsed-stack text and speedscope JSON, and
(3) stay perfectly inert unless started — nothing here may ever move a
distance counter.
"""

from __future__ import annotations

import json
import sys
import threading
import time

import pytest

from repro.obs import (
    PROFILE_SAMPLES,
    MetricsRegistry,
    SamplingProfiler,
    profile_to,
    span,
    use_registry,
)


def _own_frame():
    return sys._current_frames()[threading.get_ident()]


class TestSampling:
    def test_sample_once_records_this_thread(self) -> None:
        profiler = SamplingProfiler(hz=10)
        ident = threading.get_ident()
        recorded = profiler.sample_once({ident: _own_frame()})
        assert recorded == 1
        assert profiler.sample_count == 1
        (stack,) = profiler.stacks()
        # root-first: thread name, phase, outermost frame ... innermost.
        assert stack[0] == threading.current_thread().name
        assert stack[1] == "(no span)"
        assert any("test_obs_prof" in frame for frame in stack[2:])

    def test_samples_attributed_to_open_span(self) -> None:
        profiler = SamplingProfiler(hz=10)
        reg = MetricsRegistry()
        ident = threading.get_ident()
        with use_registry(reg), span("query/batch/knn"):
            profiler.sample_once({ident: _own_frame()})
        assert profiler.phase_counts() == {"query/batch/knn": 1}

    def test_identical_stacks_aggregate(self) -> None:
        profiler = SamplingProfiler(hz=10)
        ident = threading.get_ident()
        frame = _own_frame()
        for _ in range(5):
            profiler.sample_once({ident: frame})
        assert profiler.sample_count == 5
        assert len(profiler.stacks()) == 1

    def test_max_depth_caps_the_stack(self) -> None:
        profiler = SamplingProfiler(hz=10, max_depth=2)
        ident = threading.get_ident()
        profiler.sample_once({ident: _own_frame()})
        (stack,) = profiler.stacks()
        assert len(stack) == 2 + 2  # thread name + phase + 2 frames

    def test_live_thread_sampling(self) -> None:
        with SamplingProfiler(hz=500) as profiler:
            deadline = time.perf_counter() + 1.0
            while profiler.sample_count == 0 and time.perf_counter() < deadline:
                time.sleep(0.01)
        assert profiler.sample_count > 0
        assert not profiler.running

    def test_bad_parameters_rejected(self) -> None:
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0)
        with pytest.raises(ValueError):
            SamplingProfiler(hz=10, max_depth=0)


class TestExports:
    def _sampled(self) -> SamplingProfiler:
        profiler = SamplingProfiler(hz=100)
        ident = threading.get_ident()
        frame = _own_frame()
        for _ in range(3):
            profiler.sample_once({ident: frame})
        return profiler

    def test_collapsed_format(self) -> None:
        text = self._sampled().collapsed()
        assert text.endswith("\n")
        (line,) = text.strip().splitlines()
        stack, count = line.rsplit(" ", 1)
        assert count == "3"
        assert ";" in stack

    def test_collapsed_empty_profile(self) -> None:
        assert SamplingProfiler(hz=10).collapsed() == ""

    def test_speedscope_document(self) -> None:
        profiler = self._sampled()
        doc = profiler.speedscope(name="unit test")
        assert doc["$schema"] == "https://www.speedscope.app/file-format-schema.json"
        (profile,) = doc["profiles"]
        assert profile["type"] == "sampled"
        assert len(profile["samples"]) == len(profile["weights"]) == 1
        # Weights are seconds: count * configured interval.
        assert profile["weights"][0] == pytest.approx(3 * profiler.interval)
        n_frames = len(doc["shared"]["frames"])
        assert all(i < n_frames for i in profile["samples"][0])
        json.dumps(doc)  # must be serializable as-is

    def test_write_picks_format_by_extension(self, tmp_path) -> None:
        profiler = self._sampled()
        txt = profiler.write(tmp_path / "profile.txt")
        scope = profiler.write(tmp_path / "profile.json")
        assert txt.read_text().strip().endswith(" 3")
        loaded = json.loads(scope.read_text())
        assert loaded["profiles"][0]["type"] == "sampled"

    def test_record_to_mirrors_phase_counts(self) -> None:
        reg = MetricsRegistry()
        profiler = SamplingProfiler(hz=10)
        ident = threading.get_ident()
        with use_registry(reg), span("build/mtree"):
            profiler.sample_once({ident: _own_frame()})
        profiler.sample_once({ident: _own_frame()})  # outside any span
        profiler.record_to(reg)
        counter = reg.counter(PROFILE_SAMPLES)
        assert counter.value(span="build/mtree") == 1
        assert counter.value(span="(no span)") == 1

    def test_profile_to_writes_and_records(self, tmp_path) -> None:
        reg = MetricsRegistry()
        out = tmp_path / "run.json"
        with use_registry(reg), profile_to(out, hz=500) as profiler:
            deadline = time.perf_counter() + 1.0
            while profiler.sample_count == 0 and time.perf_counter() < deadline:
                time.sleep(0.01)
        doc = json.loads(out.read_text())
        assert doc["profiles"][0]["samples"]
        total = sum(s.value for s in reg.counter(PROFILE_SAMPLES).samples())
        assert total > 0


class TestInertness:
    def test_not_started_means_no_thread(self) -> None:
        profiler = SamplingProfiler(hz=10)
        assert not profiler.running
        assert profiler.sample_count == 0
        profiler.stop()  # stop before start is a harmless no-op

    def test_profiling_never_perturbs_distance_counts(self) -> None:
        import numpy as np

        from repro.core import random_spd_matrix
        from repro.models import QMapModel

        rng = np.random.default_rng(17)
        matrix = random_spd_matrix(6, rng=rng, condition=6.0)
        data = rng.uniform(0.0, 1.0, size=(60, 6))
        queries = rng.uniform(0.0, 1.0, size=(4, 6))

        def run(profiled: bool):
            built = QMapModel(matrix).build_index("mtree", data, capacity=8)
            built.reset_query_costs()
            if profiled:
                with SamplingProfiler(hz=1000):
                    answers = [built.knn_search(q, 3) for q in queries]
            else:
                answers = [built.knn_search(q, 3) for q in queries]
            return (
                built.query_costs().distance_computations,
                [[(n.index, n.distance) for n in a] for a in answers],
            )

        assert run(False) == run(True)
