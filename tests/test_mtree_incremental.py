"""Tests for MTree.nearest_iter — incremental nearest-neighbor search."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.datasets import clustered_histograms
from repro.distances import CountingDistance, euclidean, euclidean_one_to_many
from repro.mam import MTree, SequentialFile


@pytest.fixture(scope="module")
def data():
    return clustered_histograms(350, 4, themes=7, rng=np.random.default_rng(121))


@pytest.fixture(scope="module")
def tree(data):
    return MTree(data, euclidean, capacity=8)


@pytest.fixture(scope="module")
def scan(data):
    return SequentialFile(data, euclidean)


class TestNearestIter:
    def test_yields_in_distance_order(self, data, tree) -> None:
        q = data[0]
        distances = [n.distance for n in itertools.islice(tree.nearest_iter(q), 50)]
        assert distances == sorted(distances)

    def test_prefix_equals_knn(self, data, tree, scan) -> None:
        q = data[5]
        first_15 = list(itertools.islice(tree.nearest_iter(q), 15))
        expected = scan.knn_search(q, 15)
        assert [n.index for n in first_15] == [n.index for n in expected]

    def test_exhausts_whole_database(self, data, tree) -> None:
        q = data[9]
        everything = list(tree.nearest_iter(q))
        assert len(everything) == len(data)
        assert sorted(n.index for n in everything) == list(range(len(data)))

    def test_lazy_cost(self, data) -> None:
        """Consuming only the first neighbor must cost far fewer distance
        evaluations than exhausting the iterator."""
        counter = CountingDistance(euclidean, one_to_many=euclidean_one_to_many)
        lazy_tree = MTree(data, counter, capacity=8)
        counter.reset()
        next(iter(lazy_tree.nearest_iter(data[0])))
        first_cost = counter.count
        counter.reset()
        list(lazy_tree.nearest_iter(data[0]))
        full_cost = counter.count
        assert first_cost < full_cost / 3

    def test_cost_comparable_to_knn(self, data) -> None:
        counter = CountingDistance(euclidean, one_to_many=euclidean_one_to_many)
        lazy_tree = MTree(data, counter, capacity=8)
        counter.reset()
        lazy_tree.knn_search(data[1], 10)
        knn_cost = counter.count
        counter.reset()
        list(itertools.islice(lazy_tree.nearest_iter(data[1]), 10))
        inc_cost = counter.count
        # The incremental scheme may differ by a small constant, not blow up.
        assert inc_cost <= knn_cost * 2

    def test_works_on_bulk_loaded_tree(self, data, scan) -> None:
        bulk = MTree(data, euclidean, capacity=8, bulk_load=True)
        q = data[3]
        got = list(itertools.islice(bulk.nearest_iter(q), 8))
        expected = scan.knn_search(q, 8)
        assert [n.index for n in got] == [n.index for n in expected]

    def test_single_object_tree(self) -> None:
        tree = MTree(np.ones((1, 3)), euclidean)
        out = list(tree.nearest_iter(np.zeros(3)))
        assert len(out) == 1 and out[0].index == 0
