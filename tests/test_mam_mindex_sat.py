"""Tests for repro.mam.mindex and repro.mam.sat."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import clustered_histograms
from repro.distances import CountingDistance, euclidean, euclidean_one_to_many
from repro.exceptions import QueryError
from repro.mam import MIndex, SATree, SequentialFile

from .helpers import assert_same_neighbors


@pytest.fixture(scope="module")
def data():
    return clustered_histograms(400, 4, themes=8, rng=np.random.default_rng(101))


@pytest.fixture(scope="module")
def scan(data):
    return SequentialFile(data, euclidean)


class TestMIndex:
    def test_exact_knn(self, data, scan) -> None:
        index = MIndex(data, euclidean, n_pivots=12)
        for q in data[:4]:
            assert_same_neighbors(index.knn_search(q, 9), scan.knn_search(q, 9))

    def test_exact_range(self, data, scan) -> None:
        index = MIndex(data, euclidean, n_pivots=12)
        q = data[123]
        nn = scan.knn_search(q, 25)
        for radius in (0.0, (nn[5].distance + nn[6].distance) / 2.0, nn[-1].distance * 1.01):
            assert_same_neighbors(index.range_search(q, radius), scan.range_search(q, radius))

    def test_clusters_partition_database(self, data) -> None:
        index = MIndex(data, euclidean, n_pivots=10)
        assert sum(index.cluster_sizes()) == len(data)
        assert len(index.cluster_sizes()) == index.n_pivots

    def test_cluster_keys_sorted(self, data) -> None:
        index = MIndex(data, euclidean, n_pivots=10)
        for keys in index._cluster_keys:
            assert np.all(np.diff(keys) >= 0.0)

    def test_prunes_on_clustered_data(self, data) -> None:
        counter = CountingDistance(euclidean, one_to_many=euclidean_one_to_many)
        index = MIndex(data, counter, n_pivots=16)
        counter.reset()
        index.knn_search(data[0], 5)
        assert counter.count < 0.7 * len(data)

    def test_insert(self, data, scan) -> None:
        index = MIndex(data[:300], euclidean, n_pivots=10)
        for row in data[300:350]:
            index.insert(row)
        partial_scan = SequentialFile(data[:350], euclidean)
        q = data[360]
        assert_same_neighbors(index.knn_search(q, 7), partial_scan.knn_search(q, 7))

    def test_insert_keeps_keys_sorted(self, data) -> None:
        index = MIndex(data[:100], euclidean, n_pivots=6)
        for row in data[100:140]:
            index.insert(row)
        for keys in index._cluster_keys:
            assert np.all(np.diff(keys) >= 0.0)

    def test_rejects_bad_growth(self, data) -> None:
        with pytest.raises(QueryError):
            MIndex(data, euclidean, growth=1.0)

    def test_pivot_count_clamped(self) -> None:
        small = clustered_histograms(5, 2, rng=np.random.default_rng(2))
        index = MIndex(small, euclidean, n_pivots=50)
        assert index.n_pivots == 5

    def test_knn_more_than_size(self, data) -> None:
        index = MIndex(data[:10], euclidean, n_pivots=3)
        assert len(index.knn_search(data[0], 99)) == 10

    def test_query_far_outside_database(self, data, scan) -> None:
        """The iterative radius growth must converge even when the query
        is nowhere near the data."""
        index = MIndex(data, euclidean, n_pivots=8)
        q = np.full(data.shape[1], 5.0)
        assert_same_neighbors(index.knn_search(q, 3), scan.knn_search(q, 3))


class TestSATree:
    def test_exact_knn(self, data, scan) -> None:
        tree = SATree(data, euclidean)
        for q in data[:4]:
            assert_same_neighbors(tree.knn_search(q, 9), scan.knn_search(q, 9))

    def test_exact_range(self, data, scan) -> None:
        tree = SATree(data, euclidean)
        q = data[55]
        nn = scan.knn_search(q, 25)
        for radius in (0.0, (nn[5].distance + nn[6].distance) / 2.0, nn[-1].distance * 1.01):
            assert_same_neighbors(tree.range_search(q, radius), scan.range_search(q, radius))

    def test_prunes_on_clustered_data(self, data) -> None:
        counter = CountingDistance(euclidean, one_to_many=euclidean_one_to_many)
        tree = SATree(data, counter)
        counter.reset()
        tree.knn_search(data[0], 5)
        assert counter.count < 0.9 * len(data)

    def test_single_object(self) -> None:
        tree = SATree(np.ones((1, 3)), euclidean)
        assert tree.knn_search(np.zeros(3), 1)[0].index == 0

    def test_all_identical(self) -> None:
        same = np.tile(np.full(3, 0.5), (25, 1))
        tree = SATree(same, euclidean)
        assert len(tree.knn_search(same[0], 7)) == 7

    def test_insert_disables_hyperplane_but_stays_exact(self, data) -> None:
        tree = SATree(data[:300], euclidean)
        assert tree._hyperplane_ok
        for row in data[300:340]:
            tree.insert(row)
        assert not tree._hyperplane_ok
        partial_scan = SequentialFile(data[:340], euclidean)
        for q in data[350:353]:
            assert_same_neighbors(tree.knn_search(q, 8), partial_scan.knn_search(q, 8))

    def test_height(self, data) -> None:
        tree = SATree(data, euclidean)
        assert 2 <= tree.height() <= len(data)

    def test_deterministic_given_rng(self, data) -> None:
        t1 = SATree(data[:100], euclidean, rng=np.random.default_rng(4))
        t2 = SATree(data[:100], euclidean, rng=np.random.default_rng(4))
        q = data[200]
        assert t1.knn_search(q, 6) == t2.knn_search(q, 6)
