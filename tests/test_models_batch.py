"""Tests for the batch query API on BuiltIndex."""

from __future__ import annotations

import pytest

from repro.datasets import histogram_workload
from repro.models import QFDModel, QMapModel

from .helpers import assert_same_neighbors


@pytest.fixture(scope="module")
def workload():
    return histogram_workload(200, 6, bins_per_channel=4, seed=41)


class TestBatchQueries:
    def test_knn_batch_matches_singles(self, workload) -> None:
        index = QMapModel(workload.matrix).build_index("mtree", workload.database, capacity=8)
        batch = index.knn_search_batch(workload.queries, k=5)
        assert len(batch) == workload.queries.shape[0]
        for q, result in zip(workload.queries, batch):
            assert_same_neighbors(result, index.knn_search(q, 5), tol=1e-9)

    def test_range_batch_matches_singles(self, workload) -> None:
        index = QMapModel(workload.matrix).build_index("sequential", workload.database)
        batch = index.range_search_batch(workload.queries, radius=0.1)
        for q, result in zip(workload.queries, batch):
            assert_same_neighbors(result, index.range_search(q, 0.1), tol=1e-9)

    def test_batch_transform_counted_once_per_query(self, workload) -> None:
        index = QMapModel(workload.matrix).build_index("sequential", workload.database)
        index.reset_query_costs()
        index.knn_search_batch(workload.queries, k=1)
        assert index.query_costs().transforms == workload.queries.shape[0]

    def test_qfd_model_batch_needs_no_transform(self, workload) -> None:
        index = QFDModel(workload.matrix).build_index("sequential", workload.database)
        index.reset_query_costs()
        index.knn_search_batch(workload.queries, k=1)
        assert index.query_costs().transforms == 0

    def test_single_query_promoted(self, workload) -> None:
        index = QMapModel(workload.matrix).build_index("sequential", workload.database)
        batch = index.knn_search_batch(workload.queries[0], k=3)
        assert len(batch) == 1
        assert_same_neighbors(batch[0], index.knn_search(workload.queries[0], 3), tol=1e-9)

    def test_both_models_agree_on_batches(self, workload) -> None:
        i1 = QFDModel(workload.matrix).build_index("pivot-table", workload.database, n_pivots=8)
        i2 = QMapModel(workload.matrix).build_index("pivot-table", workload.database, n_pivots=8)
        b1 = i1.knn_search_batch(workload.queries, k=4)
        b2 = i2.knn_search_batch(workload.queries, k=4)
        for r1, r2 in zip(b1, b2):
            assert_same_neighbors(r1, r2, tol=1e-7)
