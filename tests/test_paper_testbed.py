"""End-to-end test at the paper's exact feature configuration.

Section 5.1 verbatim: 512-dimensional RGB histograms (8 bins per channel),
unit-normalized, QFD matrix ``A_ij = 1 - d_ij/d_max`` over CIE Lab bin
prototypes.  Only the corpus (synthetic) and the database size are scaled
down; every algorithmic component runs exactly as in the paper.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.color import lab_bin_prototypes
from repro.core import QMap, QuadraticFormDistance, prototype_similarity_matrix
from repro.datasets import histogram_workload
from repro.models import QFDModel, QMapModel

from .helpers import assert_same_neighbors


@pytest.fixture(scope="module")
def paper_workload():
    return histogram_workload(150, 3, bins_per_channel=8, seed=512)


class TestPaperConfiguration:
    def test_dimensionality(self, paper_workload) -> None:
        assert paper_workload.dim == 512
        assert np.allclose(paper_workload.database.sum(axis=1), 1.0)

    def test_matrix_construction_matches_section_5_1(self) -> None:
        repair = prototype_similarity_matrix(lab_bin_prototypes(8))
        a = repair.matrix
        assert a.shape == (512, 512)
        assert np.allclose(np.diag(a), 1.0)  # d_ii = 0 -> A_ii = 1
        # The farthest prototype pair has similarity exactly 0.
        off = a[~np.eye(512, dtype=bool)]
        assert off.min() == pytest.approx(0.0, abs=1e-12)
        # Strictly PD without any repair shift (measured property).
        assert repair.shift == 0.0
        assert repair.min_eigenvalue > 0.0

    def test_qmap_exactness_at_512d(self, paper_workload) -> None:
        qfd = QuadraticFormDistance(paper_workload.matrix)
        qmap = QMap(qfd)
        mapped = qmap.transform_batch(paper_workload.database[:30])
        for i in range(0, 30, 7):
            for j in range(1, 30, 5):
                expected = qfd(paper_workload.database[i], paper_workload.database[j])
                got = float(np.linalg.norm(mapped[i] - mapped[j]))
                assert got == pytest.approx(expected, abs=1e-9)

    def test_models_agree_at_512d(self, paper_workload) -> None:
        i_qfd = QFDModel(paper_workload.matrix).build_index(
            "mtree", paper_workload.database, capacity=8
        )
        i_qmap = QMapModel(paper_workload.matrix).build_index(
            "mtree", paper_workload.database, capacity=8
        )
        for q in paper_workload.queries:
            assert_same_neighbors(
                i_qfd.knn_search(q, 10), i_qmap.knn_search(q, 10), tol=1e-7
            )

    def test_query_evaluations_identical_at_512d(self, paper_workload) -> None:
        i_qfd = QFDModel(paper_workload.matrix).build_index(
            "pivot-table", paper_workload.database, n_pivots=16
        )
        i_qmap = QMapModel(paper_workload.matrix).build_index(
            "pivot-table", paper_workload.database, n_pivots=16
        )
        for q in paper_workload.queries:
            i_qfd.reset_query_costs()
            i_qmap.reset_query_costs()
            i_qfd.knn_search(q, 5)
            i_qmap.knn_search(q, 5)
            assert (
                i_qfd.query_costs().distance_computations
                == i_qmap.query_costs().distance_computations
            )

    def test_wall_time_direction_at_512d(self, paper_workload) -> None:
        """At the paper's dimensionality the QMap speedup must be visible
        even at tiny scale — the per-evaluation gap is a factor ~n."""
        import time

        qfd = QuadraticFormDistance(paper_workload.matrix)
        qmap = QMap(qfd)
        mapped = qmap.transform_batch(paper_workload.database)
        q = paper_workload.queries[0]
        mapped_q = qmap.transform(q)

        start = time.perf_counter()
        for _ in range(5):
            qfd.one_to_many(q, paper_workload.database)
        t_qfd = time.perf_counter() - start

        start = time.perf_counter()
        for _ in range(5):
            np.sqrt(((mapped - mapped_q) ** 2).sum(axis=1))
        t_l2 = time.perf_counter() - start
        assert t_l2 < t_qfd
