"""The materializing half of the planner (`repro.models.planning`).

Pinned invariants:

1. planning is free — sampling the distance histogram never perturbs the
   workload's distance counters, and restoring a probed snapshot costs
   zero evaluations;
2. a materialized probe answers the *planned* workload: a snapshot whose
   archived QFD matrix (or shape) disagrees is refused, not silently
   traversed;
3. ``plan_query_batch`` end to end: the chosen plan's answers equal the
   sequential baseline's, forced plans included, and per-alternative
   actual costs are measured in the predicted unit.
"""

from __future__ import annotations

import numpy as np
import pytest

from .helpers import assert_same_neighbors
from repro.core import random_spd_matrix
from repro.datasets import histogram_workload
from repro.exceptions import QueryError, StorageError
from repro.models import QFDModel, QMapModel, load_built_index
from repro.models.lifecycle import load_catalog
from repro.models.planning import (
    PlanExecution,
    alternative_actual_flops,
    materialize_plan,
    plan_query_batch,
    sample_distance_histogram,
)
from repro.persistence import read_snapshot
from repro.planner import DirectScan, ExecutorChoice, FilterRefine


@pytest.fixture(scope="module")
def workload():
    return histogram_workload(150, 5, bins_per_channel=4, seed=9)


@pytest.fixture(scope="module")
def snapshot_dir(tmp_path_factory, workload):
    root = tmp_path_factory.mktemp("planned")
    QMapModel(workload.matrix).build_index(
        "pivot-table", workload.database, n_pivots=8
    ).save(str(root / "pivot.npz"))
    QMapModel(workload.matrix).build_index(
        "mtree", workload.database, capacity=16
    ).save(str(root / "mtree.npz"))
    return root


@pytest.fixture(scope="module")
def baseline(workload):
    index = QFDModel(workload.matrix).build_index("sequential", workload.database)
    return [index.knn_search(q, 5) for q in workload.queries]


class TestHistogramSampling:
    def test_deterministic_and_counter_free(self, workload) -> None:
        index = QFDModel(workload.matrix).build_index(
            "sequential", workload.database
        )
        before = index.query_costs().distance_computations
        hist = sample_distance_histogram(
            workload.matrix, workload.database, workload.queries, seed=3
        )
        again = sample_distance_histogram(
            workload.matrix, workload.database, workload.queries, seed=3
        )
        assert index.query_costs().distance_computations == before
        assert np.array_equal(hist.sample, again.sample)
        assert 0.0 < hist.selectivity(hist.radius_at(0.5)) <= 1.0

    def test_subsampling_caps(self, workload) -> None:
        hist = sample_distance_histogram(
            workload.matrix, workload.database, workload.queries,
            max_rows=16, max_queries=2,
        )
        assert hist.sample.size == 16 * 2


class TestMaterialize:
    def test_direct_scan_builds_sequential(self, workload) -> None:
        execution = materialize_plan(
            DirectScan(model="qmap"), workload.matrix, workload.database
        )
        assert execution.index is not None
        assert execution.index.method_name == "sequential"
        assert execution.index.model_name == "qmap"

    def test_probe_restores_without_evaluations(
        self, workload, snapshot_dir
    ) -> None:
        planned = plan_query_batch(
            workload.matrix, workload.database, workload.queries,
            k=5, index_dir=str(snapshot_dir),
            force="probe[pivot-table,qmap]",
        )
        execution = planned.execution
        assert execution.index is not None
        assert execution.index.build_costs.distance_computations == 0
        assert execution.index.query_costs().distance_computations == 0

    def test_probe_refuses_foreign_matrix(self, workload, tmp_path) -> None:
        """Invariant 2: a matrix mismatch is an error, not a wrong answer."""
        other = random_spd_matrix(64, rng=np.random.default_rng(1), condition=4.0)
        QMapModel(other).build_index(
            "pivot-table", workload.database, n_pivots=8
        ).save(str(tmp_path / "foreign.npz"))
        with pytest.raises(StorageError, match="matrix disagrees"):
            plan_query_batch(
                workload.matrix, workload.database, workload.queries,
                k=5, index_dir=str(tmp_path),
                force="probe[pivot-table,qmap]",
            )

    def test_probe_refuses_wrong_database_shape(
        self, workload, snapshot_dir
    ) -> None:
        node_choice = plan_query_batch(
            workload.matrix, workload.database, workload.queries,
            k=5, index_dir=str(snapshot_dir),
        ).choice
        probe = node_choice.alternative("probe[pivot-table,qmap]").plan
        with pytest.raises(StorageError, match="rows"):
            materialize_plan(probe, workload.matrix, workload.database[:-10])

    def test_filter_refine_avg_color_needs_a_cube(self) -> None:
        matrix = random_spd_matrix(20, rng=np.random.default_rng(2), condition=4.0)
        database = np.abs(np.random.default_rng(3).normal(size=(30, 20)))
        with pytest.raises(QueryError, match="color-cube"):
            materialize_plan(
                FilterRefine(lower_bound="avg_color", rank=3), matrix, database
            )


class TestPlanQueryBatch:
    def test_needs_exactly_one_of_k_and_radius(self, workload) -> None:
        for kwargs in ({}, {"k": 5, "radius": 0.5}):
            with pytest.raises(QueryError):
                plan_query_batch(
                    workload.matrix, workload.database, workload.queries, **kwargs
                )

    def test_auto_pick_beats_scan_and_matches_baseline(
        self, workload, snapshot_dir, baseline
    ) -> None:
        planned = plan_query_batch(
            workload.matrix, workload.database, workload.queries,
            k=5, index_dir=str(snapshot_dir),
        )
        # Acceptance: with snapshots on offer the pick is non-sequential.
        assert planned.plan_name.startswith("probe[")
        assert len(planned.choice.considered) >= 3
        results = planned.execution.run_batch(workload.queries, k=5)
        for got, expected in zip(results, baseline):
            assert_same_neighbors(got, expected, label=planned.plan_name)

    def test_every_forced_alternative_matches_baseline(
        self, workload, snapshot_dir, baseline
    ) -> None:
        """The planner changes where evaluations go, never the answers."""
        choice = plan_query_batch(
            workload.matrix, workload.database, workload.queries,
            k=5, index_dir=str(snapshot_dir),
        ).choice
        for candidate in choice.considered:
            planned = plan_query_batch(
                workload.matrix, workload.database, workload.queries,
                k=5, index_dir=str(snapshot_dir), force=candidate.name,
            )
            assert planned.plan_name == candidate.name
            results = planned.execution.run_batch(workload.queries, k=5)
            for got, expected in zip(results, baseline):
                assert_same_neighbors(got, expected, label=candidate.name)

    def test_range_planning_samples_a_histogram(self, workload) -> None:
        planned = plan_query_batch(
            workload.matrix, workload.database, workload.queries, radius=0.4
        )
        assert planned.spec.kind == "range"
        assert planned.spec.histogram is not None

    def test_executor_override_wins(self, workload) -> None:
        planned = plan_query_batch(
            workload.matrix, workload.database, workload.queries,
            k=5, executor=ExecutorChoice(name="thread", workers=2),
        )
        assert planned.execution.executor.name == "thread"

    def test_filter_refine_reports_stats_and_flops(self, workload) -> None:
        planned = plan_query_batch(
            workload.matrix, workload.database, workload.queries,
            k=5, force="filter-refine[svd,k=16]",
        )
        planned.execution.run_batch(workload.queries, k=5)
        assert len(planned.execution.stats) == len(workload.queries)
        costs = planned.execution.query_costs()
        assert costs.distance_computations == sum(
            s.candidates for s in planned.execution.stats
        )
        assert planned.execution.actual_flops() > 0


class TestAlternativeActuals:
    def test_actuals_cover_alternatives_and_skip_the_unloadable(
        self, workload, tmp_path
    ) -> None:
        QMapModel(workload.matrix).build_index(
            "pivot-table", workload.database, n_pivots=8
        ).save(str(tmp_path / "pivot.npz"))
        planned = plan_query_batch(
            workload.matrix, workload.database, workload.queries,
            k=5, index_dir=str(tmp_path),
        )
        (tmp_path / "pivot.npz").unlink()  # deleted between plan and explain
        actuals = alternative_actual_flops(
            planned.choice, workload.matrix, workload.database,
            workload.queries[0], k=5,
        )
        assert "probe[pivot-table,qmap]" not in actuals
        assert actuals["scan[qfd]"] > actuals["scan[qmap]"]
        # The raw-QFD scan's actual is exactly its closed form: m * n^2.
        m, n = workload.database.shape
        assert actuals["scan[qfd]"] == pytest.approx(m * n * n)


class TestLifecycle:
    def test_load_built_index_accepts_a_parsed_snapshot(
        self, workload, snapshot_dir
    ) -> None:
        """The double-read fix: a parsed snapshot restores with no re-open."""
        path = snapshot_dir / "pivot.npz"
        snapshot = read_snapshot(path)
        from_snapshot = load_built_index(snapshot)
        from_path = load_built_index(str(path))
        assert from_snapshot.method_name == from_path.method_name == "pivot-table"
        query = workload.queries[0]
        assert_same_neighbors(
            from_snapshot.knn_search(query, 5), from_path.knn_search(query, 5)
        )

    def test_load_catalog_is_the_models_layer_entrypoint(
        self, snapshot_dir
    ) -> None:
        catalog = load_catalog(snapshot_dir)
        assert len(catalog) == 2 and not catalog.warnings


class TestPlanExecutionGuards:
    def test_run_batch_needs_exactly_one_parameter(self, workload) -> None:
        execution = materialize_plan(
            DirectScan(model="qfd"), workload.matrix, workload.database
        )
        assert isinstance(execution, PlanExecution)
        with pytest.raises(QueryError):
            execution.run_batch(workload.queries)
        with pytest.raises(QueryError):
            execution.run_batch(workload.queries, k=5, radius=0.5)
