"""Tests for repro.mam.base — ports, neighbors, the kNN heap."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distances import CountingDistance, euclidean, euclidean_one_to_many
from repro.exceptions import EmptyIndexError, QueryError
from repro.mam import SequentialFile
from repro.mam.base import DistancePort, Neighbor, _KnnHeap, neighbors_from_distances


class TestNeighbor:
    def test_ordering_by_distance_then_index(self) -> None:
        a = Neighbor(1.0, 5)
        b = Neighbor(1.0, 3)
        c = Neighbor(0.5, 9)
        assert sorted([a, b, c]) == [c, b, a]

    def test_equality(self) -> None:
        assert Neighbor(1.0, 2) == Neighbor(1.0, 2)


class TestDistancePort:
    def test_pair(self) -> None:
        port = DistancePort(euclidean)
        assert port.pair(np.zeros(2), np.array([3.0, 4.0])) == pytest.approx(5.0)

    def test_many_with_vectorized_form(self) -> None:
        port = DistancePort(euclidean, one_to_many=euclidean_one_to_many)
        out = port.many(np.zeros(2), np.ones((4, 2)))
        assert out.shape == (4,)

    def test_many_fallback_loop(self) -> None:
        port = DistancePort(euclidean)
        batch = np.arange(6.0).reshape(3, 2)
        expected = [euclidean(np.zeros(2), row) for row in batch]
        assert np.allclose(port.many(np.zeros(2), batch), expected)

    def test_many_empty(self) -> None:
        port = DistancePort(euclidean)
        assert port.many(np.zeros(2), np.empty((0, 2))).shape == (0,)

    def test_picks_up_counting_distance_batch_method(self) -> None:
        cd = CountingDistance(euclidean, one_to_many=euclidean_one_to_many)
        port = DistancePort(cd)
        port.many(np.zeros(2), np.ones((5, 2)))
        assert cd.count == 5


class TestNeighborsFromDistances:
    def test_sorted_output(self) -> None:
        out = neighbors_from_distances([3.0, 1.0, 2.0])
        assert [n.index for n in out] == [1, 2, 0]

    def test_explicit_indices(self) -> None:
        out = neighbors_from_distances([3.0, 1.0], [10, 20])
        assert out[0] == Neighbor(1.0, 20)


class TestKnnHeap:
    def test_keeps_k_smallest(self) -> None:
        heap = _KnnHeap(2)
        for d, i in [(5.0, 0), (1.0, 1), (3.0, 2), (0.5, 3)]:
            heap.offer(d, i)
        result = heap.neighbors()
        assert [n.index for n in result] == [3, 1]

    def test_radius_infinite_until_full(self) -> None:
        heap = _KnnHeap(3)
        heap.offer(1.0, 0)
        assert heap.radius == float("inf")
        heap.offer(2.0, 1)
        heap.offer(3.0, 2)
        assert heap.radius == 3.0

    def test_tie_break_prefers_smaller_index(self) -> None:
        heap = _KnnHeap(1)
        heap.offer(1.0, 7)
        heap.offer(1.0, 2)
        assert heap.neighbors() == [Neighbor(1.0, 2)]

    def test_tie_break_order_independent(self) -> None:
        heap = _KnnHeap(1)
        heap.offer(1.0, 2)
        heap.offer(1.0, 7)
        assert heap.neighbors() == [Neighbor(1.0, 2)]

    def test_rejects_bad_k(self) -> None:
        with pytest.raises(QueryError):
            _KnnHeap(0)


class TestAccessMethodValidation:
    def test_empty_database_rejected(self) -> None:
        with pytest.raises(EmptyIndexError):
            SequentialFile(np.empty((0, 4)), euclidean)

    def test_negative_radius_rejected(self, rng: np.random.Generator) -> None:
        seq = SequentialFile(rng.random((5, 3)), euclidean)
        with pytest.raises(QueryError):
            seq.range_search(np.zeros(3), -0.1)

    def test_bad_k_rejected(self, rng: np.random.Generator) -> None:
        seq = SequentialFile(rng.random((5, 3)), euclidean)
        with pytest.raises(QueryError):
            seq.knn_search(np.zeros(3), 0)

    def test_k_clamped_to_database_size(self, rng: np.random.Generator) -> None:
        seq = SequentialFile(rng.random((5, 3)), euclidean)
        assert len(seq.knn_search(np.zeros(3), 100)) == 5

    def test_query_dimension_checked(self, rng: np.random.Generator) -> None:
        from repro.exceptions import DimensionMismatchError

        seq = SequentialFile(rng.random((5, 3)), euclidean)
        with pytest.raises(DimensionMismatchError):
            seq.knn_search(np.zeros(4), 1)

    def test_properties(self, rng: np.random.Generator) -> None:
        seq = SequentialFile(rng.random((5, 3)), euclidean)
        assert seq.size == 5 and seq.dim == 3
        assert seq.database.shape == (5, 3)
