"""Tests for repro.distances.quadratic — functional QFD forms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import QuadraticFormDistance
from repro.distances import qfd, qfd_squared
from repro.exceptions import DimensionMismatchError


class TestFunctionalQFD:
    def test_matches_class(self, spd_16: np.ndarray, rng: np.random.Generator) -> None:
        dist = QuadraticFormDistance(spd_16)
        u, v = rng.random(16), rng.random(16)
        assert qfd(u, v, spd_16) == pytest.approx(dist(u, v))

    def test_squared_relationship(self, spd_16: np.ndarray, rng: np.random.Generator) -> None:
        u, v = rng.random(16), rng.random(16)
        assert qfd(u, v, spd_16) ** 2 == pytest.approx(qfd_squared(u, v, spd_16))

    def test_identity_matrix(self, rng: np.random.Generator) -> None:
        u, v = rng.random(4), rng.random(4)
        assert qfd(u, v, np.eye(4)) == pytest.approx(float(np.linalg.norm(u - v)))

    def test_no_validation_accepts_general_matrix(self, rng: np.random.Generator) -> None:
        """The functional forms skip PD validation by design."""
        a = rng.random((4, 4))  # arbitrary, possibly indefinite
        u, v = rng.random(4), rng.random(4)
        z = u - v
        expected = max(float(z @ a @ z), 0.0)
        assert qfd_squared(u, v, a) == pytest.approx(expected)

    def test_dimension_mismatch_vectors(self) -> None:
        with pytest.raises(DimensionMismatchError):
            qfd([1.0, 2.0], [1.0], np.eye(2))

    def test_dimension_mismatch_matrix(self) -> None:
        with pytest.raises(DimensionMismatchError):
            qfd([1.0, 2.0], [0.0, 0.0], np.eye(3))

    def test_clamps_negative_roundoff(self) -> None:
        u = np.array([1e-200, 1e-200])
        assert qfd_squared(u, u, np.eye(2)) == 0.0
