"""Tests for repro.core.symmetrize — the Section 3.2.3 WLOG argument."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import is_symmetric, symmetrize
from repro.core.symmetrize import symmetric_part_equals_form
from repro.distances import qfd_squared
from repro.exceptions import MatrixError


class TestSymmetrize:
    def test_output_is_symmetric(self, rng: np.random.Generator) -> None:
        a = rng.random((6, 6))
        assert is_symmetric(symmetrize(a))

    def test_diagonal_preserved(self, rng: np.random.Generator) -> None:
        a = rng.random((5, 5))
        assert np.allclose(np.diag(symmetrize(a)), np.diag(a))

    def test_off_diagonal_averaged(self) -> None:
        a = np.array([[1.0, 4.0], [2.0, 1.0]])
        b = symmetrize(a)
        assert b[0, 1] == b[1, 0] == pytest.approx(3.0)

    def test_idempotent(self, rng: np.random.Generator) -> None:
        a = rng.random((4, 4))
        once = symmetrize(a)
        assert np.allclose(symmetrize(once), once)

    def test_symmetric_input_unchanged(self, spd_16: np.ndarray) -> None:
        assert np.allclose(symmetrize(spd_16), spd_16)

    def test_preserves_quadratic_form(self, rng: np.random.Generator) -> None:
        """The paper's theorem: z A z^T == z sym(A) z^T for every z."""
        a = rng.random((8, 8)) * 2.0 - 1.0
        b = symmetrize(a)
        for _ in range(20):
            u, v = rng.random(8), rng.random(8)
            assert qfd_squared(u, v, a) == pytest.approx(qfd_squared(u, v, b), abs=1e-9)

    def test_rejects_non_square(self) -> None:
        with pytest.raises(MatrixError):
            symmetrize(np.ones((3, 4)))

    def test_helper_confirms_identity(self, rng: np.random.Generator) -> None:
        a = rng.random((5, 5))
        z = rng.random(5)
        assert symmetric_part_equals_form(a, z)


class TestIsSymmetric:
    def test_true_case(self) -> None:
        assert is_symmetric(np.eye(3))

    def test_false_case(self) -> None:
        assert not is_symmetric(np.array([[1.0, 2.0], [0.0, 1.0]]))

    def test_near_symmetric_within_tolerance(self) -> None:
        a = np.eye(3)
        a[0, 1] = 1e-15
        assert is_symmetric(a)
