"""Timeline exporter tests: spans and traversals as Chrome trace events.

The load-bearing claims: the document is valid Chrome trace-event JSON
(``traceEvents`` with ``B``/``E``/``X``/``M`` phases and µs fields), the
span lane reproduces wall-clock ordering and threads, the traversal lane
covers the virtual time axis gaplessly per the event buffer's charge
attribution, and the per-node ``args`` sum back to the plan's charged
totals.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import random_spd_matrix
from repro.models import QFDModel, explain_query
from repro.obs import (
    MetricsRegistry,
    chrome_trace,
    plan_trace_events,
    span_trace_events,
    use_registry,
    write_timeline,
)
from repro.obs.registry import SpanRecord
from repro.obs.timeline import PLAN_PID_OFFSET

DIM = 6


def _plan(method: str = "mtree", seed: int = 5, k: int = 4):
    rng = np.random.default_rng(seed)
    matrix = random_spd_matrix(DIM, rng=rng, condition=6.0)
    data = rng.random((60, DIM))
    query = rng.random(DIM)
    kwargs = {"mtree": {"capacity": 8}, "pivot-table": {"n_pivots": 4}}.get(method, {})
    index = QFDModel(matrix).build_index(method, data, **kwargs)
    index.reset_query_costs()
    return explain_query(index, query, k=k)


class TestSpanTraceEvents:
    def test_slices_carry_wall_clock_and_thread(self) -> None:
        records = [
            SpanRecord(
                name="build/index", seconds=0.25, depth=0,
                start=100.0, thread=11,
            ),
            SpanRecord(
                name="query/batch/knn", seconds=0.5, depth=0,
                start=100.5, thread=22, parent="build/index",
            ),
        ]
        events = span_trace_events(records, pid=1)
        assert [e["ph"] for e in events] == ["X", "X"]
        first, second = events
        assert first["ts"] == 0.0  # normalized to the earliest start
        assert first["dur"] == pytest.approx(0.25e6)
        assert first["tid"] == 11
        assert second["ts"] == pytest.approx(0.5e6)
        assert second["args"]["parent"] == "build/index"

    def test_legacy_spans_without_start_lay_back_to_back(self) -> None:
        records = [
            SpanRecord(name="a", seconds=1.0, depth=0),
            SpanRecord(name="b", seconds=2.0, depth=0),
        ]
        events = span_trace_events(records, pid=1)
        assert events[0]["ts"] == 0.0
        assert events[1]["ts"] == pytest.approx(1e6)

    def test_labels_become_args(self) -> None:
        record = SpanRecord(
            name="query/batch/knn", seconds=0.1, depth=0,
            labels={"method": "mtree"}, start=1.0, thread=1,
        )
        (event,) = span_trace_events([record], pid=1)
        assert event["args"]["method"] == "mtree"


class TestPlanTraceEvents:
    def test_traversal_covers_virtual_time_gaplessly(self) -> None:
        plan = _plan("mtree")
        events = plan_trace_events(plan, pid=1, tid=1)
        assert events[0]["ph"] == "B"
        assert events[-1]["ph"] == "E"
        slices = [e for e in events if e["ph"] == "X"]
        assert slices, "a tree traversal must produce node slices"
        # Node slices are [enter_seq, next_enter_seq): ordered, gapless.
        for here, there in zip(slices, slices[1:]):
            assert here["ts"] + here["dur"] == there["ts"]
        assert events[-1]["ts"] >= slices[-1]["ts"]

    def test_charged_evaluations_sum_to_plan_totals(self) -> None:
        plan = _plan("mtree")
        # The explain plan must have recorded every event for the sums to
        # be exact (no cap/sampling drops on this tiny workload).
        assert plan.events_dropped == 0
        events = plan_trace_events(plan, pid=1)
        charged = sum(
            e["args"].get("charged_calls", 0) + e["args"].get("charged_rows", 0)
            for e in events
            if e["ph"] == "X"
        )
        totals = plan.to_dict()["totals"]
        expected = totals.get("charged_calls", 0) + totals.get("charged_rows", 0)
        assert charged == expected
        # And the plan's own invariant held, so args equal true counts.
        assert plan.totals_match

    def test_wrapper_args_carry_totals_and_drop_counts(self) -> None:
        plan = _plan("pivot-table")
        events = plan_trace_events(plan, pid=1)
        begin = events[0]
        assert begin["name"].startswith("knn(k=4)")
        assert "events_dropped" in begin["args"]
        assert "events_sampled_out" in begin["args"]

    def test_accepts_plan_dict_form(self) -> None:
        plan = _plan("mtree")
        from_obj = plan_trace_events(plan, pid=1)
        from_dict = plan_trace_events(plan.to_dict(), pid=1)
        assert from_obj == from_dict


class TestChromeTrace:
    def test_lanes_are_separate_pids_with_metadata(self) -> None:
        registry = MetricsRegistry()
        rng = np.random.default_rng(3)
        matrix = random_spd_matrix(DIM, rng=rng, condition=6.0)
        data = rng.random((50, DIM))
        with use_registry(registry):
            index = QFDModel(matrix).build_index("mtree", data, capacity=8)
            index.knn_search_batch(rng.random((4, DIM)), 3)
        plan = explain_query(index, rng.random(DIM), k=3)
        doc = chrome_trace(spans=registry.spans, plan=plan, pid=7)
        assert doc["otherData"]["producer"] == "repro.obs.timeline"
        events = doc["traceEvents"]
        metas = [e for e in events if e["ph"] == "M"]
        assert {m["pid"] for m in metas} == {7, 7 + PLAN_PID_OFFSET}
        span_pids = {e["pid"] for e in events if e.get("cat") == "span"}
        plan_pids = {e["pid"] for e in events if e.get("cat") == "traversal"}
        assert span_pids == {7}
        assert plan_pids == {7 + PLAN_PID_OFFSET}

    def test_empty_inputs_produce_empty_document(self) -> None:
        doc = chrome_trace(spans=[], plan=None, pid=1)
        assert doc["traceEvents"] == []

    def test_write_timeline_roundtrips_json(self, tmp_path) -> None:
        plan = _plan("mtree")
        target = tmp_path / "timeline.json"
        written = write_timeline(target, plan=plan, pid=1)
        assert written == target
        doc = json.loads(target.read_text())
        assert doc["traceEvents"]
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases <= {"B", "E", "X", "M"}
