"""Tests for repro.mam.paged_mtree — the disk-resident M-tree."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import clustered_histograms
from repro.distances import euclidean
from repro.exceptions import PageError
from repro.mam import PagedMTree, SequentialFile

from .helpers import assert_same_neighbors


@pytest.fixture(scope="module")
def data():
    return clustered_histograms(400, 4, themes=8, rng=np.random.default_rng(171))


@pytest.fixture(scope="module")
def scan(data):
    return SequentialFile(data, euclidean)


@pytest.fixture(scope="module")
def paged(data):
    return PagedMTree(data, euclidean, capacity=8, cache_pages=16)


class TestQueries:
    def test_exact_knn(self, data, paged, scan) -> None:
        for q in data[:4]:
            assert_same_neighbors(paged.knn_search(q, 9), scan.knn_search(q, 9))

    def test_exact_range(self, data, paged, scan) -> None:
        q = data[77]
        nn = scan.knn_search(q, 25)
        radius = (nn[-2].distance + nn[-1].distance) / 2.0
        assert_same_neighbors(paged.range_search(q, radius), scan.range_search(q, radius))

    def test_matches_in_memory_mtree(self, data) -> None:
        from repro.mam import MTree

        memory = MTree(data, euclidean, capacity=8, rng=np.random.default_rng(2))
        disk = PagedMTree(
            data, euclidean, capacity=8, cache_pages=16, rng=np.random.default_rng(2)
        )
        q = data[3]
        assert memory.knn_search(q, 10) == disk.knn_search(q, 10)


class TestPaging:
    def test_pages_allocated(self, paged) -> None:
        assert paged.node_pages() > len(paged.database) // paged.capacity // 2

    def test_small_cache_faults_large_cache_hits(self, data) -> None:
        tiny = PagedMTree(data, euclidean, capacity=8, cache_pages=1)
        big = PagedMTree(data, euclidean, capacity=8, cache_pages=1024)
        q = data[0]
        big.knn_search(q, 5)  # warm
        big.cache.stats.reset()
        big.knn_search(q, 5)
        assert big.cache.stats.faults == 0  # everything resident

        tiny.knn_search(q, 5)
        tiny.cache.stats.reset()
        tiny.knn_search(q, 5)
        assert tiny.cache.stats.faults > 0  # thrashes

    def test_file_backed(self, data, tmp_path) -> None:
        path = tmp_path / "mtree.pages"
        with PagedMTree(data[:100], euclidean, capacity=8, path=str(path)) as tree:
            hits = tree.knn_search(data[0], 3)
            assert len(hits) == 3
        assert path.exists() and path.stat().st_size > 0

    def test_oversized_node_rejected(self, data) -> None:
        tree = PagedMTree(data[:50], euclidean, capacity=4)
        with pytest.raises(PageError):
            tree._write_node(
                0,
                True,
                [-1] * 10,
                list(range(10)),
                [0.0] * 10,
                [0.0] * 10,
                np.zeros((10, data.shape[1])),
            )


class TestInserts:
    def test_insert_with_page_splits(self, data) -> None:
        tree = PagedMTree(data[:300], euclidean, capacity=6, cache_pages=16)
        pages_before = tree.node_pages()
        for row in data[300:]:
            tree.insert(row)
        assert tree.node_pages() > pages_before  # splits allocated pages
        full_scan = SequentialFile(data, euclidean)
        for q in data[:3]:
            assert_same_neighbors(tree.knn_search(q, 8), full_scan.knn_search(q, 8))

    def test_root_split_from_tiny_tree(self, data) -> None:
        tree = PagedMTree(data[:3], euclidean, capacity=2)
        for row in data[3:40]:
            tree.insert(row)
        scan40 = SequentialFile(data[:40], euclidean)
        q = data[100]
        assert_same_neighbors(tree.knn_search(q, 6), scan40.knn_search(q, 6))

    def test_inserted_object_findable(self, data) -> None:
        tree = PagedMTree(data[:100], euclidean, capacity=8)
        idx = tree.insert(data[200])
        top = tree.knn_search(data[200], 1)[0]
        assert top.index == idx and top.distance == pytest.approx(0.0, abs=1e-12)
