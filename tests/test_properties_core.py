"""Property-based tests (hypothesis) for the core invariants.

These cover DESIGN.md invariants 1-3, 6 and 7: exact distance preservation
by QMap, symmetrization equivalence, Cholesky correctness against the
paper's Algorithm 1, SVD contraction, and QFD metric postulates.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import (
    QMap,
    QuadraticFormDistance,
    cholesky,
    cholesky_reference,
    is_lower_triangular,
    random_spd_matrix,
    symmetrize,
)
from repro.distances import check_metric_postulates, qfd_squared
from repro.lowerbound import SVDReduction

_DIMS = st.integers(min_value=1, max_value=12)


def _spd(seed: int, dim: int) -> np.ndarray:
    return random_spd_matrix(dim, rng=np.random.default_rng(seed), condition=50.0)


def _finite_vectors(dim: int):
    return arrays(
        np.float64,
        (dim,),
        elements=st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
    )


class TestQMapPreservesDistances:
    @given(seed=st.integers(0, 10_000), dim=_DIMS, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_invariant_1(self, seed: int, dim: int, data) -> None:
        """L2(qmap(u), qmap(v)) == QFD_A(u, v) for random SPD A."""
        a = _spd(seed, dim)
        qmap = QMap(a)
        u = data.draw(_finite_vectors(dim))
        v = data.draw(_finite_vectors(dim))
        expected = qmap.qfd(u, v)
        got = qmap.distance_via_map(u, v)
        assert got == pytest.approx(expected, rel=1e-7, abs=1e-7)

    @given(seed=st.integers(0, 10_000), dim=_DIMS, data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_inverse_roundtrip(self, seed: int, dim: int, data) -> None:
        a = _spd(seed, dim)
        qmap = QMap(a)
        u = data.draw(_finite_vectors(dim))
        back = qmap.inverse_transform(qmap.transform(u))
        assert np.allclose(back, u, rtol=1e-6, atol=1e-6)


class TestSymmetrizationEquivalence:
    @given(
        dim=st.integers(1, 10),
        seed=st.integers(0, 10_000),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_invariant_2(self, dim: int, seed: int, data) -> None:
        """z A z^T == z sym(A) z^T for arbitrary square A and any z."""
        rng = np.random.default_rng(seed)
        a = rng.uniform(-5.0, 5.0, size=(dim, dim))
        z = data.draw(_finite_vectors(dim))
        zero = np.zeros(dim)
        direct = qfd_squared(z, zero, a)
        via_sym = qfd_squared(z, zero, symmetrize(a))
        assert via_sym == pytest.approx(direct, rel=1e-9, abs=1e-6)


class TestCholeskyProperties:
    @given(seed=st.integers(0, 10_000), dim=st.integers(1, 10))
    @settings(max_examples=40, deadline=None)
    def test_invariant_3(self, seed: int, dim: int) -> None:
        """B @ B.T == A, B lower-triangular with positive diagonal, and the
        paper's Algorithm 1 agrees with the LAPACK path."""
        a = _spd(seed, dim)
        b = cholesky(a)
        assert np.allclose(b @ b.T, a, rtol=1e-8, atol=1e-10)
        assert is_lower_triangular(b)
        assert np.all(np.diag(b) > 0.0)
        assert np.allclose(cholesky_reference(a), b, rtol=1e-8, atol=1e-10)


class TestSVDContraction:
    @given(seed=st.integers(0, 10_000), dim=st.integers(2, 10), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_invariant_6(self, seed: int, dim: int, data) -> None:
        """Rank-k reduction is contractive; exact at k = n."""
        a = _spd(seed, dim)
        qfd = QuadraticFormDistance(a)
        k = data.draw(st.integers(1, dim))
        red = SVDReduction(qfd, k)
        u = data.draw(_finite_vectors(dim))
        v = data.draw(_finite_vectors(dim))
        exact = qfd(u, v)
        bound = red.lower_bound(red.transform(u), red.transform(v))
        assert bound <= exact * (1.0 + 1e-7) + 1e-7
        if k == dim:
            assert bound == pytest.approx(exact, rel=1e-7, abs=1e-7)


class TestQFDMetricPostulates:
    @given(seed=st.integers(0, 5_000), dim=st.integers(2, 8))
    @settings(max_examples=20, deadline=None)
    def test_invariant_7(self, seed: int, dim: int) -> None:
        """QFD with a strictly PD matrix satisfies the metric postulates."""
        rng = np.random.default_rng(seed)
        a = _spd(seed, dim)
        qfd = QuadraticFormDistance(a)
        objects = list(rng.uniform(-10.0, 10.0, size=(8, dim)))
        report = check_metric_postulates(qfd, objects, tolerance=1e-7, rng=rng)
        assert report.is_metric, report.worst()
