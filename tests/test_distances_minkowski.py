"""Tests for repro.distances.minkowski — the Lp family (Section 1.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distances import (
    MinkowskiDistance,
    WeightedEuclidean,
    chessboard,
    euclidean,
    euclidean_one_to_many,
    manhattan,
    minkowski,
    weighted_euclidean,
)
from repro.exceptions import DimensionMismatchError, QueryError


class TestMinkowski:
    def test_345_triangle(self) -> None:
        assert euclidean([0, 0], [3, 4]) == pytest.approx(5.0)

    def test_manhattan(self) -> None:
        assert manhattan([0, 0], [3, 4]) == pytest.approx(7.0)

    def test_chessboard(self) -> None:
        assert chessboard([0, 0], [3, 4]) == pytest.approx(4.0)

    def test_general_p(self) -> None:
        assert minkowski([0, 0], [1, 1], 3) == pytest.approx(2.0 ** (1.0 / 3.0))

    def test_p1_equals_manhattan(self, rng: np.random.Generator) -> None:
        u, v = rng.random(8), rng.random(8)
        assert minkowski(u, v, 1.0) == pytest.approx(manhattan(u, v))

    def test_p2_equals_euclidean(self, rng: np.random.Generator) -> None:
        u, v = rng.random(8), rng.random(8)
        assert minkowski(u, v, 2.0) == pytest.approx(euclidean(u, v))

    def test_p_inf_equals_chessboard(self, rng: np.random.Generator) -> None:
        u, v = rng.random(8), rng.random(8)
        assert minkowski(u, v, float("inf")) == pytest.approx(chessboard(u, v))

    def test_lp_monotone_in_p(self, rng: np.random.Generator) -> None:
        """For fixed vectors, Lp is non-increasing in p."""
        u, v = rng.random(10), rng.random(10)
        values = [minkowski(u, v, p) for p in (1, 1.5, 2, 4, 16, float("inf"))]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_rejects_p_below_one(self) -> None:
        with pytest.raises(QueryError):
            minkowski([0], [1], 0.5)

    def test_dimension_mismatch(self) -> None:
        with pytest.raises(DimensionMismatchError):
            euclidean([1, 2], [1, 2, 3])

    def test_identity(self, rng: np.random.Generator) -> None:
        u = rng.random(5)
        for dist in (manhattan, euclidean, chessboard):
            assert dist(u, u) == 0.0


class TestWeightedEuclidean:
    def test_unit_weights_equal_euclidean(self, rng: np.random.Generator) -> None:
        u, v = rng.random(6), rng.random(6)
        assert weighted_euclidean(u, v, np.ones(6)) == pytest.approx(euclidean(u, v))

    def test_weights_scale_dimensions(self) -> None:
        assert weighted_euclidean([0, 0], [1, 0], [4.0, 1.0]) == pytest.approx(2.0)

    def test_rejects_negative_weights(self) -> None:
        with pytest.raises(QueryError):
            weighted_euclidean([0], [1], [-1.0])

    def test_callable_class_requires_positive_weights(self) -> None:
        with pytest.raises(QueryError):
            WeightedEuclidean([1.0, 0.0])

    def test_callable_class_matches_function(self, rng: np.random.Generator) -> None:
        w = rng.random(5) + 0.1
        dist = WeightedEuclidean(w)
        u, v = rng.random(5), rng.random(5)
        assert dist(u, v) == pytest.approx(weighted_euclidean(u, v, w))

    def test_one_to_many_matches_scalar(self, rng: np.random.Generator) -> None:
        w = rng.random(5) + 0.1
        dist = WeightedEuclidean(w)
        q = rng.random(5)
        batch = rng.random((12, 5))
        vec = dist.one_to_many(q, batch)
        assert np.allclose(vec, [dist(q, row) for row in batch])


class TestVectorizedEuclidean:
    def test_matches_scalar(self, rng: np.random.Generator) -> None:
        q = rng.random(7)
        batch = rng.random((30, 7))
        assert np.allclose(
            euclidean_one_to_many(q, batch), [euclidean(q, row) for row in batch]
        )

    def test_empty_batch(self) -> None:
        out = euclidean_one_to_many(np.ones(3), np.empty((0, 3)))
        assert out.shape == (0,)


class TestMinkowskiDistanceClass:
    def test_callable(self) -> None:
        d = MinkowskiDistance(2.0)
        assert d([0, 0], [3, 4]) == pytest.approx(5.0)
        assert d.p == 2.0

    def test_rejects_bad_order(self) -> None:
        with pytest.raises(QueryError):
            MinkowskiDistance(0.9)
