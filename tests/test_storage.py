"""Tests for repro.storage — pages, LRU cache, vector store."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DimensionMismatchError, PageError, StorageError
from repro.storage import LRUPageCache, PagedFile, VectorStore


class TestPagedFile:
    def test_allocate_and_roundtrip(self) -> None:
        with PagedFile(64) as pf:
            pid = pf.allocate()
            pf.write_page(pid, b"hello")
            assert pf.read_page(pid)[:5] == b"hello"

    def test_pages_padded_to_page_size(self) -> None:
        with PagedFile(64) as pf:
            pid = pf.allocate()
            pf.write_page(pid, b"x")
            assert len(pf.read_page(pid)) == 64

    def test_sequential_page_ids(self) -> None:
        with PagedFile(32) as pf:
            assert [pf.allocate() for _ in range(4)] == [0, 1, 2, 3]
            assert pf.n_pages == 4

    def test_stats_counting(self) -> None:
        with PagedFile(32) as pf:
            pid = pf.allocate()
            pf.write_page(pid, b"a")
            pf.read_page(pid)
            pf.read_page(pid)
            assert pf.stats.writes == 1
            assert pf.stats.reads == 2
            pf.stats.reset()
            assert pf.stats.reads == 0

    def test_out_of_range_page(self) -> None:
        with PagedFile(32) as pf:
            with pytest.raises(PageError):
                pf.read_page(0)

    def test_oversized_payload(self) -> None:
        with PagedFile(32) as pf:
            pid = pf.allocate()
            with pytest.raises(PageError):
                pf.write_page(pid, b"z" * 33)

    def test_file_backed(self, tmp_path) -> None:
        path = tmp_path / "pages.bin"
        with PagedFile(32, path=path) as pf:
            pid = pf.allocate()
            pf.write_page(pid, b"disk")
            assert pf.read_page(pid)[:4] == b"disk"
        assert path.exists()

    def test_rejects_tiny_page(self) -> None:
        with pytest.raises(StorageError):
            PagedFile(8)

    def test_rejects_negative_latency(self) -> None:
        with pytest.raises(StorageError):
            PagedFile(64, read_latency=-1.0)


class TestLRUPageCache:
    def _file_with_pages(self, count: int) -> PagedFile:
        pf = PagedFile(32)
        for i in range(count):
            pid = pf.allocate()
            pf.write_page(pid, bytes([i]) * 4)
        pf.stats.reset()
        return pf

    def test_hit_after_miss(self) -> None:
        cache = LRUPageCache(self._file_with_pages(3), capacity=2)
        cache.read_page(0)
        cache.read_page(0)
        assert cache.stats.faults == 1
        assert cache.stats.hits == 1

    def test_eviction_order_is_lru(self) -> None:
        cache = LRUPageCache(self._file_with_pages(3), capacity=2)
        cache.read_page(0)
        cache.read_page(1)
        cache.read_page(0)  # 0 is now most recent
        cache.read_page(2)  # evicts 1
        cache.stats.reset()
        cache.read_page(0)
        assert cache.stats.hits == 1
        cache.read_page(1)
        assert cache.stats.faults == 1

    def test_working_set_within_capacity_never_refaults(self) -> None:
        """The Section 5.3 fixed-cache effect, small-database side."""
        cache = LRUPageCache(self._file_with_pages(3), capacity=4)
        for _ in range(5):
            for pid in range(3):
                cache.read_page(pid)
        assert cache.stats.faults == 3  # only the cold reads

    def test_working_set_exceeding_capacity_thrashes(self) -> None:
        """... and the large-database side: sequential scans larger than
        the LRU capacity fault on every page, every pass."""
        cache = LRUPageCache(self._file_with_pages(4), capacity=2)
        for _ in range(3):
            for pid in range(4):
                cache.read_page(pid)
        assert cache.stats.faults == 12  # no reuse at all

    def test_write_through_updates_cache(self) -> None:
        pf = self._file_with_pages(1)
        cache = LRUPageCache(pf, capacity=2)
        cache.write_page(0, b"new!")
        data = cache.read_page(0)
        assert data[:4] == b"new!"
        assert cache.stats.hits == 1  # served from cache
        assert pf.stats.writes == 1  # but persisted

    def test_hit_rate(self) -> None:
        cache = LRUPageCache(self._file_with_pages(2), capacity=2)
        assert cache.stats.hit_rate == 0.0
        cache.read_page(0)
        cache.read_page(0)
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_write_path_counted(self) -> None:
        """Regression: writes used to bypass CacheStats entirely, so
        write-heavy workloads reported a hit rate built from reads alone."""
        cache = LRUPageCache(self._file_with_pages(3), capacity=2)
        cache.write_page(0, b"cold")  # not resident -> write fault
        assert (cache.stats.write_hits, cache.stats.write_faults) == (0, 1)
        cache.write_page(0, b"warm")  # resident now -> write hit
        assert (cache.stats.write_hits, cache.stats.write_faults) == (1, 1)
        cache.write_page(1, b"b")  # fault; fills the cache
        cache.write_page(2, b"c")  # fault; evicts page 0
        cache.write_page(0, b"back")  # faults again
        assert cache.stats.write_faults == 4
        assert cache.stats.write_accesses == 5
        assert cache.stats.write_hit_rate == pytest.approx(1 / 5)
        # Read counters are untouched by the write path.
        assert (cache.stats.hits, cache.stats.faults) == (0, 0)

    def test_combined_hit_rate_and_reset(self) -> None:
        cache = LRUPageCache(self._file_with_pages(2), capacity=2)
        assert cache.stats.combined_hit_rate == 0.0
        cache.write_page(0, b"a")  # write fault
        cache.read_page(0)  # read hit
        cache.read_page(1)  # read fault
        cache.write_page(1, b"b")  # write hit
        assert cache.stats.total_accesses == 4
        assert cache.stats.combined_hit_rate == pytest.approx(0.5)
        cache.stats.reset()
        assert cache.stats.total_accesses == 0
        assert (cache.stats.write_hits, cache.stats.write_faults) == (0, 0)

    def test_clear_drops_pages(self) -> None:
        cache = LRUPageCache(self._file_with_pages(2), capacity=2)
        cache.read_page(0)
        cache.clear()
        cache.read_page(0)
        assert cache.stats.faults == 2

    def test_rejects_zero_capacity(self) -> None:
        with pytest.raises(StorageError):
            LRUPageCache(self._file_with_pages(1), capacity=0)


class TestVectorStore:
    def test_append_get_roundtrip(self, rng: np.random.Generator) -> None:
        with VectorStore(8, page_size=128) as store:
            rows = rng.random((10, 8))
            for row in rows:
                store.append(row)
            for i in range(10):
                assert np.allclose(store.get(i), rows[i])

    def test_len_and_records_per_page(self) -> None:
        with VectorStore(4, page_size=128) as store:
            assert store.records_per_page == 4  # 4 * 32B per page
            store.extend(np.ones((9, 4)))
            assert len(store) == 9

    def test_scan_order(self, rng: np.random.Generator) -> None:
        with VectorStore(4, page_size=64) as store:
            rows = rng.random((7, 4))
            store.extend(rows)
            scanned = list(store.scan())
            assert [i for i, _ in scanned] == list(range(7))
            assert all(np.allclose(vec, rows[i]) for i, vec in scanned)

    def test_scan_pages_blocks(self, rng: np.random.Generator) -> None:
        with VectorStore(4, page_size=64) as store:  # 2 records per page
            rows = rng.random((5, 4))
            store.extend(rows)
            blocks = list(store.scan_pages())
            assert [first for first, _ in blocks] == [0, 2, 4]
            assert blocks[-1][1].shape == (1, 4)

    def test_wrong_dim_rejected(self) -> None:
        with VectorStore(4) as store:
            with pytest.raises(DimensionMismatchError):
                store.append(np.ones(5))

    def test_out_of_range_get(self) -> None:
        with VectorStore(4) as store:
            store.append(np.ones(4))
            with pytest.raises(PageError):
                store.get(1)

    def test_record_must_fit_page(self) -> None:
        with pytest.raises(StorageError):
            VectorStore(100, page_size=64)

    def test_cache_stats_exposed(self, rng: np.random.Generator) -> None:
        with VectorStore(4, page_size=64, cache_pages=1) as store:
            store.extend(rng.random((6, 4)))  # 3 pages, cache of 1
            store.cache.stats.reset()
            list(store.scan_pages())
            list(store.scan_pages())
            # Each full scan faults on every page (thrashing).
            assert store.cache.stats.faults == 6

class TestVectorStoreDtype:
    def test_default_is_float64(self) -> None:
        with VectorStore(4) as store:
            assert store.dtype == np.float64
            assert store.record_size == 32

    def test_float32_halves_the_record(self) -> None:
        with VectorStore(4, page_size=128, dtype="float32") as store:
            assert store.dtype == np.float32
            assert store.record_size == 16
            assert store.records_per_page == 8

    def test_float32_roundtrip_reads_float64(self, rng: np.random.Generator) -> None:
        rows = rng.random((6, 4))
        with VectorStore(4, page_size=64, dtype=np.float32) as store:
            store.extend(rows)
            for i in range(6):
                got = store.get(i)
                assert got.dtype == np.float64
                # One float32 rounding per coordinate, nothing worse.
                assert np.allclose(got, rows[i], atol=1e-6)
                assert np.array_equal(got, rows[i].astype(np.float32).astype(np.float64))

    def test_scan_matches_get_for_float32(self, rng: np.random.Generator) -> None:
        rows = rng.random((5, 4))
        with VectorStore(4, page_size=64, dtype="float32") as store:
            store.extend(rows)
            for i, vec in store.scan():
                assert np.array_equal(vec, store.get(i))

    def test_unsupported_dtype_rejected(self) -> None:
        with pytest.raises(StorageError, match="record dtype"):
            VectorStore(4, dtype="int32")

    def test_record_fit_respects_dtype(self) -> None:
        # 16-d float64 records (128 B) overflow a 64 B page; float32 fits.
        with pytest.raises(StorageError):
            VectorStore(16, page_size=64)
        with VectorStore(16, page_size=64, dtype="float32") as store:
            assert store.records_per_page == 1
