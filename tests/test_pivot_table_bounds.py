"""Tests for the PivotTable bound modes (triangle / ptolemaic / best).

Covers the mode dispatch end to end: exactness against the sequential
scan in every mode, bit-identical answers across modes (the bound only
changes *work*, never results), the build-time Ptolemy guard, duplicate-
pivot degradation, snapshot round-trips carrying the pivot-pair matrix,
and the EXPLAIN side-by-side prune accounting with exact charge totals.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import clustered_histograms
from repro.distances import CountingDistance, euclidean, euclidean_one_to_many
from repro.exceptions import QueryError, StorageError
from repro.mam import BOUND_MODES, PivotTable, SequentialFile
from repro.persistence import load_index, save_index

from .helpers import assert_same_neighbors

RADIUS = 0.05
K = 8


@pytest.fixture(scope="module")
def data():
    return clustered_histograms(250, 4, themes=6, rng=np.random.default_rng(97))


@pytest.fixture(scope="module")
def queries(data):
    rng = np.random.default_rng(98)
    return data[rng.choice(len(data), size=5, replace=False)] * 1.01


def _table(data, bound: str, **kwargs) -> PivotTable:
    kwargs.setdefault("n_pivots", 8)
    kwargs.setdefault("rng", np.random.default_rng(5))
    return PivotTable(
        data,
        CountingDistance(euclidean, one_to_many=euclidean_one_to_many),
        bound=bound,
        **kwargs,
    )


class TestBoundModes:
    def test_unknown_bound_is_rejected(self, data) -> None:
        with pytest.raises(QueryError, match="bound mode"):
            _table(data, "chebyshev")

    def test_triangle_mode_has_no_pair_matrix(self, data) -> None:
        pt = _table(data, "triangle")
        assert pt.bound == "triangle"
        assert pt.pivot_pair_matrix is None

    @pytest.mark.parametrize("bound", ["ptolemaic", "best"])
    def test_pair_matrix_exists_and_is_read_only(self, data, bound) -> None:
        pt = _table(data, bound)
        assert pt.bound == bound
        pair = pt.pivot_pair_matrix
        assert pair is not None and pair.shape == (8, 8)
        with pytest.raises((ValueError, RuntimeError)):
            pair[0, 0] = 1.0

    def test_pair_matrix_costs_exactly_p_choose_2_build_distances(self, data) -> None:
        counts = {}
        for bound in ("triangle", "ptolemaic"):
            counter = CountingDistance(euclidean, one_to_many=euclidean_one_to_many)
            PivotTable(
                data, counter, n_pivots=8, bound=bound,
                rng=np.random.default_rng(5),
            )
            counts[bound] = counter.count
        assert counts["ptolemaic"] - counts["triangle"] == 8 * 7 // 2

    @pytest.mark.parametrize("bound", BOUND_MODES)
    def test_range_and_knn_agree_with_scan(self, data, queries, bound) -> None:
        pt = _table(data, bound)
        scan = SequentialFile(data, euclidean)
        for q in queries:
            assert_same_neighbors(
                pt.range_search(q, RADIUS),
                scan.range_search(q, RADIUS),
                label=f"range/{bound}",
            )
            assert_same_neighbors(
                pt.knn_search(q, K), scan.knn_search(q, K), label=f"knn/{bound}"
            )

    def test_results_are_bit_identical_across_modes(self, data, queries) -> None:
        tables = {bound: _table(data, bound) for bound in BOUND_MODES}
        for q in queries:
            range_answers = {
                b: t.range_search(q, RADIUS) for b, t in tables.items()
            }
            knn_answers = {b: t.knn_search(q, K) for b, t in tables.items()}
            for b in ("ptolemaic", "best"):
                assert range_answers[b] == range_answers["triangle"]
                assert knn_answers[b] == knn_answers["triangle"]

    def test_best_filters_at_least_as_well_as_either_bound(
        self, data, queries
    ) -> None:
        counts = {
            b: [_table(data, b).candidates_for_radius(q, RADIUS) for q in queries]
            for b in BOUND_MODES
        }
        for tri, pto, best in zip(
            counts["triangle"], counts["ptolemaic"], counts["best"]
        ):
            assert best <= min(tri, pto)

    @pytest.mark.parametrize("bound", BOUND_MODES)
    def test_batch_paths_match_per_query_results(self, data, queries, bound) -> None:
        pt = _table(data, bound)
        batch_range = pt.range_search_batch(queries, RADIUS)
        batch_knn = pt.knn_search_batch(queries, K)
        for pos, q in enumerate(queries):
            loop = pt.range_search(q, RADIUS)
            loop.sort()
            assert batch_range[pos] == loop
            loop = pt.knn_search(q, K)
            loop.sort()
            assert batch_knn[pos] == loop


class TestPtolemyGuard:
    """The build-time check_ptolemy_matrix guard (metric_checks)."""

    # Unit square under L1: d(a,e) * d(b,c) = 2 * 2 = 4 exceeds
    # d(a,b) d(c,e) + d(a,c) d(b,e) = 1 + 1 — the textbook witness that
    # L1 is not Ptolemaic.
    SQUARE = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])

    @staticmethod
    def _l1(u: np.ndarray, v: np.ndarray) -> float:
        return float(np.abs(u - v).sum())

    @pytest.mark.parametrize("bound", ["ptolemaic", "best"])
    def test_non_ptolemaic_metric_is_refused_at_build(self, bound) -> None:
        data = np.vstack([self.SQUARE, self.SQUARE + 5.0])
        with pytest.raises(QueryError, match="Ptolemaic"):
            PivotTable(data, self._l1, pivots=[0, 1, 2, 3], bound=bound)

    def test_triangle_mode_accepts_the_same_metric(self) -> None:
        data = np.vstack([self.SQUARE, self.SQUARE + 5.0])
        pt = PivotTable(data, self._l1, pivots=[0, 1, 2, 3], bound="triangle")
        scan = SequentialFile(data, self._l1)
        assert pt.knn_search(data[5], 3) == scan.knn_search(data[5], 3)


class TestDuplicateVectors:
    """Regression: repeated database vectors and the Ptolemaic bound."""

    @pytest.fixture(scope="class")
    def dup_data(self):
        base = clustered_histograms(40, 4, themes=4, rng=np.random.default_rng(13))
        return np.repeat(base, 3, axis=0)  # every vector appears 3 times

    @pytest.mark.parametrize("bound", BOUND_MODES)
    def test_builds_and_stays_exact_on_duplicated_data(self, dup_data, bound) -> None:
        pt = PivotTable(
            dup_data, euclidean, n_pivots=6, bound=bound,
            rng=np.random.default_rng(3),
        )
        if bound != "triangle":
            pair = pt.pivot_pair_matrix
            off_diag = pair[~np.eye(pair.shape[0], dtype=bool)]
            assert np.all(off_diag > 0.0)  # pivots are content-distinct
        # Duplicated vectors mean tied distances, so the *index order*
        # within a tie is legitimately implementation-dependent; compare
        # the index set (range) and the distance profile (kNN) instead.
        scan = SequentialFile(dup_data, euclidean)
        q = dup_data[7] * 1.02
        got = pt.range_search(q, RADIUS)
        want = scan.range_search(q, RADIUS)
        assert {n.index for n in got} == {n.index for n in want}
        got_knn = sorted(n.distance for n in pt.knn_search(q, K))
        want_knn = sorted(n.distance for n in scan.knn_search(q, K))
        np.testing.assert_allclose(got_knn, want_knn, atol=1e-8)

    def test_all_identical_rows_degrade_gracefully(self) -> None:
        data = np.tile(np.linspace(0.1, 0.9, 8), (10, 1))
        pt = PivotTable(
            data, euclidean, n_pivots=3, bound="ptolemaic",
            rng=np.random.default_rng(1),
        )
        # Every pivot pair has distance zero -> no usable pairs, bound 0,
        # everything becomes a candidate; answers stay exact.
        scan = SequentialFile(data, euclidean)
        assert pt.range_search(data[0], 0.1) == scan.range_search(data[0], 0.1)


class TestSnapshotRoundTrip:
    @pytest.mark.parametrize("bound", BOUND_MODES)
    def test_state_round_trip_restores_mode_with_zero_evaluations(
        self, data, queries, bound
    ) -> None:
        pt = _table(data, bound)
        state = pt.structural_state()
        counter = CountingDistance(euclidean, one_to_many=euclidean_one_to_many)
        restored = PivotTable.from_state(data, counter, state)
        assert counter.count == 0
        assert restored.bound == bound
        if bound == "triangle":
            assert restored.pivot_pair_matrix is None
        else:
            assert np.array_equal(restored.pivot_pair_matrix, pt.pivot_pair_matrix)
        q = queries[0]
        assert restored.range_search(q, RADIUS) == pt.range_search(q, RADIUS)
        assert restored.knn_search(q, K) == pt.knn_search(q, K)

    @pytest.mark.parametrize("bound", ["ptolemaic", "best"])
    def test_npz_round_trip_carries_the_pair_matrix(
        self, data, queries, bound, tmp_path
    ) -> None:
        pt = _table(data, bound)
        path = save_index(pt, tmp_path / f"pt_{bound}.npz")
        counter = CountingDistance(euclidean, one_to_many=euclidean_one_to_many)
        restored = load_index(path, counter)
        assert counter.count == 0  # verification probes are uncounted
        assert isinstance(restored, PivotTable)
        assert restored.bound == bound
        assert np.array_equal(restored.pivot_pair_matrix, pt.pivot_pair_matrix)
        q = queries[0]
        assert restored.range_search(q, RADIUS) == pt.range_search(q, RADIUS)

    def test_legacy_state_without_bound_keys_loads_as_triangle(self, data) -> None:
        pt = _table(data, "triangle")
        state = pt.structural_state()
        del state["bound"]  # a v1 archive has neither bound nor pivot_pair
        restored = PivotTable.from_state(data, euclidean, state)
        assert restored.bound == "triangle"
        assert restored.pivot_pair_matrix is None

    def test_unknown_bound_in_state_is_refused(self, data) -> None:
        pt = _table(data, "triangle")
        state = pt.structural_state()
        state["bound"] = np.str_("hyperbolic")
        with pytest.raises(StorageError, match="bound mode"):
            PivotTable.from_state(data, euclidean, state)

    def test_missing_pair_matrix_is_refused(self, data) -> None:
        pt = _table(data, "ptolemaic")
        state = pt.structural_state()
        del state["pivot_pair"]
        with pytest.raises(StorageError):
            PivotTable.from_state(data, euclidean, state)

    def test_wrong_shape_pair_matrix_is_refused(self, data) -> None:
        pt = _table(data, "ptolemaic")
        state = pt.structural_state()
        state["pivot_pair"] = state["pivot_pair"][:3, :3]
        with pytest.raises(QueryError, match="pivot-pair"):
            PivotTable.from_state(data, euclidean, state)

    def test_tampered_pair_matrix_fails_verification(self, data) -> None:
        pt = _table(data, "ptolemaic")
        state = pt.structural_state()
        state["pivot_pair"] = state["pivot_pair"] * 3.0
        restored = PivotTable.from_state(data, euclidean, state)
        # load_index's verify step re-probes the stored bounds.
        with pytest.raises(StorageError, match="pivot-pair"):
            restored._verify_state_probe()
