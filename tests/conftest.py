"""Shared fixtures for the test suite.

Workload fixtures are session-scoped: generating clustered histograms and
building QFD matrices is the expensive part of most tests, and the data is
never mutated (tests that need mutation make copies).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.color import lab_bin_prototypes
from repro.core import QuadraticFormDistance, prototype_similarity_matrix, random_spd_matrix
from repro.datasets import clustered_histograms, histogram_workload


@pytest.fixture()
def rng() -> np.random.Generator:
    """Fresh deterministic generator per test."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture(scope="session")
def hafner_matrix_64() -> np.ndarray:
    """The paper's Hafner matrix at 4 bins/channel (64-d)."""
    return prototype_similarity_matrix(lab_bin_prototypes(4)).matrix


@pytest.fixture(scope="session")
def qfd_64(hafner_matrix_64: np.ndarray) -> QuadraticFormDistance:
    """QFD over the 64-d Hafner matrix."""
    return QuadraticFormDistance(hafner_matrix_64)


@pytest.fixture(scope="session")
def spd_16() -> np.ndarray:
    """A random 16-d SPD matrix (fixed seed)."""
    return random_spd_matrix(16, rng=np.random.default_rng(11), condition=8.0)


@pytest.fixture(scope="session")
def histograms_64() -> np.ndarray:
    """600 clustered 64-d histograms (unit row sums)."""
    return clustered_histograms(600, 4, themes=10, rng=np.random.default_rng(42))


@pytest.fixture(scope="session")
def small_workload():
    """A ready-made 400-object workload with 6 held-out queries."""
    return histogram_workload(400, 6, bins_per_channel=4, seed=7)
