"""Tests for repro.mam.stats and datasets.calibrate_radius."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import calibrate_radius, clustered_histograms, histogram_workload
from repro.distances import euclidean
from repro.exceptions import QueryError
from repro.mam import GNAT, MIndex, MTree, PivotTable, SATree, SequentialFile, VPTree
from repro.mam.stats import describe_index
from repro.models import QFDModel
from repro.sam import RTree


@pytest.fixture(scope="module")
def data():
    return clustered_histograms(250, 4, themes=6, rng=np.random.default_rng(151))


class TestDescribeIndex:
    def test_mtree(self, data) -> None:
        tree = MTree(data, euclidean, capacity=8)
        desc = describe_index(tree)
        assert desc.structure == "MTree"
        assert desc.size == 250
        assert desc.nodes == tree.node_count()
        assert desc.height == tree.height()
        assert 0.0 < desc.extra["fill_factor"] <= 1.0
        assert desc.extra["max_covering_radius"] >= desc.extra["median_covering_radius"]

    def test_vptree(self, data) -> None:
        tree = VPTree(data, euclidean, leaf_size=6)
        desc = describe_index(tree)
        assert desc.structure == "VPTree"
        assert desc.extra["buckets"] > 0
        assert desc.extra["mean_bucket"] <= 6.0

    def test_gnat(self, data) -> None:
        desc = describe_index(GNAT(data, euclidean, arity=5, leaf_size=10))
        assert desc.structure == "GNAT"
        assert desc.nodes > 1

    def test_sat(self, data) -> None:
        desc = describe_index(SATree(data, euclidean))
        assert desc.structure == "SATree"
        assert desc.extra["mean_fanout"] > 1.0

    def test_pivot_table(self, data) -> None:
        desc = describe_index(PivotTable(data, euclidean, n_pivots=7))
        assert desc.extra["pivots"] == 7.0
        assert desc.nodes == 1 and desc.height == 1

    def test_mindex(self, data) -> None:
        desc = describe_index(MIndex(data, euclidean, n_pivots=6))
        assert desc.extra["clusters"] == 6.0
        assert desc.extra["largest_cluster"] >= 250 / 6

    def test_sequential(self, data) -> None:
        desc = describe_index(SequentialFile(data, euclidean))
        assert desc.structure == "SequentialFile"
        assert desc.height == 1

    def test_sam_fallback(self, data) -> None:
        desc = describe_index(RTree(data, capacity=8))
        assert desc.structure == "RTree"
        assert desc.height >= 2

    def test_rejects_non_index(self) -> None:
        with pytest.raises(QueryError):
            describe_index(object())  # type: ignore[arg-type]


class TestCalibrateRadius:
    @pytest.fixture(scope="class")
    def workload(self):
        return histogram_workload(300, 6, bins_per_channel=4, seed=3)

    def test_selectivity_in_right_ballpark(self, workload) -> None:
        radius = calibrate_radius(workload, target_results=10)
        index = QFDModel(workload.matrix).build_index("sequential", workload.database)
        sizes = [len(index.range_search(q, radius)) for q in workload.queries]
        # Mean within a factor ~3 of the target (distributions are skewed).
        assert 3 <= np.mean(sizes) <= 30

    def test_monotone_in_target(self, workload) -> None:
        small = calibrate_radius(workload, target_results=2)
        large = calibrate_radius(workload, target_results=100)
        assert small < large

    def test_sample_queries_option(self, workload) -> None:
        full = calibrate_radius(workload, target_results=5)
        sampled = calibrate_radius(workload, target_results=5, sample_queries=2)
        assert sampled > 0.0
        assert abs(full - sampled) < full  # same order of magnitude

    def test_validation(self, workload) -> None:
        with pytest.raises(QueryError):
            calibrate_radius(workload, target_results=0)
        with pytest.raises(QueryError):
            calibrate_radius(workload, target_results=10_000)
        with pytest.raises(QueryError):
            calibrate_radius(workload, target_results=5, sample_queries=0)
