"""Tests for nestable timing spans (repro.obs.spans)."""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry, current_span, span, use_registry
from repro.obs.spans import SPAN_SECONDS


class TestDisabledSpans:
    def test_yields_none_and_records_nothing(self) -> None:
        # The null registry is active by default.
        with span("build/never") as record:
            assert record is None
        assert current_span() is None


class TestLiveSpans:
    def test_records_duration_and_histogram(self) -> None:
        reg = MetricsRegistry()
        with use_registry(reg):
            with span("query/refine", method="mtree") as record:
                assert current_span() is record
        (done,) = reg.spans
        assert done.name == "query/refine"
        assert done.status == "ok"
        assert done.seconds >= 0.0
        assert done.labels == {"method": "mtree"}
        hist = reg.histogram(SPAN_SECONDS)
        # Timings are additionally labeled by terminal status, so error
        # spans can be excluded from latency aggregations.
        assert hist.state(span="query/refine", method="mtree", status="ok").count == 1

    def test_nesting_tracks_depth_and_parent(self) -> None:
        reg = MetricsRegistry()
        with use_registry(reg):
            with span("build/mtree") as outer:
                with span("build/pivot-selection") as inner:
                    assert inner.depth == 1
                    assert inner.parent == "build/mtree"
                assert current_span() is outer
            assert outer.depth == 0 and outer.parent is None
        # Inner completes (and is recorded) first.
        assert [r.name for r in reg.spans] == [
            "build/pivot-selection",
            "build/mtree",
        ]

    def test_exception_marks_error_and_unwinds(self) -> None:
        reg = MetricsRegistry()
        with use_registry(reg):
            with pytest.raises(RuntimeError):
                with span("build/broken"):
                    raise RuntimeError("boom")
            assert current_span() is None
        (done,) = reg.spans
        assert done.status == "error"
        assert done.seconds >= 0.0

    def test_sequential_spans_do_not_nest(self) -> None:
        reg = MetricsRegistry()
        with use_registry(reg):
            with span("a"):
                pass
            with span("b"):
                pass
        assert [(r.name, r.depth, r.parent) for r in reg.spans] == [
            ("a", 0, None),
            ("b", 0, None),
        ]
