"""CLI surface of the planner: `repro query --plan`, `repro index query --plan`.

Pinned behavior:

1. ``--plan auto`` prints the considered-plans header (every alternative
   with predicted cost), executes the argmin, and picks a probe whenever
   a compatible snapshot undercuts the scan;
2. ``--plan <name>`` forces that alternative but keeps the comparison
   visible;
3. ``--explain`` adds per-alternative *actual* costs and writes the
   considered-plans JSON;
4. ``repro index query SNAP --plan auto`` plans against the snapshot's
   directory as the catalog.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def snapshot_dir(tmp_path_factory):
    root = tmp_path_factory.mktemp("cli_plan")
    for method in ("pivot-table", "mtree"):
        code = main(
            [
                "index", "save", "--method", method,
                "--size", "120", "--queries", "4", "--seed", "3",
                "--out", str(root / method.replace("-", "_")),
            ]
        )
        assert code == 0
    return root


_WORKLOAD_ARGS = ["--size", "120", "--queries", "4", "--seed", "3", "--k", "5"]


class TestParser:
    def test_query_plan_flags(self) -> None:
        args = build_parser().parse_args(
            ["query", "--plan", "auto", "--index-dir", "d", "--calibrate-from", "h"]
        )
        assert args.plan == "auto" and args.index_dir == "d"
        assert args.calibrate_from == "h"

    def test_index_query_plan_flag(self) -> None:
        args = build_parser().parse_args(["index", "query", "s.npz", "--plan", "auto"])
        assert args.plan == "auto"


class TestQueryPlan:
    def test_auto_picks_a_probe_and_lists_alternatives(
        self, snapshot_dir, capsys
    ) -> None:
        code = main(
            ["query", "--plan", "auto", "--index-dir", str(snapshot_dir)]
            + _WORKLOAD_ARGS
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "considered plans for knn(k=5)" in out
        # Acceptance: the snapshot beats the scan, so the pick is a probe.
        assert "* probe[" in out and "(chosen)" in out
        assert "2 snapshot(s)" in out
        # At least the two scans and both filter pipelines are listed.
        for name in ("scan[qfd]", "scan[qmap]", "filter-refine[svd"):
            assert name in out

    def test_auto_without_catalog_still_plans(self, capsys) -> None:
        code = main(["query", "--plan", "auto"] + _WORKLOAD_ARGS)
        out = capsys.readouterr().out
        assert code == 0
        assert "considered plans" in out and "execution:" in out

    def test_forced_plan_stays_visible(self, snapshot_dir, capsys) -> None:
        code = main(
            ["query", "--plan", "scan[qfd]", "--index-dir", str(snapshot_dir)]
            + _WORKLOAD_ARGS
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "* scan[qfd]" in out and "execution: scan[qfd]" in out
        # The cheaper probes are still listed, unchosen.
        assert "probe[pivot-table,qmap]" in out

    def test_unknown_plan_name_fails(self, snapshot_dir, capsys) -> None:
        code = main(
            ["query", "--plan", "scan[warp-drive]", "--index-dir", str(snapshot_dir)]
            + _WORKLOAD_ARGS
        )
        assert code != 0

    def test_explain_reports_actuals_and_writes_json(
        self, snapshot_dir, tmp_path, capsys
    ) -> None:
        out_path = tmp_path / "plan.json"
        code = main(
            [
                "query", "--plan", "auto", "--index-dir", str(snapshot_dir),
                "--explain", "--explain-out", str(out_path),
            ]
            + _WORKLOAD_ARGS
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "flops/query" in out and "actual=" in out
        payload = json.loads(out_path.read_text())
        considered = payload["considered"]
        assert len(considered) >= 3
        assert sum(c["chosen"] for c in considered) == 1
        chosen = next(c for c in considered if c["chosen"])
        assert chosen["actual_per_query_flops"] > 0
        # The chosen probe's EXPLAIN tree rides along.
        assert payload["explain"]["method"] in ("pivot-table", "mtree")

    def test_range_queries_plan_too(self, snapshot_dir, capsys) -> None:
        code = main(
            [
                "query", "--plan", "auto", "--index-dir", str(snapshot_dir),
                "--size", "120", "--queries", "4", "--seed", "3",
                "--radius", "0.4",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "considered plans for range(r=0.4)" in out


class TestIndexQueryPlan:
    def test_plans_against_the_snapshot_directory(
        self, snapshot_dir, capsys
    ) -> None:
        snap = snapshot_dir / "pivot_table.npz"
        code = main(["index", "query", str(snap), "--plan", "auto", "--k", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "considered plans" in out
        # Both sibling snapshots are in the catalog, not just the argument.
        assert "probe[pivot-table,qmap]" in out and "probe[mtree,qmap]" in out
