"""Tests for repro.cli — command parsing and exit codes."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args(["optimize"])

    def test_verify_defaults(self) -> None:
        args = build_parser().parse_args(["verify"])
        assert args.dim == 32 and args.size == 500

    def test_compare_options(self) -> None:
        args = build_parser().parse_args(
            ["compare", "--method", "vptree", "--size", "100", "--bins", "2", "--k", "3"]
        )
        assert args.method == "vptree"
        assert (args.size, args.bins, args.k) == (100, 2, 3)

    def test_query_defaults(self) -> None:
        args = build_parser().parse_args(["query"])
        assert args.method == "pivot-table" and args.model == "qmap"
        assert not args.batch and not args.trace
        assert args.radius is None and args.executor is None

    def test_query_options(self) -> None:
        args = build_parser().parse_args(
            ["query", "--batch", "--executor", "thread", "--workers", "4", "--trace"]
        )
        assert args.batch and args.trace
        assert (args.executor, args.workers) == ("thread", 4)

    def test_query_rejects_unknown_executor(self) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "--executor", "gpu"])


class TestCommands:
    def test_info(self, capsys) -> None:
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out and "mtree" in out and "rtree" in out

    def test_verify_passes(self, capsys) -> None:
        assert main(["verify", "--dim", "8", "--size", "120", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "PASSED" in out
        assert out.count("[ok]") == 3

    def test_compare_runs(self, capsys) -> None:
        code = main(
            ["compare", "--method", "sequential", "--size", "80", "--bins", "2", "--k", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "indexing" in out and "query" in out and "identical" in out

    _QUERY_BASE = ["query", "--size", "80", "--bins", "2", "--queries", "4"]

    def test_query_loop_runs(self, capsys) -> None:
        assert main(self._QUERY_BASE + ["--k", "3"]) == 0
        out = capsys.readouterr().out
        assert "per-query loop" in out and "queries/s" in out
        assert "trace" not in out

    def test_query_batch_traced(self, capsys) -> None:
        code = main(
            self._QUERY_BASE
            + ["--k", "3", "--batch", "--workers", "2", "--trace"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "batch engine" in out and "(thread, 2 workers)" in out
        assert "trace    :" in out and "evals/query" in out

    def test_query_range_mode(self, capsys) -> None:
        code = main(self._QUERY_BASE + ["--radius", "0.5", "--batch", "--trace"])
        assert code == 0
        out = capsys.readouterr().out
        assert "range(r=0.5)" in out and "batch engine" in out

    def test_query_qfd_model_sequential(self, capsys) -> None:
        code = main(
            self._QUERY_BASE + ["--method", "sequential", "--model", "qfd", "--batch"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "[qfd model]" in out


class TestQueryObservability:
    _BASE = ["query", "--size", "80", "--bins", "2", "--queries", "4"]

    def test_loop_trace_out_writes_real_traces(self, capsys, tmp_path) -> None:
        # Regression: without --batch the per-query loop used to leave the
        # collector empty, silently writing an empty trace file.
        import json

        path = tmp_path / "traces.jsonl"
        code = main(self._BASE + ["--k", "3", "--trace", "--trace-out", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "per-query loop" in out and "evals/query" in out
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == 4
        assert all(line["type"] == "query_trace" for line in lines)
        assert all(line["distance_evaluations"] > 0 for line in lines)

    def test_loop_trace_matches_model_counter(self, capsys) -> None:
        import re

        code = main(self._BASE + ["--k", "3", "--trace"])
        assert code == 0
        out = capsys.readouterr().out
        counted = int(re.search(r"costs    : (\d+) distance evaluations", out).group(1))
        scalar, batched = map(
            int, re.search(r"\((\d+) scalar \+ (\d+) batched\)", out).groups()
        )
        assert scalar + batched == counted

    def test_metrics_table_printed(self, capsys) -> None:
        code = main(self._BASE + ["--k", "3", "--batch", "--metrics", "table"])
        assert code == 0
        out = capsys.readouterr().out
        assert "repro_distance_evaluations_total" in out
        assert "repro_queries_total" in out

    def test_metrics_prom_is_restored_after_run(self, capsys) -> None:
        from repro.obs import NULL_REGISTRY, get_registry

        code = main(self._BASE + ["--k", "3", "--metrics", "prom"])
        assert code == 0
        assert get_registry() is NULL_REGISTRY
        out = capsys.readouterr().out
        assert "# TYPE repro_distance_evaluations_total counter" in out

    def test_report_runs_all_formats(self, capsys) -> None:
        for fmt in ("table", "jsonl", "prom"):
            code = main(
                [
                    "report",
                    "--size",
                    "80",
                    "--bins",
                    "2",
                    "--queries",
                    "4",
                    "--metrics",
                    fmt,
                ]
            )
            assert code == 0
        assert "repro_distance_evaluations_total" in capsys.readouterr().out


class TestBoundModeOption:
    """--bound wiring: query / explain / index build / report."""

    def test_query_bound_default_is_triangle(self) -> None:
        args = build_parser().parse_args(["query"])
        assert args.bound == "triangle"

    def test_bound_choices_are_validated(self) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "--bound", "euclid"])
        for command in (["query"], ["explain"], ["index", "build"]):
            for bound in ("triangle", "ptolemaic", "best"):
                args = build_parser().parse_args(command + ["--bound", bound])
                assert args.bound == bound

    def test_query_runs_with_ptolemaic_bound(self, capsys) -> None:
        code = main(
            ["query", "--size", "80", "--bins", "2", "--queries", "4",
             "--k", "3", "--bound", "ptolemaic"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "'bound': 'ptolemaic'" in out

    def test_explain_renders_side_by_side(self, capsys) -> None:
        code = main(
            ["explain", "--method", "pivot-table", "--size", "80", "--bins", "2",
             "--radius", "0.5", "--bound", "best"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "lower bounds (checks -> pruned):" in out
        assert "pivot-linf" in out and "pivot-ptolemaic" in out
        assert "pivot-best" in out
        assert "[OK]" in out and "[MISMATCH]" not in out

    def test_bound_is_ignored_by_other_methods(self, capsys) -> None:
        code = main(
            ["query", "--size", "80", "--bins", "2", "--queries", "2",
             "--k", "3", "--method", "sequential", "--bound", "ptolemaic"]
        )
        assert code == 0  # no unexpected-kwarg crash
        assert "'bound'" not in capsys.readouterr().out
