"""Tests for repro.cli — command parsing and exit codes."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args(["optimize"])

    def test_verify_defaults(self) -> None:
        args = build_parser().parse_args(["verify"])
        assert args.dim == 32 and args.size == 500

    def test_compare_options(self) -> None:
        args = build_parser().parse_args(
            ["compare", "--method", "vptree", "--size", "100", "--bins", "2", "--k", "3"]
        )
        assert args.method == "vptree"
        assert (args.size, args.bins, args.k) == (100, 2, 3)


class TestCommands:
    def test_info(self, capsys) -> None:
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out and "mtree" in out and "rtree" in out

    def test_verify_passes(self, capsys) -> None:
        assert main(["verify", "--dim", "8", "--size", "120", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "PASSED" in out
        assert out.count("[ok]") == 3

    def test_compare_runs(self, capsys) -> None:
        code = main(
            ["compare", "--method", "sequential", "--size", "80", "--bins", "2", "--k", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "indexing" in out and "query" in out and "identical" in out
