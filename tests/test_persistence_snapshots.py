"""Tests for the index snapshot layer: codecs, format, model lifecycle.

Every registered MAM and SAM must round-trip ``save_index``/``load_index``
bit-identically — same kNN and range answers — and the restore must cost
**zero** distance evaluations (verified through ``CountingDistance``).
On top sit the model-level entry points (``BuiltIndex.save``,
``QFDModel.load_index``, ``QMapModel.load_index``, ``load_built_index``)
and the backward-compatible pivot-table shims.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import QMap
from repro.core.qfd import QuadraticFormDistance
from repro.distances import CountingDistance
from repro.exceptions import StorageError
from repro.mam.base import DistancePort
from repro.mam.pivot_table import PivotTable
from repro.models import (
    MAM_REGISTRY,
    SAM_REGISTRY,
    BuiltIndex,
    IndexCosts,
    QFDModel,
    QMapModel,
    load_built_index,
)
from repro.models.base import instantiate
from repro.persistence import (
    CODEC_REGISTRY,
    FORMAT_VERSION,
    SNAPSHOT_KIND,
    IndexSnapshot,
    codec_for,
    codec_for_class,
    load_index,
    load_pivot_table,
    normalize_npz_path,
    read_snapshot,
    registered_methods,
    save_index,
    save_pivot_table,
    save_qmap,
    write_snapshot,
)
from repro.sam.rtree import RTree
from repro.sam.xtree import XTree

from .helpers import same_neighbors

#: Small construction arguments so trees actually split at m=40.
METHOD_KWARGS: dict[str, dict[str, int]] = {
    "pivot-table": {"n_pivots": 4},
    "mindex": {"n_pivots": 4},
    "mtree": {"capacity": 4},
    "paged-mtree": {"capacity": 4, "cache_pages": 8},
    "vptree": {"leaf_size": 4},
    "gnat": {"arity": 3, "leaf_size": 4},
    "rtree": {"capacity": 4},
    "xtree": {"capacity": 4},
    "vafile": {"bits": 3},
    "disk-sequential": {"page_size": 512},
}

ALL_METHODS = sorted(MAM_REGISTRY) + sorted(SAM_REGISTRY)


@pytest.fixture(scope="module")
def matrix() -> np.ndarray:
    dim = 6
    idx = np.arange(dim)
    a = np.exp(-0.4 * np.abs(np.subtract.outer(idx, idx)))
    return (a + a.T) / 2


@pytest.fixture(scope="module")
def data() -> np.ndarray:
    return np.random.default_rng(42).random((40, 6))


@pytest.fixture(scope="module")
def queries() -> np.ndarray:
    return np.random.default_rng(43).random((4, 6))


def _counter(matrix: np.ndarray) -> CountingDistance:
    qfd = QuadraticFormDistance(matrix)
    return CountingDistance(qfd, one_to_many=qfd.one_to_many)


def _build(method: str, data: np.ndarray, counter: CountingDistance):
    return instantiate(method, data, counter, dict(METHOD_KWARGS.get(method, {})))


class TestSnapshotRoundTrip:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_bit_identical_and_zero_evals(
        self, method, matrix, data, queries, tmp_path
    ) -> None:
        counter = _counter(matrix)
        index = _build(method, data, counter)
        path = save_index(index, tmp_path / f"{method}.npz")

        fresh = _counter(matrix)
        distance = DistancePort(fresh) if method in SAM_REGISTRY else fresh
        restored = load_index(path, distance)
        assert fresh.count == 0, f"{method}: restore paid {fresh.count} evaluations"

        for q in queries:
            got = restored.knn_search(q, 5)
            want = index.knn_search(q, 5)
            assert [(n.index, n.distance) for n in got] == [
                (n.index, n.distance) for n in want
            ], method
            got_r = restored.range_search(q, 0.4)
            want_r = index.range_search(q, 0.4)
            assert [(n.index, n.distance) for n in got_r] == [
                (n.index, n.distance) for n in want_r
            ], method

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_matches_fresh_rebuild(self, method, matrix, data, queries, tmp_path) -> None:
        # Restoring must answer exactly like rebuilding from scratch with
        # the same (deterministic) construction parameters.
        counter = _counter(matrix)
        index = _build(method, data, counter)
        path = save_index(index, tmp_path / method)

        rebuilt = _build(method, data, _counter(matrix))
        fresh = _counter(matrix)
        restored = load_index(
            path, DistancePort(fresh) if method in SAM_REGISTRY else fresh
        )
        for q in queries:
            assert same_neighbors(
                restored.knn_search(q, 5), rebuilt.knn_search(q, 5)
            ), method

    def test_dynamic_insert_after_restore(self, matrix, data, tmp_path) -> None:
        counter = _counter(matrix)
        tree = _build("mtree", data, counter)
        path = save_index(tree, tmp_path / "grow")
        restored = load_index(path, _counter(matrix))
        new = np.random.default_rng(9).random(6)
        idx_a = tree.insert(new)
        idx_b = restored.insert(new)
        assert idx_a == idx_b == data.shape[0]
        q = np.random.default_rng(10).random(6)
        assert same_neighbors(restored.knn_search(q, 5), tree.knn_search(q, 5))


class TestSuffixNormalization:
    def test_normalize_adds_suffix_once(self, tmp_path) -> None:
        bare = tmp_path / "snap"
        assert normalize_npz_path(bare) == str(bare) + ".npz"
        assert normalize_npz_path(str(bare) + ".npz") == str(bare) + ".npz"

    def test_save_and_load_without_suffix(self, matrix, data, tmp_path) -> None:
        # Regression: np.savez appends ".npz" on write but np.load does
        # not on read, so suffix-less paths used to save fine and then
        # fail to load.  Both spellings must now address the same file.
        index = _build("pivot-table", data, _counter(matrix))
        returned = save_index(index, tmp_path / "noext")
        assert returned.endswith(".npz")
        assert (tmp_path / "noext.npz").exists()
        for spelling in (tmp_path / "noext", tmp_path / "noext.npz"):
            restored = load_index(spelling, _counter(matrix))
            assert restored.size == index.size

    def test_artifact_helpers_normalize_too(self, matrix, tmp_path) -> None:
        from repro.persistence import load_qmap

        save_qmap(QMap(matrix), tmp_path / "map")
        loaded = load_qmap(tmp_path / "map")
        assert np.allclose(loaded.qfd.matrix, matrix)


class TestFormatIntegrity:
    def test_wrong_kind_rejected(self, matrix, tmp_path) -> None:
        save_qmap(QMap(matrix), tmp_path / "map")
        with pytest.raises(StorageError, match="holds a 'qmap' artifact"):
            read_snapshot(tmp_path / "map")

    def test_future_version_rejected(self, matrix, data, tmp_path) -> None:
        index = _build("sequential", data, _counter(matrix))
        snapshot = IndexSnapshot(
            method="sequential",
            method_version=1,
            database=data,
            state=index.structural_state(),
        )
        path = write_snapshot(snapshot, tmp_path / "v1")
        with np.load(path) as archive:
            arrays = dict(archive)
        arrays["format_version"] = np.int64(FORMAT_VERSION + 1)
        np.savez_compressed(path, **arrays)
        with pytest.raises(StorageError, match="snapshot format version"):
            read_snapshot(path)

    def test_unknown_top_level_key_rejected(self, matrix, data, tmp_path) -> None:
        index = _build("sequential", data, _counter(matrix))
        path = save_index(index, tmp_path / "extra")
        with np.load(path) as archive:
            arrays = dict(archive)
        arrays["rogue"] = np.int64(1)
        np.savez_compressed(path, **arrays)
        with pytest.raises(StorageError, match="rogue"):
            read_snapshot(path)

    def test_missing_state_key_rejected(self, matrix, data, tmp_path) -> None:
        index = _build("pivot-table", data, _counter(matrix))
        snapshot = read_snapshot(save_index(index, tmp_path / "trim"))
        snapshot.state.pop("table")
        with pytest.raises(StorageError, match="missing 'table'"):
            load_index(snapshot, _counter(matrix))

    def test_leftover_state_key_rejected(self, matrix, data, tmp_path) -> None:
        index = _build("sequential", data, _counter(matrix))
        snapshot = read_snapshot(save_index(index, tmp_path / "left"))
        snapshot.state["surplus"] = np.int64(7)
        with pytest.raises(StorageError, match="unexpected snapshot state keys"):
            load_index(snapshot, _counter(matrix))

    def test_object_arrays_rejected_at_write(self, data) -> None:
        snapshot = IndexSnapshot(
            method="sequential",
            method_version=1,
            database=data,
            state={"bad": np.array([object()])},
        )
        with pytest.raises(StorageError, match="object"):
            write_snapshot(snapshot, "/tmp/never-written")

    def test_verify_probe_catches_wrong_distance(self, matrix, data, tmp_path) -> None:
        index = _build("pivot-table", data, _counter(matrix))
        path = save_index(index, tmp_path / "probe")
        wrong = _counter(np.eye(6) * 9.0)
        with pytest.raises(StorageError, match="disagrees"):
            load_index(path, wrong)
        # verify=False skips the probe (caller takes responsibility).
        restored = load_index(path, wrong, verify=False)
        assert restored.size == data.shape[0]

    def test_mam_restore_requires_distance(self, matrix, data, tmp_path) -> None:
        index = _build("mtree", data, _counter(matrix))
        path = save_index(index, tmp_path / "nodist")
        with pytest.raises(StorageError, match="needs the distance"):
            load_index(path)

    def test_sam_restore_needs_no_distance(self, data, tmp_path) -> None:
        # A SAM built with its default (Euclidean) refinement port restores
        # without a supplied distance: the stored Minkowski order rebuilds
        # the same port.
        from repro.sam.vafile import VAFile

        index = VAFile(data, bits=3)
        path = save_index(index, tmp_path / "sam")
        restored = load_index(path)
        q = data[0]
        assert same_neighbors(restored.knn_search(q, 3), index.knn_search(q, 3))


class TestCodecRegistry:
    def test_every_registry_method_has_a_codec(self) -> None:
        assert set(registered_methods()) == set(MAM_REGISTRY) | set(SAM_REGISTRY)

    def test_unknown_method_rejected(self) -> None:
        with pytest.raises(StorageError, match="no snapshot codec"):
            codec_for("btree")

    def test_codec_for_class_is_exact(self) -> None:
        # XTree subclasses RTree; class lookup must not confuse them.
        assert codec_for_class(XTree).method == "xtree"
        assert codec_for_class(RTree).method == "rtree"

    def test_sam_flag(self) -> None:
        assert codec_for("rtree").is_sam
        assert not codec_for("mtree").is_sam

    def test_registry_is_consistent(self) -> None:
        for method, codec in CODEC_REGISTRY.items():
            assert codec.method == method
            assert codec.version >= 1


class TestModelLifecycle:
    def test_qfd_model_round_trip(self, matrix, data, queries, tmp_path) -> None:
        model = QFDModel(matrix)
        built = model.build_index("mtree", data, capacity=4)
        path = built.save(tmp_path / "qfd_mtree")
        loaded = model.load_index(path)
        assert loaded.build_costs.distance_computations == 0
        assert loaded.method_name == "mtree"
        for q in queries:
            assert same_neighbors(loaded.knn_search(q, 5), built.knn_search(q, 5))

    def test_qmap_model_round_trip_with_sam(self, matrix, data, queries, tmp_path) -> None:
        model = QMapModel(matrix)
        built = model.build_index("rtree", data, capacity=4)
        path = built.save(tmp_path / "qmap_rtree")
        loaded = model.load_index(path)
        assert loaded.build_costs.distance_computations == 0
        assert loaded.build_costs.transforms == 0
        for q in queries:
            assert same_neighbors(loaded.knn_search(q, 5), built.knn_search(q, 5))

    def test_load_built_index_dispatches_on_model(
        self, matrix, data, queries, tmp_path
    ) -> None:
        for model in (QFDModel(matrix), QMapModel(matrix)):
            built = model.build_index("pivot-table", data, n_pivots=4)
            path = built.save(tmp_path / f"auto_{model.name}")
            loaded = load_built_index(path)
            assert loaded.model_name == model.name
            assert loaded.build_costs.distance_computations == 0
            for q in queries:
                assert same_neighbors(loaded.knn_search(q, 3), built.knn_search(q, 3))

    def test_model_marker_mismatch(self, matrix, data, tmp_path) -> None:
        path = QFDModel(matrix).build_index("sequential", data).save(tmp_path / "m")
        with pytest.raises(StorageError, match="saved by the 'qfd' model"):
            QMapModel(matrix).load_index(path)

    def test_matrix_mismatch(self, matrix, data, tmp_path) -> None:
        path = QFDModel(matrix).build_index("sequential", data).save(tmp_path / "x")
        with pytest.raises(StorageError, match="matrix disagrees"):
            QFDModel(np.eye(6)).load_index(path)

    def test_plain_snapshot_has_no_model(self, matrix, data, tmp_path) -> None:
        index = _build("sequential", data, _counter(matrix))
        path = save_index(index, tmp_path / "bare")
        with pytest.raises(StorageError, match="no QFD matrix"):
            load_built_index(path)

    def test_hand_wired_index_refuses_save(self, matrix, data, tmp_path) -> None:
        counter = _counter(matrix)
        built = BuiltIndex(
            _build("sequential", data, counter),
            counter,
            model_name="qfd",
            build_costs=IndexCosts(0, 0),
        )
        with pytest.raises(StorageError, match="not built through a model pipeline"):
            built.save(tmp_path / "nope")

    def test_save_records_build_costs(self, matrix, data, tmp_path) -> None:
        built = QFDModel(matrix).build_index("pivot-table", data, n_pivots=4)
        path = built.save(tmp_path / "costs")
        snapshot = read_snapshot(path)
        assert int(snapshot.meta["build_distance_computations"]) == (
            built.build_costs.distance_computations
        )
        assert str(snapshot.meta["model"]) == "qfd"


class TestLegacyShims:
    def test_save_load_pivot_table_round_trip(self, matrix, data, tmp_path) -> None:
        counter = _counter(matrix)
        table = PivotTable(data, counter, n_pivots=4)
        with pytest.warns(DeprecationWarning, match="save_pivot_table is deprecated"):
            save_pivot_table(table, tmp_path / "pt")
        fresh = _counter(matrix)
        with pytest.warns(DeprecationWarning, match="load_pivot_table is deprecated"):
            loaded = load_pivot_table(tmp_path / "pt", fresh)
        q = data[1]
        assert same_neighbors(loaded.knn_search(q, 5), table.knn_search(q, 5))

    def test_load_pivot_table_reads_snapshot_format(
        self, matrix, data, tmp_path
    ) -> None:
        # Archives written by the generic save_index are readable through
        # the legacy entry point too.
        table = PivotTable(data, _counter(matrix), n_pivots=4)
        path = save_index(table, tmp_path / "generic")
        with pytest.warns(DeprecationWarning):
            loaded = load_pivot_table(path, _counter(matrix))
        assert loaded.size == table.size

    def test_load_pivot_table_wrong_kind_message(self, matrix, tmp_path) -> None:
        save_qmap(QMap(matrix), tmp_path / "map")
        with pytest.warns(DeprecationWarning):
            with pytest.raises(StorageError, match="expected 'pivot-table'"):
                load_pivot_table(tmp_path / "map", _counter(matrix))

    def test_load_pivot_table_rejects_other_method(self, matrix, data, tmp_path) -> None:
        tree = _build("mtree", data, _counter(matrix))
        path = save_index(tree, tmp_path / "tree")
        with pytest.warns(DeprecationWarning):
            with pytest.raises(StorageError, match="'mtree' index snapshot"):
                load_pivot_table(path, _counter(matrix))

    def test_load_pivot_table_wrong_distance(self, matrix, data, tmp_path) -> None:
        table = PivotTable(data, _counter(matrix), n_pivots=4)
        with pytest.warns(DeprecationWarning):
            save_pivot_table(table, tmp_path / "wd")
        with pytest.warns(DeprecationWarning):
            with pytest.raises(StorageError, match="disagrees with the stored table"):
                load_pivot_table(tmp_path / "wd", _counter(np.eye(6) * 5.0))


class TestSnapshotKindConstant:
    def test_markers(self, matrix, data, tmp_path) -> None:
        index = _build("sequential", data, _counter(matrix))
        path = save_index(index, tmp_path / "markers")
        with np.load(path) as archive:
            assert str(archive["kind"]) == SNAPSHOT_KIND
            assert int(archive["format_version"]) == FORMAT_VERSION
            assert str(archive["method"]) == "sequential"
