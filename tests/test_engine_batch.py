"""Batch engine correctness — results bit-identical to single queries.

The batch planner's contract (and the reason it can serve the paper's
experiments at all): for every access method and every executor, the
batched answer to a query is *exactly* the list the single-query API
returns — same floats, same order.  The vectorized fast paths (sequential
file, pivot table) are designed around rounding-free reductions so the
comparison here is ``==``, not approx.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import histogram_workload
from repro.distances import CountingDistance, euclidean, euclidean_one_to_many
from repro.engine import (
    ProcessPoolBatchExecutor,
    QueryBatch,
    SerialExecutor,
    ThreadPoolBatchExecutor,
    TraceCollector,
    resolve_executor,
)
from repro.exceptions import DimensionMismatchError, QueryError
from repro.mam import AccessMethod, PivotTable, SequentialFile
from repro.models import MAM_REGISTRY, SAM_REGISTRY
from repro.models.base import instantiate

from .test_dynamic_inserts import METHOD_KWARGS


@pytest.fixture(scope="module")
def workload():
    return histogram_workload(220, 6, bins_per_channel=4, seed=91)


def _build(method: str, workload) -> AccessMethod:
    counter = CountingDistance(euclidean, one_to_many=euclidean_one_to_many)
    return instantiate(method, workload.database, counter, METHOD_KWARGS[method])


def _radius_for(am: AccessMethod, query: np.ndarray) -> float:
    """A radius that catches a handful of objects (workload-scaled)."""
    return am.knn_search(query, 8)[-1].distance


@pytest.mark.parametrize("method", sorted(MAM_REGISTRY) + sorted(SAM_REGISTRY))
class TestBatchBitIdentity:
    def test_knn_serial_and_thread(self, method, workload) -> None:
        am = _build(method, workload)
        expected = [am.knn_search(q, 7) for q in workload.queries]
        for executor in ("serial", "thread"):
            got = am.knn_search_batch(workload.queries, 7, executor=executor, workers=3)
            assert got == expected, f"{method} knn batch diverged under {executor}"

    def test_range_serial_and_thread(self, method, workload) -> None:
        am = _build(method, workload)
        radius = _radius_for(am, workload.queries[0])
        expected = [am.range_search(q, radius) for q in workload.queries]
        for executor in ("serial", "thread"):
            got = am.range_search_batch(
                workload.queries, radius, executor=executor, workers=3
            )
            assert got == expected, f"{method} range batch diverged under {executor}"

    def test_traces_one_per_query(self, method, workload) -> None:
        am = _build(method, workload)
        collector = TraceCollector()
        results = am.knn_search_batch(workload.queries, 5, collector=collector)
        traces = collector.traces
        assert [t.query_index for t in traces] == list(range(len(results)))
        assert [t.results for t in traces] == [len(r) for r in results]
        assert all(t.kind == "knn" and t.parameter == 5 for t in traces)


class TestProcessExecutor:
    """The chunked process pool; kept small — workers are real processes."""

    def test_results_match_serial(self, workload) -> None:
        am = PivotTable(
            workload.database, euclidean, n_pivots=6, rng=np.random.default_rng(0)
        )
        expected = am.knn_search_batch(workload.queries, 5, executor="serial")
        got = am.knn_search_batch(
            workload.queries, 5, executor="process", workers=2
        )
        assert got == expected

    def test_traces_come_back_from_children(self, workload) -> None:
        am = SequentialFile(workload.database, euclidean)
        collector = TraceCollector()
        am.knn_search_batch(
            workload.queries, 3, executor="process", workers=2, collector=collector
        )
        traces = collector.traces
        assert [t.query_index for t in traces] == list(range(len(workload.queries)))
        assert all(t.distance_evaluations == am.size for t in traces)

    def test_unpicklable_distance_raises_query_error(self, workload) -> None:
        am = SequentialFile(workload.database, lambda u, v: float(np.abs(u - v).sum()))
        with pytest.raises(QueryError, match="thread"):
            am.knn_search_batch(workload.queries, 3, executor="process", workers=2)


class TestQueryBatchValidation:
    def test_negative_radius_rejected(self) -> None:
        with pytest.raises(QueryError):
            QueryBatch.range_queries(np.ones((2, 4)), -0.5)

    def test_k_below_one_rejected(self) -> None:
        with pytest.raises(QueryError):
            QueryBatch.knn_queries(np.ones((2, 4)), 0)

    def test_wrong_dim_batch_rejected(self, workload) -> None:
        am = SequentialFile(workload.database, euclidean)
        with pytest.raises(DimensionMismatchError):
            am.knn_search_batch(np.ones((3, am.dim + 1)), 2)

    def test_unknown_executor_rejected(self, workload) -> None:
        am = SequentialFile(workload.database, euclidean)
        with pytest.raises(QueryError, match="executor"):
            am.knn_search_batch(workload.queries, 2, executor="gpu")

    def test_empty_batch_returns_empty(self, workload) -> None:
        am = SequentialFile(workload.database, euclidean)
        assert am.knn_search_batch(np.empty((0, am.dim)), 3) == []

    def test_k_clamped_to_size(self, workload) -> None:
        am = SequentialFile(workload.database[:5], euclidean)
        results = am.knn_search_batch(workload.queries, 50)
        assert all(len(r) == 5 for r in results)


class TestExecutorResolution:
    def test_default_is_serial(self) -> None:
        assert isinstance(resolve_executor(None), SerialExecutor)

    def test_workers_imply_threads(self) -> None:
        exec_ = resolve_executor(None, workers=4)
        assert isinstance(exec_, ThreadPoolBatchExecutor)
        assert exec_.workers == 4

    def test_names_resolve(self) -> None:
        assert isinstance(resolve_executor("serial"), SerialExecutor)
        assert isinstance(resolve_executor("thread", workers=2), ThreadPoolBatchExecutor)
        assert isinstance(
            resolve_executor("process", workers=2, chunk_size=8),
            ProcessPoolBatchExecutor,
        )

    def test_instance_passes_through(self) -> None:
        exec_ = ThreadPoolBatchExecutor(workers=2)
        assert resolve_executor(exec_) is exec_

    def test_planner_choice_resolves_duck_typed(self) -> None:
        """Any object with a string ``name`` works — no planner import."""
        from repro.planner import ExecutorChoice

        choice = ExecutorChoice(name="thread", workers=3, chunk_size=4)
        exec_ = resolve_executor(choice)
        assert isinstance(exec_, ThreadPoolBatchExecutor)
        assert exec_.workers == 3
        # Explicit arguments override the choice's own fields.
        assert resolve_executor(choice, workers=5).workers == 5
        assert isinstance(
            resolve_executor(ExecutorChoice(name="serial")), SerialExecutor
        )

    def test_nameless_object_is_rejected(self) -> None:
        with pytest.raises(QueryError):
            resolve_executor(object())
