"""Property-based tests (hypothesis) for the access methods.

Random databases, random queries, random parameters — every index must
always agree with the sequential scan (DESIGN.md invariant 4), and the two
models must always agree with each other (invariant 5).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import random_spd_matrix
from repro.distances import euclidean
from repro.mam import GNAT, MIndex, MTree, PagedMTree, PivotTable, SATree, SequentialFile, VPTree
from repro.models import QFDModel, QMapModel
from repro.sam import RTree, VAFile, XTree

from .helpers import same_neighbors


def _database(seed: int, m: int, dim: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    # A mix of clustered mass and a few outliers stresses the split logic.
    centers = rng.uniform(-1.0, 1.0, size=(3, dim))
    labels = rng.integers(0, 3, size=m)
    data = centers[labels] + rng.normal(0.0, 0.2, size=(m, dim))
    data[:: max(m // 5, 1)] += rng.uniform(-3.0, 3.0, size=dim)
    return data


class TestIndexesAgreeWithScan:
    @given(
        seed=st.integers(0, 1_000),
        m=st.integers(5, 120),
        dim=st.integers(1, 6),
        k=st.integers(1, 10),
        capacity=st.integers(2, 10),
    )
    @settings(max_examples=25, deadline=None)
    def test_mtree_knn(self, seed, m, dim, k, capacity) -> None:
        data = _database(seed, m, dim)
        rng = np.random.default_rng(seed + 1)
        q = rng.uniform(-2.0, 2.0, size=dim)
        scan = SequentialFile(data, euclidean)
        tree = MTree(data, euclidean, capacity=capacity, rng=rng)
        assert same_neighbors(tree.knn_search(q, k), scan.knn_search(q, k))

    @given(
        seed=st.integers(0, 1_000),
        m=st.integers(5, 120),
        dim=st.integers(1, 6),
        p=st.integers(1, 12),
        radius=st.floats(0.0, 3.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_pivot_table_range(self, seed, m, dim, p, radius) -> None:
        data = _database(seed, m, dim)
        rng = np.random.default_rng(seed + 1)
        q = rng.uniform(-2.0, 2.0, size=dim)
        scan = SequentialFile(data, euclidean)
        pt = PivotTable(data, euclidean, n_pivots=min(p, m), rng=rng)
        assert same_neighbors(pt.range_search(q, radius), scan.range_search(q, radius))

    @given(
        seed=st.integers(0, 1_000),
        m=st.integers(5, 120),
        dim=st.integers(1, 6),
        k=st.integers(1, 8),
        leaf=st.integers(1, 10),
    )
    @settings(max_examples=25, deadline=None)
    def test_vptree_knn(self, seed, m, dim, k, leaf) -> None:
        data = _database(seed, m, dim)
        rng = np.random.default_rng(seed + 1)
        q = rng.uniform(-2.0, 2.0, size=dim)
        scan = SequentialFile(data, euclidean)
        tree = VPTree(data, euclidean, leaf_size=leaf, rng=rng)
        assert same_neighbors(tree.knn_search(q, k), scan.knn_search(q, k))

    @given(
        seed=st.integers(0, 1_000),
        m=st.integers(5, 120),
        dim=st.integers(1, 6),
        k=st.integers(1, 8),
        arity=st.integers(2, 8),
    )
    @settings(max_examples=25, deadline=None)
    def test_gnat_knn(self, seed, m, dim, k, arity) -> None:
        data = _database(seed, m, dim)
        rng = np.random.default_rng(seed + 1)
        q = rng.uniform(-2.0, 2.0, size=dim)
        scan = SequentialFile(data, euclidean)
        tree = GNAT(data, euclidean, arity=arity, leaf_size=arity + 2, rng=rng)
        assert same_neighbors(tree.knn_search(q, k), scan.knn_search(q, k))

    @given(
        seed=st.integers(0, 1_000),
        m=st.integers(5, 120),
        dim=st.integers(1, 6),
        k=st.integers(1, 8),
        capacity=st.integers(2, 12),
    )
    @settings(max_examples=25, deadline=None)
    def test_rtree_knn(self, seed, m, dim, k, capacity) -> None:
        data = _database(seed, m, dim)
        q = np.random.default_rng(seed + 1).uniform(-2.0, 2.0, size=dim)
        scan = SequentialFile(data, euclidean)
        tree = RTree(data, capacity=capacity)
        assert same_neighbors(tree.knn_search(q, k), scan.knn_search(q, k), tol=1e-7)

    @given(
        seed=st.integers(0, 1_000),
        m=st.integers(5, 120),
        dim=st.integers(1, 6),
        k=st.integers(1, 8),
        bits=st.integers(1, 6),
    )
    @settings(max_examples=25, deadline=None)
    def test_vafile_knn(self, seed, m, dim, k, bits) -> None:
        data = _database(seed, m, dim)
        q = np.random.default_rng(seed + 1).uniform(-2.0, 2.0, size=dim)
        scan = SequentialFile(data, euclidean)
        va = VAFile(data, bits=bits)
        assert same_neighbors(va.knn_search(q, k), scan.knn_search(q, k), tol=1e-7)

    @given(
        seed=st.integers(0, 1_000),
        m=st.integers(5, 100),
        dim=st.integers(1, 6),
        k=st.integers(1, 8),
        p=st.integers(1, 10),
    )
    @settings(max_examples=25, deadline=None)
    def test_mindex_knn(self, seed, m, dim, k, p) -> None:
        data = _database(seed, m, dim)
        rng = np.random.default_rng(seed + 1)
        q = rng.uniform(-2.0, 2.0, size=dim)
        scan = SequentialFile(data, euclidean)
        index = MIndex(data, euclidean, n_pivots=min(p, m), rng=rng)
        assert same_neighbors(index.knn_search(q, k), scan.knn_search(q, k))

    @given(
        seed=st.integers(0, 1_000),
        m=st.integers(5, 100),
        dim=st.integers(1, 6),
        k=st.integers(1, 8),
    )
    @settings(max_examples=25, deadline=None)
    def test_sat_knn(self, seed, m, dim, k) -> None:
        data = _database(seed, m, dim)
        rng = np.random.default_rng(seed + 1)
        q = rng.uniform(-2.0, 2.0, size=dim)
        scan = SequentialFile(data, euclidean)
        tree = SATree(data, euclidean, rng=rng)
        assert same_neighbors(tree.knn_search(q, k), scan.knn_search(q, k))

    @given(
        seed=st.integers(0, 1_000),
        m=st.integers(5, 80),
        dim=st.integers(1, 6),
        k=st.integers(1, 8),
        capacity=st.integers(2, 8),
    )
    @settings(max_examples=20, deadline=None)
    def test_paged_mtree_knn(self, seed, m, dim, k, capacity) -> None:
        data = _database(seed, m, dim)
        rng = np.random.default_rng(seed + 1)
        q = rng.uniform(-2.0, 2.0, size=dim)
        scan = SequentialFile(data, euclidean)
        tree = PagedMTree(data, euclidean, capacity=capacity, cache_pages=2, rng=rng)
        try:
            assert same_neighbors(tree.knn_search(q, k), scan.knn_search(q, k))
        finally:
            tree.close()

    @given(
        seed=st.integers(0, 1_000),
        m=st.integers(5, 100),
        dim=st.integers(1, 6),
        k=st.integers(1, 8),
        capacity=st.integers(2, 10),
        max_overlap=st.floats(0.0, 1.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_xtree_knn(self, seed, m, dim, k, capacity, max_overlap) -> None:
        data = _database(seed, m, dim)
        q = np.random.default_rng(seed + 1).uniform(-2.0, 2.0, size=dim)
        scan = SequentialFile(data, euclidean)
        tree = XTree(data, capacity=capacity, max_overlap=max_overlap)
        assert same_neighbors(tree.knn_search(q, k), scan.knn_search(q, k), tol=1e-7)

    @given(
        seed=st.integers(0, 1_000),
        m=st.integers(6, 60),
        dim=st.integers(1, 5),
        n_inserts=st.integers(1, 15),
        k=st.integers(1, 6),
    )
    @settings(max_examples=20, deadline=None)
    def test_inserts_preserve_exactness(self, seed, m, dim, n_inserts, k) -> None:
        """Random structure + random inserts must stay scan-exact."""
        data = _database(seed, m + n_inserts, dim)
        rng = np.random.default_rng(seed + 1)
        q = rng.uniform(-2.0, 2.0, size=dim)
        scan = SequentialFile(data, euclidean)
        tree = MTree(data[:m], euclidean, capacity=4, rng=rng)
        for row in data[m:]:
            tree.insert(row)
        assert same_neighbors(tree.knn_search(q, k), scan.knn_search(q, k))


class TestModelsAgree:
    @given(
        seed=st.integers(0, 1_000),
        m=st.integers(5, 60),
        dim=st.integers(2, 6),
        k=st.integers(1, 6),
    )
    @settings(max_examples=20, deadline=None)
    def test_qfd_vs_qmap_mtree(self, seed, m, dim, k) -> None:
        data = _database(seed, m, dim)
        matrix = random_spd_matrix(dim, rng=np.random.default_rng(seed), condition=20.0)
        q = np.random.default_rng(seed + 1).uniform(-2.0, 2.0, size=dim)
        i1 = QFDModel(matrix).build_index(
            "mtree", data, capacity=4, rng=np.random.default_rng(9)
        )
        i2 = QMapModel(matrix).build_index(
            "mtree", data, capacity=4, rng=np.random.default_rng(9)
        )
        assert same_neighbors(i1.knn_search(q, k), i2.knn_search(q, k), tol=1e-6)
