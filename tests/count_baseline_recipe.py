"""Shared recipe for the tree-MAM logical distance-count baseline.

The paper's experiments measure *logical distance computations*; the kernel
layer may reorganize how distances are physically evaluated (node-level
batches, Gram expansion, query contexts) but must never change how many are
logically charged.  This module builds every tree MAM under both models over
a fixed seeded workload and records the build and per-query counts.

``tests/fixtures/count_baseline.json`` was generated from the pre-kernel
code; :mod:`tests.test_count_baseline` replays this recipe and asserts
exact equality, so any count drift introduced by a batching rewrite fails
loudly.  Regenerate (only from a tree whose counts are the intended
baseline) with::

    PYTHONPATH=src python tests/count_baseline_recipe.py
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.datasets import histogram_workload
from repro.datasets.workloads import calibrate_radius
from repro.models import QFDModel, QMapModel

FIXTURE_PATH = Path(__file__).parent / "fixtures" / "count_baseline.json"

#: The six tree MAMs whose traversal loops the kernel layer batches.
TREE_METHODS: dict[str, dict] = {
    "mtree": {"capacity": 8},
    "paged-mtree": {"capacity": 8, "cache_pages": 4},
    "vptree": {"leaf_size": 6},
    "gnat": {"arity": 5, "leaf_size": 10},
    "sat": {},
    "mindex": {"n_pivots": 8},
}

M = 150
N_QUERIES = 4
K = 7
RADIUS_TARGET = 10  # objects per range query (selectivity), calibrated once


def baseline_workload():
    """The fixed workload every baseline run shares (64-d histograms)."""
    return histogram_workload(M, N_QUERIES, bins_per_channel=4, seed=2011)


def compute_baseline(radius: float | None = None) -> dict:
    """Build + query counts for every tree MAM under both models.

    Pass the fixture's stored *radius* when replaying so the comparison
    cannot depend on how the radius itself was derived.
    """
    workload = baseline_workload()
    if radius is None:
        radius = calibrate_radius(workload, RADIUS_TARGET)
    out: dict = {
        "m": M,
        "n_queries": N_QUERIES,
        "k": K,
        "radius": radius,
        "methods": {},
    }
    models = (("qfd", QFDModel(workload.matrix)), ("qmap", QMapModel(workload.matrix)))
    for model_name, model in models:
        for method, kwargs in TREE_METHODS.items():
            built = model.build_index(method, workload.database, **kwargs)
            entry: dict = {
                "build": built.build_costs.distance_computations,
                "knn": [],
                "range": [],
            }
            for q in workload.queries:
                built.reset_query_costs()
                built.knn_search(q, K)
                entry["knn"].append(built.query_costs().distance_computations)
            for q in workload.queries:
                built.reset_query_costs()
                built.range_search(q, radius)
                entry["range"].append(built.query_costs().distance_computations)
            out["methods"][f"{model_name}/{method}"] = entry
    # Bulk-loaded M-tree: the batched seed/medoid loops must neither change
    # the charged build count nor the resulting tree structure.
    bulk = QFDModel(workload.matrix).build_index(
        "mtree", workload.database, capacity=8, bulk_load=True
    )
    tree = bulk.access_method
    out["mtree_bulk"] = {
        "build": bulk.build_costs.distance_computations,
        "node_count": tree.node_count(),
        "height": tree.height(),
        "knn": [],
    }
    for q in workload.queries:
        bulk.reset_query_costs()
        bulk.knn_search(q, K)
        out["mtree_bulk"]["knn"].append(bulk.query_costs().distance_computations)
    return out


def main() -> None:
    baseline = compute_baseline()
    FIXTURE_PATH.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
    print(f"wrote {FIXTURE_PATH}")


if __name__ == "__main__":
    main()
