"""Process-executor observability merge: exact counters, complete timelines.

The acceptance contract for cross-process trace propagation (the part of
the request-correlation work that is easy to get silently wrong):

* ``--executor process`` batches charge the parent registry's
  ``repro_distance_evaluations_total{phase=query}`` **exactly** — the
  worker deltas merged on join equal the per-query trace counts summed,
  for every (model, method) pair, with answers bit-identical to serial;
* worker-side ``query/chunk/*`` spans come back carrying the batch's
  ``trace_id`` and the batch span's id as their parent, and render as
  separate worker-process lanes in the Chrome trace export;
* a query that raises is charged to ``repro_query_errors_total``, closes
  its span with ``status="error"``, and leaves a correlated
  ``query_error`` log record.
"""

from __future__ import annotations

import io
import json
import os

import numpy as np
import pytest

from repro.core import random_spd_matrix
from repro.engine import TraceCollector
from repro.models import QFDModel, QMapModel
from repro.models.base import MAM_REGISTRY, SAM_REGISTRY
from repro.obs import (
    JsonLinesLogger,
    MetricsRegistry,
    chrome_trace,
    use_logger,
    use_registry,
)
from repro.obs.instruments import DISTANCE_EVALUATIONS, QUERY_ERRORS

# Same conventions as tests/test_obs_integration.py (tests are not a
# package, so the helpers are mirrored here rather than imported).
METHOD_KWARGS: dict[str, dict[str, int]] = {
    "pivot-table": {"n_pivots": 4},
    "mindex": {"n_pivots": 4},
    "mtree": {"capacity": 8},
    "paged-mtree": {"capacity": 8},
    "vptree": {"leaf_size": 4},
    "gnat": {"arity": 3, "leaf_size": 4},
    "rtree": {"capacity": 8},
    "xtree": {"capacity": 8},
    "vafile": {"bits": 4},
}

ALL_PAIRS = [("qfd", m) for m in MAM_REGISTRY] + [
    ("qmap", m) for m in (*MAM_REGISTRY, *SAM_REGISTRY)
]

#: Disk-backed stores hold open file handles and cannot be pickled into
#: worker processes — the engine refuses them with QueryError (verified
#: below), so the merge contract applies to every *process-capable* pair.
UNPICKLABLE_METHODS = {"disk-sequential", "paged-mtree"}
PROCESS_PAIRS = [
    (model, method)
    for model, method in ALL_PAIRS
    if method not in UNPICKLABLE_METHODS
]

DIM = 6


def _workload(seed: int, m: int = 50, n_queries: int = 4):
    rng = np.random.default_rng(seed)
    matrix = random_spd_matrix(DIM, rng=rng, condition=6.0)
    data = rng.uniform(0.0, 1.0, size=(m, DIM))
    queries = rng.uniform(0.0, 1.0, size=(n_queries, DIM))
    return matrix, data, queries


def _build(model_name: str, method: str, matrix, data):
    model = (QMapModel if model_name == "qmap" else QFDModel)(matrix)
    return model.build_index(method, data, **METHOD_KWARGS.get(method, {}))


def _registry_evaluations(reg: MetricsRegistry, model: str, method: str) -> int:
    counter = reg.counter(DISTANCE_EVALUATIONS)
    labels = {"model": model, "method": method, "phase": "query"}
    return int(
        counter.value(kind="scalar", **labels)
        + counter.value(kind="batched", **labels)
    )

#: Six queries, chunks of two, two workers: the engine must pool (three
#: chunks across two processes) rather than degrade to the inline path.
N_QUERIES = 6
CHUNK = 2
WORKERS = 2


def _run_process_batch(model_name, method, *, seed=31, k=3):
    matrix, data, queries = _workload(seed, m=40, n_queries=N_QUERIES)
    built = _build(model_name, method, matrix, data)

    serial = built.knn_search_batch(queries, k, executor="serial")

    built = _build(model_name, method, matrix, data)
    built.reset_query_costs()
    reg = MetricsRegistry()
    collector = TraceCollector()
    with use_registry(reg):
        pooled = built.knn_search_batch(
            queries,
            k,
            executor="process",
            workers=WORKERS,
            chunk_size=CHUNK,
            collector=collector,
        )
    return built, reg, collector, serial, pooled


class TestExactCounterMerge:
    """Worker registry deltas fold into the parent without loss or double-count."""

    @pytest.mark.parametrize("model_name,method", PROCESS_PAIRS)
    def test_merge_is_exact_for_every_pair(self, model_name, method) -> None:
        built, reg, collector, serial, pooled = _run_process_batch(model_name, method)

        assert pooled == serial, f"{model_name}/{method}: process != serial answers"

        trace_total = sum(t.distance_evaluations for t in collector.traces)
        counted = built.query_costs().distance_computations
        mirrored = _registry_evaluations(reg, model_name, method)
        assert counted == trace_total, (
            f"{model_name}/{method}: CountingDistance has {counted}, "
            f"summed worker traces say {trace_total}"
        )
        assert mirrored == trace_total, (
            f"{model_name}/{method}: registry mirrors {mirrored}, "
            f"summed worker traces say {trace_total}"
        )

    @pytest.mark.parametrize("method", sorted(UNPICKLABLE_METHODS))
    def test_disk_backed_methods_are_refused_not_miscounted(self, method) -> None:
        from repro.exceptions import QueryError

        matrix, data, queries = _workload(5, m=30, n_queries=N_QUERIES)
        built = _build("qmap", method, matrix, data)
        with pytest.raises(QueryError, match="pickle"):
            built.knn_search_batch(
                queries, 3, executor="process", workers=WORKERS, chunk_size=CHUNK
            )

    def test_chunk_spans_come_back_with_worker_pids(self) -> None:
        _, reg, _, _, _ = _run_process_batch("qmap", "sequential")
        chunks = [r for r in reg.spans if r.name == "query/chunk/knn"]
        assert len(chunks) == -(-N_QUERIES // CHUNK)  # one span per chunk
        worker_pids = {r.pid for r in chunks}
        assert worker_pids and os.getpid() not in worker_pids
        # span_seconds landed for the merged worker spans too (chunk
        # spans are labeled with their method and per-chunk query count).
        hist = reg.histogram("repro_span_seconds", "")
        state = hist.state(
            span="query/chunk/knn",
            status="ok",
            method="sequential",
            queries=str(CHUNK),
        )
        assert state.count == len(chunks)


class TestCrossProcessTraceIds:
    """Worker spans join the parent's trace, not a fresh one."""

    def test_chunk_spans_link_to_the_batch_span(self) -> None:
        _, reg, _, _, _ = _run_process_batch("qfd", "pivot-table")
        (batch,) = [r for r in reg.spans if r.name == "query/batch/knn"]
        chunks = [r for r in reg.spans if r.name == "query/chunk/knn"]
        assert batch.trace_id
        assert {r.trace_id for r in chunks} == {batch.trace_id}
        assert {r.parent_span_id for r in chunks} == {batch.span_id}

    def test_timeline_export_has_worker_lanes(self) -> None:
        _, reg, _, _, _ = _run_process_batch("qmap", "mtree")
        doc = chrome_trace(spans=reg.spans)
        events = doc["traceEvents"]
        json.dumps(doc)  # must be a valid trace document as-is

        (batch,) = [r for r in reg.spans if r.name == "query/batch/knn"]
        slices = [e for e in events if e.get("ph") == "X"]
        chunk_slices = [e for e in slices if e["name"] == "query/chunk/knn"]
        assert chunk_slices
        # Every chunk slice sits on a worker-process lane with a named
        # metadata row, and carries the batch's trace ids in its args.
        lane_names = {
            e["pid"]: e["args"]["name"]
            for e in events
            if e.get("ph") == "M" and e.get("name") == "process_name"
        }
        for sl in chunk_slices:
            assert sl["pid"] in lane_names
            assert lane_names[sl["pid"]].startswith("repro worker process ")
            assert sl["args"]["trace_id"] == batch.trace_id
            assert sl["args"]["parent_span_id"] == batch.span_id


class TestQueryErrorAccounting:
    """A raising query leaves a counter, an error span, and a log record."""

    def _broken_index(self):
        matrix, data, _ = _workload(7, m=30, n_queries=1)
        built = _build("qmap", "sequential", matrix, data)

        def boom(*args, **kwargs):
            raise RuntimeError("synthetic query failure")

        built._am.knn_search = boom
        built._am.knn_search_batch = boom
        return built

    def test_single_query_error_counter_and_span_status(self) -> None:
        built = self._broken_index()
        reg = MetricsRegistry()
        with use_registry(reg):
            with pytest.raises(RuntimeError, match="synthetic"):
                built.knn_search([0.5] * 6, 3)
        value = reg.counter(QUERY_ERRORS).value(
            model="qmap", method="sequential", kind="knn", error="RuntimeError"
        )
        assert value == 1

    def test_batch_error_marks_the_span(self) -> None:
        matrix, data, queries = _workload(11, m=30, n_queries=3)
        built = _build("qmap", "sequential", matrix, data)
        built._am.knn_search_batch = self._broken_index()._am.knn_search_batch
        reg = MetricsRegistry()
        with use_registry(reg):
            with pytest.raises(RuntimeError):
                built.knn_search_batch(queries, 2)
        assert reg.counter(QUERY_ERRORS).value(
            model="qmap", method="sequential", kind="knn", error="RuntimeError"
        ) == 1

    def test_error_log_record_is_trace_correlated(self) -> None:
        built = self._broken_index()
        stream = io.StringIO()
        reg = MetricsRegistry()
        with use_registry(reg), use_logger(JsonLinesLogger(stream)):
            with pytest.raises(RuntimeError):
                built.knn_search([0.5] * 6, 3)
        records = [json.loads(line) for line in stream.getvalue().splitlines()]
        (error_record,) = [r for r in records if r["event"] == "query_error"]
        assert error_record["error"] == "RuntimeError"
        assert error_record["message"] == "synthetic query failure"
        assert error_record["model"] == "qmap"
        assert error_record["method"] == "sequential"
        assert error_record["trace_id"]
