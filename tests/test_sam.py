"""Tests for repro.sam — R-tree and VA-file specifics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import clustered_histograms
from repro.distances import CountingDistance, euclidean, euclidean_one_to_many
from repro.exceptions import QueryError
from repro.mam import SequentialFile
from repro.mam.base import DistancePort
from repro.sam import RTree, VAFile

from .helpers import assert_same_neighbors


@pytest.fixture(scope="module")
def data():
    return clustered_histograms(300, 4, themes=6, rng=np.random.default_rng(61))


@pytest.fixture(scope="module")
def scan(data):
    return SequentialFile(data, euclidean)


class TestRTree:
    def test_exact_knn(self, data, scan) -> None:
        tree = RTree(data, capacity=12)
        for q in data[:4]:
            assert_same_neighbors(tree.knn_search(q, 7), scan.knn_search(q, 7))

    def test_exact_range(self, data, scan) -> None:
        tree = RTree(data, capacity=12)
        q = data[50]
        for radius in (0.0, 0.05, 0.3):
            assert_same_neighbors(tree.range_search(q, radius), scan.range_search(q, radius))

    def test_l1_queries(self, data) -> None:
        from repro.distances import manhattan

        tree = RTree(data, capacity=12, p=1.0)
        scan_l1 = SequentialFile(data, manhattan)
        q = data[7]
        assert_same_neighbors(tree.knn_search(q, 5), scan_l1.knn_search(q, 5), tol=1e-7)

    def test_linf_queries(self, data) -> None:
        from repro.distances import chessboard

        tree = RTree(data, capacity=12, p=float("inf"))
        scan_inf = SequentialFile(data, chessboard)
        q = data[9]
        assert_same_neighbors(tree.knn_search(q, 5), scan_inf.knn_search(q, 5), tol=1e-7)

    def test_rejects_bad_params(self, data) -> None:
        with pytest.raises(QueryError):
            RTree(data, capacity=1)
        with pytest.raises(QueryError):
            RTree(data, p=0.5)

    def test_height(self, data) -> None:
        tree = RTree(data, capacity=8)
        assert tree.height() >= 2

    def test_injected_counter(self, data) -> None:
        counter = CountingDistance(euclidean, one_to_many=euclidean_one_to_many)
        tree = RTree(data, capacity=12, refine_distance=DistancePort(counter))
        counter.reset()
        tree.knn_search(data[0], 3)
        assert counter.count > 0

    def test_single_point(self) -> None:
        tree = RTree(np.ones((1, 3)))
        assert tree.knn_search(np.zeros(3), 1)[0].index == 0

    def test_duplicate_points(self) -> None:
        rows = np.tile(np.full(3, 0.5), (30, 1))
        tree = RTree(rows, capacity=4)
        assert len(tree.knn_search(rows[0], 10)) == 10


class TestVAFile:
    def test_exact_knn(self, data, scan) -> None:
        va = VAFile(data, bits=4)
        for q in data[:4]:
            assert_same_neighbors(va.knn_search(q, 7), scan.knn_search(q, 7))

    def test_exact_range(self, data, scan) -> None:
        va = VAFile(data, bits=4)
        q = data[11]
        for radius in (0.0, 0.05, 0.3):
            assert_same_neighbors(va.range_search(q, radius), scan.range_search(q, radius))

    def test_exact_with_few_bits(self, data, scan) -> None:
        va = VAFile(data, bits=1)
        q = data[4]
        assert_same_neighbors(va.knn_search(q, 5), scan.knn_search(q, 5))

    def test_more_bits_fewer_candidates(self, data) -> None:
        q = data[0]
        ratios = [VAFile(data, bits=b).candidate_ratio(q, 5) for b in (1, 3, 6)]
        assert ratios[2] <= ratios[0]

    def test_candidate_ratio_bounds(self, data) -> None:
        va = VAFile(data, bits=4)
        ratio = va.candidate_ratio(data[0], 5)
        assert 0.0 < ratio <= 1.0

    def test_candidate_ratio_rejects_bad_k(self, data) -> None:
        va = VAFile(data, bits=4)
        with pytest.raises(QueryError):
            va.candidate_ratio(data[0], 0)

    def test_approximation_is_compact(self, data) -> None:
        va = VAFile(data, bits=4)
        raw_bytes = data.size * data.itemsize
        assert va.approximation_bytes < raw_bytes

    def test_rejects_bad_bits(self, data) -> None:
        with pytest.raises(QueryError):
            VAFile(data, bits=0)
        with pytest.raises(QueryError):
            VAFile(data, bits=17)

    def test_refinement_charges_counter(self, data) -> None:
        counter = CountingDistance(euclidean, one_to_many=euclidean_one_to_many)
        va = VAFile(data, bits=4, refine_distance=DistancePort(counter))
        counter.reset()
        va.knn_search(data[0], 3)
        assert 0 < counter.count < len(data)

    def test_identical_points(self) -> None:
        rows = np.tile(np.full(3, 0.5), (20, 1))
        va = VAFile(rows, bits=2)
        assert len(va.knn_search(rows[0], 6)) == 6
