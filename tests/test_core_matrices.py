"""Tests for repro.core.matrices — QFD matrix constructors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.color import lab_bin_prototypes
from repro.core import (
    band_matrix,
    diagonal_matrix,
    gaussian_kernel_matrix,
    identity_matrix,
    is_positive_definite,
    is_symmetric,
    laplacian_kernel_matrix,
    prototype_similarity_matrix,
    random_spd_matrix,
)
from repro.exceptions import MatrixError, NotPositiveDefiniteError


class TestIdentityAndDiagonal:
    def test_identity(self) -> None:
        assert np.array_equal(identity_matrix(4), np.eye(4))

    def test_identity_rejects_bad_dim(self) -> None:
        with pytest.raises(MatrixError):
            identity_matrix(0)

    def test_diagonal(self) -> None:
        assert np.array_equal(diagonal_matrix([1.0, 2.0]), np.diag([1.0, 2.0]))

    def test_diagonal_rejects_zero_weight(self) -> None:
        with pytest.raises(NotPositiveDefiniteError):
            diagonal_matrix([1.0, 0.0])

    def test_diagonal_rejects_negative_weight(self) -> None:
        with pytest.raises(NotPositiveDefiniteError):
            diagonal_matrix([1.0, -2.0])


class TestPrototypeSimilarityMatrix:
    """The Hafner recipe A_ij = 1 - d_ij / d_max (Sections 1.2 and 5.1)."""

    def test_unit_diagonal(self) -> None:
        repair = prototype_similarity_matrix(lab_bin_prototypes(2))
        assert np.allclose(np.diag(repair.matrix), 1.0 + repair.shift)

    def test_symmetric(self) -> None:
        repair = prototype_similarity_matrix(lab_bin_prototypes(3))
        assert is_symmetric(repair.matrix)

    def test_farthest_pair_entry_is_zero(self) -> None:
        prototypes = np.array([[0.0, 0.0], [1.0, 0.0], [3.0, 0.0]])
        repair = prototype_similarity_matrix(prototypes)
        # d_max is between prototypes 0 and 2 -> A_02 == 0 (+ shift on diag only).
        assert repair.matrix[0, 2] == pytest.approx(0.0, abs=1e-12)

    def test_values_in_unit_interval(self) -> None:
        repair = prototype_similarity_matrix(lab_bin_prototypes(3))
        off = repair.matrix[~np.eye(27, dtype=bool)]
        assert off.min() >= -1e-12 and off.max() <= 1.0

    def test_paper_512d_matrix_is_strictly_pd(self) -> None:
        """The exact testbed configuration: 8 bins/channel, Lab prototypes."""
        repair = prototype_similarity_matrix(lab_bin_prototypes(8))
        assert not repair.was_repaired
        assert repair.min_eigenvalue > 0.0

    def test_repair_on_degenerate_layout(self) -> None:
        # Collinear equally-spaced prototypes give a singular matrix for
        # n >= 3; ensure_pd must kick in.
        prototypes = np.linspace(0.0, 1.0, 5).reshape(-1, 1)
        repair = prototype_similarity_matrix(prototypes)
        assert is_positive_definite(repair.matrix)

    def test_ensure_pd_false_raises_on_degenerate(self) -> None:
        prototypes = np.linspace(0.0, 1.0, 9).reshape(-1, 1)
        base = prototype_similarity_matrix(prototypes)
        if base.was_repaired:
            with pytest.raises(NotPositiveDefiniteError):
                prototype_similarity_matrix(prototypes, ensure_pd=False)

    def test_rejects_single_prototype(self) -> None:
        with pytest.raises(MatrixError):
            prototype_similarity_matrix([[1.0, 2.0]])

    def test_rejects_coincident_prototypes(self) -> None:
        with pytest.raises(MatrixError):
            prototype_similarity_matrix([[1.0, 2.0], [1.0, 2.0]])


class TestKernelMatrices:
    def test_gaussian_is_pd(self, rng: np.random.Generator) -> None:
        prototypes = rng.random((20, 3))
        assert is_positive_definite(gaussian_kernel_matrix(prototypes, sigma=0.5))

    def test_laplacian_is_pd(self, rng: np.random.Generator) -> None:
        prototypes = rng.random((20, 3))
        assert is_positive_definite(laplacian_kernel_matrix(prototypes, alpha=2.0))

    def test_gaussian_unit_diagonal(self, rng: np.random.Generator) -> None:
        mat = gaussian_kernel_matrix(rng.random((8, 2)))
        assert np.allclose(np.diag(mat), 1.0)

    def test_gaussian_rejects_bad_sigma(self) -> None:
        with pytest.raises(MatrixError):
            gaussian_kernel_matrix(np.eye(3), sigma=0.0)

    def test_laplacian_rejects_bad_alpha(self) -> None:
        with pytest.raises(MatrixError):
            laplacian_kernel_matrix(np.eye(3), alpha=-1.0)

    def test_wider_sigma_means_stronger_correlation(self, rng: np.random.Generator) -> None:
        prototypes = rng.random((10, 3))
        narrow = gaussian_kernel_matrix(prototypes, sigma=0.1)
        wide = gaussian_kernel_matrix(prototypes, sigma=2.0)
        off = ~np.eye(10, dtype=bool)
        assert wide[off].mean() > narrow[off].mean()


class TestBandMatrix:
    def test_unit_diagonal(self) -> None:
        assert np.allclose(np.diag(band_matrix(6)), 1.0)

    def test_bandwidth_respected(self) -> None:
        mat = band_matrix(6, correlation=0.3, bandwidth=1)
        assert mat[0, 2] == 0.0 and mat[0, 1] == pytest.approx(0.3)

    def test_is_pd(self) -> None:
        assert is_positive_definite(band_matrix(10, correlation=0.45, bandwidth=2))

    def test_paper_3d_example_reproducible(self) -> None:
        """The R/G/B matrix with G-B correlation 0.5 is a band matrix on
        the (R, G, B) ordering with bandwidth 1 ... except R-G must be 0;
        build it directly and compare structure."""
        mat = band_matrix(3, correlation=0.5, bandwidth=1)
        assert mat[1, 2] == pytest.approx(0.5)
        assert mat[0, 2] == 0.0

    def test_rejects_correlation_out_of_range(self) -> None:
        with pytest.raises(MatrixError):
            band_matrix(4, correlation=1.0)

    def test_rejects_negative_bandwidth(self) -> None:
        with pytest.raises(MatrixError):
            band_matrix(4, bandwidth=-1)

    def test_zero_bandwidth_is_identity(self) -> None:
        assert np.array_equal(band_matrix(5, bandwidth=0), np.eye(5))


class TestRandomSPD:
    def test_is_pd(self) -> None:
        for seed in range(5):
            mat = random_spd_matrix(12, rng=np.random.default_rng(seed))
            assert is_positive_definite(mat)

    def test_condition_number(self) -> None:
        mat = random_spd_matrix(10, rng=np.random.default_rng(1), condition=100.0)
        eigs = np.linalg.eigvalsh(mat)
        assert eigs[-1] / eigs[0] == pytest.approx(100.0, rel=1e-6)

    def test_symmetric(self) -> None:
        mat = random_spd_matrix(8, rng=np.random.default_rng(2))
        assert is_symmetric(mat)

    def test_rejects_condition_below_one(self) -> None:
        with pytest.raises(MatrixError):
            random_spd_matrix(4, condition=0.5)

    def test_deterministic_given_rng(self) -> None:
        a = random_spd_matrix(6, rng=np.random.default_rng(3))
        b = random_spd_matrix(6, rng=np.random.default_rng(3))
        assert np.array_equal(a, b)
