"""Observability acceptance tests: the registry never lies, never perturbs.

Two invariants pin the whole subsystem:

1. **Exactness** — with a live registry, the
   ``repro_distance_evaluations_total`` counter equals the model's own
   :class:`CountingDistance` snapshot exactly, for every registered access
   method under both models (property-tested over random workloads).
2. **Non-interference** — with the null registry (the default), the same
   build/query flow charges bit-identical distance counts, which is what
   keeps ``tests/fixtures/count_baseline.json`` valid.
"""

from __future__ import annotations

import re

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import random_spd_matrix
from repro.engine import TraceCollector
from repro.models import QFDModel, QMapModel
from repro.models.base import MAM_REGISTRY, SAM_REGISTRY
from repro.obs import (
    NULL_REGISTRY,
    MetricsRegistry,
    get_registry,
    to_prometheus,
    use_registry,
)
from repro.obs.instruments import DISTANCE_EVALUATIONS

#: Small-workload construction arguments per method.
METHOD_KWARGS: dict[str, dict[str, int]] = {
    "pivot-table": {"n_pivots": 4},
    "mindex": {"n_pivots": 4},
    "mtree": {"capacity": 8},
    "paged-mtree": {"capacity": 8},
    "vptree": {"leaf_size": 4},
    "gnat": {"arity": 3, "leaf_size": 4},
    "rtree": {"capacity": 8},
    "xtree": {"capacity": 8},
    "vafile": {"bits": 4},
}

#: Every (model, method) pair the library supports: the QFD model covers
#: the MAMs, the QMap model additionally covers the SAMs.
ALL_PAIRS = [("qfd", m) for m in MAM_REGISTRY] + [
    ("qmap", m) for m in (*MAM_REGISTRY, *SAM_REGISTRY)
]

DIM = 6


def _workload(seed: int, m: int = 50, n_queries: int = 4):
    rng = np.random.default_rng(seed)
    matrix = random_spd_matrix(DIM, rng=rng, condition=6.0)
    data = rng.uniform(0.0, 1.0, size=(m, DIM))
    queries = rng.uniform(0.0, 1.0, size=(n_queries, DIM))
    return matrix, data, queries


def _build(model_name: str, method: str, matrix, data):
    model = (QMapModel if model_name == "qmap" else QFDModel)(matrix)
    return model.build_index(method, data, **METHOD_KWARGS.get(method, {}))


def _registry_evaluations(reg: MetricsRegistry, model: str, method: str) -> int:
    counter = reg.counter(DISTANCE_EVALUATIONS)
    labels = {"model": model, "method": method, "phase": "query"}
    return int(
        counter.value(kind="scalar", **labels)
        + counter.value(kind="batched", **labels)
    )


class TestRegistryEqualsCountingDistance:
    """Invariant 1: registry counters == CountingDistance, exactly."""

    @pytest.mark.parametrize("model_name,method", ALL_PAIRS)
    @given(seed=st.integers(0, 10_000), k=st.integers(1, 8))
    @settings(max_examples=5, deadline=None)
    def test_query_counters_match_exactly(self, model_name, method, seed, k) -> None:
        matrix, data, queries = _workload(seed)
        built = _build(model_name, method, matrix, data)
        reg = MetricsRegistry()
        with use_registry(reg):
            built.reset_query_costs()
            for q in queries:
                built.knn_search(q, k)
                built.range_search(q, 0.5)
        counted = built.query_costs().distance_computations
        mirrored = _registry_evaluations(reg, model_name, method)
        assert mirrored == counted, (
            f"{model_name}/{method}: registry mirrors {mirrored} evaluations, "
            f"CountingDistance says {counted}"
        )

    def test_batch_queries_match_exactly(self) -> None:
        matrix, data, queries = _workload(7, m=120, n_queries=10)
        for model_name in ("qfd", "qmap"):
            built = _build(model_name, "pivot-table", matrix, data)
            reg = MetricsRegistry()
            with use_registry(reg):
                built.reset_query_costs()
                built.knn_search_batch(queries, 5, executor="thread", workers=4)
            counted = built.query_costs().distance_computations
            assert _registry_evaluations(reg, model_name, "pivot-table") == counted

    def test_reset_query_costs_realigns_the_mirror(self) -> None:
        matrix, data, queries = _workload(3)
        built = _build("qfd", "mtree", matrix, data)
        reg = MetricsRegistry()
        with use_registry(reg):
            built.reset_query_costs()
            built.knn_search(queries[0], 3)
            first = _registry_evaluations(reg, "qfd", "mtree")
            built.reset_query_costs()
            built.knn_search(queries[1], 3)
        # The counter is cumulative across resets; the second query's share
        # must equal the model counter reading after its own reset.
        total = _registry_evaluations(reg, "qfd", "mtree")
        assert total - first == built.query_costs().distance_computations


class TestNullRegistryNonInterference:
    """Invariant 2: observability off => nothing changes, nothing recorded."""

    def test_default_registry_is_null(self) -> None:
        assert get_registry() is NULL_REGISTRY

    @pytest.mark.parametrize("model_name,method", ALL_PAIRS)
    def test_counts_identical_with_and_without_registry(
        self, model_name, method
    ) -> None:
        matrix, data, queries = _workload(11)

        def run(active: MetricsRegistry | None) -> tuple[int, list]:
            built = _build(model_name, method, matrix, data)
            build_evals = built.build_costs.distance_computations
            results = []
            if active is None:
                for q in queries:
                    results.append(built.knn_search(q, 3))
                    results.append(built.range_search(q, 0.5))
            else:
                with use_registry(active):
                    for q in queries:
                        results.append(built.knn_search(q, 3))
                        results.append(built.range_search(q, 0.5))
            answers = [
                [(n.index, n.distance) for n in result] for result in results
            ]
            return build_evals, [
                built.query_costs().distance_computations,
                answers,
            ]

        bare = run(None)
        observed = run(MetricsRegistry())
        assert bare == observed, (
            f"{model_name}/{method}: a live registry perturbed the distance "
            f"counts or answers — the count-baseline fixture would drift"
        )

    def test_default_logger_is_null(self) -> None:
        from repro.obs import NullLogger, get_logger

        assert isinstance(get_logger(), NullLogger)
        assert not get_logger().enabled

    def test_counts_identical_with_and_without_logger(self) -> None:
        """A live JSON-lines logger must not move a single counter."""
        import io

        from repro.obs import JsonLinesLogger, use_logger

        matrix, data, queries = _workload(13)

        def run(logged: bool) -> tuple[int, list]:
            built = _build("qmap", "vptree", matrix, data)
            results = []

            def query_all() -> None:
                for q in queries:
                    results.append(built.knn_search(q, 3))
                    results.append(built.range_search(q, 0.5))

            if logged:
                with use_logger(JsonLinesLogger(io.StringIO())):
                    query_all()
            else:
                query_all()
            answers = [
                [(n.index, n.distance) for n in result] for result in results
            ]
            return built.build_costs.distance_computations, [
                built.query_costs().distance_computations,
                answers,
            ]

        assert run(False) == run(True)

    def test_counts_identical_with_and_without_profiler(self) -> None:
        """A running sampler observes; it never participates."""
        from repro.obs import SamplingProfiler

        matrix, data, queries = _workload(13)

        def run(profiled: bool) -> tuple[int, list]:
            built = _build("qfd", "mtree", matrix, data)
            results = []

            def query_all() -> None:
                for q in queries:
                    results.append(built.knn_search(q, 3))
                    results.append(built.range_search(q, 0.5))

            if profiled:
                with SamplingProfiler(hz=1000):
                    query_all()
            else:
                query_all()
            answers = [
                [(n.index, n.distance) for n in result] for result in results
            ]
            return built.build_costs.distance_computations, [
                built.query_costs().distance_computations,
                answers,
            ]

        assert run(False) == run(True)


class TestBatchThroughputMetrics:
    def test_batch_seconds_and_qps(self) -> None:
        matrix, data, queries = _workload(5, m=80, n_queries=8)
        built = _build("qmap", "pivot-table", matrix, data)
        reg = MetricsRegistry()
        collector = TraceCollector()
        with use_registry(reg):
            built.knn_search_batch(queries, 3, collector=collector)
        summary = collector.summary()
        assert summary.batch_seconds > 0.0
        assert summary.queries_per_second == pytest.approx(
            summary.queries / summary.batch_seconds
        )
        assert summary.serial_queries_per_second == pytest.approx(
            summary.queries / summary.seconds
        )
        # Batch wall-clock can never exceed the summed per-query time by
        # less than zero — and with one worker they bracket each other.
        assert reg.counter("repro_queries_total").value(
            method="pivot-table", kind="knn"
        ) == len(queries)
        assert (
            reg.gauge("repro_batch_queries_per_second").value(
                method="pivot-table", kind="knn"
            )
            > 0.0
        )

    def test_serial_fallback_when_no_batch_clock(self) -> None:
        collector = TraceCollector()
        summary = collector.summary()
        assert summary.batch_seconds == 0.0
        assert summary.queries_per_second == summary.serial_queries_per_second


_PROM_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"  # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"\n]*\"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"\n]*\")*\})?"
    r" (-?\d+(\.\d+)?([eE][+-]?\d+)?|[+-]Inf|NaN)$"
)


class TestPrometheusExport:
    def test_every_line_is_valid_exposition_format(self) -> None:
        matrix, data, queries = _workload(9)
        reg = MetricsRegistry()
        with use_registry(reg):
            built = _build("qmap", "mtree", matrix, data)
            for q in queries:
                built.knn_search(q, 3)
        text = to_prometheus(reg)
        assert text.endswith("\n")
        seen_types = 0
        for line in text.splitlines():
            if line.startswith("# TYPE"):
                seen_types += 1
                continue
            if line.startswith("#"):
                continue
            assert _PROM_LINE.match(line), f"malformed exposition line: {line!r}"
        assert seen_types >= 3  # build spans, distance counter, index gauges

    def test_help_text_is_escaped(self) -> None:
        # Regression test: a raw newline in a HELP string would start a
        # bogus exposition line and break scrapes; backslashes must be
        # doubled per the exposition format.
        reg = MetricsRegistry()
        reg.counter(
            "repro_test_total", "first line\nsecond line with a \\ backslash"
        ).inc(1)
        text = to_prometheus(reg)
        (help_line,) = [ln for ln in text.splitlines() if ln.startswith("# HELP")]
        assert help_line == (
            "# HELP repro_test_total first line\\nsecond line with a \\\\ backslash"
        )
        # The whole exposition still parses line by line.
        for line in text.splitlines():
            if not line.startswith("#"):
                assert _PROM_LINE.match(line), f"malformed exposition line: {line!r}"

    def test_histograms_are_cumulative(self) -> None:
        reg = MetricsRegistry()
        h = reg.histogram("repro_test_seconds", bounds=[1.0, 2.0])
        h.observe(0.5)
        h.observe(1.5)
        h.observe(99.0)
        text = to_prometheus(reg)
        buckets = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if "_bucket" in line
        ]
        assert buckets == sorted(buckets), "bucket counts must be cumulative"
        assert buckets[-1] == 3
        assert 'le="+Inf"' in text
