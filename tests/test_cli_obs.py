"""CLI surface tests for the observability verbs.

Covers the PR's new flags and subcommands end-to-end through
``repro.cli.main``: ``query --serve-metrics/--serve-hold/--timeline-out``,
``explain --timeline-out``, ``trace export``, ``bench watch`` exit codes,
and ``report --diff``.
"""

from __future__ import annotations

import json
import urllib.request

from repro.bench.history import append_history, history_record
from repro.cli import build_parser, main

_QUERY_BASE = ["query", "--size", "80", "--bins", "2", "--queries", "4", "--k", "3"]


class TestParser:
    def test_query_serve_and_timeline_flags(self) -> None:
        args = build_parser().parse_args(
            _QUERY_BASE
            + [
                "--serve-metrics", "127.0.0.1:0",
                "--serve-hold", "1.5",
                "--timeline-out", "t.json",
            ]
        )
        assert args.serve_metrics == "127.0.0.1:0"
        assert args.serve_hold == 1.5
        assert args.timeline_out == "t.json"

    def test_query_serve_defaults_off(self) -> None:
        args = build_parser().parse_args(["query"])
        assert args.serve_metrics is None
        assert args.serve_hold == 0.0
        assert args.timeline_out is None

    def test_trace_export_defaults(self) -> None:
        args = build_parser().parse_args(["trace", "export"])
        assert args.method == "mtree" and args.model == "qmap"
        assert args.out == "repro_timeline.json"

    def test_bench_watch_defaults(self) -> None:
        args = build_parser().parse_args(["bench", "watch"])
        assert args.history == "BENCH_history.jsonl"
        assert args.window == 10 and args.sigma == 5.0 and args.min_history == 3

    def test_report_diff_takes_two_paths(self) -> None:
        args = build_parser().parse_args(["report", "--diff", "a.jsonl", "b.jsonl"])
        assert args.diff == ["a.jsonl", "b.jsonl"]

    def test_explain_timeline_out(self) -> None:
        args = build_parser().parse_args(["explain", "--timeline-out", "x.json"])
        assert args.timeline_out == "x.json"

    def test_query_profile_and_log_flags(self) -> None:
        args = build_parser().parse_args(
            _QUERY_BASE
            + ["--profile-out", "p.txt", "--profile-hz", "500", "--log-json", "q.jsonl"]
        )
        assert args.profile_out == "p.txt"
        assert args.profile_hz == 500.0
        assert args.log_json == "q.jsonl"

    def test_profile_and_log_default_off(self) -> None:
        args = build_parser().parse_args(["query"])
        assert args.profile_out is None
        assert args.profile_hz == 200.0
        assert args.log_json is None

    def test_explain_profile_out(self) -> None:
        args = build_parser().parse_args(["explain", "--profile-out", "e.json"])
        assert args.profile_out == "e.json" and args.profile_hz == 200.0


class TestServeMetrics:
    def test_query_serves_and_announces_the_endpoint(self, capsys) -> None:
        assert main(_QUERY_BASE + ["--serve-metrics", "127.0.0.1:0"]) == 0
        out = capsys.readouterr().out
        (serving,) = [ln for ln in out.splitlines() if ln.startswith("serving  :")]
        assert "http://127.0.0.1:" in serving
        assert "/metrics" in serving

    def test_serve_hold_announces_and_scrapes(self, capsys) -> None:
        # A tiny hold keeps the server up after the batch; a watcher
        # thread scrapes the endpoint as soon as the hold line confirms
        # the URL has been captured (the subprocess variant of this test
        # lives in benchmarks/ci_scrape_smoke.py).
        import threading

        url_box: list[str] = []
        ready = threading.Event()
        scraped: list[bytes] = []

        real_print = print

        def capture(*args, **kwargs):  # noqa: ANN002, ANN003
            real_print(*args, **kwargs)
            text = " ".join(str(a) for a in args)
            if text.startswith("serving  :"):
                url_box.append(text.split()[2])
                ready.set()

        def scraper() -> None:
            if ready.wait(timeout=10) and url_box:
                with urllib.request.urlopen(
                    f"{url_box[0]}/healthz", timeout=10
                ) as resp:
                    scraped.append(resp.read())

        thread = threading.Thread(target=scraper)
        thread.start()
        import builtins

        original = builtins.print
        builtins.print = capture
        try:
            code = main(
                _QUERY_BASE
                + ["--serve-metrics", "127.0.0.1:0", "--serve-hold", "0.5"]
            )
        finally:
            builtins.print = original
        thread.join(timeout=15)
        assert code == 0
        assert scraped == [b"ok\n"]
        assert "holding  :" in capsys.readouterr().out

    def test_bad_serve_spec_exits_two(self, capsys) -> None:
        assert main(_QUERY_BASE + ["--serve-metrics", "nonsense"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_plan_mode_ignores_serve_with_a_note(self, capsys) -> None:
        code = main(
            [
                "query", "--plan", "auto", "--size", "80", "--queries", "2",
                "--k", "3", "--serve-metrics", "127.0.0.1:0",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "serving  :" not in captured.out
        assert "ignored under --plan" in captured.err


class TestTimelineOut:
    def test_query_timeline_out_writes_chrome_trace(self, capsys, tmp_path) -> None:
        target = tmp_path / "timeline.json"
        assert main(_QUERY_BASE + ["--timeline-out", str(target)]) == 0
        out = capsys.readouterr().out
        assert "timeline :" in out
        doc = json.loads(target.read_text())
        assert doc["traceEvents"]
        assert {e["ph"] for e in doc["traceEvents"]} <= {"B", "E", "X", "M"}

    def test_explain_timeline_out(self, capsys, tmp_path) -> None:
        target = tmp_path / "explain_timeline.json"
        code = main(
            [
                "explain", "--method", "mtree", "--size", "100",
                "--k", "5", "--timeline-out", str(target),
            ]
        )
        assert code == 0
        doc = json.loads(target.read_text())
        assert any(e.get("cat") == "traversal" for e in doc["traceEvents"])


class TestProfileOut:
    def test_query_profile_out_writes_collapsed_stacks(self, capsys, tmp_path) -> None:
        target = tmp_path / "profile.txt"
        code = main(
            _QUERY_BASE
            + ["--queries", "16", "--profile-out", str(target), "--profile-hz", "2000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "profile  :" in out
        text = target.read_text()
        for line in text.strip().splitlines():
            stack, count = line.rsplit(" ", 1)
            assert int(count) >= 1 and ";" in stack

    def test_query_profile_out_json_is_speedscope(self, capsys, tmp_path) -> None:
        target = tmp_path / "profile.json"
        code = main(
            _QUERY_BASE
            + ["--queries", "16", "--profile-out", str(target), "--profile-hz", "2000"]
        )
        assert code == 0
        doc = json.loads(target.read_text())
        assert doc["$schema"] == "https://www.speedscope.app/file-format-schema.json"
        assert doc["profiles"][0]["type"] == "sampled"


class TestLogJson:
    def test_query_log_json_writes_correlated_records(self, capsys, tmp_path) -> None:
        target = tmp_path / "query.jsonl"
        code = main(_QUERY_BASE + ["--log-json", str(target)])
        assert code == 0
        out = capsys.readouterr().out
        assert "log      :" in out
        records = [json.loads(line) for line in target.read_text().splitlines()]
        events = [r["event"] for r in records]
        assert events.count("build") == 1
        assert events.count("query") == 4  # one per --queries
        queries = [r for r in records if r["event"] == "query"]
        assert all("trace_id" in r and "distance_evaluations" in r for r in queries)

    def test_batch_log_shares_one_trace_id(self, capsys, tmp_path) -> None:
        target = tmp_path / "batch.jsonl"
        code = main(_QUERY_BASE + ["--batch", "--log-json", str(target)])
        assert code == 0
        records = [json.loads(line) for line in target.read_text().splitlines()]
        (batch,) = [r for r in records if r["event"] == "batch"]
        queries = [r for r in records if r["event"] == "query"]
        assert len(queries) == 4
        assert {r["trace_id"] for r in queries} == {batch["trace_id"]}
        assert [r["query_index"] for r in queries] == list(range(4))

    def test_logger_restored_after_run(self, tmp_path) -> None:
        from repro.obs import NullLogger, get_logger

        assert main(_QUERY_BASE + ["--log-json", str(tmp_path / "a.jsonl")]) == 0
        assert isinstance(get_logger(), NullLogger)


class TestTraceExport:
    def test_export_writes_a_timeline(self, capsys, tmp_path) -> None:
        target = tmp_path / "trace.json"
        code = main(
            [
                "trace", "export", "--method", "mtree", "--size", "120",
                "--queries", "4", "--k", "3", "--out", str(target),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "timeline :" in out and "costs    :" in out
        doc = json.loads(target.read_text())
        assert doc["traceEvents"]
        # Both lanes present: wall-clock spans and the traversal replay.
        cats = {e.get("cat") for e in doc["traceEvents"]}
        assert "span" in cats and "traversal" in cats


class TestBenchWatch:
    def _history(self, path, rows) -> None:
        for metrics in rows:
            append_history(history_record("bench-x", metrics), path)

    def test_clean_history_exits_zero(self, capsys, tmp_path) -> None:
        path = tmp_path / "hist.jsonl"
        self._history(path, [{"a.build_evaluations": 10} for _ in range(4)])
        code = main(["bench", "watch", "--history", str(path), "--min-history", "3"])
        assert code == 0
        assert "bench-x" in capsys.readouterr().out

    def test_drift_exits_one(self, capsys, tmp_path) -> None:
        path = tmp_path / "hist.jsonl"
        rows = [{"a.build_evaluations": 10} for _ in range(4)] + [
            {"a.build_evaluations": 11}
        ]
        self._history(path, rows)
        code = main(["bench", "watch", "--history", str(path), "--min-history", "3"])
        assert code == 1
        assert "DRIFT" in capsys.readouterr().out

    def test_insufficient_history_exits_two(self, capsys, tmp_path) -> None:
        path = tmp_path / "hist.jsonl"
        self._history(path, [{"a.x": 1.0}])
        code = main(["bench", "watch", "--history", str(path), "--min-history", "3"])
        assert code == 2

    def test_bad_window_exits_two(self, capsys, tmp_path) -> None:
        path = tmp_path / "hist.jsonl"
        self._history(path, [{"a.x": 1.0}])
        code = main(["bench", "watch", "--history", str(path), "--window", "0"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestReportDiff:
    def _metrics_file(self, path, values: dict[str, float]) -> None:
        entries = [
            {"type": "counter", "name": name, "labels": {}, "value": value}
            for name, value in values.items()
        ]
        path.write_text("\n".join(json.dumps(e) for e in entries) + "\n")

    def test_diff_prints_changed_keys(self, capsys, tmp_path) -> None:
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        self._metrics_file(a, {"repro_x_total": 5.0, "repro_y_total": 1.0})
        self._metrics_file(b, {"repro_x_total": 9.0, "repro_y_total": 1.0})
        assert main(["report", "--diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "repro_x_total" in out
        assert "1 changed / 2 keys" in out

    def test_diff_out_writes_the_report(self, capsys, tmp_path) -> None:
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        self._metrics_file(a, {"repro_x_total": 5.0})
        self._metrics_file(b, {"repro_x_total": 5.0})
        target = tmp_path / "diff.txt"
        assert main(["report", "--diff", str(a), str(b), "--out", str(target)]) == 0
        assert "(identical)" in target.read_text()


class TestRegistryRestored:
    def test_serve_and_timeline_restore_the_null_registry(self, tmp_path) -> None:
        from repro.obs import NULL_REGISTRY, get_registry

        target = tmp_path / "t.json"
        assert main(
            _QUERY_BASE
            + ["--serve-metrics", "127.0.0.1:0", "--timeline-out", str(target)]
        ) == 0
        assert get_registry() is NULL_REGISTRY

    def test_bad_spec_still_restores(self) -> None:
        from repro.obs import NULL_REGISTRY, get_registry

        assert main(_QUERY_BASE + ["--serve-metrics", ":::"]) == 2
        assert get_registry() is NULL_REGISTRY
