"""Unit tests for the cost-based planner (`repro.planner`).

Pinned invariants:

1. layering — importing ``repro.planner`` never pulls in the execution or
   observability layers (``repro.models`` / ``repro.mam`` / ``repro.obs``);
   the planner prices plans from headers and closed forms only;
2. pricing — plan costs are the Table 2 closed forms, monotone in the
   database size, with setup amortized over the batch;
3. planning — the argmin is deterministic, every alternative stays
   visible in the :class:`PlanChoice`, and ``force=`` picks by name
   without hiding the comparison.
"""

from __future__ import annotations

import ast
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.complexity import theoretical_querying_flops
from repro.exceptions import QueryError
from repro.planner import (
    DEFAULT_RANGE_SELECTIVITY,
    DEFAULT_VISIT_FRACTION,
    CatalogEntry,
    CostModel,
    DirectScan,
    DistanceHistogram,
    ExecutorChoice,
    FilterRefine,
    IndexCatalog,
    IndexProbe,
    Planner,
    PredictedCost,
    QuerySpec,
    calibration_from_history,
)
from repro.planner.plans import THREAD_BATCH_THRESHOLD


def _entry(method: str = "pivot-table", model: str = "qmap", *, size: int = 400,
           dim: int = 64, n_pivots: "int | None" = 16,
           bound: "str | None" = "triangle") -> CatalogEntry:
    """A synthetic catalog entry (no file behind it — pricing needs none)."""
    return CatalogEntry(
        path=f"/nowhere/{method}_{model}.npz",
        method=method,
        model=model,
        bound=bound,
        size=size,
        dim=dim,
        dtype="float64",
        format_version=1,
        method_version=1,
        n_pivots=n_pivots,
        build_distance_computations=0,
        build_transforms=0,
        build_seconds=0.0,
    )


def _spec(*, kind: str = "knn", param: float = 10, batch: int = 10,
          m: int = 400, dim: int = 64, histogram=None) -> QuerySpec:
    return QuerySpec(
        kind=kind, param=param, batch_size=batch, m=m, dim=dim, histogram=histogram
    )


class TestLayering:
    def test_planner_sources_import_no_execution_layer(self) -> None:
        """The contract ruff's TID251 gate enforces, checked structurally.

        Every import in ``src/repro/planner`` must stay below the
        model/index/observability layers — the planner prices plans from
        snapshot headers and closed forms only.  (Importing the package
        at runtime can't show this: ``repro/__init__`` re-exports the
        whole library.)
        """
        banned = ("models", "mam", "sam", "obs", "engine")
        import repro.planner

        package_dir = Path(repro.planner.__file__).parent
        offenders = []

        def layer_of(module: str, relative: bool) -> "str | None":
            parts = module.split(".") if module else []
            if relative:  # `from ..bench import ...` resolves against repro
                return parts[0] if parts else None
            if parts and parts[0] == "repro":
                return parts[1] if len(parts) > 1 else None
            return None

        for source in sorted(package_dir.glob("*.py")):
            tree = ast.parse(source.read_text(encoding="utf-8"))
            for node in ast.walk(tree):
                if isinstance(node, ast.Import):
                    targets = [(alias.name, False) for alias in node.names]
                elif isinstance(node, ast.ImportFrom):
                    targets = [(node.module or "", node.level > 0)]
                else:
                    continue
                for module, relative in targets:
                    if layer_of(module, relative) in banned:
                        offenders.append(f"{source.name}: {module}")
        assert not offenders, offenders


class TestDistanceHistogram:
    def test_selectivity_and_radius_roundtrip(self) -> None:
        hist = DistanceHistogram.from_sample(np.arange(1, 101, dtype=float))
        assert hist.selectivity(10.0) == pytest.approx(0.10)
        assert hist.selectivity(0.0) == 0.0
        assert hist.selectivity(1_000.0) == 1.0
        assert hist.radius_at(0.10) == pytest.approx(10.0)

    def test_rejects_empty_and_drops_nonfinite(self) -> None:
        with pytest.raises(ValueError):
            DistanceHistogram.from_sample([])
        hist = DistanceHistogram.from_sample([1.0, np.nan, 2.0, np.inf])
        assert hist.sample.tolist() == [1.0, 2.0]


class TestQuerySpec:
    def test_validation(self) -> None:
        with pytest.raises(QueryError):
            _spec(kind="nearest")
        with pytest.raises(QueryError):
            _spec(kind="knn", param=0)
        with pytest.raises(QueryError):
            _spec(kind="range", param=-1.0)


class TestCalibration:
    def test_later_records_win_and_bound_variants_merge(self) -> None:
        records = [
            {
                "bench": "bench-check",
                "meta": {"size": 100, "queries": 10},
                "metrics": {
                    "pivot-table.qmap.query_evaluations": 200,
                    "pivot-table+best.qmap.query_evaluations": 400,
                    "mtree.qfd.query_evaluations": 500,
                    "planner.auto.alternatives": 6,  # wrong shape: ignored
                },
            },
            {"bench": "other", "metrics": {"mtree.qfd.query_evaluations": 999}},
            {
                "bench": "bench-check",
                "meta": {"size": 100, "queries": 10},
                "metrics": {"mtree.qfd.query_evaluations": 300},
            },
        ]
        calibration = calibration_from_history(records)
        # Bound variants calibrate the base method; the larger fraction wins.
        assert calibration[("pivot-table", "qmap")] == pytest.approx(0.4)
        # The later bench-check record overrides the earlier one.
        assert calibration[("mtree", "qfd")] == pytest.approx(0.3)
        assert ("planner", "auto") not in calibration

    def test_calibration_feeds_visit_fraction(self) -> None:
        model = CostModel(calibration={("mtree", "qmap"): 0.25})
        assert model.visit_fraction("mtree", "qmap") == 0.25
        assert model.visit_fraction("mtree", "qfd") == DEFAULT_VISIT_FRACTION


class TestCostModel:
    def test_scan_cost_is_table2(self) -> None:
        spec = _spec(m=400, dim=64)
        qfd = CostModel().scan_cost(spec, "qfd")
        qmap = CostModel().scan_cost(spec, "qmap")
        assert qfd.per_query_flops == theoretical_querying_flops(
            "sequential", "qfd", m=400, n=64
        )
        assert qfd.setup_flops == 0.0
        assert qmap.per_query_flops == theoretical_querying_flops(
            "sequential", "qmap", m=400, n=64
        )
        # The QMap scan pays the Table 1 database transform up front.
        assert qmap.setup_flops == 400 * 64 * 64

    def test_setup_amortizes_over_batch(self) -> None:
        cost = PredictedCost(setup_flops=1000.0, per_query_flops=10.0)
        assert cost.total(1) == 1010.0
        assert cost.total(100) == 2000.0
        assert cost.total(0) == 1010.0  # never fewer than one query

    def test_range_selectivity_uses_histogram(self) -> None:
        hist = DistanceHistogram.from_sample(np.linspace(0.0, 1.0, 100))
        with_hist = CostModel().result_fraction(
            _spec(kind="range", param=0.5, histogram=hist)
        )
        without = CostModel().result_fraction(_spec(kind="range", param=0.5))
        assert with_hist == pytest.approx(hist.selectivity(0.5))
        assert without == DEFAULT_RANGE_SELECTIVITY

    @given(
        m_small=st.integers(min_value=20, max_value=2_000),
        growth=st.integers(min_value=1, max_value=2_000),
        dim=st.sampled_from([16, 64, 512]),
        model=st.sampled_from(["qfd", "qmap"]),
        method=st.sampled_from(["sequential", "pivot-table"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_predicted_cost_monotone_in_database_size(
        self, m_small: int, growth: int, dim: int, model: str, method: str
    ) -> None:
        """Bigger databases never get cheaper — for scans and pivot tables."""
        cost_model = CostModel()
        totals = []
        for m in (m_small, m_small + growth):
            spec = _spec(m=m, dim=dim)
            if method == "sequential":
                cost = cost_model.scan_cost(spec, model)
            else:
                cost = cost_model.probe_cost(
                    spec, _entry("pivot-table", model, size=m, dim=dim)
                )
            totals.append(cost.total(spec.batch_size))
        assert totals[1] >= totals[0]

    def test_pivot_probe_prices_the_closed_form(self) -> None:
        spec = _spec(m=400, dim=64, param=10)
        cost_model = CostModel()
        cost = cost_model.probe_cost(spec, _entry("pivot-table", "qmap"))
        x = int(round(cost_model.filter_candidates(spec)))
        assert cost.per_query_flops == theoretical_querying_flops(
            "pivot-table", "qmap", m=400, n=64, p=16, x=x
        )
        assert cost.setup_flops == 0.0  # snapshots restore without evaluations


class TestPlanner:
    def test_at_least_three_alternatives_with_empty_catalog(self) -> None:
        choice = Planner().plan(_spec(dim=20))
        names = [candidate.name for candidate in choice.considered]
        assert len(names) >= 3
        assert "scan[qfd]" in names and "scan[qmap]" in names
        assert any(name.startswith("filter-refine[svd") for name in names)
        # dim=20 is no color cube: the avg_color pipeline is not offered.
        assert not any("avg_color" in name for name in names)

    def test_avg_color_offered_for_histogram_cubes(self) -> None:
        names = [c.name for c in Planner().plan(_spec(dim=64)).considered]
        assert "filter-refine[avg_color,k=3]" in names

    def test_probes_require_matching_shape(self) -> None:
        catalog = IndexCatalog(
            entries=(
                _entry("pivot-table", "qmap", size=400, dim=64),
                _entry("mtree", "qmap", size=999, dim=64),  # wrong m
                _entry("mtree", "qmap", size=400, dim=512),  # wrong dim
            )
        )
        names = [c.name for c in Planner(catalog).plan(_spec(m=400, dim=64)).considered]
        assert "probe[pivot-table,qmap]" in names
        assert not any("mtree" in name for name in names)

    def test_argmin_is_first_and_chosen(self) -> None:
        catalog = IndexCatalog(entries=(_entry("pivot-table", "qmap"),))
        choice = Planner(catalog).plan(_spec())
        totals = [c.total_flops for c in choice.considered]
        assert totals == sorted(totals)
        assert choice.considered[0].chosen
        assert choice.chosen is choice.considered[0]
        assert choice.predicted_cost == totals[0]

    def test_force_picks_by_name_and_keeps_comparison(self) -> None:
        choice = Planner().plan(_spec(), force="scan[qfd]")
        assert choice.chosen.name == "scan[qfd]"
        # The raw-QFD scan is never the argmin at this shape...
        assert choice.considered[0].name != "scan[qfd]"
        # ...and exactly one alternative is marked chosen.
        assert sum(c.chosen for c in choice.considered) == 1
        with pytest.raises(QueryError, match="no plan named"):
            Planner().plan(_spec(), force="scan[nope]")

    def test_alternative_lookup(self) -> None:
        choice = Planner().plan(_spec())
        assert choice.alternative("scan[qfd]").name == "scan[qfd]"
        with pytest.raises(QueryError):
            choice.alternative("probe[unicorn,qmap]")

    def test_render_shows_predictions_and_actuals(self) -> None:
        choice = Planner().plan(_spec())
        text = choice.render()
        assert "considered plans for knn(k=10)" in text
        assert "(chosen)" in text and "scan[qfd]" in text
        per_query = choice.render(
            per_query=True, actual_flops={"scan[qfd]": 123.0}
        )
        assert "flops/query" in per_query
        assert "actual=123" in per_query and "actual=-" in per_query


class TestExecutorHints:
    def test_scan_threads_early_filter_refine_never(self) -> None:
        assert DirectScan().executor_hint(1).name == "serial"
        assert DirectScan().executor_hint(8).name == "thread"
        probe = IndexProbe(entry=_entry())
        assert probe.executor_hint(THREAD_BATCH_THRESHOLD - 1).name == "serial"
        assert probe.executor_hint(THREAD_BATCH_THRESHOLD).name == "thread"
        for batch in (1, 100):
            assert FilterRefine().executor_hint(batch).name == "serial"

    def test_executor_choice_describe(self) -> None:
        assert ExecutorChoice(name="thread", workers=4).describe() == "thread(4)"
        assert ExecutorChoice(name="serial").describe() == "serial"

    def test_filter_refine_rejects_unknown_bound(self) -> None:
        with pytest.raises(ValueError):
            FilterRefine(lower_bound="magic")
