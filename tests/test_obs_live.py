"""Live telemetry tests: rolling rates, the scrape server, thread safety.

The headline acceptance test scrapes ``/metrics`` *during* a running
batch (a slow distance function keeps the batch alive) and checks both
halves of the contract: every mid-batch scrape is valid Prometheus text,
and at batch end ``repro_distance_evaluations_total`` equals the model's
own ``CountingDistance`` delta exactly.
"""

from __future__ import annotations

import json
import threading
import urllib.request

import numpy as np
import pytest

from repro.core import random_spd_matrix
from repro.models import QFDModel
from repro.obs import (
    NULL_REGISTRY,
    MetricsRegistry,
    TelemetryServer,
    WindowedRate,
    observe_query_progress,
    parse_prometheus_text,
    parse_serve_spec,
    sync_rate_gauges,
    use_registry,
)
from repro.obs.instruments import DISTANCE_EVALUATIONS
from repro.obs.live import (
    WINDOW_EVALUATIONS_PER_SECOND,
    WINDOW_QUERIES_PER_SECOND,
)

DIM = 6


def _workload(seed: int = 7, m: int = 60, n_queries: int = 6):
    rng = np.random.default_rng(seed)
    matrix = random_spd_matrix(DIM, rng=rng, condition=6.0)
    data = rng.random((m, DIM))
    queries = rng.random((n_queries, DIM))
    return matrix, data, queries


def _get(url: str) -> bytes:
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.read()


class TestWindowedRate:
    def test_rate_over_a_steady_stream(self) -> None:
        clock = [0.0]
        window = WindowedRate(10.0, buckets=10, clock=lambda: clock[0])
        for step in range(5):
            clock[0] = float(step)
            window.add(20)
        clock[0] = 5.0
        # 100 events over 5 elapsed seconds (partial window denominator).
        assert window.total() == 100
        assert window.rate() == pytest.approx(20.0)

    def test_old_events_fall_out_of_the_window(self) -> None:
        clock = [0.0]
        window = WindowedRate(10.0, buckets=10, clock=lambda: clock[0])
        window.add(50)
        clock[0] = 30.0
        assert window.total() == 0
        assert window.rate() == 0.0

    def test_full_window_denominator_is_the_window(self) -> None:
        clock = [0.0]
        window = WindowedRate(10.0, buckets=10, clock=lambda: clock[0])
        for step in range(20):
            clock[0] = float(step)
            window.add(10)
        clock[0] = 19.5
        # Only the last 10 s of events remain; rate is per window second.
        assert window.rate() == pytest.approx(window.total() / 10.0)

    def test_never_fed_reads_zero(self) -> None:
        window = WindowedRate(5.0)
        assert window.rate() == 0.0
        assert window.total() == 0.0

    def test_rejects_bad_parameters(self) -> None:
        with pytest.raises(ValueError):
            WindowedRate(0.0)
        with pytest.raises(ValueError):
            WindowedRate(5.0, buckets=0)


class TestParseServeSpec:
    def test_bare_port(self) -> None:
        assert parse_serve_spec("0") == ("127.0.0.1", 0)
        assert parse_serve_spec("9100") == ("127.0.0.1", 9100)

    def test_host_and_port(self) -> None:
        assert parse_serve_spec("0.0.0.0:9100") == ("0.0.0.0", 9100)

    @pytest.mark.parametrize("spec", ["", "abc", "host:", "host:notaport", "1:70000"])
    def test_rejects_malformed_specs(self, spec: str) -> None:
        with pytest.raises(ValueError):
            parse_serve_spec(spec)


class TestObserveQueryProgress:
    def test_feeds_gauges_through_sync(self) -> None:
        registry = MetricsRegistry()
        observe_query_progress(10, 400, method="mtree", registry=registry, now=1.0)
        sync_rate_gauges(registry, now=2.0)
        gauges = {
            (s.name, s.labels.get("method")): s.value
            for s in registry.snapshot()
            if s.kind == "gauge"
        }
        assert (WINDOW_QUERIES_PER_SECOND, "mtree") in gauges
        assert (WINDOW_EVALUATIONS_PER_SECOND, "mtree") in gauges

    def test_null_registry_is_a_noop(self) -> None:
        # Must not raise, must not allocate a board for the null registry.
        observe_query_progress(10, 400, method="mtree", registry=NULL_REGISTRY)
        from repro.obs.live import _boards

        assert NULL_REGISTRY not in _boards


class TestTelemetryServer:
    def test_endpoints_roundtrip(self) -> None:
        registry = MetricsRegistry()
        registry.counter("repro_test_total", "help").inc(3, method="mtree")
        with TelemetryServer(registry) as server:
            assert server.running
            assert _get(f"{server.url}/healthz") == b"ok\n"
            samples = parse_prometheus_text(
                _get(f"{server.url}/metrics").decode("utf-8")
            )
            by_name = {s.name: s.value for s in samples}
            assert by_name["repro_test_total"] == 3
            snapshot = json.loads(_get(f"{server.url}/snapshot.json"))
            assert any(e["name"] == "repro_test_total" for e in snapshot["metrics"])
        assert not server.running

    def test_scrapes_are_counted(self) -> None:
        registry = MetricsRegistry()
        with TelemetryServer(registry) as server:
            _get(f"{server.url}/metrics")
            _get(f"{server.url}/metrics")
            text = _get(f"{server.url}/metrics").decode("utf-8")
        samples = parse_prometheus_text(text)
        scrapes = [
            s
            for s in samples
            if s.name == "repro_telemetry_requests_total"
            and s.label_dict.get("path") == "/metrics"
        ]
        # The third scrape sees the first two already counted.
        assert scrapes and scrapes[0].value == 3

    def test_unknown_path_is_404(self) -> None:
        with TelemetryServer(MetricsRegistry()) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(f"{server.url}/nope")
            assert err.value.code == 404

    def test_unbound_server_resolves_active_registry(self) -> None:
        registry = MetricsRegistry()
        registry.counter("repro_live_total", "help").inc(7)
        with TelemetryServer() as server:
            with use_registry(registry):
                samples = parse_prometheus_text(
                    _get(f"{server.url}/metrics").decode("utf-8")
                )
            assert any(s.name == "repro_live_total" for s in samples)

    def test_port_zero_binds_distinct_ports(self) -> None:
        with TelemetryServer() as a, TelemetryServer() as b:
            assert a.address[1] != b.address[1]

    def test_server_over_null_registry_serves_empty_exposition(self) -> None:
        with TelemetryServer(NULL_REGISTRY) as server:
            text = _get(f"{server.url}/metrics").decode("utf-8")
        assert parse_prometheus_text(text) == []


class TestMidBatchScrape:
    """The acceptance criterion: scrape during the batch, exact at the end."""

    def test_live_scrape_valid_and_final_counter_exact(self) -> None:
        matrix, data, queries = _workload(m=80, n_queries=8)
        registry = MetricsRegistry()

        in_batch = threading.Event()
        scraped: list[list] = []

        with use_registry(registry), TelemetryServer(registry) as server:
            index = QFDModel(matrix).build_index("sequential", data)
            index.reset_query_costs()

            def scraper() -> None:
                in_batch.wait(timeout=10)
                for _ in range(5):
                    text = _get(f"{server.url}/metrics").decode("utf-8")
                    scraped.append(parse_prometheus_text(text))

            thread = threading.Thread(target=scraper)
            thread.start()
            in_batch.set()
            for q in queries:
                index.knn_search(q, 5)
            thread.join(timeout=30)
            assert not thread.is_alive()
            # The CountingDistance delta since the reset above.
            delta = index.query_costs().distance_computations
            final = parse_prometheus_text(
                _get(f"{server.url}/metrics").decode("utf-8")
            )

        # Every mid-batch scrape parsed cleanly (the parser raises on any
        # malformed line, so reaching here proves validity).
        assert len(scraped) == 5
        counter_total = sum(
            s.value
            for s in final
            if s.name == DISTANCE_EVALUATIONS
            and s.label_dict.get("phase") == "query"
        )
        assert int(counter_total) == delta
        # The rate gauges appeared once queries flowed.
        gauge_names = {s.name for s in final}
        assert WINDOW_QUERIES_PER_SECOND in gauge_names

    def test_batch_engine_feeds_rate_windows(self) -> None:
        matrix, data, queries = _workload(m=60, n_queries=10)
        registry = MetricsRegistry()
        with use_registry(registry):
            index = QFDModel(matrix).build_index("mtree", data, capacity=8)
            index.knn_search_batch(queries, 4)
            sync_rate_gauges(registry)
        qps = [
            s.value
            for s in registry.snapshot()
            if s.kind == "gauge" and s.name == WINDOW_QUERIES_PER_SECOND
        ]
        assert qps and qps[0] > 0.0


class TestRegistryHammer:
    """N writer threads + a scraping reader: exact sums, no torn scrapes."""

    def test_concurrent_writes_sum_exactly_and_scrapes_stay_valid(self) -> None:
        registry = MetricsRegistry()
        n_threads, n_iter = 8, 300
        start = threading.Barrier(n_threads + 1)
        stop = threading.Event()
        parse_failures: list[Exception] = []

        def writer(tid: int) -> None:
            start.wait()
            counter = registry.counter("repro_hammer_total", "help")
            histogram = registry.histogram("repro_hammer_seconds", "help")
            for i in range(n_iter):
                counter.inc(1, worker=str(tid % 2))
                histogram.observe(0.001 * (i + 1), worker=str(tid % 2))

        def scraper() -> None:
            from repro.obs import to_prometheus

            start.wait()
            while not stop.is_set():
                try:
                    parse_prometheus_text(to_prometheus(registry))
                    registry.snapshot()
                except Exception as exc:  # pragma: no cover - failure path
                    parse_failures.append(exc)
                    return

        threads = [
            threading.Thread(target=writer, args=(tid,)) for tid in range(n_threads)
        ]
        reader = threading.Thread(target=scraper)
        for t in threads:
            t.start()
        reader.start()
        for t in threads:
            t.join(timeout=60)
        stop.set()
        reader.join(timeout=60)

        assert not parse_failures, parse_failures
        samples = registry.snapshot()
        total = sum(
            s.value for s in samples if s.name == "repro_hammer_total"
        )
        assert total == n_threads * n_iter
        states = [
            s.histogram for s in samples if s.name == "repro_hammer_seconds"
        ]
        assert sum(state.count for state in states) == n_threads * n_iter
        # No torn histogram: bucket counts sum to the total count.
        for state in states:
            assert sum(state.counts) == state.count


class TestNonInterference:
    """With telemetry disabled, answers and counts stay bit-identical."""

    def test_server_presence_does_not_change_counts(self) -> None:
        matrix, data, queries = _workload(seed=13)

        def run(with_server: bool) -> tuple[list, int]:
            index = QFDModel(matrix).build_index("mtree", data, capacity=8)
            index.reset_query_costs()
            if with_server:
                with TelemetryServer() as server:
                    _get(f"{server.url}/metrics")
                    answers = [
                        [n.index for n in index.knn_search(q, 5)] for q in queries
                    ]
                    _get(f"{server.url}/metrics")
            else:
                answers = [
                    [n.index for n in index.knn_search(q, 5)] for q in queries
                ]
            return answers, index.query_costs().distance_computations

        base_answers, base_counts = run(with_server=False)
        live_answers, live_counts = run(with_server=True)
        assert live_answers == base_answers
        assert live_counts == base_counts

    def test_rss_sampler_is_inert_without_registry(self) -> None:
        from repro.obs import RssSampler

        before = threading.active_count()
        with RssSampler(0.01) as sampler:
            assert threading.active_count() == before
        assert sampler.samples == 0
        assert sampler.peak_seen == 0

    def test_rss_sampler_samples_with_registry(self) -> None:
        from repro.obs import RssSampler
        from repro.obs.memory import PEAK_RSS

        registry = MetricsRegistry()
        with RssSampler(0.01, registry=registry) as sampler:
            sampler.sample()
        assert sampler.samples >= 2
        assert sampler.peak_seen > 0
        assert any(s.name == PEAK_RSS for s in registry.snapshot())
