"""Blocked kernels: bitwise block-size invariance and float32 handling.

The design contract of :mod:`repro.kernels.blocked` (ISSUE tentpole):
answers must be *bit-identical* for every ``block_rows``, and a float32
tile upcast per block must equal a heap float64 copy of the same
float32-rounded data — so an index built out of core agrees exactly
with its in-memory twin.  These tests pin both properties, plus the
float64-accumulation fix in :mod:`repro.kernels.gram` for float32
inputs (satellite a).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import random_spd_matrix
from repro.kernels import (
    DEFAULT_BLOCK_ROWS,
    blocked_l2_cross,
    blocked_l2_one_to_many,
    blocked_l2_pairwise,
    blocked_l2_row_norms,
    blocked_qfd_cross,
    blocked_qfd_one_to_many,
    blocked_qfd_pairwise,
    blocked_qfd_row_norms,
    gram,
    iter_blocks,
)

N = 57  # deliberately not a multiple of any tested block size
DIM = 9
BLOCK_SIZES = [1, 7, 64, N, None]


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(42)
    matrix = random_spd_matrix(DIM, condition=50.0, rng=rng)
    rows = rng.normal(size=(N, DIM)).astype(np.float32)
    others = rng.normal(size=(11, DIM)).astype(np.float32)
    q = rng.normal(size=DIM)
    return matrix, rows, others, q


def test_iter_blocks_partitions_exactly() -> None:
    assert list(iter_blocks(10, 4)) == [(0, 4), (4, 8), (8, 10)]
    assert list(iter_blocks(10, None)) == [(0, 10)]
    assert list(iter_blocks(10, 100)) == [(0, 10)]
    assert list(iter_blocks(0, 4)) == []
    with pytest.raises(ValueError):
        list(iter_blocks(10, 0))
    assert DEFAULT_BLOCK_ROWS >= 1


class TestBlockSizeInvariance:
    """Same floats out for every tile height, mmap or heap."""

    def _all_equal(self, results) -> None:
        reference = results[0]
        for got in results[1:]:
            assert np.array_equal(got, reference)

    def test_qfd_row_norms(self, setup) -> None:
        matrix, rows, _, _ = setup
        self._all_equal([
            blocked_qfd_row_norms(matrix, rows, block_rows=b) for b in BLOCK_SIZES
        ])

    def test_l2_row_norms(self, setup) -> None:
        _, rows, _, _ = setup
        self._all_equal([
            blocked_l2_row_norms(rows, block_rows=b) for b in BLOCK_SIZES
        ])

    def test_qfd_one_to_many(self, setup) -> None:
        matrix, rows, _, q = setup
        self._all_equal([
            blocked_qfd_one_to_many(matrix, q, rows, block_rows=b)
            for b in BLOCK_SIZES
        ])

    def test_qfd_one_to_many_with_precomputed_norms(self, setup) -> None:
        matrix, rows, _, q = setup
        norms = blocked_qfd_row_norms(matrix, rows, block_rows=8)
        with_norms = [
            blocked_qfd_one_to_many(matrix, q, rows, row_norms=norms, block_rows=b)
            for b in BLOCK_SIZES
        ]
        self._all_equal(with_norms + [blocked_qfd_one_to_many(matrix, q, rows)])

    def test_l2_one_to_many(self, setup) -> None:
        _, rows, _, q = setup
        results = [
            blocked_l2_one_to_many(q, rows, block_rows=b) for b in BLOCK_SIZES
        ]
        self._all_equal(results)
        # The L2 tile arithmetic is the unblocked diff form, so the QMap
        # model's mapped-space scans do not move by a single ulp.
        assert np.array_equal(results[0], gram.l2_one_to_many(q, rows))

    def test_qfd_cross(self, setup) -> None:
        matrix, rows, others, _ = setup
        self._all_equal([
            blocked_qfd_cross(matrix, others, rows, block_rows=b)
            for b in BLOCK_SIZES
        ])

    def test_l2_cross(self, setup) -> None:
        _, rows, others, _ = setup
        self._all_equal([
            blocked_l2_cross(others, rows, block_rows=b) for b in BLOCK_SIZES
        ])

    def test_qfd_pairwise(self, setup) -> None:
        matrix, rows, _, _ = setup
        results = [
            blocked_qfd_pairwise(matrix, rows, block_rows=b) for b in BLOCK_SIZES
        ]
        self._all_equal(results)
        assert np.array_equal(results[0], results[0].T)
        assert np.all(np.diag(results[0]) == 0.0)

    def test_l2_pairwise(self, setup) -> None:
        _, rows, _, _ = setup
        results = [blocked_l2_pairwise(rows, block_rows=b) for b in BLOCK_SIZES]
        self._all_equal(results)
        assert np.array_equal(results[0], results[0].T)

    def test_float32_tiles_equal_heap_float64_copy(self, setup) -> None:
        """The memmap-vs-heap contract: f32 rows upcast per tile must
        equal a float64 heap copy of the same f32-rounded data."""
        matrix, rows, others, q = setup
        heap = rows.astype(np.float64)
        for b in (1, 7, None):
            assert np.array_equal(
                blocked_qfd_one_to_many(matrix, q, rows, block_rows=b),
                blocked_qfd_one_to_many(matrix, q, heap, block_rows=b),
            )
            assert np.array_equal(
                blocked_qfd_cross(matrix, others, rows, block_rows=b),
                blocked_qfd_cross(matrix, others.astype(np.float64), heap, block_rows=b),
            )


class TestBlockInvarianceProperty:
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(1, 40),
        dim=st.integers(1, 8),
        b1=st.integers(1, 50),
        b2=st.integers(1, 50),
    )
    @settings(max_examples=40, deadline=None)
    def test_one_to_many_any_two_tilings_agree(self, seed, n, dim, b1, b2) -> None:
        rng = np.random.default_rng(seed)
        matrix = random_spd_matrix(dim, condition=10.0, rng=rng)
        rows = rng.normal(size=(n, dim)).astype(np.float32)
        q = rng.normal(size=dim)
        assert np.array_equal(
            blocked_qfd_one_to_many(matrix, q, rows, block_rows=b1),
            blocked_qfd_one_to_many(matrix, q, rows, block_rows=b2),
        )
        assert np.array_equal(
            blocked_l2_one_to_many(q, rows, block_rows=b1),
            blocked_l2_one_to_many(q, rows, block_rows=b2),
        )


class TestGramFloat32Accumulation:
    """Satellite (a): float32 inputs accumulate in float64 everywhere."""

    def test_all_gram_functions_coerce_to_float64(self, setup) -> None:
        matrix, rows, others, q = setup
        heap = rows.astype(np.float64)
        pairs = [
            (gram.qfd_row_norms(matrix, rows), gram.qfd_row_norms(matrix, heap)),
            (gram.l2_row_norms(rows), gram.l2_row_norms(heap)),
            (gram.qfd_one_to_many(matrix, q, rows), gram.qfd_one_to_many(matrix, q, heap)),
            (gram.l2_one_to_many(q, rows), gram.l2_one_to_many(q, heap)),
            (gram.qfd_pairwise(matrix, rows), gram.qfd_pairwise(matrix, heap)),
            (gram.l2_pairwise(rows), gram.l2_pairwise(heap)),
            (
                gram.qfd_cross(matrix, others, rows),
                gram.qfd_cross(matrix, others.astype(np.float64), heap),
            ),
            (
                gram.l2_cross(others, rows),
                gram.l2_cross(others.astype(np.float64), heap),
            ),
        ]
        for got, expected in pairs:
            assert got.dtype == np.float64
            assert np.array_equal(got, expected)

    def test_float32_inputs_do_not_drift(self) -> None:
        """Without the float64 coercion, a float32 Gram expansion loses
        ~half its digits to cancellation; with it the result matches the
        exact difference form to full float64 round-off."""
        rng = np.random.default_rng(7)
        dim = 16
        matrix = random_spd_matrix(dim, condition=100.0, rng=rng)
        base = rng.normal(size=dim)
        # Close pairs: the cancellation-hostile regime.
        rows = (base + 1e-4 * rng.normal(size=(64, dim))).astype(np.float32)
        q = base.astype(np.float32).astype(np.float64)
        got = gram.qfd_one_to_many(matrix, q, rows)
        exact = np.sqrt(
            [
                max(float((r - q) @ matrix @ (r - q)), 0.0)
                for r in rows.astype(np.float64)
            ]
        )
        assert np.allclose(got, exact, rtol=1e-7, atol=1e-10)
