"""Memory-mapped vector store: record-API parity, views, lifecycle.

The mmap store is the out-of-core record backend (ISSUE: the paper's
1M x 512-d testbed).  Its record API must behave exactly like the heap
:class:`~repro.storage.vector_store.VectorStore` so call sites work
unchanged, while its zero-copy row views feed the blocked kernels.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.exceptions import DimensionMismatchError, PageError, QueryError, StorageError
from repro.storage import MmapVectorStore


def test_append_get_roundtrip_float32_rounds_once() -> None:
    store = MmapVectorStore(3)
    try:
        v = np.array([0.1, 0.2, 0.3])
        idx = store.append(v)
        assert idx == 0
        got = store.get(0)
        assert got.dtype == np.float64
        # One rounding through the record dtype, like the heap store.
        assert np.array_equal(got, v.astype(np.float32).astype(np.float64))
    finally:
        store.close()


def test_float64_store_is_exact() -> None:
    with MmapVectorStore(4, dtype="float64") as store:
        rng = np.random.default_rng(0)
        data = rng.normal(size=(17, 4))
        store.extend(data)
        assert len(store) == 17
        assert np.array_equal(np.asarray(store.rows), data)


def test_append_block_returns_first_index_and_grows() -> None:
    with MmapVectorStore(2, capacity=4) as store:
        first = store.append_block(np.ones((3, 2)))
        assert first == 0
        # Growth past the pre-sized capacity doubles the mapping.
        second = store.append_block(np.zeros((10, 2)))
        assert second == 3
        assert len(store) == 13
        assert store.capacity >= 13


def test_rows_view_is_zero_copy_and_read_only() -> None:
    with MmapVectorStore(5, capacity=8) as store:
        store.extend(np.arange(40, dtype=np.float64).reshape(8, 5))
        rows = store.rows
        assert rows.dtype == np.float32
        assert rows.base is not None  # a view, not a copy
        with pytest.raises(ValueError):
            rows[0, 0] = 1.0
        sub = store.row_range(2, 5)
        assert sub.shape == (3, 5)
        assert np.array_equal(np.asarray(sub), np.asarray(rows[2:5]))


def test_iter_blocks_covers_store_in_order() -> None:
    with MmapVectorStore(3, capacity=10) as store:
        data = np.random.default_rng(1).normal(size=(10, 3))
        store.extend(data)
        seen = []
        for start, view in store.iter_blocks(4):
            assert view.shape[0] <= 4
            seen.append((start, np.asarray(view, dtype=np.float64)))
        assert [s for s, _ in seen] == [0, 4, 8]
        stitched = np.vstack([v for _, v in seen])
        assert np.array_equal(stitched, data.astype(np.float32).astype(np.float64))


def test_scan_matches_heap_store_semantics() -> None:
    with MmapVectorStore(2, dtype="float64") as store:
        data = np.random.default_rng(2).normal(size=(5, 2))
        store.extend(data)
        indices = [i for i, _ in store.scan()]
        scanned = np.vstack([row for _, row in store.scan()])
        assert indices == list(range(5))
        assert scanned.dtype == np.float64
        assert np.array_equal(scanned, data)


def test_from_array_spills_and_matches() -> None:
    data = np.random.default_rng(3).normal(size=(23, 6))
    store = MmapVectorStore.from_array(data, block_rows=7)
    try:
        assert len(store) == 23
        assert np.array_equal(
            np.asarray(store.rows),
            data.astype(np.float32),
        )
    finally:
        store.close()


def test_persistent_path_survives_close_and_reopens(tmp_path) -> None:
    path = tmp_path / "vectors.bin"
    data = np.random.default_rng(4).normal(size=(9, 4)).astype(np.float32)
    store = MmapVectorStore(4, path=path, capacity=9)
    store.extend(data)
    store.flush()
    store.close()
    assert path.exists()
    reopened = np.memmap(path, dtype=np.float32, mode="r", shape=(9, 4))
    assert np.array_equal(np.asarray(reopened), data)


def test_temporary_file_removed_on_close() -> None:
    store = MmapVectorStore(2)
    path = store.path
    store.append(np.zeros(2))
    store.close()
    assert not os.path.exists(path)
    with pytest.raises(StorageError):
        store.append(np.zeros(2))


def test_validation_errors() -> None:
    with pytest.raises(StorageError):
        MmapVectorStore(0)
    with pytest.raises(StorageError):
        MmapVectorStore(2, dtype="int32")
    with pytest.raises(StorageError):
        MmapVectorStore(2, capacity=-1)
    with MmapVectorStore(3) as store:
        with pytest.raises(DimensionMismatchError):
            store.append(np.zeros(4))
        with pytest.raises(DimensionMismatchError):
            store.append_block(np.zeros((2, 4)))
        store.append(np.zeros(3))
        with pytest.raises(PageError):
            store.get(1)
        with pytest.raises(PageError):
            store.row_range(0, 2)


def test_drop_pages_returns_clean_pages() -> None:
    with MmapVectorStore(8, capacity=64) as store:
        store.extend(np.ones((64, 8)))
        # Linux has MADV_DONTNEED; the call must not corrupt the data.
        dropped = store.drop_pages()
        assert dropped in (True, False)
        assert np.array_equal(np.asarray(store.rows), np.ones((64, 8), dtype=np.float32))


class TestStreamingGenerator:
    def test_stream_writes_expected_shape_and_unit_sums(self) -> None:
        from repro.datasets import stream_clustered_histograms

        store = stream_clustered_histograms(
            200, 2, rng=np.random.default_rng(5), block_rows=64
        )
        try:
            rows = np.asarray(store.rows, dtype=np.float64)
            assert rows.shape == (200, 8)
            assert np.all(rows >= 0.0)
            # Unit row sums up to the float32 record rounding.
            assert np.allclose(rows.sum(axis=1), 1.0, atol=1e-5)
        finally:
            store.close()

    def test_stream_is_deterministic_for_a_seed(self) -> None:
        from repro.datasets import stream_clustered_histograms

        a = stream_clustered_histograms(50, 2, rng=np.random.default_rng(7))
        b = stream_clustered_histograms(50, 2, rng=np.random.default_rng(7))
        try:
            assert np.array_equal(np.asarray(a.rows), np.asarray(b.rows))
        finally:
            a.close()
            b.close()

    def test_stream_appends_to_existing_store_and_checks_dim(self) -> None:
        from repro.datasets import stream_clustered_histograms

        with MmapVectorStore(8) as store:
            stream_clustered_histograms(
                30, 2, rng=np.random.default_rng(8), store=store
            )
            assert len(store) == 30
            with pytest.raises(QueryError):
                stream_clustered_histograms(10, 3, store=store)

    def test_stream_validates_arguments(self) -> None:
        from repro.datasets import stream_clustered_histograms

        with pytest.raises(QueryError):
            stream_clustered_histograms(0, 2)
        with pytest.raises(QueryError):
            stream_clustered_histograms(5, 2, block_rows=0)


class TestCacheClearResetStats:
    def test_clear_keeps_stats_by_default_and_resets_on_request(self) -> None:
        from repro.storage import VectorStore

        store = VectorStore(4, page_size=256, cache_pages=2)
        for row in np.random.default_rng(9).normal(size=(32, 4)):
            store.append(row)
        for i in range(32):
            store.get(i)
        cache = store.cache
        assert cache.stats.accesses > 0
        cache.clear()
        assert cache.stats.accesses > 0  # historical behaviour preserved
        cache.clear(reset_stats=True)
        assert cache.stats.accesses == 0
        assert cache.stats.faults == 0

    def test_reset_store_cache_helper(self) -> None:
        import sys
        from pathlib import Path

        sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))
        try:
            from _common import reset_store_cache
        finally:
            sys.path.pop(0)

        from repro.distances import CountingDistance, euclidean, euclidean_one_to_many
        from repro.mam import DiskSequentialFile

        data = np.random.default_rng(10).normal(size=(64, 4))
        counter = CountingDistance(euclidean, one_to_many=euclidean_one_to_many)
        index = DiskSequentialFile(data, counter, page_size=256, cache_pages=2)
        index.knn_search(data[0], 1)
        assert index.store.cache.stats.total_accesses > 0
        reset_store_cache(index)
        assert index.store.cache.stats.total_accesses == 0
        # Indexes without a paged store are a no-op, not an error.
        reset_store_cache(object())


class TestMemoryObservability:
    def test_peak_rss_measured_on_this_platform(self) -> None:
        from repro.obs import peak_rss_bytes, peak_rss_source

        assert peak_rss_bytes() > 0
        assert peak_rss_source() in ("getrusage", "tracemalloc", "unavailable")

    def test_record_memory_sets_gauges(self) -> None:
        from repro.obs import (
            KERNEL_BLOCK_ROWS,
            PEAK_RSS,
            MetricsRegistry,
            record_memory,
            snapshot_dict,
        )

        registry = MetricsRegistry()
        record_memory(registry=registry, model="qfd", method="mtree", block_rows=8192)
        names = {m["name"] for m in snapshot_dict(registry)["metrics"]}
        assert PEAK_RSS in names
        assert KERNEL_BLOCK_ROWS in names

    def test_metrics_block_always_carries_memory(self) -> None:
        from repro.bench import metrics_block

        block = metrics_block(None)
        assert "memory" in block
        assert block["memory"]["peak_rss_bytes"] >= 0
        assert "source" in block["memory"]
