"""Exposition-format conformance: strict parser, round-trips, quantiles.

Three layers of pinning:

1. The strict parser (:func:`parse_prometheus_text`) rejects every
   malformation it claims to — escapes, duplicate ``# TYPE``, missing
   trailing newline, timestamps — with the right line number.
2. Every metric the full suite emits (build + knn + range across the
   whole (model, method) matrix) round-trips ``to_prometheus`` →
   ``parse_prometheus_text`` with exact values, including histograms'
   cumulative-bucket reconstruction and escaped label values.
3. :meth:`HistogramState.quantile` honours its documented contract —
   nearest-rank + in-bucket interpolation, one-octave error bound on the
   default power-of-two grid — and p50/p95/p99 surface in
   :func:`to_table` / :func:`snapshot_dict`.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import random_spd_matrix
from repro.models import QFDModel, QMapModel
from repro.models.base import MAM_REGISTRY, SAM_REGISTRY
from repro.obs import (
    MetricsRegistry,
    parse_prometheus_text,
    snapshot_dict,
    to_prometheus,
    to_table,
    use_registry,
)
from repro.obs.export import PromParseError
from repro.obs.registry import HistogramState

DIM = 6

METHOD_KWARGS: dict[str, dict[str, int]] = {
    "pivot-table": {"n_pivots": 4},
    "mindex": {"n_pivots": 4},
    "mtree": {"capacity": 8},
    "paged-mtree": {"capacity": 8},
    "vptree": {"leaf_size": 4},
    "gnat": {"arity": 3, "leaf_size": 4},
    "rtree": {"capacity": 8},
    "xtree": {"capacity": 8},
    "vafile": {"bits": 4},
}

ALL_PAIRS = [("qfd", m) for m in MAM_REGISTRY] + [
    ("qmap", m) for m in (*MAM_REGISTRY, *SAM_REGISTRY)
]


def _err(text: str) -> PromParseError:
    with pytest.raises(PromParseError) as excinfo:
        parse_prometheus_text(text)
    return excinfo.value


class TestStrictParser:
    def test_empty_exposition_is_empty(self) -> None:
        assert parse_prometheus_text("") == []

    def test_plain_counter_line(self) -> None:
        (sample,) = parse_prometheus_text("# TYPE a counter\na 3\n")
        assert sample.name == "a"
        assert sample.labels == ()
        assert sample.value == 3.0
        assert sample.line_no == 2

    def test_missing_trailing_newline_is_rejected(self) -> None:
        err = _err("# TYPE a counter\na 1")
        assert err.line_no == 2
        assert "newline" in str(err)

    def test_duplicate_type_is_rejected(self) -> None:
        err = _err("# TYPE a counter\n# TYPE a counter\na 1\n")
        assert err.line_no == 2
        assert "duplicate" in str(err)

    def test_sample_without_type_is_rejected(self) -> None:
        err = _err("a 1\n")
        assert err.line_no == 1
        assert "TYPE" in str(err)

    def test_timestamps_are_rejected(self) -> None:
        err = _err("# TYPE a counter\na 1 1700000000\n")
        assert err.line_no == 2

    def test_malformed_comment_is_rejected(self) -> None:
        assert _err("# FOO a b\n").line_no == 1

    def test_bad_type_kind_is_rejected(self) -> None:
        assert "bad TYPE" in str(_err("# TYPE a widget\n"))

    def test_help_lines_are_accepted(self) -> None:
        text = "# HELP a does things\n# TYPE a counter\na 1\n"
        (sample,) = parse_prometheus_text(text)
        assert sample.value == 1.0

    def test_blank_lines_are_allowed(self) -> None:
        (sample,) = parse_prometheus_text("# TYPE a counter\n\na 1\n")
        assert sample.line_no == 3

    @pytest.mark.parametrize(
        "token,expected",
        [("+Inf", math.inf), ("Inf", math.inf), ("-Inf", -math.inf)],
    )
    def test_infinite_values(self, token: str, expected: float) -> None:
        (sample,) = parse_prometheus_text(f"# TYPE g gauge\ng {token}\n")
        assert sample.value == expected

    def test_nan_value(self) -> None:
        (sample,) = parse_prometheus_text("# TYPE g gauge\ng NaN\n")
        assert math.isnan(sample.value)

    def test_bad_value_is_rejected(self) -> None:
        assert "bad sample value" in str(_err("# TYPE g gauge\ng zero\n"))

    def test_escaped_quote_inside_label_value(self) -> None:
        # A naive regex splitting on '"' breaks exactly here.
        text = '# TYPE a counter\na{x="say \\"hi\\""} 1\n'
        (sample,) = parse_prometheus_text(text)
        assert sample.label_dict == {"x": 'say "hi"'}

    def test_escaped_backslash_and_newline(self) -> None:
        text = '# TYPE a counter\na{p="C:\\\\tmp",m="two\\nlines"} 1\n'
        (sample,) = parse_prometheus_text(text)
        assert sample.label_dict == {"p": "C:\\tmp", "m": "two\nlines"}

    def test_invalid_escape_is_rejected(self) -> None:
        assert "invalid escape" in str(_err('# TYPE a counter\na{x="\\t"} 1\n'))

    def test_dangling_backslash_is_rejected(self) -> None:
        assert "backslash" in str(_err('# TYPE a counter\na{x="oops\\\n'))

    def test_unterminated_label_block_is_rejected(self) -> None:
        assert "unterminated" in str(_err('# TYPE a counter\na{x="v"\n'))

    def test_junk_after_label_value_is_rejected(self) -> None:
        _err('# TYPE a counter\na{x="v" 1\n')

    def test_label_without_quoted_value_is_rejected(self) -> None:
        _err("# TYPE a counter\na{x=3} 1\n")

    def test_multiple_labels_sorted(self) -> None:
        (sample,) = parse_prometheus_text(
            '# TYPE a counter\na{zeta="1",alpha="2"} 1\n'
        )
        assert sample.labels == (("alpha", "2"), ("zeta", "1"))

    def test_histogram_suffixes_resolve_to_family(self) -> None:
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 2\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 4.5\n"
            "h_count 3\n"
        )
        samples = parse_prometheus_text(text)
        assert [s.name for s in samples] == ["h_bucket", "h_bucket", "h_sum", "h_count"]

    def test_histogram_suffix_without_family_type_is_rejected(self) -> None:
        # _count alone does not conjure a histogram family.
        assert _err("x_count 1\n").line_no == 1

    def test_line_numbers_point_at_the_offender(self) -> None:
        text = "# TYPE a counter\na 1\n# TYPE b gauge\nb nope\n"
        assert _err(text).line_no == 4


class TestRoundTrip:
    def test_escaped_labels_round_trip_exactly(self) -> None:
        registry = MetricsRegistry()
        nasty = 'back\\slash "quoted"\nnewline'
        registry.counter("repro_escape_total", "help").inc(2, path=nasty)
        samples = parse_prometheus_text(to_prometheus(registry))
        (sample,) = [s for s in samples if s.name == "repro_escape_total"]
        assert sample.label_dict == {"path": nasty}
        assert sample.value == 2.0

    def test_full_suite_emission_round_trips(self) -> None:
        """Every metric the library emits survives the strict parser.

        One live registry accumulates build + knn + range work for the
        entire (model, method) matrix; the exposition must parse, and
        every counter/gauge sample must reappear with its exact value.
        """
        rng = np.random.default_rng(41)
        matrix = random_spd_matrix(DIM, rng=rng, condition=6.0)
        data = rng.random((50, DIM))
        queries = rng.random((2, DIM))
        registry = MetricsRegistry()
        with use_registry(registry):
            for model_name, method in ALL_PAIRS:
                model = (QMapModel if model_name == "qmap" else QFDModel)(matrix)
                built = model.build_index(
                    method, data, **METHOD_KWARGS.get(method, {})
                )
                for q in queries:
                    built.knn_search(q, 3)
                    built.range_search(q, 0.5)

        parsed = parse_prometheus_text(to_prometheus(registry))
        assert parsed, "the suite must emit at least one sample"
        by_key = {(s.name, s.labels): s.value for s in parsed}

        checked = 0
        for sample in registry.snapshot():
            key_labels = tuple(sorted(sample.labels.items()))
            if sample.histogram is None:
                assert by_key[(sample.name, key_labels)] == sample.value
                checked += 1
            else:
                state = sample.histogram
                assert by_key[(f"{sample.name}_count", key_labels)] == state.count
                assert by_key[(f"{sample.name}_sum", key_labels)] == pytest.approx(
                    state.total
                )
                inf_key = tuple(sorted([*sample.labels.items(), ("le", "+Inf")]))
                assert by_key[(f"{sample.name}_bucket", inf_key)] == state.count
                checked += 1
        assert checked == len(registry.snapshot())

    def test_histogram_buckets_are_cumulative_and_monotone(self) -> None:
        registry = MetricsRegistry()
        hist = registry.histogram("repro_rt_seconds", "help", bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.5, 3.0, 99.0):
            hist.observe(value)
        parsed = parse_prometheus_text(to_prometheus(registry))
        buckets = [s for s in parsed if s.name == "repro_rt_seconds_bucket"]
        values = [s.value for s in buckets]
        assert values == sorted(values), "cumulative buckets must be monotone"
        assert buckets[-1].label_dict["le"] == "+Inf"
        assert buckets[-1].value == 5


class TestHistogramQuantile:
    def _state(self, bounds, observations) -> HistogramState:
        registry = MetricsRegistry()
        hist = registry.histogram("q", bounds=bounds)
        for value in observations:
            hist.observe(value)
        return hist.state()

    def test_rejects_out_of_range_q(self) -> None:
        state = self._state((1.0, 2.0), [1.5])
        with pytest.raises(ValueError):
            state.quantile(-0.01)
        with pytest.raises(ValueError):
            state.quantile(1.01)

    def test_empty_state_reads_zero(self) -> None:
        registry = MetricsRegistry()
        state = registry.histogram("q", bounds=(1.0, 2.0)).state()
        assert state.count == 0
        assert state.quantile(0.5) == 0.0

    def test_interpolates_inside_the_bucket(self) -> None:
        # Four observations in the (1, 2] bucket: rank r maps to the
        # lower edge plus r/4 of the bucket width.
        state = self._state((1.0, 2.0), [1.5, 1.5, 1.5, 1.5])
        assert state.quantile(0.25) == pytest.approx(1.25)
        assert state.quantile(0.5) == pytest.approx(1.5)
        assert state.quantile(1.0) == pytest.approx(2.0)

    def test_first_bucket_anchors_at_zero(self) -> None:
        state = self._state((1.0, 2.0), [0.5])
        # Single observation in the first bucket: lower edge is 0.0.
        assert state.quantile(1.0) == pytest.approx(1.0)

    def test_overflow_reports_last_finite_bound(self) -> None:
        state = self._state((1.0, 2.0), [100.0])
        assert state.quantile(0.5) == 2.0
        assert state.quantile(1.0) == 2.0

    def test_default_grid_one_octave_error_bound(self) -> None:
        # Identical observations land in one power-of-two bucket; the
        # estimate must stay inside that bucket (relative error < 2x).
        registry = MetricsRegistry()
        hist = registry.histogram("q")
        truth = 0.01
        for _ in range(10):
            hist.observe(truth)
        state = hist.state()
        for q in (0.5, 0.95, 0.99):
            estimate = state.quantile(q)
            assert estimate / truth < 2.0
            assert truth / estimate < 2.0

    def test_quantiles_are_monotone_in_q(self) -> None:
        rng = np.random.default_rng(5)
        registry = MetricsRegistry()
        hist = registry.histogram("q")
        for value in rng.lognormal(0.0, 1.5, size=200):
            hist.observe(float(value))
        state = hist.state()
        estimates = [state.quantile(q) for q in (0.1, 0.5, 0.9, 0.99)]
        assert estimates == sorted(estimates)


class TestQuantileSurfaces:
    def _registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        hist = registry.histogram("repro_query_seconds", "help")
        for value in (0.001, 0.002, 0.004, 0.1):
            hist.observe(value, method="mtree")
        return registry

    def test_snapshot_dict_carries_quantiles(self) -> None:
        payload = snapshot_dict(self._registry())
        (entry,) = payload["metrics"]
        assert set(entry["quantiles"]) == {"p50", "p95", "p99"}
        assert entry["quantiles"]["p50"] <= entry["quantiles"]["p99"]

    def test_to_table_prints_quantiles(self) -> None:
        text = to_table(self._registry())
        assert "p50=" in text
        assert "p95=" in text
        assert "p99=" in text

    def test_empty_histograms_omit_quantiles(self) -> None:
        registry = MetricsRegistry()
        registry.counter("repro_only_total").inc(1)
        payload = snapshot_dict(registry)
        (entry,) = payload["metrics"]
        assert "quantiles" not in entry
