"""Tests for repro.mam.pivot_table and repro.mam.pivots."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import clustered_histograms
from repro.distances import CountingDistance, euclidean, euclidean_one_to_many
from repro.exceptions import QueryError
from repro.mam import PIVOT_METHODS, PivotTable, SequentialFile, select_pivots
from repro.mam.base import DistancePort

from .helpers import assert_same_neighbors


@pytest.fixture(scope="module")
def data():
    return clustered_histograms(300, 4, themes=6, rng=np.random.default_rng(31))


class TestPivotSelection:
    @pytest.mark.parametrize("method", PIVOT_METHODS)
    def test_returns_p_distinct_pivots(self, method, data) -> None:
        port = DistancePort(euclidean, one_to_many=euclidean_one_to_many)
        pivots = select_pivots(data, 8, port, method=method)
        assert len(pivots) == 8
        assert len(set(pivots)) == 8
        assert all(0 <= i < len(data) for i in pivots)

    def test_maxmin_spreads_pivots(self, data) -> None:
        """Farthest-first pivots must be pairwise farther apart than random
        ones on average."""
        port = DistancePort(euclidean, one_to_many=euclidean_one_to_many)
        rng1, rng2 = np.random.default_rng(1), np.random.default_rng(1)
        maxmin = select_pivots(data, 6, port, method="maxmin", rng=rng1)
        random_ = select_pivots(data, 6, port, method="random", rng=rng2)

        def mean_pairwise(idx: list[int]) -> float:
            rows = data[idx]
            total, count = 0.0, 0
            for i in range(len(idx)):
                for j in range(i + 1, len(idx)):
                    total += euclidean(rows[i], rows[j])
                    count += 1
            return total / count

        assert mean_pairwise(maxmin) > mean_pairwise(random_)

    def test_sample_restriction(self, data) -> None:
        port = DistancePort(euclidean, one_to_many=euclidean_one_to_many)
        rng = np.random.default_rng(2)
        sample_rng = np.random.default_rng(2)
        sample = sample_rng.choice(len(data), size=50, replace=False)
        pivots = select_pivots(data, 5, port, method="maxmin", sample_size=50, rng=rng)
        assert set(pivots) <= set(int(i) for i in sample)

    def test_selection_charges_distances(self, data) -> None:
        counter = CountingDistance(euclidean, one_to_many=euclidean_one_to_many)
        port = DistancePort(counter)
        select_pivots(data, 5, port, method="maxmin")
        assert counter.count > 0

    def test_random_selection_is_free(self, data) -> None:
        counter = CountingDistance(euclidean, one_to_many=euclidean_one_to_many)
        port = DistancePort(counter)
        select_pivots(data, 5, port, method="random")
        assert counter.count == 0

    def test_invalid_method(self, data) -> None:
        port = DistancePort(euclidean)
        with pytest.raises(QueryError):
            select_pivots(data, 3, port, method="magic")

    def test_invalid_p(self, data) -> None:
        port = DistancePort(euclidean)
        with pytest.raises(QueryError):
            select_pivots(data, 0, port)
        with pytest.raises(QueryError):
            select_pivots(data, len(data) + 1, port)

    def test_sample_smaller_than_p(self, data) -> None:
        port = DistancePort(euclidean)
        with pytest.raises(QueryError):
            select_pivots(data, 10, port, sample_size=5)


class TestDuplicateVectorSelection:
    """Regression: repeated database vectors must not yield duplicate
    pivots — two copies of the same vector waste a pivot for the triangle
    bound and zero the denominator of the Ptolemaic one."""

    @pytest.fixture(scope="class")
    def dup_data(self):
        base = clustered_histograms(30, 4, themes=4, rng=np.random.default_rng(17))
        return np.repeat(base, 4, axis=0)  # 120 rows, each vector x4

    @pytest.mark.parametrize("method", PIVOT_METHODS)
    def test_pivots_are_content_distinct(self, method, dup_data) -> None:
        port = DistancePort(euclidean, one_to_many=euclidean_one_to_many)
        for seed in range(5):
            pivots = select_pivots(
                dup_data, 8, port, method=method, rng=np.random.default_rng(seed)
            )
            assert len(pivots) == 8
            rows = dup_data[pivots]
            for i in range(8):
                for j in range(i + 1, 8):
                    assert not np.array_equal(rows[i], rows[j]), (
                        f"{method}/seed {seed}: pivots {pivots[i]} and "
                        f"{pivots[j]} hold the same vector"
                    )

    def test_random_selection_stays_free_on_duplicates(self, dup_data) -> None:
        counter = CountingDistance(euclidean, one_to_many=euclidean_one_to_many)
        port = DistancePort(counter)
        select_pivots(dup_data, 8, port, method="random", rng=np.random.default_rng(0))
        assert counter.count == 0  # the dedup works on raw rows, not distances

    @pytest.mark.parametrize("method", PIVOT_METHODS)
    def test_fewer_distinct_vectors_than_p_still_honors_p(self, method) -> None:
        base = clustered_histograms(3, 2, themes=3, rng=np.random.default_rng(5))
        data = np.repeat(base, 4, axis=0)  # 12 rows, only 3 distinct
        port = DistancePort(euclidean, one_to_many=euclidean_one_to_many)
        pivots = select_pivots(
            data, 5, port, method=method, rng=np.random.default_rng(1)
        )
        # The requested count survives; the 3 distinct vectors all appear.
        assert len(pivots) == 5 and len(set(pivots)) == 5
        distinct = {tuple(data[i]) for i in pivots}
        assert len(distinct) == 3

class TestPivotTable:
    def test_table_shape_and_content(self, data) -> None:
        pt = PivotTable(data, euclidean, n_pivots=6)
        assert pt.table.shape == (len(data), 6)
        # Column j holds d(o_i, pivot_j).
        for col, piv in enumerate(pt.pivot_indices[:3]):
            assert pt.table[piv, col] == pytest.approx(0.0, abs=1e-12)

    def test_table_read_only(self, data) -> None:
        pt = PivotTable(data, euclidean, n_pivots=4)
        with pytest.raises(ValueError):
            pt.table[0, 0] = 1.0

    def test_explicit_pivots(self, data) -> None:
        pt = PivotTable(data, euclidean, pivots=[0, 5, 9])
        assert pt.pivot_indices == [0, 5, 9]
        assert pt.n_pivots == 3

    def test_explicit_pivots_validated(self, data) -> None:
        with pytest.raises(QueryError):
            PivotTable(data, euclidean, pivots=[len(data)])
        with pytest.raises(QueryError):
            PivotTable(data, euclidean, pivots=[])

    def test_pivot_count_clamped(self) -> None:
        small = clustered_histograms(5, 2, rng=np.random.default_rng(1))
        pt = PivotTable(small, euclidean, n_pivots=100)
        assert pt.n_pivots == 5

    def test_more_pivots_filter_better(self, data) -> None:
        """More pivots -> tighter L∞ bound -> fewer refinement distances."""
        q = data[0]
        evals = []
        for p in (2, 8, 32):
            counter = CountingDistance(euclidean, one_to_many=euclidean_one_to_many)
            pt = PivotTable(data, counter, n_pivots=p, rng=np.random.default_rng(3))
            counter.reset()
            pt.knn_search(q, 5)
            evals.append(counter.count - p)  # subtract query-to-pivot cost
        assert evals[2] <= evals[0]

    def test_exactness_all_pivot_methods(self, data) -> None:
        scan = SequentialFile(data, euclidean)
        for method in PIVOT_METHODS:
            pt = PivotTable(data, euclidean, n_pivots=8, pivot_method=method)
            for q in data[:2]:
                assert_same_neighbors(
                    pt.knn_search(q, 6), scan.knn_search(q, 6), label=method
                )

    def test_candidates_for_radius(self, data) -> None:
        pt = PivotTable(data, euclidean, n_pivots=8)
        q = data[0] * 0.99 + 0.01 / data.shape[1]
        all_cands = pt.candidates_for_radius(q, 1e6)
        assert all_cands == len(data)
        few = pt.candidates_for_radius(q, 1e-6)
        assert few < all_cands

    def test_candidates_rejects_negative_radius(self, data) -> None:
        pt = PivotTable(data, euclidean, n_pivots=4)
        with pytest.raises(QueryError):
            pt.candidates_for_radius(data[0], -1.0)

    def test_candidates_rejects_malformed_query(self, data) -> None:
        """Regression: a wrong-dimension query used to surface as a numpy
        broadcast error from the pivot scan instead of a QueryError."""
        pt = PivotTable(data, euclidean, n_pivots=4)
        with pytest.raises(QueryError, match="malformed range query"):
            pt.candidates_for_radius(np.ones(data.shape[1] + 3), 0.5)
        with pytest.raises(QueryError):
            pt.candidates_for_radius(np.ones((2, data.shape[1])), 0.5)

    def test_single_pivot(self, data) -> None:
        scan = SequentialFile(data, euclidean)
        pt = PivotTable(data, euclidean, n_pivots=1)
        q = data[10]
        assert_same_neighbors(pt.knn_search(q, 4), scan.knn_search(q, 4))
