"""Tests for repro.persistence — npz round-trips and corruption detection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import QMap
from repro.datasets import histogram_workload
from repro.distances import euclidean, euclidean_one_to_many
from repro.exceptions import StorageError
from repro.mam import PivotTable, SequentialFile
from repro.persistence import (
    load_pivot_table,
    load_qmap,
    load_transformed_database,
    load_workload,
    save_pivot_table,
    save_qmap,
    save_transformed_database,
    save_workload,
)

from .helpers import assert_same_neighbors


class TestQMapRoundtrip:
    def test_roundtrip(self, spd_16, tmp_path) -> None:
        qmap = QMap(spd_16)
        path = tmp_path / "qmap.npz"
        save_qmap(qmap, path)
        loaded = load_qmap(path)
        assert np.allclose(loaded.qfd.matrix, qmap.qfd.matrix)
        assert np.allclose(loaded.matrix, qmap.matrix)

    def test_corrupted_factor_detected(self, spd_16, tmp_path) -> None:
        qmap = QMap(spd_16)
        path = tmp_path / "qmap.npz"
        bad = qmap.matrix.copy()
        bad[0, 0] += 0.5
        np.savez_compressed(path, kind="qmap", matrix=qmap.qfd.matrix, cholesky=bad)
        with pytest.raises(StorageError, match="does not match"):
            load_qmap(path)

    def test_wrong_kind_detected(self, spd_16, tmp_path) -> None:
        path = tmp_path / "other.npz"
        np.savez_compressed(path, kind="workload", matrix=spd_16)
        with pytest.raises(StorageError, match="expected 'qmap'"):
            load_qmap(path)


class TestWorkloadRoundtrip:
    def test_roundtrip(self, tmp_path) -> None:
        workload = histogram_workload(30, 3, bins_per_channel=2, seed=3)
        path = tmp_path / "workload.npz"
        save_workload(workload, path)
        loaded = load_workload(path)
        assert np.array_equal(loaded.database, workload.database)
        assert np.array_equal(loaded.queries, workload.queries)
        assert np.array_equal(loaded.matrix, workload.matrix)
        assert loaded.name == workload.name
        assert loaded.matrix_repair.shift == workload.matrix_repair.shift


class TestTransformedDatabaseRoundtrip:
    def test_roundtrip(self, spd_16, rng, tmp_path) -> None:
        qmap = QMap(spd_16)
        database = rng.random((40, 16))
        path = tmp_path / "db.npz"
        save_transformed_database(qmap, database, path)
        loaded_qmap, loaded_db, loaded_mapped = load_transformed_database(path)
        assert np.allclose(loaded_db, database)
        assert np.allclose(loaded_mapped, qmap.transform_batch(database))
        assert np.allclose(loaded_qmap.matrix, qmap.matrix)

    def test_tampered_mapping_detected(self, spd_16, rng, tmp_path) -> None:
        qmap = QMap(spd_16)
        database = rng.random((10, 16))
        mapped = qmap.transform_batch(database)
        mapped[3] += 0.01
        path = tmp_path / "bad.npz"
        np.savez_compressed(
            path,
            kind="transformed-database",
            matrix=spd_16,
            database=database,
            mapped=mapped,
        )
        with pytest.raises(StorageError, match="disagrees"):
            load_transformed_database(path, verify_rows=10)

    def test_shape_mismatch_detected(self, spd_16, rng, tmp_path) -> None:
        path = tmp_path / "bad2.npz"
        np.savez_compressed(
            path,
            kind="transformed-database",
            matrix=spd_16,
            database=rng.random((5, 16)),
            mapped=rng.random((4, 16)),
        )
        with pytest.raises(StorageError, match="shape mismatch"):
            load_transformed_database(path)


class TestPivotTableRoundtrip:
    def test_roundtrip_queries_identical(self, histograms_64, tmp_path) -> None:
        data = histograms_64[:150]
        original = PivotTable(data, euclidean, n_pivots=8)
        path = tmp_path / "pt.npz"
        save_pivot_table(original, path)

        from repro.distances import CountingDistance

        counter = CountingDistance(euclidean, one_to_many=euclidean_one_to_many)
        loaded = load_pivot_table(path, counter)
        counter.reset()
        q = histograms_64[200]
        assert_same_neighbors(loaded.knn_search(q, 5), original.knn_search(q, 5))
        # Loading must NOT have recomputed the m x p table (only the query
        # and the probe cost distances).
        assert counter.count < data.shape[0]

    def test_wrong_distance_detected(self, histograms_64, tmp_path) -> None:
        from repro.distances import manhattan

        data = histograms_64[:80]
        original = PivotTable(data, euclidean, n_pivots=4)
        path = tmp_path / "pt2.npz"
        save_pivot_table(original, path)
        with pytest.raises(StorageError, match="disagrees with the stored table"):
            load_pivot_table(path, manhattan)

    def test_from_parts_validates_shapes(self, histograms_64) -> None:
        from repro.exceptions import QueryError

        data = histograms_64[:20]
        with pytest.raises(QueryError):
            PivotTable.from_parts(data, euclidean, [0, 1], np.zeros((20, 3)))
        with pytest.raises(QueryError):
            PivotTable.from_parts(data, euclidean, [], np.zeros((20, 0)))
        with pytest.raises(QueryError):
            PivotTable.from_parts(data, euclidean, [99], np.zeros((20, 1)))

    def test_loaded_table_supports_inserts(self, histograms_64, tmp_path) -> None:
        data = histograms_64[:100]
        original = PivotTable(data, euclidean, n_pivots=6)
        path = tmp_path / "pt3.npz"
        save_pivot_table(original, path)
        loaded = load_pivot_table(path, euclidean)
        loaded.insert(histograms_64[100])
        assert loaded.size == 101
        top = loaded.knn_search(histograms_64[100], 1)[0]
        assert top.index == 100

    def test_roundtrip_matches_scan(self, histograms_64, tmp_path) -> None:
        data = histograms_64[:120]
        scan = SequentialFile(data, euclidean)
        original = PivotTable(data, euclidean, n_pivots=10)
        path = tmp_path / "pt4.npz"
        save_pivot_table(original, path)
        loaded = load_pivot_table(path, euclidean)
        for q in histograms_64[200:203]:
            assert_same_neighbors(loaded.knn_search(q, 7), scan.knn_search(q, 7))
