"""Tests for repro.mam.vptree, repro.mam.gnat and repro.mam.sequential."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import clustered_histograms
from repro.distances import CountingDistance, euclidean, euclidean_one_to_many
from repro.exceptions import QueryError
from repro.mam import GNAT, DiskSequentialFile, SequentialFile, VPTree

from .helpers import assert_same_neighbors


@pytest.fixture(scope="module")
def data():
    return clustered_histograms(350, 4, themes=7, rng=np.random.default_rng(51))


@pytest.fixture(scope="module")
def scan(data):
    return SequentialFile(data, euclidean)


class TestVPTree:
    def test_exact_knn(self, data, scan) -> None:
        tree = VPTree(data, euclidean, leaf_size=6)
        for q in data[:4]:
            assert_same_neighbors(tree.knn_search(q, 9), scan.knn_search(q, 9))

    def test_exact_range(self, data, scan) -> None:
        tree = VPTree(data, euclidean, leaf_size=6)
        q = data[100]
        for radius in (0.0, 0.03, 0.2):
            assert_same_neighbors(tree.range_search(q, radius), scan.range_search(q, radius))

    def test_prunes(self, data) -> None:
        counter = CountingDistance(euclidean, one_to_many=euclidean_one_to_many)
        tree = VPTree(data, counter, leaf_size=8)
        counter.reset()
        tree.knn_search(data[0], 3)
        assert counter.count < 0.8 * len(data)

    def test_leaf_size_one(self, data, scan) -> None:
        tree = VPTree(data[:60], euclidean, leaf_size=1)
        scan60 = SequentialFile(data[:60], euclidean)
        q = data[70]
        assert_same_neighbors(tree.knn_search(q, 5), scan60.knn_search(q, 5))

    def test_rejects_bad_leaf_size(self, data) -> None:
        with pytest.raises(QueryError):
            VPTree(data, euclidean, leaf_size=0)

    def test_degenerate_all_identical(self) -> None:
        """All-equal objects make every median split degenerate; the tree
        must fall back to a bucket rather than recurse forever."""
        same = np.tile(np.full(4, 0.25), (20, 1))
        tree = VPTree(same, euclidean, leaf_size=2)
        hits = tree.knn_search(same[0], 5)
        assert len(hits) == 5
        assert all(h.distance == 0.0 for h in hits)

    def test_single_object(self) -> None:
        tree = VPTree(np.ones((1, 3)), euclidean)
        assert tree.knn_search(np.zeros(3), 1)[0].index == 0


class TestGNAT:
    def test_exact_knn(self, data, scan) -> None:
        tree = GNAT(data, euclidean, arity=6, leaf_size=10)
        for q in data[:4]:
            assert_same_neighbors(tree.knn_search(q, 9), scan.knn_search(q, 9))

    def test_exact_range(self, data, scan) -> None:
        tree = GNAT(data, euclidean, arity=6, leaf_size=10)
        q = data[42]
        for radius in (0.0, 0.03, 0.2):
            assert_same_neighbors(tree.range_search(q, radius), scan.range_search(q, radius))

    def test_prunes(self, data) -> None:
        counter = CountingDistance(euclidean, one_to_many=euclidean_one_to_many)
        tree = GNAT(data, counter, arity=8, leaf_size=16)
        counter.reset()
        tree.knn_search(data[0], 3)
        assert counter.count < 0.8 * len(data)

    def test_rejects_bad_arity(self, data) -> None:
        with pytest.raises(QueryError):
            GNAT(data, euclidean, arity=1)

    def test_rejects_bad_leaf_size(self, data) -> None:
        with pytest.raises(QueryError):
            GNAT(data, euclidean, leaf_size=0)

    def test_small_database(self) -> None:
        small = np.eye(4)
        tree = GNAT(small, euclidean, arity=2, leaf_size=2)
        hits = tree.knn_search(np.zeros(4), 4)
        assert len(hits) == 4

    def test_all_identical(self) -> None:
        same = np.tile(np.full(3, 0.5), (30, 1))
        tree = GNAT(same, euclidean, arity=4, leaf_size=4)
        assert len(tree.knn_search(same[0], 10)) == 10


class TestDiskSequentialFile:
    def test_matches_in_memory(self, data, scan) -> None:
        disk = DiskSequentialFile(data, euclidean, cache_pages=2)
        q = data[33]
        assert_same_neighbors(disk.knn_search(q, 8), scan.knn_search(q, 8))
        assert_same_neighbors(disk.range_search(q, 0.1), scan.range_search(q, 0.1))

    def test_cache_faults_on_large_scan(self, data) -> None:
        disk = DiskSequentialFile(data, euclidean, page_size=2048, cache_pages=2)
        disk.store.cache.stats.reset()
        disk.knn_search(data[0], 1)
        pages = (len(data) + disk.store.records_per_page - 1) // disk.store.records_per_page
        assert disk.store.cache.stats.faults >= pages - 2

    def test_small_database_fits_cache(self) -> None:
        small = clustered_histograms(10, 2, rng=np.random.default_rng(3))
        disk = DiskSequentialFile(small, euclidean, cache_pages=64)
        disk.knn_search(small[0], 2)
        disk.store.cache.stats.reset()
        disk.knn_search(small[0], 2)
        assert disk.store.cache.stats.faults == 0  # warm cache

    def test_scan_costs_full_database(self, data) -> None:
        counter = CountingDistance(euclidean, one_to_many=euclidean_one_to_many)
        disk = DiskSequentialFile(data, counter)
        counter.reset()
        disk.knn_search(data[0], 1)
        assert counter.count == len(data)


class TestSequentialFile:
    def test_knn_evaluates_everything(self, data) -> None:
        counter = CountingDistance(euclidean, one_to_many=euclidean_one_to_many)
        seq = SequentialFile(data, counter)
        counter.reset()
        seq.knn_search(data[0], 5)
        assert counter.count == len(data)

    def test_range_empty_result(self, data, scan) -> None:
        q = np.full(data.shape[1], 10.0)
        assert scan.range_search(q, 0.001) == []

    def test_knn_ties_resolved_by_index(self) -> None:
        rows = np.zeros((4, 3))
        seq = SequentialFile(rows, euclidean)
        out = seq.knn_search(np.zeros(3), 2)
        assert [n.index for n in out] == [0, 1]
