"""Tests for repro.core.cholesky — paper Algorithm 1 and the numpy path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import cholesky, cholesky_reference, is_lower_triangular, random_spd_matrix
from repro.exceptions import MatrixError, NotPositiveDefiniteError, NotSymmetricError


class TestCholesky:
    def test_reconstructs_matrix(self, spd_16: np.ndarray) -> None:
        b = cholesky(spd_16)
        assert np.allclose(b @ b.T, spd_16)

    def test_factor_is_lower_triangular(self, spd_16: np.ndarray) -> None:
        b = cholesky(spd_16)
        assert is_lower_triangular(b)

    def test_diagonal_is_positive(self, spd_16: np.ndarray) -> None:
        b = cholesky(spd_16)
        assert np.all(np.diag(b) > 0.0)

    def test_identity_factors_to_identity(self) -> None:
        assert np.allclose(cholesky(np.eye(5)), np.eye(5))

    def test_diagonal_matrix_factors_to_sqrt(self) -> None:
        a = np.diag([4.0, 9.0, 16.0])
        assert np.allclose(cholesky(a), np.diag([2.0, 3.0, 4.0]))

    def test_paper_rgb_example(self) -> None:
        # The 3x3 RGB matrix from the paper's Section 1.2.
        a = np.array([[1.0, 0.0, 0.0], [0.0, 1.0, 0.5], [0.0, 0.5, 1.0]])
        b = cholesky(a)
        assert np.allclose(b @ b.T, a)

    def test_rejects_indefinite(self) -> None:
        a = np.array([[1.0, 2.0], [2.0, 1.0]])  # eigenvalues 3, -1
        with pytest.raises(NotPositiveDefiniteError):
            cholesky(a)

    def test_rejects_semidefinite(self) -> None:
        a = np.array([[1.0, 1.0], [1.0, 1.0]])  # rank 1
        with pytest.raises(NotPositiveDefiniteError):
            cholesky(a)

    def test_rejects_zero_matrix(self) -> None:
        with pytest.raises(NotPositiveDefiniteError):
            cholesky(np.zeros((3, 3)))

    def test_rejects_non_symmetric(self) -> None:
        a = np.array([[1.0, 0.3], [0.0, 1.0]])
        with pytest.raises(NotSymmetricError):
            cholesky(a)

    def test_symmetry_check_can_be_disabled(self) -> None:
        a = np.array([[1.0, 0.3], [0.0, 1.0]])
        # numpy uses only one triangle; just ensure no symmetry error.
        cholesky(a + a.T + np.eye(2), check_symmetry=False)

    def test_rejects_non_square(self) -> None:
        with pytest.raises(MatrixError):
            cholesky(np.ones((2, 3)))

    def test_rejects_nan(self) -> None:
        a = np.eye(3)
        a[0, 0] = np.nan
        with pytest.raises(MatrixError):
            cholesky(a)


class TestCholeskyReference:
    """The pure-Python Algorithm 1 must agree with LAPACK exactly."""

    def test_agrees_with_numpy(self, spd_16: np.ndarray) -> None:
        assert np.allclose(cholesky_reference(spd_16), cholesky(spd_16))

    @pytest.mark.parametrize("dim", [1, 2, 3, 7, 12])
    def test_agrees_on_random_matrices(self, dim: int) -> None:
        rng = np.random.default_rng(dim)
        a = random_spd_matrix(dim, rng=rng, condition=5.0)
        assert np.allclose(cholesky_reference(a), cholesky(a), atol=1e-10)

    def test_reference_error_message_matches_paper(self) -> None:
        # Algorithm 1 line 10 error text.
        a = np.array([[1.0, 2.0], [2.0, 1.0]])
        with pytest.raises(NotPositiveDefiniteError, match="not positive definite"):
            cholesky_reference(a)

    def test_reference_clears_upper_triangle(self, spd_16: np.ndarray) -> None:
        b = cholesky_reference(spd_16)
        assert is_lower_triangular(b)

    def test_one_by_one(self) -> None:
        assert np.allclose(cholesky_reference([[9.0]]), [[3.0]])

    def test_one_by_one_nonpositive(self) -> None:
        with pytest.raises(NotPositiveDefiniteError):
            cholesky_reference([[0.0]])


class TestIsLowerTriangular:
    def test_accepts_lower(self) -> None:
        assert is_lower_triangular(np.tril(np.ones((4, 4))))

    def test_rejects_upper_entries(self) -> None:
        a = np.tril(np.ones((4, 4)))
        a[0, 3] = 0.5
        assert not is_lower_triangular(a)

    def test_tolerance(self) -> None:
        a = np.tril(np.ones((4, 4)))
        a[0, 3] = 1e-14
        assert is_lower_triangular(a, atol=1e-12)

    def test_single_element(self) -> None:
        assert is_lower_triangular([[5.0]])
