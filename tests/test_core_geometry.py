"""Tests for repro.core.geometry — Figure 1 as executable code."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import QMap, QuadraticFormDistance, random_spd_matrix
from repro.core.geometry import qfd_ball_axes, sample_ball_boundary
from repro.exceptions import QueryError


class TestQfdBallAxes:
    def test_identity_gives_sphere(self) -> None:
        axes = qfd_ball_axes(np.eye(4), radius=2.0)
        assert np.allclose(axes.lengths, 2.0)
        assert axes.eccentricity == pytest.approx(1.0)

    def test_diagonal_matrix_axis_lengths(self) -> None:
        a = np.diag([4.0, 1.0])
        axes = qfd_ball_axes(a, radius=1.0)
        # lambda = 4 -> semi-axis 1/2; lambda = 1 -> semi-axis 1.
        assert axes.lengths[0] == pytest.approx(1.0)
        assert axes.lengths[1] == pytest.approx(0.5)

    def test_axis_endpoints_on_boundary(self, spd_16: np.ndarray) -> None:
        qfd = QuadraticFormDistance(spd_16)
        axes = qfd_ball_axes(qfd, radius=0.7)
        center = np.zeros(16)
        for i in range(16):
            endpoint = center + axes.lengths[i] * axes.directions[:, i]
            assert qfd(center, endpoint) == pytest.approx(0.7, abs=1e-9)

    def test_directions_orthonormal(self, spd_16: np.ndarray) -> None:
        axes = qfd_ball_axes(spd_16, radius=1.0)
        assert np.allclose(axes.directions.T @ axes.directions, np.eye(16), atol=1e-9)

    def test_lengths_sorted_descending(self, spd_16: np.ndarray) -> None:
        axes = qfd_ball_axes(spd_16, radius=1.0)
        assert np.all(np.diff(axes.lengths) <= 1e-15)

    def test_shared_orientation_across_radii(self, spd_16: np.ndarray) -> None:
        """All QFD balls are oriented the same way (paper Section 3.1)."""
        small = qfd_ball_axes(spd_16, radius=0.1)
        large = qfd_ball_axes(spd_16, radius=10.0)
        assert np.allclose(np.abs(small.directions), np.abs(large.directions))
        assert np.allclose(large.lengths / small.lengths, 100.0)

    def test_rejects_bad_radius(self, spd_16: np.ndarray) -> None:
        with pytest.raises(QueryError):
            qfd_ball_axes(spd_16, radius=0.0)


class TestSampleBallBoundary:
    def test_points_on_boundary(self, spd_16: np.ndarray, rng) -> None:
        qfd = QuadraticFormDistance(spd_16)
        center = rng.random(16)
        points = sample_ball_boundary(qfd, center, radius=0.9, n_points=40, rng=rng)
        for point in points:
            assert qfd(center, point) == pytest.approx(0.9, abs=1e-9)

    def test_figure_1_sphere_image(self, spd_16: np.ndarray, rng) -> None:
        """The testable content of Figure 1: the QMap transform sends the
        QFD ball boundary onto a Euclidean sphere of the SAME radius."""
        qmap = QMap(spd_16)
        center = rng.random(16)
        points = sample_ball_boundary(spd_16, center, radius=0.42, n_points=50, rng=rng)
        mapped_center = qmap.transform(center)
        mapped = qmap.transform_batch(points)
        distances = np.linalg.norm(mapped - mapped_center, axis=1)
        assert np.allclose(distances, 0.42, atol=1e-9)

    def test_zero_radius_collapses_to_center(self, spd_16: np.ndarray, rng) -> None:
        center = rng.random(16)
        points = sample_ball_boundary(spd_16, center, radius=0.0, n_points=5, rng=rng)
        assert np.allclose(points, center)

    def test_validation(self, spd_16: np.ndarray) -> None:
        with pytest.raises(QueryError):
            sample_ball_boundary(spd_16, np.zeros(16), radius=-1.0)
        with pytest.raises(QueryError):
            sample_ball_boundary(spd_16, np.zeros(16), radius=1.0, n_points=0)

    def test_random_matrix_family(self) -> None:
        for seed in range(3):
            rng = np.random.default_rng(seed)
            a = random_spd_matrix(6, rng=rng, condition=40.0)
            qfd = QuadraticFormDistance(a)
            center = rng.random(6)
            for point in sample_ball_boundary(a, center, 1.3, n_points=10, rng=rng):
                assert qfd(center, point) == pytest.approx(1.3, abs=1e-8)
