"""Out-of-core model builds: mmap vs heap twins, counts, snapshots.

Model-level contract of the out-of-core data path (ISSUE tentpole +
satellite d): an index built over a memory-mapped float32 store with
blocked kernels must return *bit-identical* answers and charge *exactly*
the same logical distance counts as its in-heap twin, for every access
method under both models; snapshot restores stay at zero distance
evaluations; and the parallel M-tree bulk-load is deterministic in the
worker count.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.color import rgb_bin_prototypes
from repro.core import prototype_similarity_matrix
from repro.datasets import clustered_histograms
from repro.exceptions import IndexStateError, QueryError
from repro.mam import MTree
from repro.models import QFDModel, QMapModel, load_built_index
from repro.models.base import MAM_REGISTRY, SAM_REGISTRY

from .helpers import assert_same_neighbors

BINS = 2  # 2 bins/channel -> dim 8: small enough for exhaustive sweeps
DIM = BINS**3
BLOCK = 13  # deliberately not a divisor of any test database size


def _matrix():
    return prototype_similarity_matrix(rgb_bin_prototypes(BINS)).matrix


def _data(n: int, seed: int) -> np.ndarray:
    return clustered_histograms(n, BINS, rng=np.random.default_rng(seed))


def _method_kwargs(method: str, seed: int = 1) -> dict:
    base = {
        "sequential": {},
        "disk-sequential": {"cache_pages": 8},
        "pivot-table": {"n_pivots": 6},
        "mtree": {"capacity": 6},
        "paged-mtree": {"capacity": 6, "cache_pages": 8},
        "vptree": {"leaf_size": 6},
        "gnat": {"arity": 4, "leaf_size": 8},
        "mindex": {"n_pivots": 5},
        "sat": {},
        "rtree": {"capacity": 6},
        "xtree": {"capacity": 6},
        "vafile": {"bits": 4},
    }[method]
    if method in ("pivot-table", "mtree", "paged-mtree", "vptree", "gnat", "mindex", "sat"):
        base = dict(base, rng=np.random.default_rng(seed))
    return base


ALL_CASES = [(QFDModel, m) for m in sorted(MAM_REGISTRY)] + [
    (QMapModel, m) for m in sorted(MAM_REGISTRY) + sorted(SAM_REGISTRY)
]


def _case_id(case) -> str:
    model_cls, method = case
    return f"{model_cls.name}-{method}"


def _build_three(model_cls, method, data, *, block_rows=BLOCK, **extra):
    """The three twins: heap f32 unblocked, heap f32 blocked, mmap blocked."""
    model = model_cls(_matrix())
    plain = model.build_index(
        method, data, store_dtype="float32", **_method_kwargs(method), **extra
    )
    heap = model.build_index(
        method,
        data,
        store_dtype="float32",
        block_rows=block_rows,
        **_method_kwargs(method),
        **extra,
    )
    mmap = model.build_index(
        method, data, store="mmap", block_rows=block_rows, **_method_kwargs(method), **extra
    )
    return plain, heap, mmap


@pytest.mark.parametrize("case", ALL_CASES, ids=_case_id)
class TestMmapHeapTwinEquivalence:
    """Bitwise answers and exactly equal charges across the three paths."""

    def test_results_and_counts(self, case) -> None:
        model_cls, method = case
        data = _data(60, seed=3)
        queries = _data(4, seed=4)
        plain, heap, mmap = _build_three(model_cls, method, data)
        assert (
            plain.build_costs.distance_computations
            == heap.build_costs.distance_computations
            == mmap.build_costs.distance_computations
        ), f"{method}: build charges diverged across store backends"
        for k, q in enumerate(queries):
            for built in (plain, heap, mmap):
                built.reset_query_costs()
            r_plain = plain.knn_search(q, 5)
            r_heap = heap.knn_search(q, 5)
            r_mmap = mmap.knn_search(q, 5)
            # The mmap path and its blocked heap twin are bit-identical.
            assert_same_neighbors(
                r_mmap, r_heap, tol=0.0, label=f"{method} mmap-vs-heap q{k}"
            )
            # The unblocked build agrees up to kernel-path ulps.  Its
            # *charges* may differ: a prune threshold can sit within an
            # ulp of a bound, and the two kernel paths land on opposite
            # sides (the prune_slack discipline keeps answers exact
            # either way).
            assert_same_neighbors(
                r_plain, r_mmap, tol=1e-7, label=f"{method} plain-vs-mmap q{k}"
            )
            assert (
                heap.query_costs().distance_computations
                == mmap.query_costs().distance_computations
            ), f"{method}: query charges diverged between heap twin and mmap"

    def test_range_query_parity(self, case) -> None:
        model_cls, method = case
        data = _data(48, seed=5)
        q = _data(1, seed=6)[0]
        plain, heap, mmap = _build_three(model_cls, method, data)
        # A radius wide enough to return a non-trivial ball everywhere.
        radius = plain.knn_search(q, 8)[-1].distance * (1 + 1e-9)
        r_heap = heap.range_search(q, radius)
        r_mmap = mmap.range_search(q, radius)
        assert_same_neighbors(r_mmap, r_heap, tol=0.0, label=f"{method} range")
        assert {n.index for n in plain.range_search(q, radius)} == {
            n.index for n in r_mmap
        }


@pytest.mark.parametrize("case", ALL_CASES, ids=_case_id)
class TestChargedCountProperty:
    """Hypothesis: charges are invariant in seed, tiling, and k."""

    @given(
        seed=st.integers(0, 1_000),
        b1=st.integers(1, 40),
        b2=st.integers(1, 40),
        k=st.integers(1, 6),
    )
    @settings(max_examples=5, deadline=None)
    def test_counts_equal_across_paths(self, case, seed, b1, b2, k) -> None:
        """Heap twin at tiling ``b1`` vs mmap at tiling ``b2``: the
        blocked kernels are bit-identical across tilings, so answers AND
        charged counts must match exactly even for different block sizes.
        The unblocked build shares build charges (structural) and
        answers; its pruning-dependent query charges may sit an ulp away
        (see TestMmapHeapTwinEquivalence).  QMap pins ``b2 = b1``: its
        streamed *transform* is a gemm, which is chunk-sensitive — the
        heap twin mirrors the mmap chunking rather than the reverse."""
        model_cls, method = case
        if model_cls is QMapModel:
            b2 = b1
        data = _data(28, seed=seed)
        q = _data(1, seed=seed + 1)[0]
        model = model_cls(_matrix())
        plain = model.build_index(
            method, data, store_dtype="float32", **_method_kwargs(method)
        )
        heap = model.build_index(
            method, data, store_dtype="float32", block_rows=b1, **_method_kwargs(method)
        )
        mmap = model.build_index(
            method, data, store="mmap", block_rows=b2, **_method_kwargs(method)
        )
        assert (
            plain.build_costs.distance_computations
            == heap.build_costs.distance_computations
            == mmap.build_costs.distance_computations
        )
        for built in (plain, heap, mmap):
            built.reset_query_costs()
        results = [built.knn_search(q, k) for built in (plain, heap, mmap)]
        assert_same_neighbors(results[2], results[1], tol=0.0, label=method)
        assert_same_neighbors(results[0], results[2], tol=1e-7, label=method)
        assert (
            heap.query_costs().distance_computations
            == mmap.query_costs().distance_computations
        ), f"{method}: counts diverged between tilings b1={b1}, b2={b2}"


class TestSnapshotRoundTrip:
    """mmap-backed build -> save -> load at zero distance evaluations."""

    @pytest.mark.parametrize(
        "model_cls, method",
        [(QFDModel, "mtree"), (QMapModel, "pivot-table"), (QMapModel, "vafile")],
        ids=lambda v: getattr(v, "name", v),
    )
    @pytest.mark.parametrize("restore_store", ["heap", "mmap"])
    def test_zero_eval_restore_is_bit_identical(
        self, model_cls, method, restore_store, tmp_path
    ) -> None:
        data = _data(64, seed=11)
        queries = _data(3, seed=12)
        model = model_cls(_matrix())
        built = model.build_index(
            method, data, store="mmap", block_rows=BLOCK, **_method_kwargs(method)
        )
        path = built.save(tmp_path / "index.qrsnap")
        # Same tiling on restore: the heap twin then runs the identical
        # blocked arithmetic over the same float32-rounded rows.
        loaded = load_built_index(path, store=restore_store, block_rows=BLOCK)
        assert loaded.build_costs.distance_computations == 0
        assert loaded.build_costs.transforms == 0
        for q in queries:
            assert_same_neighbors(
                loaded.knn_search(q, 5),
                built.knn_search(q, 5),
                tol=0.0,
                label=f"{method} restore={restore_store}",
            )

    def test_cli_equivalent_store_path_spill(self, tmp_path) -> None:
        """store_path pins the mapping to a named file, like --store-path."""
        data = _data(40, seed=13)
        built = QFDModel(_matrix()).build_index(
            "sequential",
            data,
            store="mmap",
            store_path=tmp_path / "rows.bin",
            block_rows=BLOCK,
        )
        assert (tmp_path / "rows.bin").exists()
        q = _data(1, seed=14)[0]
        assert len(built.knn_search(q, 3)) == 3


class TestParallelBulkLoad:
    """The chunked M-tree bulk-load: worker-count invariant, guarded."""

    def _bulk(self, data, counter_model, workers):
        return counter_model.build_index(
            "mtree",
            data,
            store="mmap",
            block_rows=BLOCK,
            capacity=6,
            bulk_load=True,
            bulk_workers=workers,
            rng=np.random.default_rng(2),
        )

    def test_worker_count_does_not_change_results_or_counts(self) -> None:
        data = _data(120, seed=21)
        queries = _data(3, seed=22)
        model = QFDModel(_matrix())
        serial = self._bulk(data, model, None)
        one = self._bulk(data, model, 1)
        two = self._bulk(data, model, 2)
        three = self._bulk(data, model, 3)
        # Any worker count yields the same tree: per-cluster spawned RNG
        # streams make the parallel build worker-count invariant.  The
        # sequential default shares one stream, so only its exactness —
        # not its tree shape — is comparable.
        assert (
            one.build_costs.distance_computations
            == two.build_costs.distance_computations
            == three.build_costs.distance_computations
        )
        for q in queries:
            for built in (serial, one, two, three):
                built.reset_query_costs()
            r0 = one.knn_search(q, 5)
            assert_same_neighbors(two.knn_search(q, 5), r0, tol=0.0, label="w2")
            assert_same_neighbors(three.knn_search(q, 5), r0, tol=0.0, label="w3")
            assert_same_neighbors(serial.knn_search(q, 5), r0, tol=0.0, label="serial")
            assert (
                one.query_costs().distance_computations
                == two.query_costs().distance_computations
                == three.query_costs().distance_computations
            )

    def test_process_executor_is_rejected(self) -> None:
        from repro.distances import CountingDistance, euclidean, euclidean_one_to_many

        counter = CountingDistance(euclidean, one_to_many=euclidean_one_to_many)
        with pytest.raises(QueryError):
            MTree(
                _data(16, seed=23),
                counter,
                bulk_load=True,
                bulk_executor="process",
            )
        with pytest.raises(QueryError):
            MTree(_data(16, seed=23), counter, bulk_load=True, bulk_workers=0)


class TestOutOfCoreStaticity:
    def test_mmap_backed_index_rejects_insert(self) -> None:
        built = QFDModel(_matrix()).build_index(
            "sequential", _data(24, seed=31), store="mmap", block_rows=BLOCK
        )
        with pytest.raises(IndexStateError):
            built.insert(_data(1, seed=32)[0])
