"""EXPLAIN acceptance tests: exact accounting across every access method.

Three invariants pin the explain subsystem:

1. **Exactness** — for every registered (model, method) pair and both
   query kinds, :attr:`ExplainPlan.charged_total` equals the
   :class:`CountingDistance` delta of the explained query exactly, even
   with a tiny bounded/sampled event buffer (property-tested).
2. **Non-interference** — explaining a query charges bit-identical
   distance counts and returns the identical answer as the same query run
   without any buffer active.
3. **Table 2 audit** — for every method with a closed form the observed
   arithmetic matches the paper's prediction with zero drift under both
   models.  The pivot table's ``m*p`` hyper-cube filter term (priced in
   flops but spending no distance evaluations) is charged explicitly on
   the observed side as ``observed_filter_flops``.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import random_spd_matrix
from repro.exceptions import QueryError
from repro.models import AUDITABLE_METHODS, QFDModel, QMapModel, explain_query
from repro.models.base import MAM_REGISTRY, SAM_REGISTRY

#: Small-workload construction arguments per method.
METHOD_KWARGS: dict[str, dict[str, int]] = {
    "pivot-table": {"n_pivots": 4},
    "mindex": {"n_pivots": 4},
    "mtree": {"capacity": 8},
    "paged-mtree": {"capacity": 8},
    "vptree": {"leaf_size": 4},
    "gnat": {"arity": 3, "leaf_size": 4},
    "rtree": {"capacity": 8},
    "xtree": {"capacity": 8},
    "vafile": {"bits": 4},
}

#: Every (model, method) pair: QFD covers the MAMs, QMap also the SAMs.
ALL_PAIRS = [("qfd", m) for m in MAM_REGISTRY] + [
    ("qmap", m) for m in (*MAM_REGISTRY, *SAM_REGISTRY)
]

DIM = 6


def _workload(seed: int, m: int = 50, n_queries: int = 2):
    rng = np.random.default_rng(seed)
    matrix = random_spd_matrix(DIM, rng=rng, condition=6.0)
    data = rng.uniform(0.0, 1.0, size=(m, DIM))
    queries = rng.uniform(0.0, 1.0, size=(n_queries, DIM))
    return matrix, data, queries


def _build(model_name: str, method: str, matrix, data):
    model = (QMapModel if model_name == "qmap" else QFDModel)(matrix)
    return model.build_index(method, data, **METHOD_KWARGS.get(method, {}))


def _counter_delta(built, run) -> tuple[int, object]:
    """(evaluations, answer) of *run* as seen by the model's own counter."""
    before = built._counter.stats
    answer = run()
    after = built._counter.stats
    return (after.calls - before.calls) + (after.batch_rows - before.batch_rows), answer


class TestPlanEqualsCounterExactly:
    """Invariant 1: plan charges == CountingDistance delta, exactly."""

    @pytest.mark.parametrize("model_name,method", ALL_PAIRS)
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=3, deadline=None)
    def test_knn_plan_totals_match(self, model_name, method, seed) -> None:
        matrix, data, queries = _workload(seed)
        built = _build(model_name, method, matrix, data)
        plan = explain_query(built, queries[0], k=5)
        assert plan.totals_match, (
            f"{model_name}/{method}: plan charged {plan.charged_total} "
            f"({plan.charged_calls}+{plan.charged_rows}b), counter saw "
            f"{plan.counter_total} ({plan.counter_calls}+{plan.counter_rows}b)"
        )
        assert plan.charged_total > 0
        assert plan.kind == "knn" and plan.parameter == 5.0

    @pytest.mark.parametrize("model_name,method", ALL_PAIRS)
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=3, deadline=None)
    def test_range_plan_totals_match(self, model_name, method, seed) -> None:
        matrix, data, queries = _workload(seed)
        built = _build(model_name, method, matrix, data)
        plan = explain_query(built, queries[0], radius=0.5)
        assert plan.totals_match, f"{model_name}/{method}: charge/counter mismatch"
        assert plan.kind == "range"

    @pytest.mark.parametrize("model_name,method", ALL_PAIRS)
    def test_bounded_sampled_buffer_keeps_exact_totals(
        self, model_name, method
    ) -> None:
        # A 5-event cap with 1-in-3 sampling drops nearly every record,
        # yet the aggregates (and thus the plan) must stay exact.
        matrix, data, queries = _workload(17)
        built = _build(model_name, method, matrix, data)
        plan = explain_query(built, queries[0], k=5, max_events=5, sample_every=3)
        assert plan.totals_match
        assert len(plan.events) <= 5
        # The run was big enough that bounding actually kicked in for the
        # tree methods; at minimum the invariant holds vacuously.
        full = explain_query(built, queries[1], k=5)
        assert full.totals_match

    def test_plan_answer_carries_index_distance_pairs(self) -> None:
        matrix, data, queries = _workload(3)
        built = _build("qfd", "mtree", matrix, data)
        plan = explain_query(built, queries[0], k=4)
        assert len(plan.answer) == 4
        for index, distance in plan.answer:
            assert 0 <= index < data.shape[0]
            assert distance >= 0.0
        # kNN answers are sorted by distance.
        distances = [d for _, d in plan.answer]
        assert distances == sorted(distances)


class TestNonInterference:
    """Invariant 2: explain changes neither answers nor counts."""

    @pytest.mark.parametrize("model_name,method", ALL_PAIRS)
    def test_explained_run_is_bit_identical(self, model_name, method) -> None:
        matrix, data, queries = _workload(23)
        query = queries[0]
        plain = _build(model_name, method, matrix, data)
        explained = _build(model_name, method, matrix, data)
        baseline_evals, baseline_answer = _counter_delta(
            plain, lambda: plain.knn_search(query, 5)
        )
        plan = explain_query(explained, query, k=5)
        assert plan.counter_total == baseline_evals
        assert plan.answer == [(n.index, n.distance) for n in baseline_answer]

    def test_range_answers_identical_under_explain(self) -> None:
        matrix, data, queries = _workload(29)
        query = queries[0]
        plain = _build("qfd", "pivot-table", matrix, data)
        explained = _build("qfd", "pivot-table", matrix, data)
        baseline_evals, baseline_answer = _counter_delta(
            plain, lambda: plain.range_search(query, 0.6)
        )
        plan = explain_query(explained, query, radius=0.6)
        assert plan.counter_total == baseline_evals
        assert plan.answer == [(n.index, n.distance) for n in baseline_answer]


class TestTable2Audit:
    """Invariant 3: observed arithmetic vs the paper's Table 2 forms."""

    @pytest.mark.parametrize("model_name", ["qfd", "qmap"])
    @pytest.mark.parametrize("method", ["sequential", "mtree"])
    def test_zero_drift_methods(self, model_name, method) -> None:
        matrix, data, queries = _workload(41)
        built = _build(model_name, method, matrix, data)
        plan = explain_query(built, queries[0], k=5)
        assert plan.audit is not None
        assert plan.audit.drift == 0.0, plan.audit
        assert plan.audit.observed_flops == plan.audit.predicted_flops

    @pytest.mark.parametrize("model_name", ["qfd", "qmap"])
    def test_pivot_table_audit_is_zero_drift(self, model_name) -> None:
        # Table 2 prices the pivot table's hyper-cube filter at m*p flops,
        # but the filter spends no distance evaluations — the audit charges
        # that arithmetic explicitly on the observed side, so the pivot
        # table is zero-drift like every other closed form.
        matrix, data, queries = _workload(43)
        built = _build(model_name, "pivot-table", matrix, data)
        plan = explain_query(built, queries[0], k=5)
        audit = plan.audit
        assert audit is not None
        m, p = data.shape[0], built.access_method.n_pivots
        assert audit.observed_filter_flops == float(m * p)
        assert audit.drift == 0.0, audit
        assert audit.observed_flops == audit.predicted_flops
        # The distance counters alone still undershoot by exactly the
        # filter term — the breakdown stays visible in the audit.
        assert (
            audit.predicted_flops
            - (audit.observed_flops - audit.observed_filter_flops)
            == float(m * p)
        )

    def test_non_auditable_method_has_no_audit(self) -> None:
        matrix, data, queries = _workload(47)
        built = _build("qfd", "vptree", matrix, data)
        plan = explain_query(built, queries[0], k=3)
        assert "vptree" not in AUDITABLE_METHODS
        assert plan.audit is None

    def test_audit_can_be_disabled(self) -> None:
        matrix, data, queries = _workload(53)
        built = _build("qfd", "sequential", matrix, data)
        plan = explain_query(built, queries[0], k=3, audit=False)
        assert plan.audit is None


class TestPlanRendering:
    def test_render_text_tree_and_footer(self) -> None:
        matrix, data, queries = _workload(61)
        built = _build("qfd", "mtree", matrix, data)
        plan = explain_query(built, queries[0], k=5)
        text = plan.render()
        assert text.startswith("EXPLAIN knn(k=5)  method=mtree  model=qfd")
        assert "[OK]" in text and "[MISMATCH]" not in text
        assert "Table 2 audit:" in text
        assert "└─" in text  # the tree actually rendered children

    def test_to_json_is_valid_and_complete(self) -> None:
        matrix, data, queries = _workload(67)
        built = _build("qmap", "pivot-table", matrix, data)
        plan = explain_query(built, queries[0], radius=0.5)
        payload = json.loads(plan.to_json())
        assert payload["totals"]["totals_match"] is True
        assert payload["totals"]["charged_total"] == plan.charged_total
        assert payload["totals"]["transforms"] == plan.transforms == 1
        assert payload["tree"]["label"] == "(query)"
        assert {e["kind"] for e in payload["events"]} <= {
            "node_enter",
            "lb_check",
            "prune",
            "candidate_verify",
            "result_add",
        }

    def test_rejects_ambiguous_query_kind(self) -> None:
        matrix, data, queries = _workload(71)
        built = _build("qfd", "sequential", matrix, data)
        with pytest.raises(QueryError, match="exactly one"):
            explain_query(built, queries[0])
        with pytest.raises(QueryError, match="exactly one"):
            explain_query(built, queries[0], k=3, radius=0.5)


class TestBoundModeSideBySide:
    """The per-label lower-bound section: triangle vs Ptolemaic prune
    counts rendered side by side, with charges exact in every mode."""

    def _built(self, model_name: str, bound: str, seed: int = 83):
        matrix, data, _ = _workload(seed)
        model = (QMapModel if model_name == "qmap" else QFDModel)(matrix)
        return model.build_index("pivot-table", data, n_pivots=4, bound=bound)

    @pytest.mark.parametrize("model_name", ["qfd", "qmap"])
    def test_range_plan_carries_both_labels(self, model_name) -> None:
        matrix, data, queries = _workload(83)
        built = self._built(model_name, "ptolemaic")
        plan = explain_query(built, queries[0], radius=0.5)
        assert plan.totals_match
        assert set(plan.lb_labels) == {"pivot-linf", "pivot-ptolemaic"}
        # The filter scans every object once per bound kind.
        for checks, _pruned in plan.lb_labels.values():
            assert checks == len(data)
        # Ptolemaic must prune at least as much as it reports checking.
        for checks, pruned in plan.lb_labels.values():
            assert 0 <= pruned <= checks

    def test_best_mode_reports_three_labels(self) -> None:
        matrix, data, queries = _workload(83)
        built = self._built("qfd", "best")
        plan = explain_query(built, queries[0], radius=0.5)
        assert plan.totals_match
        assert set(plan.lb_labels) == {
            "pivot-linf",
            "pivot-ptolemaic",
            "pivot-best",
        }
        tri = plan.lb_labels["pivot-linf"][1]
        pto = plan.lb_labels["pivot-ptolemaic"][1]
        best = plan.lb_labels["pivot-best"][1]
        assert best >= max(tri, pto)  # best dominates both pointwise

    def test_triangle_mode_reports_only_the_classic_label(self) -> None:
        matrix, data, queries = _workload(83)
        built = self._built("qfd", "triangle")
        plan = explain_query(built, queries[0], radius=0.5)
        assert plan.totals_match
        assert set(plan.lb_labels) == {"pivot-linf"}

    def test_knn_plan_labels_and_exact_totals(self) -> None:
        matrix, data, queries = _workload(89)
        for bound in ("triangle", "ptolemaic", "best"):
            built = self._built("qfd", bound, seed=89)
            plan = explain_query(built, queries[0], k=5)
            assert plan.totals_match, bound
            operative = {
                "triangle": "pivot-linf",
                "ptolemaic": "pivot-ptolemaic",
                "best": "pivot-best",
            }[bound]
            assert operative in plan.lb_labels

    def test_render_has_a_side_by_side_section(self) -> None:
        matrix, data, queries = _workload(83)
        built = self._built("qfd", "ptolemaic")
        plan = explain_query(built, queries[0], radius=0.5)
        text = plan.render()
        assert "lower bounds (checks -> pruned):" in text
        assert "pivot-linf" in text and "pivot-ptolemaic" in text
        assert "%" in text  # prune rates rendered

    def test_json_payload_carries_lb_by_label(self) -> None:
        matrix, data, queries = _workload(83)
        built = self._built("qfd", "ptolemaic")
        plan = explain_query(built, queries[0], radius=0.5)
        payload = json.loads(plan.to_json())
        assert set(payload["lb_by_label"]) == {"pivot-linf", "pivot-ptolemaic"}
        for entry in payload["lb_by_label"].values():
            assert set(entry) == {"checks", "pruned"}
