"""Tests for M-tree bulk loading."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import clustered_histograms
from repro.distances import euclidean
from repro.mam import MTree, SequentialFile

from .helpers import assert_same_neighbors


@pytest.fixture(scope="module")
def data():
    return clustered_histograms(500, 4, themes=8, rng=np.random.default_rng(81))


@pytest.fixture(scope="module")
def bulk_tree(data):
    return MTree(data, euclidean, capacity=12, bulk_load=True)


@pytest.fixture(scope="module")
def scan(data):
    return SequentialFile(data, euclidean)


class TestBulkLoad:
    def test_invariants(self, bulk_tree) -> None:
        bulk_tree.validate_invariants()

    def test_exact_knn(self, data, bulk_tree, scan) -> None:
        for q in data[:5]:
            assert_same_neighbors(bulk_tree.knn_search(q, 9), scan.knn_search(q, 9))

    def test_exact_range(self, data, bulk_tree, scan) -> None:
        q = data[77]
        nn = scan.knn_search(q, 20)
        radius = (nn[-2].distance + nn[-1].distance) / 2.0
        assert_same_neighbors(bulk_tree.range_search(q, radius), scan.range_search(q, radius))

    def test_all_objects_present(self, data, bulk_tree) -> None:
        hits = bulk_tree.range_search(data[0], 1e6)
        assert sorted(h.index for h in hits) == list(range(len(data)))

    def test_single_object(self) -> None:
        tree = MTree(np.ones((1, 4)), euclidean, bulk_load=True)
        assert tree.knn_search(np.zeros(4), 1)[0].index == 0

    def test_capacity_sized_database(self, data) -> None:
        tree = MTree(data[:12], euclidean, capacity=12, bulk_load=True)
        assert tree.height() == 1

    def test_all_identical_objects(self) -> None:
        same = np.tile(np.full(4, 0.25), (60, 1))
        tree = MTree(same, euclidean, capacity=8, bulk_load=True)
        tree.validate_invariants()
        assert len(tree.knn_search(same[0], 10)) == 10

    def test_insert_after_bulk(self, data, bulk_tree, scan) -> None:
        tree = MTree(data[:400], euclidean, capacity=12, bulk_load=True)
        for row in data[400:450]:
            tree.insert(row)
        tree.validate_invariants()
        local_scan = SequentialFile(data[:450], euclidean)
        q = data[460]
        assert_same_neighbors(tree.knn_search(q, 7), local_scan.knn_search(q, 7))

    def test_bulk_no_shallower_than_log(self, data, bulk_tree) -> None:
        dynamic = MTree(data, euclidean, capacity=12)
        assert bulk_tree.height() <= dynamic.height()
