"""Tests for repro.core.qmap — the paper's main theorem (Section 3.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import QMap, QuadraticFormDistance, random_spd_matrix
from repro.distances import euclidean
from repro.exceptions import DimensionMismatchError, NotPositiveDefiniteError


class TestConstruction:
    def test_accepts_matrix_or_distance(self, spd_16: np.ndarray) -> None:
        via_matrix = QMap(spd_16)
        via_distance = QMap(QuadraticFormDistance(spd_16))
        assert np.allclose(via_matrix.matrix, via_distance.matrix)

    def test_rejects_indefinite_matrix(self) -> None:
        with pytest.raises(NotPositiveDefiniteError):
            QMap(np.array([[1.0, 2.0], [2.0, 1.0]]))

    def test_b_times_bt_is_a(self, spd_16: np.ndarray) -> None:
        qmap = QMap(spd_16)
        assert np.allclose(qmap.matrix @ qmap.matrix.T, spd_16)

    def test_map_matrix_read_only(self, spd_16: np.ndarray) -> None:
        qmap = QMap(spd_16)
        with pytest.raises(ValueError):
            qmap.matrix[0, 0] = 5.0

    def test_target_dim_equals_source_dim(self, spd_16: np.ndarray) -> None:
        """The paper insists on k = n (homeomorphism, not reduction)."""
        assert QMap(spd_16).dim == 16


class TestDistancePreservation:
    """QFD_A(u, v) == L2(uB, vB) — the theorem of Section 3.3."""

    def test_exact_on_hafner_matrix(self, qfd_64, histograms_64) -> None:
        qmap = QMap(qfd_64)
        mapped = qmap.transform_batch(histograms_64[:60])
        for i in range(0, 50, 7):
            for j in range(1, 60, 11):
                expected = qfd_64(histograms_64[i], histograms_64[j])
                got = euclidean(mapped[i], mapped[j])
                assert got == pytest.approx(expected, abs=1e-9)

    @pytest.mark.parametrize("dim", [1, 2, 3, 8, 33])
    def test_exact_on_random_matrices(self, dim: int) -> None:
        rng = np.random.default_rng(dim * 7 + 1)
        qmap = QMap(random_spd_matrix(dim, rng=rng, condition=30.0))
        for _ in range(15):
            u, v = rng.standard_normal(dim), rng.standard_normal(dim)
            assert qmap.distance_via_map(u, v) == pytest.approx(
                qmap.qfd(u, v), rel=1e-9, abs=1e-9
            )

    def test_identity_matrix_is_identity_map(self, rng: np.random.Generator) -> None:
        qmap = QMap(np.eye(6))
        u = rng.random(6)
        assert np.allclose(qmap.transform(u), u)

    def test_radius_preservation(self, qfd_64, histograms_64) -> None:
        """Range queries carry over with unchanged radii: mapped distances
        equal source distances, so ball membership is invariant."""
        qmap = QMap(qfd_64)
        q, others = histograms_64[0], histograms_64[1:100]
        radius = float(np.median(qfd_64.one_to_many(q, others)))
        in_source = qfd_64.one_to_many(q, others) <= radius
        mapped_q = qmap.transform(q)
        mapped = qmap.transform_batch(others)
        dists = np.linalg.norm(mapped - mapped_q, axis=1)
        in_target = dists <= radius + 1e-12
        assert np.array_equal(in_source, in_target)


class TestInverse:
    """The map is a homeomorphism — it must invert exactly."""

    def test_roundtrip_single(self, spd_16: np.ndarray, rng: np.random.Generator) -> None:
        qmap = QMap(spd_16)
        u = rng.random(16)
        assert np.allclose(qmap.inverse_transform(qmap.transform(u)), u)

    def test_roundtrip_batch(self, spd_16: np.ndarray, rng: np.random.Generator) -> None:
        qmap = QMap(spd_16)
        batch = rng.random((20, 16))
        assert np.allclose(qmap.inverse_transform_batch(qmap.transform_batch(batch)), batch)

    def test_inverse_then_forward(self, spd_16: np.ndarray, rng: np.random.Generator) -> None:
        qmap = QMap(spd_16)
        u_prime = rng.random(16)
        assert np.allclose(qmap.transform(qmap.inverse_transform(u_prime)), u_prime)


class TestBatchTransform:
    def test_batch_matches_single(self, spd_16: np.ndarray, rng: np.random.Generator) -> None:
        qmap = QMap(spd_16)
        batch = rng.random((10, 16))
        stacked = np.array([qmap.transform(row) for row in batch])
        assert np.allclose(qmap.transform_batch(batch), stacked)

    def test_dimension_mismatch(self, spd_16: np.ndarray) -> None:
        qmap = QMap(spd_16)
        with pytest.raises(DimensionMismatchError):
            qmap.transform(np.ones(5))

    def test_euclidean_helper(self, spd_16: np.ndarray, rng: np.random.Generator) -> None:
        qmap = QMap(spd_16)
        a, b = rng.random(16), rng.random(16)
        assert qmap.euclidean(a, b) == pytest.approx(euclidean(a, b))
