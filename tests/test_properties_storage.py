"""Property-based tests for the storage substrate and persistence."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import LRUPageCache, PagedFile, VectorStore


class TestPagedFileProperties:
    @given(
        page_size=st.integers(16, 256),
        payloads=st.lists(st.binary(min_size=0, max_size=16), min_size=1, max_size=20),
    )
    @settings(max_examples=40, deadline=None)
    def test_write_read_roundtrip(self, page_size: int, payloads: list[bytes]) -> None:
        with PagedFile(page_size) as pf:
            ids = []
            for payload in payloads:
                pid = pf.allocate()
                pf.write_page(pid, payload)
                ids.append((pid, payload))
            for pid, payload in ids:
                data = pf.read_page(pid)
                assert data[: len(payload)] == payload
                assert len(data) == page_size

    @given(
        capacity=st.integers(1, 8),
        accesses=st.lists(st.integers(0, 9), min_size=1, max_size=60),
    )
    @settings(max_examples=40, deadline=None)
    def test_cache_never_serves_wrong_page(self, capacity: int, accesses: list[int]) -> None:
        with PagedFile(32) as pf:
            for i in range(10):
                pid = pf.allocate()
                pf.write_page(pid, bytes([i]) * 4)
            cache = LRUPageCache(pf, capacity)
            for pid in accesses:
                data = cache.read_page(pid)
                assert data[0] == pid

    @given(
        capacity=st.integers(1, 5),
        accesses=st.lists(st.integers(0, 7), min_size=1, max_size=40),
    )
    @settings(max_examples=40, deadline=None)
    def test_cache_size_bounded(self, capacity: int, accesses: list[int]) -> None:
        with PagedFile(32) as pf:
            for i in range(8):
                pid = pf.allocate()
                pf.write_page(pid, bytes([i]))
            cache = LRUPageCache(pf, capacity)
            for pid in accesses:
                cache.read_page(pid)
                assert len(cache) <= capacity


class TestVectorStoreProperties:
    @given(
        dim=st.integers(1, 12),
        count=st.integers(1, 30),
        seed=st.integers(0, 1_000),
        cache_pages=st.integers(1, 4),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_any_geometry(
        self, dim: int, count: int, seed: int, cache_pages: int
    ) -> None:
        rng = np.random.default_rng(seed)
        rows = rng.standard_normal((count, dim))
        page_size = max(dim * 8, 16)  # at least one record per page
        with VectorStore(dim, page_size=page_size, cache_pages=cache_pages) as store:
            store.extend(rows)
            assert len(store) == count
            for i in range(count):
                assert np.array_equal(store.get(i), rows[i])
            scanned = np.vstack([vec for _, vec in store.scan()])
            assert np.array_equal(scanned, rows)


class TestPersistenceProperties:
    @given(dim=st.integers(1, 10), seed=st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_qmap_roundtrip_any_spd(self, dim: int, seed: int, tmp_path_factory) -> None:
        from repro.core import QMap, random_spd_matrix
        from repro.persistence import load_qmap, save_qmap

        path = tmp_path_factory.mktemp("qmaps") / f"qmap_{dim}_{seed}.npz"
        qmap = QMap(random_spd_matrix(dim, rng=np.random.default_rng(seed)))
        save_qmap(qmap, path)
        loaded = load_qmap(path)
        rng = np.random.default_rng(seed + 1)
        u, v = rng.standard_normal(dim), rng.standard_normal(dim)
        assert loaded.distance_via_map(u, v) == pytest.approx(
            qmap.distance_via_map(u, v), rel=1e-12, abs=1e-12
        )
