"""Tests for repro.distances.metric_checks — empirical postulate checking."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import QuadraticFormDistance
from repro.distances import check_metric_postulates, euclidean
from repro.exceptions import QueryError


class TestCheckMetricPostulates:
    def test_euclidean_is_metric(self, rng: np.random.Generator) -> None:
        objs = list(rng.random((15, 4)))
        report = check_metric_postulates(euclidean, objs)
        assert report.is_metric
        assert report.checked_pairs == 15 * 14 // 2
        assert report.checked_triples > 0

    def test_qfd_with_pd_matrix_is_metric(self, qfd_64, histograms_64) -> None:
        objs = list(histograms_64[:12])
        report = check_metric_postulates(qfd_64, objs, tolerance=1e-8)
        assert report.is_metric, report.worst()

    def test_detects_asymmetry(self, rng: np.random.Generator) -> None:
        def lopsided(u: np.ndarray, v: np.ndarray) -> float:
            return float(np.sum(np.maximum(u - v, 0.0)))

        objs = list(rng.random((8, 3)))
        report = check_metric_postulates(lopsided, objs)
        assert any(v.postulate == "symmetry" for v in report.violations)

    def test_detects_triangle_violation(self, rng: np.random.Generator) -> None:
        def squared_l2(u: np.ndarray, v: np.ndarray) -> float:
            return float(np.sum((u - v) ** 2))

        # Squared L2 famously breaks the triangle inequality.
        objs = [np.zeros(1), np.array([1.0]), np.array([2.0])]
        report = check_metric_postulates(squared_l2, objs)
        assert any(v.postulate == "triangle" for v in report.violations)

    def test_detects_identity_violation(self) -> None:
        def off_by_one(u: np.ndarray, v: np.ndarray) -> float:
            return euclidean(u, v) + 1.0

        objs = [np.zeros(2), np.ones(2), np.full(2, 2.0)]
        report = check_metric_postulates(off_by_one, objs)
        assert any(v.postulate == "identity" for v in report.violations)

    def test_detects_negative_distance(self) -> None:
        def negative(u: np.ndarray, v: np.ndarray) -> float:
            return -euclidean(u, v)

        objs = [np.zeros(2), np.ones(2), np.full(2, 3.0)]
        report = check_metric_postulates(negative, objs)
        assert any(v.postulate == "non_negativity" for v in report.violations)

    def test_semidefinite_qfd_breaks_identity(self, rng: np.random.Generator) -> None:
        """The Section 3.2.3 argument: a PSD-but-singular matrix lets two
        distinct vectors collapse to distance zero — check_metric_postulates
        must not flag it (identity of indiscernibles is only checkable via
        d(o,o)==0 from outside) but the library refuses such matrices."""
        from repro.exceptions import NotPositiveDefiniteError

        singular = np.ones((3, 3))
        with pytest.raises(NotPositiveDefiniteError):
            QuadraticFormDistance(singular)

    def test_triple_sampling_cap(self, rng: np.random.Generator) -> None:
        objs = list(rng.random((40, 3)))
        report = check_metric_postulates(euclidean, objs, max_triples=100)
        assert report.checked_triples <= 100

    def test_needs_two_objects(self) -> None:
        with pytest.raises(QueryError):
            check_metric_postulates(euclidean, [np.zeros(2)])

    def test_worst_is_none_for_metric(self, rng: np.random.Generator) -> None:
        objs = list(rng.random((6, 2)))
        assert check_metric_postulates(euclidean, objs).worst() is None


class TestPtolemyChecks:
    """check_ptolemy_inequality / check_ptolemy_matrix — the build-time
    guard behind PivotTable's non-triangle bound modes."""

    SQUARE = [
        np.array([0.0, 0.0]),
        np.array([1.0, 0.0]),
        np.array([0.0, 1.0]),
        np.array([1.0, 1.0]),
    ]

    @staticmethod
    def _l1(u: np.ndarray, v: np.ndarray) -> float:
        return float(np.abs(u - v).sum())

    def test_euclidean_is_ptolemaic(self, rng: np.random.Generator) -> None:
        from repro.distances import check_ptolemy_inequality

        objs = list(rng.random((12, 4)))
        report = check_ptolemy_inequality(euclidean, objs)
        assert report.is_metric
        assert report.checked_quadruples == 12 * 11 * 10 * 9 // 24

    def test_qfd_is_ptolemaic(self, qfd_64, histograms_64) -> None:
        from repro.distances import check_ptolemy_inequality

        report = check_ptolemy_inequality(qfd_64, list(histograms_64[:10]))
        assert report.is_metric, report.worst()

    def test_l1_unit_square_violates_ptolemy(self) -> None:
        # d(a,e) d(b,c) = 4 > d(a,b) d(c,e) + d(a,c) d(b,e) = 2: the
        # textbook witness that L1 satisfies the triangle inequality but
        # not Ptolemy's.
        from repro.distances import check_ptolemy_inequality

        report = check_ptolemy_inequality(self._l1, self.SQUARE)
        assert not report.is_metric
        worst = report.worst()
        assert worst.postulate == "ptolemy"
        assert worst.magnitude == pytest.approx(2.0)
        assert len(worst.indices) == 4

    def test_matrix_form_agrees_with_callable_form(self) -> None:
        from repro.distances import check_ptolemy_inequality, check_ptolemy_matrix

        objs = self.SQUARE
        d = np.array([[self._l1(u, v) for v in objs] for u in objs])
        by_matrix = check_ptolemy_matrix(d)
        by_callable = check_ptolemy_inequality(self._l1, objs)
        assert by_matrix.is_metric == by_callable.is_metric == False  # noqa: E712
        assert by_matrix.worst().magnitude == pytest.approx(
            by_callable.worst().magnitude
        )

    def test_matrix_form_requires_square_input(self) -> None:
        from repro.distances import check_ptolemy_matrix

        with pytest.raises(QueryError):
            check_ptolemy_matrix(np.zeros((3, 4)))

    def test_small_matrix_trivially_passes_but_callable_requires_four(self) -> None:
        # A pivot set of < 4 spans no quadruple: the matrix guard passes
        # vacuously; the sampling API treats it as a caller error.
        from repro.distances import check_ptolemy_inequality, check_ptolemy_matrix

        report = check_ptolemy_matrix(np.zeros((3, 3)))
        assert report.is_metric and report.checked_quadruples == 0
        with pytest.raises(QueryError):
            check_ptolemy_inequality(euclidean, self.SQUARE[:3])

    def test_quadruple_sampling_cap(self, rng: np.random.Generator) -> None:
        from repro.distances import check_ptolemy_inequality

        objs = list(rng.random((30, 3)))
        report = check_ptolemy_inequality(
            euclidean, objs, max_quadruples=50, rng=rng
        )
        assert 0 < report.checked_quadruples <= 50
