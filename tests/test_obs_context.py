"""Trace-context propagation: ids minted once, carried everywhere.

The request-correlation contract of :mod:`repro.obs.context`:

* :func:`trace_scope` is idempotent — the outermost scope mints the root
  context, nested scopes reuse it;
* spans stamp ``trace_id``/``span_id``/``parent_span_id`` from the
  active context and nest parent ids correctly;
* the context crosses thread pools (the engine snapshots contextvars per
  task) and pickles cleanly for the process executor's chunk payloads.
"""

from __future__ import annotations

import pickle
import re

from repro.engine.executors import ThreadPoolBatchExecutor
from repro.obs import (
    MetricsRegistry,
    TraceContext,
    activate_trace_context,
    current_trace_context,
    new_span_id,
    span,
    trace_scope,
    use_registry,
)

_HEX32 = re.compile(r"^[0-9a-f]{32}$")
_HEX16 = re.compile(r"^[0-9a-f]{16}$")


class TestTraceContext:
    def test_new_mints_well_formed_ids(self) -> None:
        ctx = TraceContext.new()
        assert _HEX32.match(ctx.trace_id)
        assert _HEX16.match(ctx.span_id)
        assert ctx.parent_span_id == ""

    def test_child_shares_trace_and_links_parent(self) -> None:
        root = TraceContext.new()
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.parent_span_id == root.span_id
        assert child.span_id != root.span_id

    def test_contexts_are_unique(self) -> None:
        ids = {TraceContext.new().trace_id for _ in range(64)}
        assert len(ids) == 64

    def test_new_span_id_format(self) -> None:
        assert _HEX16.match(new_span_id())

    def test_pickle_round_trip(self) -> None:
        ctx = TraceContext.new().child()
        clone = pickle.loads(pickle.dumps(ctx))
        assert clone == ctx


class TestScopes:
    def test_no_context_by_default(self) -> None:
        assert current_trace_context() is None

    def test_trace_scope_mints_and_clears(self) -> None:
        with trace_scope() as ctx:
            assert current_trace_context() is ctx
        assert current_trace_context() is None

    def test_nested_scope_reuses_the_root(self) -> None:
        with trace_scope() as outer:
            with trace_scope() as inner:
                assert inner is outer
            # Leaving the inner (no-op) scope keeps the root active.
            assert current_trace_context() is outer

    def test_activate_restores_previous(self) -> None:
        first = TraceContext.new()
        second = TraceContext.new()
        with activate_trace_context(first):
            with activate_trace_context(second):
                assert current_trace_context() is second
            assert current_trace_context() is first
        assert current_trace_context() is None

    def test_activate_none_is_a_no_op(self) -> None:
        with activate_trace_context(None):
            assert current_trace_context() is None


class TestSpanStamping:
    def test_spans_carry_context_ids_and_nest(self) -> None:
        reg = MetricsRegistry()
        with use_registry(reg), trace_scope() as ctx:
            with span("outer"):
                with span("inner"):
                    pass
        inner, outer = reg.spans  # inner closes first
        assert outer.name == "outer" and inner.name == "inner"
        assert outer.trace_id == ctx.trace_id
        assert inner.trace_id == ctx.trace_id
        assert outer.parent_span_id == ctx.span_id
        assert inner.parent_span_id == outer.span_id
        assert _HEX16.match(outer.span_id) and _HEX16.match(inner.span_id)

    def test_spans_without_context_stay_blank(self) -> None:
        reg = MetricsRegistry()
        with use_registry(reg), span("bare"):
            pass
        (record,) = reg.spans
        assert record.trace_id == "" and record.span_id == ""

    def test_thread_pool_inherits_the_context(self) -> None:
        reg = MetricsRegistry()
        pool = ThreadPoolBatchExecutor(workers=4)

        def work(i: int) -> str:
            with span(f"task/{i}"):
                ctx = current_trace_context()
                return ctx.trace_id if ctx is not None else ""

        with use_registry(reg), trace_scope() as ctx:
            seen = pool.map_ordered(work, list(range(8)))
        assert seen == [ctx.trace_id] * 8
        assert {r.trace_id for r in reg.spans} == {ctx.trace_id}
        # Worker-thread spans hang off the scope root, not off each other.
        assert {r.parent_span_id for r in reg.spans} == {ctx.span_id}
