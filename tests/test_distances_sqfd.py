"""Tests for repro.distances.sqfd — signatures and the dynamic SQFD."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distances import (
    FeatureSignature,
    SignatureQuadraticFormDistance,
    check_metric_postulates,
    gaussian_similarity,
    inverse_distance_similarity,
)
from repro.exceptions import DimensionMismatchError, QueryError


def _make_signature(rng: np.random.Generator, k: int, c: int = 3) -> FeatureSignature:
    return FeatureSignature.create(rng.random((k, c)), rng.random(k) + 0.1)


class TestFeatureSignature:
    def test_create_and_properties(self, rng: np.random.Generator) -> None:
        sig = _make_signature(rng, 4)
        assert sig.size == 4
        assert sig.feature_dim == 3

    def test_rejects_empty(self) -> None:
        with pytest.raises(QueryError):
            FeatureSignature.create(np.empty((0, 3)), np.empty(0))

    def test_rejects_nonpositive_weights(self) -> None:
        with pytest.raises(QueryError):
            FeatureSignature.create([[0.0, 0.0]], [0.0])

    def test_rejects_mismatched_weights(self) -> None:
        with pytest.raises(DimensionMismatchError):
            FeatureSignature.create([[0.0, 0.0]], [1.0, 2.0])

    def test_rejects_1d_centroids(self) -> None:
        with pytest.raises(DimensionMismatchError):
            FeatureSignature.create([1.0, 2.0], [1.0])

    def test_normalized(self, rng: np.random.Generator) -> None:
        sig = _make_signature(rng, 5)
        assert sig.normalized().weights.sum() == pytest.approx(1.0)

    def test_immutable(self, rng: np.random.Generator) -> None:
        sig = _make_signature(rng, 3)
        with pytest.raises(ValueError):
            sig.weights[0] = 9.0


class TestSQFD:
    def test_self_distance_zero(self, rng: np.random.Generator) -> None:
        sig = _make_signature(rng, 4)
        dist = SignatureQuadraticFormDistance()
        assert dist(sig, sig) == pytest.approx(0.0, abs=1e-7)

    def test_symmetry(self, rng: np.random.Generator) -> None:
        dist = SignatureQuadraticFormDistance()
        a, b = _make_signature(rng, 3), _make_signature(rng, 5)
        assert dist(a, b) == pytest.approx(dist(b, a))

    def test_different_signature_sizes_supported(self, rng: np.random.Generator) -> None:
        """The SQFD's raison d'être: variable-length descriptors."""
        dist = SignatureQuadraticFormDistance()
        a, b = _make_signature(rng, 2), _make_signature(rng, 7)
        assert dist(a, b) > 0.0

    def test_feature_space_mismatch(self, rng: np.random.Generator) -> None:
        dist = SignatureQuadraticFormDistance()
        a = _make_signature(rng, 3, c=3)
        b = _make_signature(rng, 3, c=5)
        with pytest.raises(DimensionMismatchError):
            dist(a, b)

    def test_dynamic_matrix_shape(self, rng: np.random.Generator) -> None:
        dist = SignatureQuadraticFormDistance()
        a, b = _make_signature(rng, 3), _make_signature(rng, 4)
        assert dist.dynamic_matrix(a, b).shape == (7, 7)

    def test_matrix_genuinely_dynamic(self, rng: np.random.Generator) -> None:
        """Different pairs get different matrices — why QMap cannot apply."""
        dist = SignatureQuadraticFormDistance()
        a, b, c = (_make_signature(rng, 3) for _ in range(3))
        m_ab = dist.dynamic_matrix(a, b)
        m_ac = dist.dynamic_matrix(a, c)
        assert m_ab.shape == m_ac.shape
        assert not np.allclose(m_ab, m_ac)

    def test_gaussian_similarity_is_metric_on_sample(self, rng: np.random.Generator) -> None:
        dist = SignatureQuadraticFormDistance(gaussian_similarity(sigma=0.5))
        sigs = [_make_signature(rng, int(rng.integers(2, 6))) for _ in range(8)]
        report = check_metric_postulates(dist, sigs, tolerance=1e-7)
        assert report.is_metric, report.worst()

    def test_inverse_distance_similarity_runs(self, rng: np.random.Generator) -> None:
        dist = SignatureQuadraticFormDistance(inverse_distance_similarity(alpha=2.0))
        a, b = _make_signature(rng, 3), _make_signature(rng, 4)
        assert dist(a, b) >= 0.0

    def test_pairwise(self, rng: np.random.Generator) -> None:
        dist = SignatureQuadraticFormDistance()
        sigs = [_make_signature(rng, 3) for _ in range(5)]
        mat = dist.pairwise(sigs)
        assert mat.shape == (5, 5)
        assert np.allclose(mat, mat.T)
        assert np.allclose(np.diag(mat), 0.0, atol=1e-7)

    def test_similarity_parameter_validation(self) -> None:
        with pytest.raises(QueryError):
            gaussian_similarity(sigma=0.0)
        with pytest.raises(QueryError):
            inverse_distance_similarity(alpha=0.0)

    def test_reduces_to_qfd_for_shared_centroids(self, rng: np.random.Generator) -> None:
        """With identical centroid sets, the SQFD equals the static QFD of
        the weight difference under the similarity matrix of the centroids."""
        from repro.distances import qfd as static_qfd

        cents = rng.random((4, 3))
        w_u = rng.random(4) + 0.1
        w_v = rng.random(4) + 0.1
        sim = gaussian_similarity(sigma=1.0)
        a = sim(cents, cents)
        sig_u = FeatureSignature.create(cents, w_u)
        sig_v = FeatureSignature.create(cents, w_v)
        dist = SignatureQuadraticFormDistance(sim)
        assert dist(sig_u, sig_v) == pytest.approx(static_qfd(w_u, w_v, a), abs=1e-9)
