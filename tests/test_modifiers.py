"""Tests for repro.modifiers — TriGen-style distance modifiers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import clustered_histograms
from repro.distances import CountingDistance, euclidean, euclidean_one_to_many
from repro.exceptions import QueryError
from repro.modifiers import (
    ModifiedDistance,
    PowerModifier,
    triangle_violation_rate,
    tune_convex_exponent,
)


@pytest.fixture(scope="module")
def data():
    return clustered_histograms(200, 4, themes=6, rng=np.random.default_rng(141))


class TestPowerModifier:
    def test_identity(self) -> None:
        mod = PowerModifier(1.0)
        assert mod(0.7) == pytest.approx(0.7)
        assert mod.is_metric_preserving

    def test_concave_preserving(self) -> None:
        assert PowerModifier(0.5).is_metric_preserving

    def test_convex_not_guaranteed(self) -> None:
        assert not PowerModifier(2.0).is_metric_preserving

    def test_inverse_roundtrip(self) -> None:
        mod = PowerModifier(2.5)
        assert mod.inverse(mod(0.37)) == pytest.approx(0.37)

    def test_rejects_nonpositive(self) -> None:
        with pytest.raises(QueryError):
            PowerModifier(0.0)


class TestModifiedDistance:
    def test_values(self, data) -> None:
        dist = ModifiedDistance(euclidean, PowerModifier(0.5))
        expected = np.sqrt(euclidean(data[0], data[1]))
        assert dist(data[0], data[1]) == pytest.approx(expected)

    def test_knn_ordering_preserved(self, data) -> None:
        """Any increasing modifier keeps kNN orderings identical."""
        from repro.mam import SequentialFile

        base_scan = SequentialFile(data, euclidean)
        for exponent in (0.5, 2.0):
            mod_scan = SequentialFile(data, ModifiedDistance(euclidean, PowerModifier(exponent)))
            q = data[0]
            assert [n.index for n in mod_scan.knn_search(q, 10)] == [
                n.index for n in base_scan.knn_search(q, 10)
            ]

    def test_range_radius_translation(self, data) -> None:
        from repro.mam import SequentialFile

        base_scan = SequentialFile(data, euclidean)
        mod = ModifiedDistance(euclidean, PowerModifier(2.0))
        mod_scan = SequentialFile(data, mod)
        q, radius = data[0], 0.2
        base_hits = {n.index for n in base_scan.range_search(q, radius)}
        mod_hits = {n.index for n in mod_scan.range_search(q, mod.translate_radius(radius))}
        assert base_hits == mod_hits

    def test_one_to_many_matches_scalar(self, data) -> None:
        counting = CountingDistance(euclidean, one_to_many=euclidean_one_to_many)
        dist = ModifiedDistance(counting, PowerModifier(1.5))
        batch = dist.one_to_many(data[0], data[:20])
        scalar = [dist(data[0], row) for row in data[:20]]
        assert np.allclose(batch, scalar)

    def test_translate_radius_validation(self) -> None:
        dist = ModifiedDistance(euclidean, PowerModifier(2.0))
        with pytest.raises(QueryError):
            dist.translate_radius(-1.0)


class TestTriangleViolationRate:
    def test_metric_has_zero_rate(self, data) -> None:
        rate = triangle_violation_rate(data, euclidean, n_triples=400)
        assert rate == 0.0

    def test_concave_modifier_stays_metric(self, data) -> None:
        dist = ModifiedDistance(euclidean, PowerModifier(0.5))
        assert triangle_violation_rate(data, dist, n_triples=400) == 0.0

    def test_squared_l2_breaks_triangles(self, data) -> None:
        dist = ModifiedDistance(euclidean, PowerModifier(2.0))
        assert triangle_violation_rate(data, dist, n_triples=400) > 0.0

    def test_rate_grows_with_exponent(self, data) -> None:
        rates = [
            triangle_violation_rate(
                data,
                ModifiedDistance(euclidean, PowerModifier(e)),
                n_triples=400,
                rng=np.random.default_rng(1),
            )
            for e in (1.0, 2.0, 4.0)
        ]
        assert rates[0] <= rates[1] <= rates[2]

    def test_validation(self, data) -> None:
        with pytest.raises(QueryError):
            triangle_violation_rate(data[:2], euclidean)
        with pytest.raises(QueryError):
            triangle_violation_rate(data, euclidean, n_triples=0)


class TestTuneConvexExponent:
    def test_zero_budget_returns_identity(self, data) -> None:
        modifier, rate = tune_convex_exponent(
            data, euclidean, max_violation_rate=0.0, exponents=(1.0, 2.0, 4.0)
        )
        assert modifier.exponent == 1.0
        assert rate == 0.0

    def test_generous_budget_goes_convex(self, data) -> None:
        modifier, rate = tune_convex_exponent(
            data, euclidean, max_violation_rate=0.5, exponents=(1.0, 1.5, 2.0)
        )
        assert modifier.exponent > 1.0
        assert rate <= 0.5

    def test_rejects_concave_candidates(self, data) -> None:
        with pytest.raises(QueryError):
            tune_convex_exponent(data, euclidean, exponents=(0.5, 1.0))

    def test_lower_intrinsic_dimensionality(self, data) -> None:
        """The point of convex modifiers: the modified distribution has a
        lower Chávez intrinsic dimensionality -> easier pruning."""
        from repro.analysis import intrinsic_dimensionality, sample_distances

        base_rho = intrinsic_dimensionality(
            sample_distances(data, euclidean, rng=np.random.default_rng(2))
        )
        dist = ModifiedDistance(euclidean, PowerModifier(2.0))
        mod_rho = intrinsic_dimensionality(
            sample_distances(data, dist, rng=np.random.default_rng(2))
        )
        assert mod_rho < base_rho
