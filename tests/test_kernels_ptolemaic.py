"""Tests for repro.kernels.ptolemaic — the Ptolemaic pivot lower bound.

The vectorized forms must reproduce the scalar reference **bit-for-bit**
(the Gram-kernel discipline: same per-pair multiply/subtract/abs/divide
floats, exact max reduction), the bound must never exceed the true
distance on a Ptolemaic metric (L2 — and hence QFD/QMap), and degenerate
zero-distance pivot pairs must be dropped rather than divided by.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distances import euclidean, euclidean_one_to_many
from repro.kernels import (
    ptolemaic_bound_matrix,
    ptolemaic_bound_scalar,
    ptolemaic_bounds,
    valid_pivot_pairs,
)


def _setting(seed: int, m: int, p: int, dim: int):
    """Database rows, pivot rows, query, and the three distance inputs."""
    rng = np.random.default_rng(seed)
    data = rng.uniform(0.0, 1.0, size=(m, dim))
    pivot_rows = rng.uniform(0.0, 1.0, size=(p, dim))
    query = rng.uniform(0.0, 1.0, size=dim)
    table = np.column_stack(
        [euclidean_one_to_many(pivot_rows[j], data) for j in range(p)]
    )
    query_vector = euclidean_one_to_many(query, pivot_rows)
    pair = np.zeros((p, p))
    for i in range(p):
        pair[i] = euclidean_one_to_many(pivot_rows[i], pivot_rows)
    return data, query, table, query_vector, pair


@st.composite
def ptolemaic_cases(draw):
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    m = draw(st.integers(min_value=1, max_value=40))
    p = draw(st.integers(min_value=2, max_value=8))
    dim = draw(st.integers(min_value=2, max_value=10))
    return _setting(seed, m, p, dim)


class TestBitIdentity:
    @given(case=ptolemaic_cases())
    @settings(max_examples=40, deadline=None)
    def test_vectorized_equals_scalar_bitwise(self, case) -> None:
        _, _, table, qv, pair = case
        pairs = valid_pivot_pairs(pair)
        batched = ptolemaic_bounds(table, qv, pair, pairs)
        for row_idx in range(table.shape[0]):
            scalar = ptolemaic_bound_scalar(table[row_idx], qv, pair, pairs)
            assert batched[row_idx] == scalar  # exact, not approx

    @given(case=ptolemaic_cases(), s=st.integers(min_value=1, max_value=5))
    @settings(max_examples=25, deadline=None)
    def test_matrix_columns_equal_per_query_bounds_bitwise(self, case, s) -> None:
        _, _, table, qv, pair = case
        pairs = valid_pivot_pairs(pair)
        # s slightly perturbed copies of the query vector as a batch.
        qvs = np.stack([qv * (1.0 + 0.01 * i) for i in range(s)])
        matrix = ptolemaic_bound_matrix(table, qvs, pair, pairs)
        for col in range(s):
            single = ptolemaic_bounds(table, qvs[col], pair, pairs)
            assert np.array_equal(matrix[:, col], single)

    def test_blocked_pair_axis_is_still_bitwise(self, monkeypatch) -> None:
        """Force a tiny pair block so multiple blocks are exercised."""
        from repro.kernels import ptolemaic as mod

        _, _, table, qv, pair = _setting(7, 30, 8, 6)
        pairs = valid_pivot_pairs(pair)
        whole = ptolemaic_bounds(table, qv, pair, pairs)
        monkeypatch.setattr(mod, "_BLOCK_FLOATS", 1)
        blocked = mod.ptolemaic_bounds(table, qv, pair, pairs)
        assert np.array_equal(whole, blocked)


class TestBoundValidity:
    @given(case=ptolemaic_cases())
    @settings(max_examples=40, deadline=None)
    def test_bound_never_exceeds_true_l2_distance(self, case) -> None:
        data, query, table, qv, pair = case
        pairs = valid_pivot_pairs(pair)
        lb = ptolemaic_bounds(table, qv, pair, pairs)
        true = euclidean_one_to_many(query, data)
        # L2 is Ptolemaic; a tiny slack absorbs the rounding of the
        # precomputed pivot distances feeding the bound.
        assert np.all(lb <= true + 1e-9)

    def test_query_on_a_pivot_makes_the_bound_exact(self) -> None:
        """With q == p1 the pair (p1, pj) bound collapses to exactly
        d(v, p1): the numerator is d(p1,pj) * d(v,p1) and the denominator
        cancels it — the Ptolemaic bound is tight where the triangle bound
        already is, and tighter elsewhere."""
        data, _, table, _, pair = _setting(3, 20, 4, 5)
        pairs = valid_pivot_pairs(pair)
        qv = pair[0]  # the first pivot as the query: d(q, p_j) = d(p1, p_j)
        lb = ptolemaic_bounds(table, qv, pair, pairs)
        true = table[:, 0]  # d(v, p1)
        np.testing.assert_allclose(lb, true, rtol=1e-12, atol=1e-12)


class TestDegeneratePairs:
    def test_rejects_non_square_matrix(self) -> None:
        with pytest.raises(ValueError):
            valid_pivot_pairs(np.zeros((3, 4)))

    def test_zero_distance_pairs_are_dropped(self) -> None:
        pair = np.array(
            [
                [0.0, 0.0, 1.0],
                [0.0, 0.0, 1.0],
                [1.0, 1.0, 0.0],
            ]
        )
        ii, jj = valid_pivot_pairs(pair)
        assert list(zip(ii.tolist(), jj.tolist())) == [(0, 2), (1, 2)]

    def test_all_duplicate_pivots_degrade_to_zero_bound(self) -> None:
        pair = np.zeros((3, 3))
        ii, jj = valid_pivot_pairs(pair)
        assert ii.size == 0
        table = np.abs(np.random.default_rng(0).normal(size=(6, 3)))
        qv = np.ones(3)
        lb = ptolemaic_bounds(table, qv, pair, (ii, jj))
        assert np.array_equal(lb, np.zeros(6))
        matrix = ptolemaic_bound_matrix(table, np.stack([qv, qv]), pair, (ii, jj))
        assert np.array_equal(matrix, np.zeros((6, 2)))
        assert ptolemaic_bound_scalar(table[0], qv, pair, (ii, jj)) == 0.0

    def test_empty_table(self) -> None:
        pair = np.array([[0.0, 1.0], [1.0, 0.0]])
        pairs = valid_pivot_pairs(pair)
        lb = ptolemaic_bounds(np.empty((0, 2)), np.ones(2), pair, pairs)
        assert lb.shape == (0,)


class TestOutAccumulator:
    def test_out_is_max_merged(self) -> None:
        _, _, table, qv, pair = _setting(11, 25, 5, 4)
        pairs = valid_pivot_pairs(pair)
        fresh = ptolemaic_bounds(table, qv, pair, pairs)
        seed_values = np.linspace(0.0, fresh.max() * 1.5, table.shape[0])
        out = seed_values.copy()
        merged = ptolemaic_bounds(table, qv, pair, pairs, out=out)
        assert merged is out
        assert np.array_equal(merged, np.maximum(seed_values, fresh))

    def test_matrix_out_is_max_merged(self) -> None:
        _, _, table, qv, pair = _setting(12, 25, 5, 4)
        pairs = valid_pivot_pairs(pair)
        qvs = np.stack([qv, qv * 1.1])
        fresh = ptolemaic_bound_matrix(table, qvs, pair, pairs)
        seed_values = np.full((table.shape[0], 2), float(np.median(fresh)))
        out = seed_values.copy()
        merged = ptolemaic_bound_matrix(table, qvs, pair, pairs, out=out)
        assert merged is out
        assert np.array_equal(merged, np.maximum(seed_values, fresh))
