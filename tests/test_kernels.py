"""Property tests of the distance-kernel layer (:mod:`repro.kernels`).

Randomized checks over random SPD matrices: the Gram-expansion kernels and
query contexts must agree with the scalar quadratic form to tight absolute
tolerance, hold the metric postulates exactly (zero self-distance, exact
symmetry), and the QMap-space L2 kernels must agree with the QFD kernels —
the paper's central Lemma, here exercised through the batched forms.
"""

from __future__ import annotations

import importlib
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.qfd import QuadraticFormDistance
from repro.core.qmap import QMap
from repro.distances import CountingDistance, euclidean
from repro.kernels import (
    L2Kernel,
    QFDKernel,
    cached_cholesky,
    cholesky_cache_info,
    clear_cholesky_cache,
    l2_cross,
    l2_one_to_many,
    l2_pairwise,
    qfd_cross,
    qfd_one_to_many,
    qfd_pairwise,
    qfd_row_norms,
    resolve_kernel,
)

TOL = 1e-9


def _spd_matrix(rng: np.random.Generator, dim: int, *, jitter: float = 0.5) -> np.ndarray:
    """Random symmetric positive-definite matrix with controlled conditioning."""
    basis = rng.normal(size=(dim, dim))
    return basis @ basis.T + jitter * np.eye(dim)


def _rows(rng: np.random.Generator, m: int, dim: int) -> np.ndarray:
    return rng.normal(size=(m, dim))


@st.composite
def qfd_cases(draw):
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    dim = draw(st.integers(min_value=2, max_value=12))
    m = draw(st.integers(min_value=1, max_value=24))
    rng = np.random.default_rng(seed)
    matrix = _spd_matrix(rng, dim)
    return matrix, _rows(rng, m, dim), rng.normal(size=dim)


class TestGramVsScalar:
    """Kernel distances agree with the scalar quadratic form to 1e-9."""

    @settings(max_examples=60, deadline=None)
    @given(qfd_cases())
    def test_one_to_many_matches_scalar(self, case) -> None:
        matrix, rows, q = case
        qfd = QuadraticFormDistance(matrix)
        got = qfd_one_to_many(matrix, q, rows)
        want = np.array([qfd(q, row) for row in rows])
        np.testing.assert_allclose(got, want, atol=TOL, rtol=0.0)

    @settings(max_examples=60, deadline=None)
    @given(qfd_cases())
    def test_pairwise_matches_scalar(self, case) -> None:
        matrix, rows, _ = case
        qfd = QuadraticFormDistance(matrix)
        got = qfd_pairwise(matrix, rows)
        m = rows.shape[0]
        for i in range(m):
            for j in range(m):
                assert got[i, j] == pytest.approx(qfd(rows[i], rows[j]), abs=TOL)

    @settings(max_examples=60, deadline=None)
    @given(qfd_cases())
    def test_query_context_matches_scalar(self, case) -> None:
        matrix, rows, q = case
        qfd = QuadraticFormDistance(matrix)
        ctx = QFDKernel(matrix).bind(q)
        norms = qfd_row_norms(matrix, rows)
        many = ctx.many(rows, norms)
        for pos, row in enumerate(rows):
            want = qfd(q, row)
            assert many[pos] == pytest.approx(want, abs=TOL)
            assert ctx.one(row, float(norms[pos])) == pytest.approx(want, abs=TOL)
            assert ctx.one(row) == pytest.approx(want, abs=TOL)

    @settings(max_examples=40, deadline=None)
    @given(qfd_cases())
    def test_cross_matches_scalar(self, case) -> None:
        matrix, rows, q = case
        qfd = QuadraticFormDistance(matrix)
        rows_b = np.vstack([q, rows[0]])
        got = qfd_cross(matrix, rows, rows_b)
        for i in range(rows.shape[0]):
            for j in range(rows_b.shape[0]):
                assert got[i, j] == pytest.approx(qfd(rows[i], rows_b[j]), abs=TOL)


class TestMetricPostulates:
    """Exact zeros and exact symmetry survive the Gram expansion."""

    @settings(max_examples=60, deadline=None)
    @given(qfd_cases())
    def test_identical_rows_give_exact_zero(self, case) -> None:
        matrix, rows, _ = case
        q = rows[0].copy()
        got = qfd_one_to_many(matrix, q, rows)
        assert got[0] == 0.0
        ctx = QFDKernel(matrix).bind(q)
        assert ctx.many(rows, qfd_row_norms(matrix, rows))[0] == 0.0
        assert ctx.one(rows[0]) == 0.0

    @settings(max_examples=60, deadline=None)
    @given(qfd_cases())
    def test_pairwise_diagonal_zero_and_symmetric(self, case) -> None:
        matrix, rows, _ = case
        got = qfd_pairwise(matrix, rows)
        assert np.all(np.diag(got) == 0.0)
        assert np.array_equal(got, got.T)

    @settings(max_examples=60, deadline=None)
    @given(qfd_cases())
    def test_duplicate_rows_give_exact_zero_off_diagonal(self, case) -> None:
        matrix, rows, _ = case
        doubled = np.vstack([rows, rows[0]])
        got = qfd_pairwise(matrix, doubled)
        assert got[0, -1] == 0.0 and got[-1, 0] == 0.0

    def test_near_singular_matrix_stays_nonnegative(self) -> None:
        # Regression (numerical-robustness satellite): a barely-PD matrix
        # maximizes Gram cancellation; no kernel may return NaN or a
        # negative distance, and self-distances stay exactly zero.
        rng = np.random.default_rng(7)
        dim = 16
        basis = rng.normal(size=(dim, dim))
        matrix = basis @ basis.T + 1e-10 * np.eye(dim)
        rows = _rows(rng, 40, dim)
        rows[5] = rows[17]  # exact duplicate across the batch
        pw = qfd_pairwise(matrix, rows)
        assert np.all(np.isfinite(pw)) and np.all(pw >= 0.0)
        assert pw[5, 17] == 0.0 and np.all(np.diag(pw) == 0.0)
        o2m = qfd_one_to_many(matrix, rows[5], rows)
        assert np.all(np.isfinite(o2m)) and np.all(o2m >= 0.0)
        assert o2m[5] == 0.0 and o2m[17] == 0.0
        qfd = QuadraticFormDistance(matrix)
        np.testing.assert_allclose(
            pw, qfd.pairwise(rows), atol=1e-6, rtol=1e-6
        )


class TestQMapLemma:
    """L2 in the mapped space equals QFD in the source space (Lemma 1)."""

    @settings(max_examples=60, deadline=None)
    @given(qfd_cases())
    def test_l2_kernels_match_qfd_kernels_after_transform(self, case) -> None:
        matrix, rows, q = case
        qmap = QMap(matrix)
        mapped_rows = qmap.transform_batch(rows)
        mapped_q = qmap.transform(q)
        np.testing.assert_allclose(
            l2_one_to_many(mapped_q, mapped_rows),
            qfd_one_to_many(matrix, q, rows),
            atol=1e-7,
            rtol=1e-7,
        )
        np.testing.assert_allclose(
            l2_pairwise(mapped_rows), qfd_pairwise(matrix, rows), atol=1e-7, rtol=1e-7
        )
        np.testing.assert_allclose(
            l2_cross(mapped_rows, mapped_q.reshape(1, -1)),
            qfd_cross(matrix, rows, q.reshape(1, -1)),
            atol=1e-7,
            rtol=1e-7,
        )

    @settings(max_examples=40, deadline=None)
    @given(qfd_cases())
    def test_l2_context_matches_qfd_context(self, case) -> None:
        matrix, rows, q = case
        qmap = QMap(matrix)
        l2_ctx = L2Kernel().bind(qmap.transform(q))
        qfd_ctx = QFDKernel(matrix).bind(q)
        np.testing.assert_allclose(
            l2_ctx.many(qmap.transform_batch(rows)),
            qfd_ctx.many(rows),
            atol=1e-7,
            rtol=1e-7,
        )


class TestResolveKernel:
    def test_qfd_resolves_through_counting_wrapper(self) -> None:
        matrix = _spd_matrix(np.random.default_rng(0), 4)
        qfd = QuadraticFormDistance(matrix)
        kernel = resolve_kernel(CountingDistance(qfd))
        assert isinstance(kernel, QFDKernel)
        assert kernel.matrix is qfd.matrix

    def test_euclidean_resolves_to_l2(self) -> None:
        assert isinstance(resolve_kernel(euclidean), L2Kernel)
        assert isinstance(resolve_kernel(CountingDistance(euclidean)), L2Kernel)

    def test_unknown_metric_resolves_to_none(self) -> None:
        assert resolve_kernel(lambda u, v: 0.0) is None

    def test_counting_distance_auto_vectorizes_known_metrics(self) -> None:
        counter = CountingDistance(euclidean)
        rng = np.random.default_rng(3)
        rows = _rows(rng, 8, 5)
        got = counter.one_to_many(rows[0], rows)
        want = np.array([euclidean(rows[0], r) for r in rows])
        np.testing.assert_allclose(got, want, atol=TOL, rtol=0.0)
        assert counter.stats.batch_rows == 8


class TestCholeskyCache:
    def test_equal_matrices_share_one_factorization(self) -> None:
        clear_cholesky_cache()
        matrix = _spd_matrix(np.random.default_rng(11), 6)
        first = cached_cholesky(matrix)
        second = cached_cholesky(matrix.copy())  # equal content, new object
        assert first is second
        info = cholesky_cache_info()
        assert info["entries"] == 1
        assert info["misses"] == 1 and info["hits"] == 1
        assert not first.flags.writeable
        np.testing.assert_allclose(first @ first.T, matrix, atol=1e-9)

    def test_distinct_matrices_get_distinct_factors(self) -> None:
        clear_cholesky_cache()
        rng = np.random.default_rng(12)
        a = cached_cholesky(_spd_matrix(rng, 5))
        b = cached_cholesky(_spd_matrix(rng, 5))
        assert a is not b
        assert cholesky_cache_info()["entries"] == 2

    def test_qmap_uses_the_cache(self) -> None:
        clear_cholesky_cache()
        matrix = _spd_matrix(np.random.default_rng(13), 6)
        assert QMap(matrix).matrix is QMap(matrix.copy()).matrix

    def test_concurrent_misses_factor_each_key_exactly_once(self, monkeypatch) -> None:
        """Regression: N threads racing on the same cold key used to run N
        factorizations (all but one thrown away). The in-flight registry
        must de-duplicate them — one factorization per distinct matrix."""
        # repro.core re-exports the cholesky *function* under the same
        # name, so reach the submodule through importlib.
        chol_mod = importlib.import_module("repro.core.cholesky")
        from repro.kernels import cholesky_cache

        clear_cholesky_cache()
        rng = np.random.default_rng(21)
        matrices = [_spd_matrix(rng, 6) for _ in range(3)]
        factored: list[bytes] = []
        record_lock = threading.Lock()
        real = chol_mod.cholesky

        def counting(matrix, **kwargs):
            with record_lock:
                factored.append(np.ascontiguousarray(matrix).tobytes())
            return real(matrix, **kwargs)

        monkeypatch.setattr(chol_mod, "cholesky", counting)
        n_threads = 8
        barrier = threading.Barrier(n_threads)
        results: list[list[np.ndarray]] = [[] for _ in range(n_threads)]
        errors: list[BaseException] = []

        def worker(slot: int) -> None:
            try:
                barrier.wait()  # release everyone onto the cold cache at once
                for matrix in matrices:
                    results[slot].append(cholesky_cache.cached_cholesky(matrix.copy()))
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(slot,)) for slot in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(factored) == len(matrices)  # one factorization per key
        assert len({blob for blob in factored}) == len(matrices)
        info = cholesky_cache_info()
        assert info["misses"] == len(matrices)
        for pos in range(len(matrices)):
            shared = results[0][pos]
            assert all(results[slot][pos] is shared for slot in range(n_threads))

    def test_waiters_recover_when_the_owner_fails(self, monkeypatch) -> None:
        """If the owning thread's factorization raises, waiters must retake
        the miss path (not hang, not cache a broken entry)."""
        # repro.core re-exports the cholesky *function* under the same
        # name, so reach the submodule through importlib.
        chol_mod = importlib.import_module("repro.core.cholesky")
        from repro.kernels import cholesky_cache

        clear_cholesky_cache()
        matrix = _spd_matrix(np.random.default_rng(22), 5)
        attempts: list[int] = []
        attempt_lock = threading.Lock()
        real = chol_mod.cholesky

        def flaky(m, **kwargs):
            with attempt_lock:
                attempts.append(1)
                first = len(attempts) == 1
            if first:
                raise RuntimeError("synthetic factorization failure")
            return real(m, **kwargs)

        monkeypatch.setattr(chol_mod, "cholesky", flaky)
        barrier = threading.Barrier(4)
        outcomes: list[object] = []
        out_lock = threading.Lock()

        def worker() -> None:
            barrier.wait()
            try:
                out = cholesky_cache.cached_cholesky(matrix)
            except RuntimeError as exc:
                out = exc
            with out_lock:
                outcomes.append(out)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert all(not t.is_alive() for t in threads)  # nobody hangs
        failures = [o for o in outcomes if isinstance(o, RuntimeError)]
        factors = [o for o in outcomes if isinstance(o, np.ndarray)]
        assert len(failures) == 1 and len(factors) == 3
        assert all(f is factors[0] for f in factors)
        np.testing.assert_allclose(factors[0] @ factors[0].T, matrix, atol=1e-9)


class TestCountingDistanceThreadSafety:
    def test_concurrent_counts_and_reads_are_consistent(self) -> None:
        # Satellite (a): `stats`/`count` snapshot under the lock, so a
        # reader can never observe a calls/batch_rows pair mid-update.
        counter = CountingDistance(euclidean)
        rows = np.zeros((10, 3))
        stop = threading.Event()
        bad: list[tuple[int, int]] = []

        def reader() -> None:
            while not stop.is_set():
                snap = counter.stats
                # Writers always add calls and rows through the same
                # add_counts call below, so a torn read shows rows != calls.
                if snap.batch_rows != snap.calls:
                    bad.append((snap.calls, snap.batch_rows))

        def writer() -> None:
            for _ in range(2000):
                counter.add_counts(calls=1, batch_rows=1)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        watcher = threading.Thread(target=reader)
        watcher.start()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stop.set()
        watcher.join()
        assert not bad
        assert counter.stats.calls == 8000 and counter.stats.batch_rows == 8000
        assert counter.count == 16000
