"""Tests for repro._typing coercions and the exception hierarchy."""

from __future__ import annotations

import numpy as np
import pytest

from repro._typing import as_square_matrix, as_vector, as_vector_batch
from repro.exceptions import (
    DimensionMismatchError,
    EmptyIndexError,
    IndexStateError,
    MatrixError,
    NotPositiveDefiniteError,
    NotSymmetricError,
    PageError,
    QueryError,
    ReproError,
    StorageError,
)


class TestAsVector:
    def test_coerces_list(self) -> None:
        out = as_vector([1, 2, 3])
        assert out.dtype == np.float64
        assert out.shape == (3,)

    def test_checks_dim(self) -> None:
        with pytest.raises(DimensionMismatchError, match="expected 4"):
            as_vector([1.0, 2.0], 4)

    def test_rejects_2d(self) -> None:
        with pytest.raises(DimensionMismatchError):
            as_vector(np.ones((2, 2)))

    def test_name_in_error(self) -> None:
        with pytest.raises(DimensionMismatchError, match="weights"):
            as_vector(np.ones((2, 2)), name="weights")


class TestAsVectorBatch:
    def test_promotes_1d(self) -> None:
        out = as_vector_batch([1.0, 2.0])
        assert out.shape == (1, 2)

    def test_checks_dim(self) -> None:
        with pytest.raises(DimensionMismatchError):
            as_vector_batch(np.ones((3, 2)), 5)

    def test_rejects_3d(self) -> None:
        with pytest.raises(DimensionMismatchError):
            as_vector_batch(np.ones((2, 2, 2)))


class TestAsSquareMatrix:
    def test_accepts_square(self) -> None:
        assert as_square_matrix([[1.0, 0.0], [0.0, 1.0]]).shape == (2, 2)

    def test_rejects_rectangular(self) -> None:
        with pytest.raises(MatrixError):
            as_square_matrix(np.ones((2, 3)))

    def test_rejects_inf(self) -> None:
        a = np.eye(2)
        a[0, 1] = np.inf
        with pytest.raises(MatrixError, match="non-finite"):
            as_square_matrix(a)


class TestExceptionHierarchy:
    """A single `except ReproError` must catch everything the library
    raises, and the standard-library bases must hold for idiomatic use."""

    @pytest.mark.parametrize(
        "exc",
        [
            MatrixError,
            NotPositiveDefiniteError,
            NotSymmetricError,
            DimensionMismatchError,
            IndexStateError,
            EmptyIndexError,
            QueryError,
            StorageError,
            PageError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc) -> None:
        assert issubclass(exc, ReproError)

    def test_value_error_compat(self) -> None:
        assert issubclass(MatrixError, ValueError)
        assert issubclass(QueryError, ValueError)
        assert issubclass(DimensionMismatchError, ValueError)

    def test_runtime_and_io_compat(self) -> None:
        assert issubclass(IndexStateError, RuntimeError)
        assert issubclass(StorageError, IOError)

    def test_specializations(self) -> None:
        assert issubclass(NotPositiveDefiniteError, MatrixError)
        assert issubclass(NotSymmetricError, MatrixError)
        assert issubclass(EmptyIndexError, IndexStateError)
        assert issubclass(PageError, StorageError)

    def test_catching_base_works_in_practice(self) -> None:
        from repro.core import QuadraticFormDistance

        with pytest.raises(ReproError):
            QuadraticFormDistance(np.ones((3, 3)))  # singular
