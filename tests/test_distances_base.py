"""Tests for repro.distances.base — the counting wrapper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distances import CountingDistance, euclidean, euclidean_one_to_many


class TestCountingDistance:
    def test_counts_scalar_calls(self) -> None:
        cd = CountingDistance(euclidean)
        u, v = np.zeros(3), np.ones(3)
        for _ in range(5):
            cd(u, v)
        assert cd.count == 5
        assert cd.stats.calls == 5
        assert cd.stats.batch_rows == 0

    def test_counts_batch_rows(self) -> None:
        cd = CountingDistance(euclidean, one_to_many=euclidean_one_to_many)
        cd.one_to_many(np.zeros(3), np.ones((7, 3)))
        assert cd.count == 7
        assert cd.stats.batch_rows == 7

    def test_mixed_counting(self) -> None:
        cd = CountingDistance(euclidean, one_to_many=euclidean_one_to_many)
        cd(np.zeros(2), np.ones(2))
        cd.one_to_many(np.zeros(2), np.ones((3, 2)))
        assert cd.stats.total == 4

    def test_values_unchanged(self) -> None:
        cd = CountingDistance(euclidean)
        assert cd(np.zeros(2), np.array([3.0, 4.0])) == pytest.approx(5.0)

    def test_fallback_loop_when_no_vectorized_form(self) -> None:
        cd = CountingDistance(euclidean)
        batch = np.arange(12.0).reshape(4, 3)
        out = cd.one_to_many(np.zeros(3), batch)
        assert np.allclose(out, [euclidean(np.zeros(3), row) for row in batch])
        assert cd.count == 4

    def test_reset_returns_previous_stats(self) -> None:
        cd = CountingDistance(euclidean)
        cd(np.zeros(2), np.ones(2))
        before = cd.reset()
        assert before.calls == 1
        assert cd.count == 0

    def test_one_to_many_counts_even_when_vectorized(self) -> None:
        """Batched rows count one evaluation each — the paper's cost unit
        is logical distance computations, not BLAS calls."""
        cd = CountingDistance(euclidean, one_to_many=euclidean_one_to_many)
        cd.one_to_many(np.zeros(4), np.ones((100, 4)))
        assert cd.count == 100
