"""Tests for repro.bench — harness plumbing and complexity closed forms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import (
    ComplexityRow,
    Stopwatch,
    compare_models,
    format_series,
    format_table,
    measure_queries,
    measured_flops,
    speedup,
    sweep_sizes,
    theoretical_indexing_flops,
    theoretical_querying_flops,
    time_callable,
)
from repro.datasets import histogram_workload
from repro.exceptions import QueryError
from repro.models import IndexCosts, QMapModel


@pytest.fixture(scope="module")
def workload():
    return histogram_workload(200, 4, bins_per_channel=2, seed=23)


class TestTiming:
    def test_stopwatch(self) -> None:
        with Stopwatch() as sw:
            sum(range(100))
        assert sw.seconds >= 0.0

    def test_time_callable(self) -> None:
        result = time_callable(lambda: None, repeats=3)
        assert result.repeats == 3
        assert result.mean >= 0.0
        assert result.best <= result.mean * 3

    def test_time_callable_rejects_zero_repeats(self) -> None:
        with pytest.raises(QueryError):
            time_callable(lambda: None, repeats=0)


class TestReporting:
    def test_format_table(self) -> None:
        out = format_table(["a", "b"], [[1, 2.5], [3, 4.0]], title="T")
        assert "T" in out
        assert "a" in out and "b" in out
        assert "2.5" in out

    def test_format_series(self) -> None:
        out = format_series("m", [10, 20], {"qfd": [1.0, 2.0], "qmap": [0.1, 0.2]})
        assert "qfd" in out and "qmap" in out and "20" in out

    def test_speedup(self) -> None:
        assert speedup(10.0, 2.0) == pytest.approx(5.0)
        assert speedup(1.0, 0.0) == float("inf")
        assert speedup(0.0, 0.0) == 1.0

    def test_format_large_and_small_floats(self) -> None:
        out = format_table(["x"], [[123456.0], [0.00001]])
        assert "e+" in out or "e-" in out


class TestMeasureQueries:
    def test_knn_mode(self, workload) -> None:
        index = QMapModel(workload.matrix).build_index("sequential", workload.database)
        result = measure_queries(index, workload.queries, mode="knn", k=3)
        assert result.queries == 4
        assert result.evaluations_per_query == workload.size
        assert result.seconds_per_query > 0.0

    def test_range_mode(self, workload) -> None:
        index = QMapModel(workload.matrix).build_index("sequential", workload.database)
        result = measure_queries(index, workload.queries, mode="range", radius=0.1)
        assert result.total.distance_computations == 4 * workload.size

    def test_rejects_bad_mode(self, workload) -> None:
        index = QMapModel(workload.matrix).build_index("sequential", workload.database)
        with pytest.raises(QueryError):
            measure_queries(index, workload.queries, mode="nearest")

    def test_rejects_empty_queries(self, workload) -> None:
        index = QMapModel(workload.matrix).build_index("sequential", workload.database)
        with pytest.raises(QueryError):
            measure_queries(index, np.empty((0, workload.dim)))


class TestCompareAndSweep:
    def test_compare_models(self, workload) -> None:
        cmp = compare_models(workload, "pivot-table", method_kwargs={"n_pivots": 8}, k=1)
        assert cmp.method == "pivot-table"
        assert cmp.database_size == workload.size
        # Same number of distance evaluations in both models.
        assert (
            cmp.qfd_query.total.distance_computations
            == cmp.qmap_query.total.distance_computations
        )
        assert cmp.indexing_speedup > 0.0
        assert cmp.querying_speedup > 0.0

    def test_sweep_sizes(self, workload) -> None:
        results = sweep_sizes(workload, "sequential", [50, 100, 200], k=1)
        assert [r.database_size for r in results] == [50, 100, 200]
        evals = [r.qfd_query.evaluations_per_query for r in results]
        assert evals == [50, 100, 200]  # scan always touches everything


class TestComplexity:
    def test_measured_flops_qfd(self) -> None:
        costs = IndexCosts(distance_computations=10, transforms=0)
        assert measured_flops(costs, "qfd", 8) == 10 * 64

    def test_measured_flops_qmap(self) -> None:
        costs = IndexCosts(distance_computations=10, transforms=3)
        assert measured_flops(costs, "qmap", 8) == 10 * 8 + 3 * 64

    def test_measured_flops_rejects_unknown_model(self) -> None:
        with pytest.raises(QueryError):
            measured_flops(IndexCosts(1, 0), "hybrid", 4)

    def test_table1_sequential_qfd_beats_qmap(self) -> None:
        """The single row of Table 1 where QFD wins."""
        qfd = theoretical_indexing_flops("sequential", "qfd", m=1000, n=64)
        qmap = theoretical_indexing_flops("sequential", "qmap", m=1000, n=64)
        assert qfd < qmap

    @pytest.mark.parametrize("method", ["pivot-table", "mtree"])
    def test_table1_qmap_beats_qfd_elsewhere(self, method) -> None:
        kwargs = {"m": 10_000, "n": 64}
        if method == "pivot-table":
            kwargs.update(p=32, selection_cost=5000)
        qfd = theoretical_indexing_flops(method, "qfd", **kwargs)
        qmap = theoretical_indexing_flops(method, "qmap", **kwargs)
        assert qmap < qfd

    @pytest.mark.parametrize("method", ["sequential", "pivot-table", "mtree"])
    def test_table2_qmap_always_wins(self, method) -> None:
        kwargs = {"m": 10_000, "n": 64}
        if method == "pivot-table":
            kwargs.update(p=32, x=500)
        if method == "mtree":
            kwargs.update(x=500)
        qfd = theoretical_querying_flops(method, "qfd", **kwargs)
        qmap = theoretical_querying_flops(method, "qmap", **kwargs)
        assert qmap < qfd

    def test_unknown_method_rejected(self) -> None:
        with pytest.raises(QueryError):
            theoretical_indexing_flops("rtree", "qfd", m=10, n=4)
        with pytest.raises(QueryError):
            theoretical_querying_flops("rtree", "qfd", m=10, n=4)

    def test_complexity_row_ratio(self) -> None:
        row = ComplexityRow("mtree", "qfd", 100, 0, 1000.0, 500.0)
        assert row.flops_ratio == pytest.approx(2.0)
