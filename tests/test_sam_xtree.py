"""Tests for repro.sam.xtree — supernode behaviour and exactness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import clustered_histograms, gaussian_vectors
from repro.distances import euclidean
from repro.exceptions import QueryError
from repro.mam import SequentialFile
from repro.sam import RTree, XTree
from repro.sam.xtree import _overlap_fraction

from .helpers import assert_same_neighbors


@pytest.fixture(scope="module")
def data():
    return clustered_histograms(300, 4, themes=6, rng=np.random.default_rng(131))


@pytest.fixture(scope="module")
def scan(data):
    return SequentialFile(data, euclidean)


class TestOverlapFraction:
    def test_disjoint(self) -> None:
        frac = _overlap_fraction(
            np.zeros(2), np.ones(2), np.full(2, 2.0), np.full(2, 3.0)
        )
        assert frac == 0.0

    def test_identical(self) -> None:
        frac = _overlap_fraction(np.zeros(2), np.ones(2), np.zeros(2), np.ones(2))
        assert frac == pytest.approx(1.0)

    def test_point_rectangles(self) -> None:
        p = np.full(3, 0.5)
        assert _overlap_fraction(p, p, p, p) == 1.0

    def test_partial(self) -> None:
        frac = _overlap_fraction(
            np.array([0.0]), np.array([2.0]), np.array([1.0]), np.array([3.0])
        )
        assert frac == pytest.approx(1.0 / 3.0)


class TestXTree:
    def test_exact_knn(self, data, scan) -> None:
        tree = XTree(data, capacity=10, max_overlap=0.75)
        for q in data[:4]:
            assert_same_neighbors(tree.knn_search(q, 7), scan.knn_search(q, 7))

    def test_exact_range(self, data, scan) -> None:
        tree = XTree(data, capacity=10, max_overlap=0.75)
        q = data[50]
        nn = scan.knn_search(q, 25)
        radius = (nn[-2].distance + nn[-1].distance) / 2.0
        assert_same_neighbors(tree.range_search(q, radius), scan.range_search(q, radius))

    def test_high_dim_uniform_data_creates_supernodes(self) -> None:
        """Uniform high-dimensional data is the X-tree's target regime:
        any split separates the points in one dimension while both groups
        span the full range everywhere else, so the mean per-dimension
        overlap is high and splits get refused."""
        rng = np.random.default_rng(3)
        uniform = rng.random((300, 16))
        tree = XTree(uniform, capacity=10, max_overlap=0.6)
        assert tree.supernode_count() > 0

    def test_supernodes_stay_exact(self, scan, data) -> None:
        rng = np.random.default_rng(3)
        uniform = rng.random((300, 16))
        from repro.mam import SequentialFile
        from repro.distances import euclidean as l2

        tree = XTree(uniform, capacity=10, max_overlap=0.6)
        ref = SequentialFile(uniform, l2)
        q = rng.random(16)
        assert_same_neighbors(tree.knn_search(q, 9), ref.knn_search(q, 9))

    def test_zero_threshold_goes_fully_super(self, data) -> None:
        tree = XTree(data, capacity=10, max_overlap=0.0)
        # One giant supernode root: height 1.
        assert tree.height() == 1
        assert tree.supernode_count() >= 1

    def test_threshold_one_matches_rtree_shape(self) -> None:
        """With max_overlap=1 no split is ever refused -> identical tree
        shape to the plain R-tree."""
        rng = np.random.default_rng(7)
        points = gaussian_vectors(200, 3, rng=rng)
        xtree = XTree(points, capacity=8, max_overlap=1.0)
        rtree = RTree(points, capacity=8)
        assert xtree.supernode_count() == 0
        assert xtree.height() == rtree.height()

    def test_insert_into_supernode(self, data, scan) -> None:
        tree = XTree(data[:250], capacity=10, max_overlap=0.6)
        for row in data[250:]:
            tree.insert(row)
        q = data[0]
        assert_same_neighbors(tree.knn_search(q, 6), scan.knn_search(q, 6))

    def test_rejects_bad_threshold(self, data) -> None:
        with pytest.raises(QueryError):
            XTree(data, max_overlap=1.5)

    def test_low_dim_separable_data_splits_normally(self) -> None:
        rng = np.random.default_rng(11)
        points = gaussian_vectors(300, 2, clusters=4, spread=0.05, rng=rng)
        tree = XTree(points, capacity=8, max_overlap=0.75)
        assert tree.height() > 1  # separable data splits fine
