"""Per-query tracing — traces must reproduce the paper's cost model.

The central claims verified here:

* the pivot table's traced kNN cost is exactly ``p + x`` — the ``p``
  query-pivot distances plus the ``x`` refined candidates (paper
  Section 4.2.1's querying complexity);
* summed over a batch, traces agree *exactly* with the
  :class:`CountingDistance` wrapper the models already use, so the two
  cost accounts can never drift apart;
* the contextvars plumbing attributes evaluations to the right query
  even when queries run concurrently in worker threads.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import histogram_workload
from repro.distances import CountingDistance, euclidean, euclidean_one_to_many
from repro.engine import (
    QueryTrace,
    TraceCollector,
    TracingPort,
    activate_trace,
    current_trace,
    record_candidates,
    record_filter,
)
from repro.mam import DistancePort, PivotTable, SequentialFile

N_PIVOTS = 8


@pytest.fixture(scope="module")
def workload():
    return histogram_workload(180, 5, bins_per_channel=4, seed=53)


def _counting_port() -> tuple[DistancePort, CountingDistance]:
    counter = CountingDistance(euclidean, one_to_many=euclidean_one_to_many)
    return DistancePort(counter), counter


class TestPivotTableCostModel:
    def test_knn_costs_exactly_p_plus_x(self, workload) -> None:
        """Paper Section 4.2.1: a pivot-table query pays p pivot
        distances plus one real distance per non-filtered candidate."""
        am = PivotTable(
            workload.database, euclidean, n_pivots=N_PIVOTS,
            rng=np.random.default_rng(3),
        )
        collector = TraceCollector()
        am.knn_search_batch(workload.queries, 10, collector=collector)
        for trace in collector.traces:
            assert trace.batched_evaluations == N_PIVOTS  # the p term
            assert trace.scalar_evaluations == trace.candidates  # the x term
            assert trace.distance_evaluations == N_PIVOTS + trace.candidates

    def test_range_filter_counts(self, workload) -> None:
        am = PivotTable(
            workload.database, euclidean, n_pivots=N_PIVOTS,
            rng=np.random.default_rng(3),
        )
        radius = am.knn_search(workload.queries[0], 6)[-1].distance
        collector = TraceCollector()
        results = am.range_search_batch(workload.queries, radius, collector=collector)
        for trace, result in zip(collector.traces, results):
            assert trace.filter_checked == am.size
            assert trace.filter_hits == trace.candidates
            # Refinement is one batched many() over the candidates.
            assert trace.batched_evaluations == N_PIVOTS + trace.candidates
            assert trace.results == len(result)
            # Filtering is sound: every answer survived the filter.
            assert trace.filter_hits >= len(result)


class TestTracesAgreeWithCounters:
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_batch_totals_match_counting_distance(self, workload, executor) -> None:
        port, counter = _counting_port()
        am = PivotTable(
            workload.database, port, n_pivots=N_PIVOTS, rng=np.random.default_rng(7)
        )
        counter.reset()
        collector = TraceCollector()
        am.knn_search_batch(
            workload.queries, 8, executor=executor, workers=3, collector=collector
        )
        summary = collector.summary()
        assert summary.queries == workload.queries.shape[0]
        assert summary.distance_evaluations == counter.count
        assert summary.scalar_evaluations == counter.stats.calls
        assert summary.batched_evaluations == counter.stats.batch_rows

    def test_sequential_scan_costs_m_per_query(self, workload) -> None:
        port, counter = _counting_port()
        am = SequentialFile(workload.database, port)
        counter.reset()
        collector = TraceCollector()
        am.knn_search_batch(workload.queries, 4, collector=collector)
        for trace in collector.traces:
            assert trace.distance_evaluations == am.size
            assert trace.candidates == am.size
        assert collector.summary().distance_evaluations == counter.count

    def test_untraced_batch_leaves_port_untouched(self, workload) -> None:
        am = SequentialFile(workload.database, euclidean)
        port_before = am._port
        am.knn_search_batch(workload.queries, 3, executor="thread", workers=2)
        assert am._port is port_before
        assert not isinstance(am._port, TracingPort)


class TestTracePlumbing:
    def test_activate_none_is_noop(self) -> None:
        with activate_trace(None):
            assert current_trace() is None

    def test_activate_restores_previous(self) -> None:
        outer, inner = QueryTrace(query_index=0), QueryTrace(query_index=1)
        with activate_trace(outer):
            with activate_trace(inner):
                assert current_trace() is inner
            assert current_trace() is outer
        assert current_trace() is None

    def test_record_hooks_without_trace_are_noops(self) -> None:
        record_filter(10, 3)
        record_candidates(5)  # must not raise

    def test_tracing_port_forwards_and_charges(self) -> None:
        port, counter = _counting_port()
        tracing = TracingPort(port)
        trace = QueryTrace()
        u, rows = np.zeros(4), np.ones((3, 4))
        with activate_trace(trace):
            tracing.pair(u, rows[0])
            tracing.many(u, rows)
        assert (trace.scalar_evaluations, trace.batched_evaluations) == (1, 3)
        assert counter.count == 4  # inner counter still sees everything
        assert tracing.inner is port
        assert tracing.raw is port.raw

    def test_collector_orders_and_summarizes(self) -> None:
        collector = TraceCollector()
        collector.add(QueryTrace(query_index=2, scalar_evaluations=5, seconds=0.5))
        collector.extend(
            [
                QueryTrace(query_index=0, batched_evaluations=10, seconds=0.25),
                QueryTrace(query_index=1, scalar_evaluations=1, seconds=0.25),
            ]
        )
        assert [t.query_index for t in collector.traces] == [0, 1, 2]
        summary = collector.summary()
        assert summary.queries == 3
        assert summary.distance_evaluations == 16
        assert summary.evaluations_per_query == pytest.approx(16 / 3)
        assert summary.queries_per_second == pytest.approx(3.0)
        collector.clear()
        assert len(collector) == 0
        empty = collector.summary()
        assert empty.evaluations_per_query == 0.0
        assert empty.queries_per_second == 0.0
        assert empty.p50_seconds == 0.0 and empty.p95_seconds == 0.0

    def test_summary_latency_percentiles_are_nearest_rank(self) -> None:
        collector = TraceCollector()
        # 20 queries at 10ms..200ms: nearest-rank p50 is the 10th sorted
        # value (100ms), p95 the 19th (190ms) — never interpolated.
        collector.extend(
            QueryTrace(query_index=i, seconds=(i + 1) * 0.010) for i in range(20)
        )
        summary = collector.summary()
        assert summary.p50_seconds == pytest.approx(0.100)
        assert summary.p95_seconds == pytest.approx(0.190)

    def test_single_trace_percentiles_collapse_to_its_time(self) -> None:
        collector = TraceCollector()
        collector.add(QueryTrace(query_index=0, seconds=0.042))
        summary = collector.summary()
        assert summary.p50_seconds == pytest.approx(0.042)
        assert summary.p95_seconds == pytest.approx(0.042)


class TestNearestRankEdgeCases:
    """Exact-value pins for the nearest-rank percentile helper.

    Regression: ``ceil(q * n)`` used to be taken unclamped, so q=0 indexed
    rank 0 and float noise in ``q * n`` could index past the end; these pin
    the corrected rank = min(max(ceil(q n), 1), n) on the sizes that
    exercised the bugs (n = 1, 2, 20).
    """

    def _rank(self, values: list[float], q: float) -> float:
        from repro.engine.trace import _nearest_rank

        return _nearest_rank(sorted(values), q)

    def test_empty_is_zero(self) -> None:
        assert self._rank([], 0.5) == 0.0
        assert self._rank([], 0.95) == 0.0

    def test_n1_every_quantile_is_the_sample(self) -> None:
        for q in (0.0, 0.5, 0.95, 1.0):
            assert self._rank([0.7], q) == 0.7

    def test_n2_exact_values(self) -> None:
        values = [1.0, 2.0]
        # ceil(0.5 * 2) = 1 -> first; ceil(0.95 * 2) = ceil(1.9) = 2 -> second.
        assert self._rank(values, 0.5) == 1.0
        assert self._rank(values, 0.95) == 2.0
        assert self._rank(values, 0.0) == 1.0  # clamped up to rank 1
        assert self._rank(values, 1.0) == 2.0

    def test_n20_exact_values(self) -> None:
        values = [float(i + 1) for i in range(20)]
        # ceil(0.5 * 20) = 10; ceil(0.95 * 20) = 19 -- not interpolated,
        # not the max: the 19th of 20 sorted values.
        assert self._rank(values, 0.5) == 10.0
        assert self._rank(values, 0.95) == 19.0
        assert self._rank(values, 1.0) == 20.0

    def test_q_one_never_indexes_past_the_end(self) -> None:
        # 1.0 * n can land a hair above n in floating point for some n;
        # the clamp makes q=1.0 safe for every size.
        for n in range(1, 50):
            values = [float(i) for i in range(n)]
            assert self._rank(values, 1.0) == float(n - 1)
