"""Tests for repro.models — the QFD and QMap pipelines and cost accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import QuadraticFormDistance
from repro.datasets import histogram_workload
from repro.exceptions import QueryError
from repro.models import MAM_REGISTRY, QFDModel, QMapModel, resolve_method

from .helpers import assert_same_neighbors


@pytest.fixture(scope="module")
def workload():
    return histogram_workload(300, 4, bins_per_channel=4, seed=17)


class TestRegistry:
    def test_resolve_known_mam(self) -> None:
        cls, is_sam = resolve_method("mtree")
        assert not is_sam and cls.__name__ == "MTree"

    def test_resolve_known_sam(self) -> None:
        cls, is_sam = resolve_method("rtree")
        assert is_sam and cls.__name__ == "RTree"

    def test_resolve_unknown(self) -> None:
        with pytest.raises(QueryError, match="unknown access method"):
            resolve_method("btree")


class TestQFDModel:
    def test_accepts_matrix_or_distance(self, workload) -> None:
        by_matrix = QFDModel(workload.matrix)
        by_distance = QFDModel(QuadraticFormDistance(workload.matrix))
        assert by_matrix.dim == by_distance.dim == workload.dim

    def test_rejects_sam(self, workload) -> None:
        with pytest.raises(QueryError, match="cannot index the raw QFD space"):
            QFDModel(workload.matrix).build_index("rtree", workload.database)

    def test_distance_passthrough(self, workload) -> None:
        model = QFDModel(workload.matrix)
        qfd = QuadraticFormDistance(workload.matrix)
        u, v = workload.database[0], workload.database[1]
        assert model.distance(u, v) == pytest.approx(qfd(u, v))

    def test_no_transforms_counted(self, workload) -> None:
        index = QFDModel(workload.matrix).build_index("mtree", workload.database)
        assert index.build_costs.transforms == 0
        index.knn_search(workload.queries[0], 3)
        assert index.query_costs().transforms == 0


class TestQMapModel:
    def test_transforms_counted(self, workload) -> None:
        index = QMapModel(workload.matrix).build_index("sequential", workload.database)
        assert index.build_costs.transforms == workload.size
        index.reset_query_costs()
        index.knn_search(workload.queries[0], 3)
        index.knn_search(workload.queries[1], 3)
        assert index.query_costs().transforms == 2

    def test_distance_via_map_matches_qfd(self, workload) -> None:
        model = QMapModel(workload.matrix)
        qfd = QuadraticFormDistance(workload.matrix)
        u, v = workload.database[0], workload.database[1]
        assert model.distance(u, v) == pytest.approx(qfd(u, v), abs=1e-9)

    def test_model_name(self, workload) -> None:
        index = QMapModel(workload.matrix).build_index("sequential", workload.database)
        assert index.model_name == "qmap"


class TestModelEquivalence:
    """DESIGN.md invariant 5: same results AND same evaluation counts."""

    @pytest.mark.parametrize("method", sorted(MAM_REGISTRY))
    def test_same_results_and_counts(self, method, workload) -> None:
        kwargs = {
            "sequential": {},
            "disk-sequential": {"cache_pages": 8},
            "pivot-table": {"n_pivots": 10, "rng": np.random.default_rng(1)},
            "mtree": {"capacity": 8, "rng": np.random.default_rng(1)},
            "paged-mtree": {"capacity": 8, "cache_pages": 8, "rng": np.random.default_rng(1)},
            "vptree": {"leaf_size": 6, "rng": np.random.default_rng(1)},
            "gnat": {"arity": 5, "leaf_size": 10, "rng": np.random.default_rng(1)},
            "mindex": {"n_pivots": 8, "rng": np.random.default_rng(1)},
            "sat": {"rng": np.random.default_rng(1)},
        }[method]
        # Fresh rngs per model so both runs draw identical random choices.
        if "rng" in kwargs:
            kwargs_qfd = dict(kwargs, rng=np.random.default_rng(1))
            kwargs_qmap = dict(kwargs, rng=np.random.default_rng(1))
        else:
            kwargs_qfd = kwargs_qmap = kwargs
        i_qfd = QFDModel(workload.matrix).build_index(
            method, workload.database, **kwargs_qfd
        )
        i_qmap = QMapModel(workload.matrix).build_index(
            method, workload.database, **kwargs_qmap
        )
        assert (
            i_qfd.build_costs.distance_computations
            == i_qmap.build_costs.distance_computations
        )
        for q in workload.queries:
            i_qfd.reset_query_costs()
            i_qmap.reset_query_costs()
            r1 = i_qfd.knn_search(q, 8)
            r2 = i_qmap.knn_search(q, 8)
            assert_same_neighbors(r1, r2, tol=1e-7, label=method)
            assert (
                i_qfd.query_costs().distance_computations
                == i_qmap.query_costs().distance_computations
            ), f"{method}: pruning behaviour diverged between models"

    def test_qmap_wall_time_wins_on_pivot_build(self, workload) -> None:
        """The headline effect: QMap indexing is faster in real time for
        distance-hungry builds (Figure 3)."""
        i_qfd = QFDModel(workload.matrix).build_index(
            "pivot-table", workload.database, n_pivots=16
        )
        i_qmap = QMapModel(workload.matrix).build_index(
            "pivot-table", workload.database, n_pivots=16
        )
        assert i_qmap.build_costs.seconds < i_qfd.build_costs.seconds


class TestIndexCosts:
    def test_addition(self) -> None:
        from repro.models import IndexCosts

        total = IndexCosts(10, 2, 1.0) + IndexCosts(5, 3, 0.5)
        assert total.distance_computations == 15
        assert total.transforms == 5
        assert total.seconds == pytest.approx(1.5)
