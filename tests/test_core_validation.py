"""Tests for repro.core.validation — strict positive definiteness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ensure_positive_definite,
    is_positive_definite,
    min_eigenvalue,
    require_positive_definite,
)
from repro.exceptions import NotPositiveDefiniteError


class TestIsPositiveDefinite:
    def test_identity(self) -> None:
        assert is_positive_definite(np.eye(4))

    def test_spd(self, spd_16: np.ndarray) -> None:
        assert is_positive_definite(spd_16)

    def test_indefinite(self) -> None:
        assert not is_positive_definite(np.array([[1.0, 2.0], [2.0, 1.0]]))

    def test_semidefinite(self) -> None:
        assert not is_positive_definite(np.ones((3, 3)))

    def test_negative_definite(self) -> None:
        assert not is_positive_definite(-np.eye(3))

    def test_non_symmetric_uses_symmetric_part(self) -> None:
        # Symmetric part is I, which is PD regardless of skew part.
        a = np.eye(3)
        a[0, 1], a[1, 0] = 0.4, -0.4
        assert is_positive_definite(a)


class TestRequirePositiveDefinite:
    def test_passes_through(self, spd_16: np.ndarray) -> None:
        out = require_positive_definite(spd_16)
        assert np.allclose(out, spd_16)

    def test_raises_with_context(self) -> None:
        with pytest.raises(NotPositiveDefiniteError, match="identity metric postulate"):
            require_positive_definite(np.ones((3, 3)))


class TestMinEigenvalue:
    def test_identity(self) -> None:
        assert min_eigenvalue(np.eye(5)) == pytest.approx(1.0)

    def test_known_spectrum(self) -> None:
        a = np.diag([3.0, 0.5, 7.0])
        assert min_eigenvalue(a) == pytest.approx(0.5)

    def test_negative_for_indefinite(self) -> None:
        assert min_eigenvalue(np.array([[1.0, 2.0], [2.0, 1.0]])) == pytest.approx(-1.0)


class TestEnsurePositiveDefinite:
    def test_no_repair_needed(self, spd_16: np.ndarray) -> None:
        repair = ensure_positive_definite(spd_16)
        assert not repair.was_repaired
        assert repair.shift == 0.0
        assert np.allclose(repair.matrix, spd_16)

    def test_repairs_semidefinite(self) -> None:
        repair = ensure_positive_definite(np.ones((3, 3)))
        assert repair.was_repaired
        assert is_positive_definite(repair.matrix)

    def test_repairs_indefinite_and_records_shift(self) -> None:
        a = np.array([[1.0, 2.0], [2.0, 1.0]])  # lambda_min = -1
        repair = ensure_positive_definite(a, margin=1e-6)
        assert repair.min_eigenvalue == pytest.approx(-1.0)
        assert repair.shift == pytest.approx(1.0 + 1e-6)
        assert is_positive_definite(repair.matrix)

    def test_shift_is_minimal(self) -> None:
        a = np.array([[1.0, 2.0], [2.0, 1.0]])
        repair = ensure_positive_definite(a, margin=1e-9)
        # Shift is |lambda_min| + margin, no more.
        assert repair.shift <= 1.0 + 1e-6

    def test_repair_preserves_off_diagonal(self) -> None:
        a = np.ones((3, 3))
        repair = ensure_positive_definite(a)
        off_diag = repair.matrix[~np.eye(3, dtype=bool)]
        assert np.allclose(off_diag, 1.0)
