"""Dynamic insert support across all access methods.

The paper's Section 6 claim: the QMap model supports "similarity searching
in dynamically changing databases without any distortion".  These tests
grow every index object by object and assert that queries remain exactly
correct after each batch of inserts, in both models.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import histogram_workload
from repro.distances import euclidean
from repro.mam import GNAT, MTree, PivotTable, SequentialFile, VPTree
from repro.models import MAM_REGISTRY, SAM_REGISTRY, QFDModel, QMapModel
from repro.sam import RTree, VAFile

from .helpers import assert_same_neighbors

METHOD_KWARGS = {
    "sequential": {},
    "disk-sequential": {"cache_pages": 8},
    "pivot-table": {"n_pivots": 8},
    "mtree": {"capacity": 6},
    "paged-mtree": {"capacity": 6, "cache_pages": 4},
    "vptree": {"leaf_size": 4},
    "gnat": {"arity": 4, "leaf_size": 8},
    "mindex": {"n_pivots": 6},
    "sat": {},
    "rtree": {"capacity": 6},
    "xtree": {"capacity": 6, "max_overlap": 0.75},
    "vafile": {"bits": 4},
}


@pytest.fixture(scope="module")
def workload():
    return histogram_workload(260, 4, bins_per_channel=4, seed=37)


@pytest.mark.parametrize("method", sorted(MAM_REGISTRY) + sorted(SAM_REGISTRY))
class TestInsertKeepsQueriesExact:
    def test_grow_then_query(self, method, workload) -> None:
        """Build on 200 objects, insert 60 more, compare against a scan
        built over the full 260."""
        model = QMapModel(workload.matrix)
        index = model.build_index(method, workload.database[:200], **METHOD_KWARGS[method])
        for row in workload.database[200:]:
            index.insert(row)
        reference = model.build_index("sequential", workload.database)
        for q in workload.queries:
            assert_same_neighbors(
                index.knn_search(q, 10),
                reference.knn_search(q, 10),
                tol=1e-7,
                label=f"{method} after inserts",
            )

    def test_insert_returns_sequential_indices(self, method, workload) -> None:
        model = QMapModel(workload.matrix)
        index = model.build_index(method, workload.database[:50], **METHOD_KWARGS[method])
        got = [index.insert(row) for row in workload.database[50:55]]
        assert got == [50, 51, 52, 53, 54]

    def test_inserted_object_is_findable(self, method, workload) -> None:
        model = QMapModel(workload.matrix)
        index = model.build_index(method, workload.database[:50], **METHOD_KWARGS[method])
        new_idx = index.insert(workload.queries[0])
        top = index.knn_search(workload.queries[0], 1)[0]
        assert top.index == new_idx
        assert top.distance == pytest.approx(0.0, abs=1e-9)


class TestInsertDetails:
    def test_qfd_model_insert(self, workload) -> None:
        model = QFDModel(workload.matrix)
        index = model.build_index("mtree", workload.database[:100], capacity=6)
        index.insert(workload.database[100])
        top = index.knn_search(workload.database[100], 1)[0]
        assert top.distance == pytest.approx(0.0, abs=1e-9)

    def test_qmap_insert_counts_transform(self, workload) -> None:
        model = QMapModel(workload.matrix)
        index = model.build_index("sequential", workload.database[:10])
        index.reset_query_costs()
        index.insert(workload.database[10])
        assert index.query_costs().transforms == 1

    def test_mtree_invariants_after_inserts(self, workload) -> None:
        tree = MTree(workload.database[:100], euclidean, capacity=5)
        for row in workload.database[100:160]:
            tree.insert(row)
        tree.validate_invariants()

    def test_mtree_insert_cost_logarithmic(self, workload) -> None:
        from repro.distances import CountingDistance, euclidean_one_to_many

        counter = CountingDistance(euclidean, one_to_many=euclidean_one_to_many)
        tree = MTree(workload.database[:200], counter, capacity=8)
        counter.reset()
        tree.insert(workload.database[200])
        # One root-to-leaf descent: far below a full scan.
        assert counter.count < 100

    def test_pivot_table_grows(self, workload) -> None:
        pt = PivotTable(workload.database[:50], euclidean, n_pivots=6)
        pt.insert(workload.database[50])
        assert pt.table.shape == (51, 6)
        assert pt.size == 51

    def test_vafile_insert_out_of_grid_range(self, workload) -> None:
        """A vector outside the build-time data range clamps into the
        outer cells and must still be retrievable exactly."""
        va = VAFile(workload.database[:100], bits=3)
        weird = np.full(workload.dim, 0.9)  # way above any histogram mass
        idx = va.insert(weird)
        top = va.knn_search(weird, 1)[0]
        assert top.index == idx and top.distance == pytest.approx(0.0, abs=1e-12)

    def test_disk_sequential_persists_inserts(self, workload) -> None:
        from repro.mam import DiskSequentialFile

        disk = DiskSequentialFile(workload.database[:20], euclidean, cache_pages=2)
        disk.insert(workload.database[20])
        assert len(disk.store) == 21

    def test_vptree_gnat_rtree_grow(self, workload) -> None:
        for cls, kwargs in [
            (VPTree, {"leaf_size": 4}),
            (GNAT, {"arity": 4, "leaf_size": 8}),
        ]:
            index = cls(workload.database[:60], euclidean, **kwargs)
            index.insert(workload.database[60])
            assert index.size == 61
        rt = RTree(workload.database[:60], capacity=6)
        rt.insert(workload.database[60])
        assert rt.size == 61

    def test_dimension_checked(self, workload) -> None:
        from repro.exceptions import DimensionMismatchError

        seq = SequentialFile(workload.database[:5], euclidean)
        with pytest.raises(DimensionMismatchError):
            seq.insert(np.ones(3))


@pytest.mark.parametrize("method", sorted(MAM_REGISTRY) + sorted(SAM_REGISTRY))
class TestInsertAtomicity:
    """Regression: a failing structure hook used to leave the appended
    row behind, so ``size`` grew and scans returned a phantom object the
    index never registered."""

    def test_failed_hook_rolls_back(self, method, workload, monkeypatch) -> None:
        model = QMapModel(workload.matrix)
        index = model.build_index(method, workload.database[:60], **METHOD_KWARGS[method])
        am = index.access_method
        size_before = am.size
        data_before = am.database.copy()
        answer_before = index.knn_search(workload.queries[0], 5)

        def explode(self, idx, vector):
            raise RuntimeError("simulated structure failure")

        monkeypatch.setattr(type(am), "_register_insert", explode)
        with pytest.raises(RuntimeError):
            index.insert(workload.database[60])
        monkeypatch.undo()

        assert am.size == size_before
        np.testing.assert_array_equal(am.database, data_before)
        assert index.knn_search(workload.queries[0], 5) == answer_before
        # The structure is still usable: a clean insert goes through.
        assert index.insert(workload.database[60]) == size_before

    def test_all_registry_methods_support_inserts(self, method, workload) -> None:
        model = QMapModel(workload.matrix)
        index = model.build_index(method, workload.database[:30], **METHOD_KWARGS[method])
        assert index.access_method.supports_inserts


class TestInsertSupportGate:
    def test_hookless_subclass_raises_cleanly(self, workload) -> None:
        """A structure without the insert hook must refuse *before*
        touching the stored database."""
        from repro.exceptions import IndexStateError
        from repro.mam.base import AccessMethod

        class FrozenIndex(AccessMethod):
            def _range_search(self, query, radius):
                return []

            def _knn_search(self, query, k):
                return []

        frozen = FrozenIndex(workload.database[:10], euclidean)
        assert not frozen.supports_inserts
        with pytest.raises(IndexStateError):
            frozen.insert(workload.database[10])
        assert frozen.size == 10
