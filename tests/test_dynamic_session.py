"""Tests for repro.dynamic.session — the relevance-feedback loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import clustered_histograms
from repro.dynamic import RelevanceFeedbackSession
from repro.exceptions import QueryError


@pytest.fixture(scope="module")
def database():
    return clustered_histograms(400, 4, themes=8, rng=np.random.default_rng(91))


class TestSessionLifecycle:
    def test_first_search_builds_index(self, database) -> None:
        session = RelevanceFeedbackSession(database, method="sequential")
        session.search(database[0], k=5)
        assert len(session.history) == 1
        assert session.history[0].matrix_was_stale  # cold start

    def test_repeat_search_reuses_index(self, database) -> None:
        session = RelevanceFeedbackSession(database, method="sequential")
        session.search(database[0], k=5)
        session.search(database[1], k=5)
        assert not session.history[1].matrix_was_stale
        assert session.history[1].maintenance_seconds == 0.0

    def test_feedback_invalidates_index(self, database) -> None:
        session = RelevanceFeedbackSession(database, method="sequential")
        hits = session.search(database[0], k=10)
        idx = [h.index for h in hits]
        scores = np.linspace(1.0, 2.0, len(idx))
        new_query = session.feedback(idx, scores)
        assert new_query.shape == (database.shape[1],)
        session.search(new_query, k=5)
        assert session.history[-1].matrix_was_stale

    def test_matrix_starts_as_identity(self, database) -> None:
        session = RelevanceFeedbackSession(database)
        assert np.array_equal(session.matrix, np.eye(database.shape[1]))

    def test_feedback_changes_matrix(self, database) -> None:
        session = RelevanceFeedbackSession(database)
        before = session.matrix.copy()
        session.feedback([0, 1, 2, 3, 4], [1.0, 2.0, 1.0, 3.0, 1.0])
        assert not np.allclose(session.matrix, before)

    def test_results_match_direct_model(self, database) -> None:
        """A session search under the current matrix equals a fresh
        QMapModel search under the same matrix."""
        from repro.models import QMapModel

        session = RelevanceFeedbackSession(database, method="pivot-table",
                                           method_kwargs={"n_pivots": 8})
        hits = session.search(database[5], k=7)
        direct = QMapModel(session.matrix).build_index(
            "pivot-table", database, n_pivots=8
        )
        expected = direct.knn_search(database[5], 7)
        assert [h.index for h in hits] == [h.index for h in expected]

    def test_qfd_policy_counts_no_transforms(self, database) -> None:
        session = RelevanceFeedbackSession(database, method="sequential", model="qfd")
        session.search(database[0], k=3)
        assert session.history[0].maintenance_transforms == 0

    def test_qmap_policy_transforms_whole_database(self, database) -> None:
        session = RelevanceFeedbackSession(database, method="sequential", model="qmap")
        session.search(database[0], k=3)
        assert session.history[0].maintenance_transforms == database.shape[0]

    def test_total_maintenance_accumulates(self, database) -> None:
        session = RelevanceFeedbackSession(database, method="sequential")
        session.search(database[0], k=5)
        session.feedback([0, 1, 2], [1.0, 2.0, 3.0])
        session.search(database[0], k=5)
        assert session.total_maintenance_seconds() >= session.history[0].maintenance_seconds

    def test_validation(self, database) -> None:
        with pytest.raises(QueryError):
            RelevanceFeedbackSession(database, model="hybrid")
        session = RelevanceFeedbackSession(database)
        with pytest.raises(QueryError):
            session.feedback([0], [1.0])
        with pytest.raises(QueryError):
            session.feedback([0, 99999], [1.0, 1.0])
