"""Assertion helpers shared across test modules."""

from __future__ import annotations

from typing import Sequence

from repro.mam.base import Neighbor

__all__ = ["assert_same_neighbors", "same_neighbors"]


def same_neighbors(
    got: Sequence[Neighbor], expected: Sequence[Neighbor], *, tol: float = 1e-8
) -> bool:
    """Whether two sorted neighbor lists agree in indices and distances.

    Distances are compared with an absolute tolerance to absorb the ulp
    differences between vectorized and scalar evaluation paths.
    """
    if len(got) != len(expected):
        return False
    return all(
        g.index == e.index and abs(g.distance - e.distance) <= tol
        for g, e in zip(got, expected)
    )


def assert_same_neighbors(
    got: Sequence[Neighbor], expected: Sequence[Neighbor], *, tol: float = 1e-8, label: str = ""
) -> None:
    """Assert with a readable diff on mismatch."""
    assert len(got) == len(expected), (
        f"{label}: result size {len(got)} != expected {len(expected)}\n"
        f"got:      {got[:5]}\nexpected: {expected[:5]}"
    )
    for pos, (g, e) in enumerate(zip(got, expected)):
        assert g.index == e.index and abs(g.distance - e.distance) <= tol, (
            f"{label}: mismatch at position {pos}: got {g}, expected {e}"
        )
