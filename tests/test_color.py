"""Tests for repro.color — Lab conversion, prototypes, histograms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.color import (
    bin_index,
    lab_bin_prototypes,
    normalize_histogram,
    rgb_bin_prototypes,
    rgb_histogram,
    rgb_histograms,
    rgb_to_lab,
    rgb_to_xyz,
    srgb_to_linear,
    xyz_to_lab,
)
from repro.exceptions import DimensionMismatchError, MatrixError


class TestLabConversion:
    def test_white_point(self) -> None:
        lab = rgb_to_lab([[1.0, 1.0, 1.0]])[0]
        assert lab[0] == pytest.approx(100.0, abs=0.01)
        assert lab[1] == pytest.approx(0.0, abs=0.01)
        assert lab[2] == pytest.approx(0.0, abs=0.01)

    def test_black_point(self) -> None:
        lab = rgb_to_lab([[0.0, 0.0, 0.0]])[0]
        assert lab[0] == pytest.approx(0.0, abs=1e-6)

    def test_primary_red_reference(self) -> None:
        # sRGB pure red is approximately L=53.24, a=80.09, b=67.20.
        lab = rgb_to_lab([[1.0, 0.0, 0.0]])[0]
        assert lab[0] == pytest.approx(53.24, abs=0.1)
        assert lab[1] == pytest.approx(80.09, abs=0.2)
        assert lab[2] == pytest.approx(67.20, abs=0.2)

    def test_mid_gray_is_neutral(self) -> None:
        lab = rgb_to_lab([[0.5, 0.5, 0.5]])[0]
        assert abs(lab[1]) < 0.01 and abs(lab[2]) < 0.01

    def test_linearization_breakpoints(self) -> None:
        low = srgb_to_linear([[0.04, 0.04, 0.04]])[0]
        assert np.allclose(low, 0.04 / 12.92)

    def test_xyz_of_white(self) -> None:
        xyz = rgb_to_xyz([[1.0, 1.0, 1.0]])[0]
        assert xyz[1] == pytest.approx(1.0, abs=1e-4)  # Y of D65 white

    def test_lightness_monotone_in_gray_level(self) -> None:
        grays = np.linspace(0.0, 1.0, 11)
        lab = rgb_to_lab(np.column_stack([grays, grays, grays]))
        assert np.all(np.diff(lab[:, 0]) > 0.0)

    def test_rejects_out_of_range(self) -> None:
        with pytest.raises(DimensionMismatchError):
            rgb_to_lab([[1.5, 0.0, 0.0]])

    def test_rejects_wrong_shape(self) -> None:
        with pytest.raises(DimensionMismatchError):
            xyz_to_lab(np.ones((3, 4)))

    def test_perceptual_claim_sunset_vs_tennis_ball(self) -> None:
        """The paper's Section 1.1 story: an orange tone must be closer to
        red (sunset) than blue is — the ordering a Lab-prototype QFD matrix
        encodes and a plain Lp on bin indices ignores."""
        labs = rgb_to_lab([[1.0, 0, 0], [1.0, 0.5, 0.0], [0, 0, 1.0]])
        d_red_orange = np.linalg.norm(labs[0] - labs[1])
        d_red_blue = np.linalg.norm(labs[0] - labs[2])
        assert d_red_orange < d_red_blue


class TestPrototypes:
    def test_count(self) -> None:
        assert rgb_bin_prototypes(4).shape == (64, 3)
        assert rgb_bin_prototypes(8).shape == (512, 3)

    def test_centers(self) -> None:
        protos = rgb_bin_prototypes(2)
        assert protos.min() == pytest.approx(0.25)
        assert protos.max() == pytest.approx(0.75)

    def test_ordering_convention(self) -> None:
        protos = rgb_bin_prototypes(2)
        # index = r*4 + g*2 + b; index 1 -> (r=0, g=0, b=1).
        assert np.allclose(protos[1], [0.25, 0.25, 0.75])

    def test_lab_prototypes_shape(self) -> None:
        assert lab_bin_prototypes(4).shape == (64, 3)

    def test_rejects_bad_bins(self) -> None:
        with pytest.raises(MatrixError):
            rgb_bin_prototypes(0)

    def test_bin_index_roundtrip(self) -> None:
        protos = rgb_bin_prototypes(4)
        idx = bin_index(protos, 4)
        assert np.array_equal(idx, np.arange(64))

    def test_bin_index_boundary_value(self) -> None:
        # Component 1.0 falls in the last bin, not out of range.
        assert bin_index(np.array([[1.0, 1.0, 1.0]]), 4)[0] == 63


class TestHistograms:
    def test_unit_sum(self, rng: np.random.Generator) -> None:
        image = rng.random((16, 16, 3))
        hist = rgb_histogram(image, 4)
        assert hist.sum() == pytest.approx(1.0)
        assert hist.shape == (64,)

    def test_single_color_image(self) -> None:
        image = np.full((8, 8, 3), 0.1)
        hist = rgb_histogram(image, 2)
        assert np.count_nonzero(hist) == 1
        assert hist[bin_index(np.array([[0.1, 0.1, 0.1]]), 2)[0]] == pytest.approx(1.0)

    def test_flat_pixel_array_accepted(self, rng: np.random.Generator) -> None:
        pixels = rng.random((100, 3))
        hist = rgb_histogram(pixels, 2)
        assert hist.sum() == pytest.approx(1.0)

    def test_unnormalized_counts(self) -> None:
        image = np.zeros((4, 4, 3))
        hist = rgb_histogram(image, 2, normalize=False)
        assert hist.sum() == 16.0

    def test_batch(self, rng: np.random.Generator) -> None:
        images = [rng.random((8, 8, 3)) for _ in range(3)]
        hists = rgb_histograms(images, 2)
        assert hists.shape == (3, 8)
        assert np.allclose(hists.sum(axis=1), 1.0)

    def test_rejects_empty_image(self) -> None:
        with pytest.raises(MatrixError):
            rgb_histogram(np.empty((0, 3)), 2)

    def test_rejects_out_of_range_pixels(self) -> None:
        with pytest.raises(MatrixError):
            rgb_histogram(np.full((2, 2, 3), 1.5), 2)

    def test_rejects_wrong_shape(self) -> None:
        with pytest.raises(DimensionMismatchError):
            rgb_histogram(np.ones((4, 4)), 2)

    def test_normalize_rejects_zero_histogram(self) -> None:
        with pytest.raises(MatrixError):
            normalize_histogram(np.zeros(8))

    def test_normalize_rejects_negative(self) -> None:
        with pytest.raises(MatrixError):
            normalize_histogram(np.array([1.0, -0.5]))

    def test_normalize_rejects_2d(self) -> None:
        with pytest.raises(DimensionMismatchError):
            normalize_histogram(np.ones((2, 2)))
