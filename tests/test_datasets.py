"""Tests for repro.datasets — synthetic corpora and workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    SyntheticImageCorpus,
    Workload,
    clustered_histograms,
    gaussian_vectors,
    growing_prefixes,
    histogram_workload,
    vector_workload,
)
from repro.exceptions import QueryError


class TestSyntheticImageCorpus:
    def test_render_shape_and_range(self) -> None:
        corpus = SyntheticImageCorpus(height=8, width=12, seed=1)
        image = corpus.render(0)
        assert image.shape == (8, 12, 3)
        assert image.min() >= 0.0 and image.max() <= 1.0

    def test_deterministic(self) -> None:
        corpus = SyntheticImageCorpus(seed=3)
        assert np.array_equal(corpus.render(5), corpus.render(5))

    def test_distinct_images(self) -> None:
        corpus = SyntheticImageCorpus(seed=3)
        assert not np.array_equal(corpus.render(0), corpus.render(1))

    def test_histograms(self) -> None:
        corpus = SyntheticImageCorpus(height=8, width=8, seed=2)
        hists = corpus.histograms(4, bins_per_channel=2)
        assert hists.shape == (4, 8)
        assert np.allclose(hists.sum(axis=1), 1.0)

    def test_theme_clustering(self) -> None:
        """Images of the same theme should be closer (L1 on histograms)
        than images of different themes, on average."""
        corpus = SyntheticImageCorpus(height=16, width=16, themes=4, seed=9)
        hists = corpus.histograms(16, bins_per_channel=2)
        same, diff = [], []
        for i in range(16):
            for j in range(i + 1, 16):
                d = np.abs(hists[i] - hists[j]).sum()
                (same if i % 4 == j % 4 else diff).append(d)
        assert np.mean(same) < np.mean(diff)

    def test_rejects_bad_size(self) -> None:
        with pytest.raises(QueryError):
            SyntheticImageCorpus(height=0)

    def test_rejects_negative_index(self) -> None:
        with pytest.raises(QueryError):
            SyntheticImageCorpus().render(-1)


class TestClusteredHistograms:
    def test_shape_and_normalization(self, rng: np.random.Generator) -> None:
        hists = clustered_histograms(50, 4, rng=rng)
        assert hists.shape == (50, 64)
        assert np.allclose(hists.sum(axis=1), 1.0)
        assert hists.min() >= 0.0

    def test_clustered_structure(self) -> None:
        """Within-theme pairs are closer than cross-theme pairs on average
        — the property MAM pruning depends on."""
        rng = np.random.default_rng(4)
        hists = clustered_histograms(60, 4, themes=3, rng=rng)
        # Regenerate theme assignment logic: themes are drawn from rng, so
        # use distances to cluster instead: nearest-neighbor distance must
        # be far below the median pairwise distance.
        from scipy.spatial.distance import pdist, squareform

        d = squareform(pdist(hists))
        np.fill_diagonal(d, np.inf)
        nn = d.min(axis=1)
        assert np.median(nn) < 0.3 * np.median(d[np.isfinite(d)])

    def test_rejects_bad_params(self) -> None:
        with pytest.raises(QueryError):
            clustered_histograms(0, 4)
        with pytest.raises(QueryError):
            clustered_histograms(5, 4, themes=0)
        with pytest.raises(QueryError):
            clustered_histograms(5, 4, smoothing=0.0)


class TestGaussianVectors:
    def test_shape(self, rng: np.random.Generator) -> None:
        assert gaussian_vectors(20, 5, rng=rng).shape == (20, 5)

    def test_rejects_bad_params(self) -> None:
        with pytest.raises(QueryError):
            gaussian_vectors(0, 5)
        with pytest.raises(QueryError):
            gaussian_vectors(5, 5, clusters=0)
        with pytest.raises(QueryError):
            gaussian_vectors(5, 5, spread=0.0)


class TestWorkloads:
    def test_histogram_workload_shapes(self) -> None:
        w = histogram_workload(100, 10, bins_per_channel=2, seed=1)
        assert w.database.shape == (100, 8)
        assert w.queries.shape == (10, 8)
        assert w.matrix.shape == (8, 8)
        assert w.size == 100 and w.dim == 8

    def test_queries_disjoint_from_database(self) -> None:
        w = histogram_workload(50, 5, bins_per_channel=2, seed=2)
        for q in w.queries:
            assert not any(np.array_equal(q, row) for row in w.database)

    def test_matrix_repair_recorded(self) -> None:
        w = histogram_workload(10, 2, bins_per_channel=2, seed=3)
        assert w.matrix_repair.shift == 0.0  # Hafner/Lab matrices are PD

    def test_prefix(self) -> None:
        w = histogram_workload(50, 5, bins_per_channel=2, seed=4)
        p = w.prefix(20)
        assert p.size == 20
        assert np.array_equal(p.database, w.database[:20])
        assert np.array_equal(p.queries, w.queries)

    def test_prefix_bounds(self) -> None:
        w = histogram_workload(10, 2, bins_per_channel=2, seed=5)
        with pytest.raises(QueryError):
            w.prefix(0)
        with pytest.raises(QueryError):
            w.prefix(11)

    def test_growing_prefixes(self) -> None:
        w = histogram_workload(100, 5, bins_per_channel=2, seed=6)
        prefixes = growing_prefixes(w, steps=4)
        sizes = [p.size for p in prefixes]
        assert sizes[-1] == 100
        assert sizes == sorted(sizes)
        assert len(sizes) == 4

    def test_growing_prefixes_rejects_zero_steps(self) -> None:
        w = histogram_workload(10, 2, bins_per_channel=2, seed=7)
        with pytest.raises(QueryError):
            growing_prefixes(w, steps=0)

    def test_vector_workload(self) -> None:
        w = vector_workload(40, 5, dim=12, seed=8)
        assert w.database.shape == (40, 12)
        assert w.matrix.shape == (12, 12)
        # Matrix must be PD (it feeds QuadraticFormDistance downstream).
        assert np.all(np.linalg.eigvalsh(w.matrix) > 0.0)

    def test_workload_determinism(self) -> None:
        a = histogram_workload(30, 3, bins_per_channel=2, seed=9)
        b = histogram_workload(30, 3, bins_per_channel=2, seed=9)
        assert np.array_equal(a.database, b.database)
        assert np.array_equal(a.matrix, b.matrix)
