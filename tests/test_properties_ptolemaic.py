"""Property-based tests (hypothesis) for the Ptolemaic bound modes.

Four properties pin the tentpole:

(a) the Ptolemaic lower bound never exceeds the true distance, under
    both the raw QFD and its QMap embedding (the QFD is Ptolemaic);
(b) range and kNN answers are bit-identical across the three bound
    modes — the bound changes work, never results;
(c) a snapshot round-trip restores the pivot-pair matrix with zero
    distance evaluations;
(d) EXPLAIN charged totals equal the CountingDistance delta exactly in
    every bound mode.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import QuadraticFormDistance, random_spd_matrix
from repro.core.qmap import QMap
from repro.distances import CountingDistance, euclidean, euclidean_one_to_many
from repro.kernels import ptolemaic_bounds, valid_pivot_pairs
from repro.mam import BOUND_MODES, PivotTable
from repro.models import QFDModel, QMapModel, explain_query

DIM = 6


def _workload(seed: int, m: int):
    rng = np.random.default_rng(seed)
    matrix = random_spd_matrix(DIM, rng=rng, condition=6.0)
    data = rng.uniform(0.0, 1.0, size=(m, DIM))
    query = rng.uniform(0.0, 1.0, size=DIM)
    return matrix, data, query


class TestBoundIsValid:
    """(a) Ptolemaic bound <= true distance on QFD and QMap."""

    @given(
        seed=st.integers(0, 100_000),
        m=st.integers(4, 60),
        p=st.integers(2, 8),
    )
    @settings(max_examples=25, deadline=None)
    def test_qfd_and_qmap(self, seed, m, p) -> None:
        matrix, data, query = _workload(seed, m)
        qfd = QuadraticFormDistance(matrix)
        qmap = QMap(matrix)
        mapped = qmap.transform_batch(data)
        mapped_q = qmap.transform(query)
        for name, dist, rows, q in (
            ("qfd", qfd, data, query),
            ("qmap", euclidean, mapped, mapped_q),
        ):
            pivots = list(range(min(p, m)))
            table = np.column_stack(
                [[dist(rows[j], row) for row in rows] for j in pivots]
            )
            qv = np.array([dist(q, rows[j]) for j in pivots])
            pair = np.array(
                [[dist(rows[i], rows[j]) for j in pivots] for i in pivots]
            )
            pairs = valid_pivot_pairs(pair)
            lb = ptolemaic_bounds(table, qv, pair, pairs)
            true = np.array([dist(q, row) for row in rows])
            assert np.all(lb <= true + 1e-9), name


class TestAnswersInvariantAcrossModes:
    """(b) identical results whatever the bound computes."""

    @given(
        seed=st.integers(0, 100_000),
        m=st.integers(8, 80),
        p=st.integers(2, 10),
        k=st.integers(1, 8),
        radius=st.floats(0.0, 1.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_range_and_knn_bit_identical(self, seed, m, p, k, radius) -> None:
        _, data, query = _workload(seed, m)
        tables = {
            bound: PivotTable(
                data, euclidean, n_pivots=min(p, m), bound=bound,
                rng=np.random.default_rng(seed),
            )
            for bound in BOUND_MODES
        }
        reference_range = tables["triangle"].range_search(query, radius)
        reference_knn = tables["triangle"].knn_search(query, k)
        for bound in ("ptolemaic", "best"):
            assert tables[bound].range_search(query, radius) == reference_range
            assert tables[bound].knn_search(query, k) == reference_knn


class TestSnapshotRoundTrip:
    """(c) pivot-pair matrix restored at zero distance evaluations."""

    @given(
        seed=st.integers(0, 100_000),
        m=st.integers(4, 60),
        p=st.integers(2, 8),
    )
    @settings(max_examples=20, deadline=None)
    def test_state_restores_pair_matrix_for_free(self, seed, m, p) -> None:
        _, data, query = _workload(seed, m)
        pt = PivotTable(
            data, euclidean, n_pivots=min(p, m), bound="ptolemaic",
            rng=np.random.default_rng(seed),
        )
        counter = CountingDistance(euclidean, one_to_many=euclidean_one_to_many)
        restored = PivotTable.from_state(data, counter, pt.structural_state())
        assert counter.count == 0
        assert restored.bound == "ptolemaic"
        assert np.array_equal(restored.pivot_pair_matrix, pt.pivot_pair_matrix)
        assert restored.knn_search(query, 3) == pt.knn_search(query, 3)


class TestExplainChargesExactly:
    """(d) charged totals == counter delta, in every mode, both models."""

    @given(seed=st.integers(0, 100_000))
    @settings(max_examples=5, deadline=None)
    def test_all_modes_and_models(self, seed) -> None:
        matrix, data, _ = _workload(seed, 40)
        queries = np.random.default_rng(seed + 1).uniform(0.0, 1.0, size=(1, DIM))
        for model_cls in (QFDModel, QMapModel):
            for bound in BOUND_MODES:
                built = model_cls(matrix).build_index(
                    "pivot-table", data, n_pivots=4, bound=bound
                )
                for kwargs in ({"k": 5}, {"radius": 0.4}):
                    plan = explain_query(built, queries[0], **kwargs)
                    assert plan.totals_match, (
                        f"{model_cls.__name__}/{bound}/{kwargs}: charged "
                        f"{plan.charged_total} != counter {plan.counter_total}"
                    )
