"""Tests for the ``repro index`` lifecycle subcommands."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args(["index"])

    def test_build_defaults(self) -> None:
        args = build_parser().parse_args(["index", "build"])
        assert args.index_command == "build"
        assert args.method == "pivot-table" and args.model == "qmap"
        assert args.out is None

    def test_save_requires_out(self) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args(["index", "save"])

    def test_load_takes_path(self) -> None:
        args = build_parser().parse_args(["index", "load", "snap.npz"])
        assert args.index_command == "load" and args.path == "snap.npz"
        assert not args.no_verify

    def test_query_options(self) -> None:
        args = build_parser().parse_args(
            [
                "index", "query", "snap.npz",
                "--radius", "0.5", "--executor", "thread",
                "--workers", "2", "--trace",
            ]
        )
        assert args.radius == 0.5 and args.executor == "thread"
        assert args.workers == 2 and args.trace


class TestLifecycle:
    def _save(self, tmp_path, capsys, *extra: str) -> str:
        path = str(tmp_path / "snap")
        code = main(
            [
                "index", "save",
                "--method", "pivot-table", "--size", "80",
                "--queries", "4", "--seed", "3",
                "--out", path, *extra,
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert f"snapshot : {path}.npz" in out
        return path + ".npz"

    def test_save_then_load_zero_evals(self, tmp_path, capsys) -> None:
        saved = self._save(tmp_path, capsys)
        code = main(["index", "load", saved])
        out = capsys.readouterr().out
        assert code == 0
        assert "restore  : 0 distance evaluations" in out
        assert "pivot-table [qmap model]" in out

    def test_save_then_query_recorded_workload(self, tmp_path, capsys) -> None:
        saved = self._save(tmp_path, capsys)
        code = main(["index", "query", saved, "--k", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "restore  : 0 distance evaluations" in out
        assert "q=4, 3NN" in out

    def test_query_range_with_trace(self, tmp_path, capsys) -> None:
        saved = self._save(tmp_path, capsys)
        code = main(["index", "query", saved, "--radius", "0.4", "--trace"])
        out = capsys.readouterr().out
        assert code == 0
        assert "range(r=0.4)" in out
        assert "trace    :" in out

    def test_qfd_model_build(self, tmp_path, capsys) -> None:
        saved = self._save(tmp_path, capsys, "--model", "qfd")
        code = main(["index", "load", saved])
        out = capsys.readouterr().out
        assert code == 0
        assert "[qfd model]" in out

    def test_build_without_out_writes_nothing(self, tmp_path, capsys) -> None:
        code = main(
            ["index", "build", "--method", "sequential", "--size", "50"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "snapshot" not in out
        assert list(tmp_path.iterdir()) == []

    def test_query_without_recipe_fails_cleanly(self, tmp_path, capsys) -> None:
        from repro.models import QFDModel

        data = np.random.default_rng(0).random((20, 4))
        path = QFDModel(np.eye(4)).build_index("sequential", data).save(
            tmp_path / "bare"
        )
        code = main(["index", "query", path])
        captured = capsys.readouterr()
        assert code == 2
        assert "records no query workload recipe" in captured.err

    def test_load_missing_file_fails_cleanly(self, tmp_path, capsys) -> None:
        code = main(["index", "load", str(tmp_path / "absent.npz")])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestBoundModeLifecycle:
    def test_ptolemaic_snapshot_round_trips_with_zero_evals(
        self, tmp_path, capsys
    ) -> None:
        path = str(tmp_path / "pto")
        code = main(
            [
                "index", "save",
                "--method", "pivot-table", "--size", "80",
                "--queries", "4", "--seed", "3",
                "--bound", "ptolemaic", "--out", path,
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "'bound': 'ptolemaic'" in out
        code = main(["index", "query", path + ".npz", "--k", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "restore  : 0 distance evaluations" in out
