"""Benchmark regression history and baseline gate (repro.bench.history).

Covers the library layer (records, append-only log, the
:class:`RegressionCheck` semantics) and the ``repro bench`` CLI: the gate
passes against a freshly written baseline, fails with exit 1 on an
injected count regression, exits 2 without a baseline, and every check
run appends one record to the history log.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.bench import (
    RegressionCheck,
    append_history,
    check_regression,
    environment_fingerprint,
    git_revision,
    history_record,
    load_history,
)
from repro.cli import main

#: A tiny-but-real workload so the CLI gate runs in well under a second.
_WORKLOAD_ARGS = ["--size", "80", "--queries", "2", "--k", "3", "--bins", "4"]


def _check_args(tmp_path, *extra: str) -> list[str]:
    return [
        "bench",
        "check",
        *_WORKLOAD_ARGS,
        "--baseline",
        str(tmp_path / "baseline.json"),
        "--history",
        str(tmp_path / "history.jsonl"),
        *extra,
    ]


class TestHistoryRecords:
    def test_environment_fingerprint_shape(self) -> None:
        env = environment_fingerprint()
        assert set(env) == {"python", "numpy", "platform", "machine", "cpu_count"}
        assert env["cpu_count"] >= 1

    def test_git_revision_in_repo_and_outside(self, tmp_path) -> None:
        assert git_revision() != "unknown"  # the test suite runs in a checkout
        assert git_revision(tmp_path) == "unknown"

    def test_record_append_load_roundtrip(self, tmp_path) -> None:
        path = tmp_path / "history.jsonl"
        first = history_record("unit", {"a.count": 3}, meta={"size": 10})
        second = history_record("unit", {"a.count": 4})
        append_history(first, path)
        append_history(second, path)
        records = load_history(path)
        assert [r["metrics"] for r in records] == [{"a.count": 3}, {"a.count": 4}]
        assert records[0]["meta"] == {"size": 10}
        assert "meta" not in records[1]
        for record in records:
            assert record["bench"] == "unit"
            assert record["git"] == git_revision()
            assert "timestamp" in record and "env" in record
        # Genuinely append-only JSON-lines: one object per line.
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 2
        assert all(json.loads(line) for line in lines)

    def test_load_history_missing_file_is_empty(self, tmp_path) -> None:
        assert load_history(tmp_path / "nope.jsonl") == []


class TestRegressionCheck:
    def test_increase_past_threshold_regresses(self) -> None:
        check = RegressionCheck("m", baseline=100, observed=103, threshold=0.02)
        assert check.relative_change == pytest.approx(0.03)
        assert check.regressed and check.drifted
        assert "REGRESSED" in check.describe()

    def test_zero_threshold_gates_any_increase(self) -> None:
        assert RegressionCheck("m", 100, 101, 0.0).regressed
        assert not RegressionCheck("m", 100, 100, 0.0).regressed

    def test_improvement_drifts_without_regressing(self) -> None:
        check = RegressionCheck("m", baseline=100, observed=90, threshold=0.02)
        assert check.drifted and not check.regressed
        assert "update the baseline" in check.describe()

    def test_zero_baseline_cases(self) -> None:
        assert RegressionCheck("m", 0, 0, 0.0).relative_change == 0.0
        grown = RegressionCheck("m", 0, 5, 0.0)
        assert math.isinf(grown.relative_change) and grown.regressed

    def test_check_regression_missing_metric_is_a_regression(self) -> None:
        checks = check_regression({"kept": 1}, {"kept": 1, "gone": 7})
        by_name = {c.metric: c for c in checks}
        assert not by_name["kept"].regressed
        assert math.isinf(by_name["gone"].observed) and by_name["gone"].regressed

    def test_check_regression_ignores_new_metrics(self) -> None:
        checks = check_regression({"old": 1, "new": 99}, {"old": 1})
        assert [c.metric for c in checks] == ["old"]

    def test_per_metric_threshold_overrides_default(self) -> None:
        checks = check_regression(
            {"loose": 110, "tight": 101},
            {"loose": 100, "tight": 100},
            default_threshold=0.0,
            thresholds={"loose": 0.25},
        )
        by_name = {c.metric: c for c in checks}
        assert not by_name["loose"].regressed
        assert by_name["tight"].regressed


class TestBenchCheckCLI:
    def test_gate_lifecycle(self, tmp_path, capsys) -> None:
        baseline = tmp_path / "baseline.json"
        history = tmp_path / "history.jsonl"

        # No baseline yet: exit 2 with a hint, nothing gated.
        assert main(_check_args(tmp_path)) == 2
        assert "--update-baseline" in capsys.readouterr().err

        # Write the baseline: exit 0, metrics for 3 methods x 2 models,
        # with the pivot table gated in all three bound modes (its
        # +ptolemaic / +best variant keys) plus the planner's auto-pick
        # counters (alternatives / evaluations / transforms).
        assert main(_check_args(tmp_path, "--update-baseline")) == 0
        payload = json.loads(baseline.read_text(encoding="utf-8"))
        assert payload["default_threshold"] == 0.0
        assert len(payload["metrics"]) == 33
        assert "pivot-table+ptolemaic.qfd.query_evaluations" in payload["metrics"]
        assert "pivot-table+best.qmap.build_evaluations" in payload["metrics"]
        assert "planner.auto.alternatives" in payload["metrics"]
        assert "planner.auto.query_evaluations" in payload["metrics"]
        assert payload["workload"]["size"] == 80

        # Same workload, same seed: counts are bit-reproducible -> pass.
        assert main(_check_args(tmp_path)) == 0
        out = capsys.readouterr().out
        assert "bench check: passed" in out

        # Inject a regression: lower one baseline count so the observed
        # run exceeds it, under the zero default threshold.
        payload["metrics"]["mtree.qfd.query_evaluations"] -= 1
        baseline.write_text(json.dumps(payload), encoding="utf-8")
        assert main(_check_args(tmp_path)) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out

        # Every check run (including the baseline rewrite) appended one
        # history record.
        assert len(load_history(history)) == 4

    def test_no_history_flag_skips_the_log(self, tmp_path) -> None:
        assert main(_check_args(tmp_path, "--no-history", "--update-baseline")) == 0
        assert not (tmp_path / "history.jsonl").exists()

    def test_workload_mismatch_refuses_to_gate(self, tmp_path, capsys) -> None:
        assert main(_check_args(tmp_path, "--update-baseline")) == 0
        args = _check_args(tmp_path)
        args[args.index("--size") + 1] = "81"
        assert main(args) == 2
        assert "was recorded for workload" in capsys.readouterr().err

    def test_improvement_passes_with_update_hint(self, tmp_path, capsys) -> None:
        baseline = tmp_path / "baseline.json"
        assert main(_check_args(tmp_path, "--update-baseline")) == 0
        payload = json.loads(baseline.read_text(encoding="utf-8"))
        payload["metrics"]["mtree.qfd.query_evaluations"] += 10
        baseline.write_text(json.dumps(payload), encoding="utf-8")
        capsys.readouterr()
        assert main(_check_args(tmp_path)) == 0
        assert "consider --update-baseline" in capsys.readouterr().out


class TestBenchHistoryCLI:
    def test_history_listing(self, tmp_path, capsys) -> None:
        path = tmp_path / "history.jsonl"
        for pos in range(3):
            append_history(history_record(f"run{pos}", {"m": pos}), path)
        assert main(["bench", "history", "--history", str(path), "--last", "2"]) == 0
        out = capsys.readouterr().out
        assert "3 run(s), showing 2" in out
        assert "run2" in out and "run0" not in out

    def test_missing_history_is_not_an_error(self, tmp_path, capsys) -> None:
        assert main(["bench", "history", "--history", str(tmp_path / "no.jsonl")]) == 0
        assert "no history" in capsys.readouterr().out


class TestExplainCLI:
    def test_explain_text_and_json_artifact(self, tmp_path, capsys) -> None:
        out_path = tmp_path / "plan.json"
        code = main(
            [
                "explain",
                "--method",
                "mtree",
                "--size",
                "80",
                "--k",
                "3",
                "--out",
                str(out_path),
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "EXPLAIN knn(k=3)" in text and "[OK]" in text
        payload = json.loads(out_path.read_text(encoding="utf-8"))
        assert payload["totals"]["totals_match"] is True

    def test_explain_range_json_stdout(self, tmp_path, capsys) -> None:
        code = main(
            [
                "explain",
                "--method",
                "pivot-table",
                "--size",
                "80",
                "--radius",
                "0.5",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "range"
        assert payload["totals"]["totals_match"] is True
