"""Tests for repro.lowerbound — SVD reduction, projection bound, filter-refine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.color import rgb_bin_prototypes
from repro.core import QuadraticFormDistance
from repro.datasets import clustered_histograms
from repro.exceptions import DimensionMismatchError, QueryError
from repro.lowerbound import (
    FilterRefineScan,
    ProjectionBound,
    SVDReduction,
    average_color_bound,
)
from repro.mam import SequentialFile

from .helpers import assert_same_neighbors


@pytest.fixture(scope="module")
def data():
    return clustered_histograms(250, 4, themes=6, rng=np.random.default_rng(71))


@pytest.fixture(scope="module")
def qfd(hafner_matrix_64):
    return QuadraticFormDistance(hafner_matrix_64)


class TestSVDReduction:
    def test_contractive(self, qfd, data) -> None:
        red = SVDReduction(qfd, 8)
        mapped = red.transform_batch(data[:30])
        for i in range(5):
            for j in range(5, 25):
                exact = qfd(data[i], data[j])
                assert red.lower_bound(mapped[i], mapped[j]) <= exact + 1e-9

    def test_exact_at_full_rank(self, qfd, data) -> None:
        red = SVDReduction(qfd, qfd.dim)
        u, v = data[0], data[1]
        bound = red.lower_bound(red.transform(u), red.transform(v))
        assert bound == pytest.approx(qfd(u, v), abs=1e-9)

    def test_tightness_improves_with_k(self, qfd, data) -> None:
        """The paper's critique: bounds loosen as target dim shrinks."""
        u, v = data[0], data[1]
        exact = qfd(u, v)
        bounds = []
        for k in (2, 8, 32, 64):
            red = SVDReduction(qfd, k)
            bounds.append(red.lower_bound(red.transform(u), red.transform(v)))
        assert all(b1 <= b2 + 1e-12 for b1, b2 in zip(bounds, bounds[1:]))
        assert bounds[-1] == pytest.approx(exact, abs=1e-9)

    def test_spectrum_coverage_monotone(self, qfd) -> None:
        covers = [SVDReduction(qfd, k).spectrum_coverage for k in (1, 8, 64)]
        assert covers == sorted(covers)
        assert covers[-1] == pytest.approx(1.0)

    def test_map_shape(self, qfd) -> None:
        red = SVDReduction(qfd, 5)
        assert red.map_matrix.shape == (64, 5)
        assert red.k == 5 and red.source_dim == 64

    def test_rejects_bad_k(self, qfd) -> None:
        with pytest.raises(QueryError):
            SVDReduction(qfd, 0)
        with pytest.raises(QueryError):
            SVDReduction(qfd, 65)

    def test_one_to_many_matches_scalar(self, qfd, data) -> None:
        red = SVDReduction(qfd, 6)
        mapped = red.transform_batch(data[:10])
        q = red.transform(data[20])
        vec = red.lower_bound_one_to_many(q, mapped)
        scalar = [red.lower_bound(q, row) for row in mapped]
        assert np.allclose(vec, scalar)


class TestProjectionBound:
    def test_average_color_is_contractive(self, qfd, data) -> None:
        bound = average_color_bound(qfd, rgb_bin_prototypes(4))
        mapped = bound.transform_batch(data[:30])
        for i in range(5):
            for j in range(5, 25):
                exact = qfd(data[i], data[j])
                assert bound.lower_bound(mapped[i], mapped[j]) <= exact + 1e-9

    def test_scale_is_optimal(self, qfd, data) -> None:
        """Scaling the map up by 1% must break contraction somewhere —
        i.e. the computed constant is tight, not merely safe."""
        bound = average_color_bound(qfd, rgb_bin_prototypes(4))
        # The extremal direction is the eigenvector of the generalized
        # problem; random histogram pairs may not hit it, so test on the
        # eigen-direction directly.
        proj = rgb_bin_prototypes(4).T
        import scipy.linalg

        x = scipy.linalg.solve(qfd.matrix, proj.T, assume_a="pos")
        gram = proj @ x
        lam, vecs = np.linalg.eigh((gram + gram.T) / 2.0)
        # Pull the extremal z back into histogram space: z = A^{-1} P^T y.
        y = vecs[:, -1]
        z = x @ y
        exact = np.sqrt(max(float(z @ qfd.matrix @ z), 0.0))
        mapped = bound.transform(z) - bound.transform(np.zeros_like(z))
        assert np.linalg.norm(mapped) == pytest.approx(exact, rel=1e-6)

    def test_k_is_projection_rows(self, qfd) -> None:
        bound = average_color_bound(qfd, rgb_bin_prototypes(4))
        assert bound.k == 3

    def test_rejects_mismatched_projection(self, qfd) -> None:
        with pytest.raises(DimensionMismatchError):
            ProjectionBound(qfd, np.ones((3, 10)))

    def test_rejects_zero_projection(self, qfd) -> None:
        from repro.exceptions import MatrixError

        with pytest.raises(MatrixError):
            ProjectionBound(qfd, np.zeros((3, 64)))


class TestFilterRefineScan:
    def test_knn_exact(self, qfd, data) -> None:
        scan = SequentialFile(data, qfd)
        for k in (4, 16, 64):
            fr = FilterRefineScan(data, SVDReduction(qfd, k))
            q = data[0] * 0.9 + data[1] * 0.1
            assert_same_neighbors(fr.knn_search(q, 5), scan.knn_search(q, 5), tol=1e-7)

    def test_range_exact(self, qfd, data) -> None:
        scan = SequentialFile(data, qfd)
        fr = FilterRefineScan(data, SVDReduction(qfd, 8))
        q = data[3]
        nn = scan.knn_search(q, 20)
        radius = (nn[-2].distance + nn[-1].distance) / 2.0
        assert_same_neighbors(fr.range_search(q, radius), scan.range_search(q, radius), tol=1e-7)

    def test_stats_recorded(self, qfd, data) -> None:
        fr = FilterRefineScan(data, SVDReduction(qfd, 8))
        fr.knn_search(data[0], 5)
        stats = fr.last_stats
        assert stats is not None
        assert stats.hits == 5
        assert stats.candidates >= 5
        assert 0.0 < stats.candidate_ratio <= 1.0

    def test_smaller_k_more_false_positives(self, qfd, data) -> None:
        """The paper's Section 2.3.1 drawback, quantified."""
        q = data[0]
        candidates = []
        for k in (2, 16, 64):
            fr = FilterRefineScan(data, SVDReduction(qfd, k))
            fr.knn_search(q, 5)
            candidates.append(fr.last_stats.candidates)
        assert candidates[0] >= candidates[1] >= candidates[2]

    def test_rejects_bad_queries(self, qfd, data) -> None:
        fr = FilterRefineScan(data, SVDReduction(qfd, 8))
        with pytest.raises(QueryError):
            fr.knn_search(data[0], 0)
        with pytest.raises(QueryError):
            fr.range_search(data[0], -1.0)

    def test_avg_color_bound_pluggable(self, qfd, data) -> None:
        scan = SequentialFile(data, qfd)
        fr = FilterRefineScan(data, average_color_bound(qfd, rgb_bin_prototypes(4)))
        q = data[5]
        assert_same_neighbors(fr.knn_search(q, 5), scan.knn_search(q, 5), tol=1e-7)
