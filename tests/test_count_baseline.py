"""Guard: the kernel layer must not drift any logical distance count.

``tests/fixtures/count_baseline.json`` holds the build and per-query
distance-computation counts of every tree MAM under both models, generated
from the pre-kernel code.  The kernel rewrite batches *physical* evaluation
but charges the *logical* access pattern, so replaying the recipe must
reproduce the fixture exactly — any off-by-one here means a traversal loop
changed how many distances the paper's cost model would report.

One deliberate deviation from the pre-kernel code is baked into the
fixture: GNAT range search now evaluates *every* split point of a visited
node (the old loop stopped early once all groups were pruned, silently
dropping any later split lying inside the query ball), so its range
counts charge the full arity per visited node.
"""

from __future__ import annotations

import json

from repro.datasets.workloads import calibrate_radius
from repro.models import QFDModel

from .count_baseline_recipe import (
    FIXTURE_PATH,
    RADIUS_TARGET,
    baseline_workload,
    compute_baseline,
)


def _stored() -> dict:
    return json.loads(FIXTURE_PATH.read_text())


class TestCountBaseline:
    def test_every_method_matches_fixture_exactly(self) -> None:
        stored = _stored()
        fresh = compute_baseline(stored["radius"])
        assert set(fresh["methods"]) == set(stored["methods"])
        for key, want in stored["methods"].items():
            got = fresh["methods"][key]
            assert got["build"] == want["build"], f"{key}: build count drifted"
            assert got["knn"] == want["knn"], f"{key}: kNN counts drifted"
            assert got["range"] == want["range"], f"{key}: range counts drifted"

    def test_bulk_loaded_mtree_structure_and_counts(self) -> None:
        stored = _stored()
        fresh = compute_baseline(stored["radius"])
        assert fresh["mtree_bulk"] == stored["mtree_bulk"]

    def test_bulk_loaded_mtree_invariants_hold(self) -> None:
        workload = baseline_workload()
        built = QFDModel(workload.matrix).build_index(
            "mtree", workload.database, capacity=8, bulk_load=True
        )
        built.access_method.validate_invariants()

    def test_fixture_radius_is_reproducible(self) -> None:
        # The stored radius came from the same calibration the recipe uses;
        # pin it so workload or calibration changes cannot silently shift
        # what the count columns mean.
        stored = _stored()
        radius = calibrate_radius(baseline_workload(), RADIUS_TARGET)
        assert radius == stored["radius"]
