"""Persistence of the library's numeric artifacts.

A production deployment of the QMap model stores, between sessions:

* the QFD matrix and its Cholesky factor (tiny — n x n, computed once
  "at the time of designing the similarity", paper Section 4),
* the transformed database (the expensive O(m n^2) pass),
* flat index payloads such as the LAESA pivot table (m x p distances).

All artifacts are written as numpy ``.npz`` archives with a ``kind``
marker and explicit named arrays — no pickling of code objects, so files
are portable across library versions and languages.  Hierarchical
structures (M-tree, vp-tree, ...) are intentionally *not* serialized:
in the QMap model rebuilding them from the persisted transformed database
costs only O(n)-per-distance work, which is the paper's entire point.
"""

from __future__ import annotations

import os
from typing import Callable

import numpy as np

from ._typing import ArrayLike
from .core.qmap import QMap
from .core.validation import PDRepair
from .datasets.workloads import Workload
from .exceptions import StorageError
from .mam.base import DistancePort
from .mam.pivot_table import PivotTable

__all__ = [
    "save_qmap",
    "load_qmap",
    "save_workload",
    "load_workload",
    "save_transformed_database",
    "load_transformed_database",
    "save_pivot_table",
    "load_pivot_table",
]

_PathLike = "str | os.PathLike[str]"


def _check_kind(archive: np.lib.npyio.NpzFile, expected: str, path: object) -> None:
    kind = str(archive["kind"]) if "kind" in archive else "<missing>"
    if kind != expected:
        raise StorageError(
            f"{path!s} holds a {kind!r} artifact, expected {expected!r}"
        )


def save_qmap(qmap: QMap, path: "str | os.PathLike[str]") -> None:
    """Persist a QMap: the QFD matrix A and its Cholesky factor B."""
    np.savez_compressed(
        path, kind="qmap", matrix=qmap.qfd.matrix, cholesky=qmap.matrix
    )


def load_qmap(path: "str | os.PathLike[str]") -> QMap:
    """Load a QMap saved by :func:`save_qmap`.

    The matrix is re-validated and re-factored (O(n^3), negligible); the
    stored factor is cross-checked against the fresh one so silent file
    corruption cannot produce a distance-distorting transform.
    """
    with np.load(path) as archive:
        _check_kind(archive, "qmap", path)
        matrix = archive["matrix"]
        stored_factor = archive["cholesky"]
    qmap = QMap(matrix)
    if not np.allclose(qmap.matrix, stored_factor, rtol=1e-9, atol=1e-12):
        raise StorageError(f"{path!s}: stored Cholesky factor does not match matrix")
    return qmap


def save_workload(workload: Workload, path: "str | os.PathLike[str]") -> None:
    """Persist a benchmark workload (database, queries, matrix, repair)."""
    np.savez_compressed(
        path,
        kind="workload",
        database=workload.database,
        queries=workload.queries,
        matrix=workload.matrix,
        shift=np.float64(workload.matrix_repair.shift),
        min_eigenvalue=np.float64(workload.matrix_repair.min_eigenvalue),
        name=np.str_(workload.name),
    )


def load_workload(path: "str | os.PathLike[str]") -> Workload:
    """Load a workload saved by :func:`save_workload`."""
    with np.load(path) as archive:
        _check_kind(archive, "workload", path)
        matrix = archive["matrix"]
        repair = PDRepair(
            matrix=matrix,
            shift=float(archive["shift"]),
            min_eigenvalue=float(archive["min_eigenvalue"]),
        )
        return Workload(
            database=archive["database"],
            queries=archive["queries"],
            matrix=matrix,
            matrix_repair=repair,
            name=str(archive["name"]),
        )


def save_transformed_database(
    qmap: QMap, database: ArrayLike, path: "str | os.PathLike[str]"
) -> None:
    """Transform *database* and persist both spaces' representations.

    Stores the original rows, the mapped rows, and the matrix — everything
    needed to rebuild any MAM/SAM in O(n)-per-distance work, or to verify
    the mapping on load.
    """
    data = np.asarray(database, dtype=np.float64)
    mapped = qmap.transform_batch(data)
    np.savez_compressed(
        path,
        kind="transformed-database",
        matrix=qmap.qfd.matrix,
        database=data,
        mapped=mapped,
    )


def load_transformed_database(
    path: "str | os.PathLike[str]", *, verify_rows: int = 8
) -> tuple[QMap, np.ndarray, np.ndarray]:
    """Load ``(qmap, database, mapped)`` from :func:`save_transformed_database`.

    A sample of *verify_rows* rows is re-transformed and compared against
    the stored mapping to catch corrupted or mismatched files.
    """
    with np.load(path) as archive:
        _check_kind(archive, "transformed-database", path)
        matrix = archive["matrix"]
        database = archive["database"]
        mapped = archive["mapped"]
    qmap = QMap(matrix)
    if database.shape != mapped.shape:
        raise StorageError(f"{path!s}: database/mapped shape mismatch")
    sample = np.linspace(0, database.shape[0] - 1, min(verify_rows, database.shape[0]))
    for i in sample.astype(int):
        if not np.allclose(qmap.transform(database[i]), mapped[i], rtol=1e-9, atol=1e-9):
            raise StorageError(f"{path!s}: stored mapping disagrees with the matrix")
    return qmap, database, mapped


def save_pivot_table(table: PivotTable, path: "str | os.PathLike[str]") -> None:
    """Persist a LAESA pivot table: rows, pivot ids and the distance matrix."""
    np.savez_compressed(
        path,
        kind="pivot-table",
        database=table.database,
        pivot_indices=np.asarray(table.pivot_indices, dtype=np.int64),
        table=table.table,
    )


def load_pivot_table(
    path: "str | os.PathLike[str]", distance: DistancePort | Callable
) -> PivotTable:
    """Load a pivot table saved by :func:`save_pivot_table`.

    *distance* must be the same function the table was built with; a
    sample entry is re-evaluated to catch obvious mismatches.
    """
    with np.load(path) as archive:
        _check_kind(archive, "pivot-table", path)
        instance = PivotTable.from_parts(
            archive["database"],
            distance,
            [int(i) for i in archive["pivot_indices"]],
            archive["table"],
        )
    probe = instance.distance.pair(
        instance.database[0], instance.database[instance.pivot_indices[0]]
    )
    if not np.isclose(probe, instance.table[0, 0], rtol=1e-6, atol=1e-9):
        raise StorageError(
            f"{path!s}: supplied distance disagrees with the stored table "
            "(wrong metric or wrong matrix?)"
        )
    return instance
