"""Per-query tracing: where do the distance evaluations go?

The paper's cost model (Sections 4.2 and 5) prices every operation in
*distance computations*; :class:`~repro.distances.base.CountingDistance`
already totals them per model.  This module adds the per-query
granularity the batch engine needs: each executed query gets a
:class:`QueryTrace` recording its scalar and batched evaluations (both
observed at the :class:`~repro.mam.base.DistancePort` boundary), its
lower-bound filter outcome, the number of candidates refined with real
distances, and its wall time.  A thread-safe :class:`TraceCollector`
aggregates the records into the same quantities the paper's Tables 1-2
report.

The active trace is tracked with a :mod:`contextvars` variable, so
concurrently executing queries (one per worker thread) each record into
their own trace without locking on the hot path.  Access methods that
know their filter structure (the pivot table's hyper-cube test, the
sequential scan's trivial all-candidates "filter") report it through
:func:`record_filter`; everything else still gets exact evaluation
counts through the port.

This module deliberately imports nothing from the rest of the library so
that :mod:`repro.mam` modules can use the hooks without import cycles.
"""

from __future__ import annotations

import contextvars
import math
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Iterator

__all__ = [
    "QueryTrace",
    "TraceSummary",
    "TraceCollector",
    "TracingPort",
    "current_trace",
    "activate_trace",
    "record_filter",
    "record_candidates",
    "record_node_visit",
    "record_pruned",
]

_ACTIVE_TRACE: contextvars.ContextVar["QueryTrace | None"] = contextvars.ContextVar(
    "repro_active_query_trace", default=None
)


@dataclass
class QueryTrace:
    """Cost record of one executed query.

    Attributes
    ----------
    query_index:
        Position of the query inside its batch.
    kind:
        ``"range"`` or ``"knn"``.
    parameter:
        The radius (range) or ``k`` (kNN).
    scalar_evaluations:
        Distance evaluations made one pair at a time
        (``DistancePort.pair``).
    batched_evaluations:
        Logical evaluations made through vectorized one-to-many calls
        (``DistancePort.many``); each row counts as one computation,
        matching :class:`~repro.distances.base.DistanceStats`.
    filter_checked:
        Objects subjected to a cheap lower-bound test (0 when the
        structure exposes no filter stage).
    filter_hits:
        Objects that survived the lower-bound filter (the paper's ``x``
        candidate count for the pivot table).
    candidates:
        Objects verified with a real distance during refinement.
    results:
        Size of the final answer set.
    seconds:
        Wall-clock time of the query, including any filter work.
    nodes_visited:
        Index nodes whose entries the traversal examined (0 for flat
        structures) — the M-tree node accounting of Ciaccia et al.
    nodes_pruned:
        Subtrees discarded by a cheap lower bound without being
        descended — the per-MAM pruning effectiveness measure.
    """

    query_index: int = 0
    kind: str = "knn"
    parameter: float = 0.0
    scalar_evaluations: int = 0
    batched_evaluations: int = 0
    filter_checked: int = 0
    filter_hits: int = 0
    candidates: int = 0
    results: int = 0
    seconds: float = 0.0
    nodes_visited: int = 0
    nodes_pruned: int = 0

    @property
    def distance_evaluations(self) -> int:
        """Total logical distance computations (scalar + batched)."""
        return self.scalar_evaluations + self.batched_evaluations


@dataclass(frozen=True)
class TraceSummary:
    """Aggregate of many :class:`QueryTrace` records.

    ``distance_evaluations`` is the same quantity the paper's Tables 1-2
    report per query batch (and :class:`CountingDistance` counts per
    model).  ``seconds`` is the *summed per-query* wall time;
    ``batch_seconds`` is the wall clock measured around the whole batch
    by :class:`~repro.engine.batch.QueryBatch` (0 when the traces were
    aggregated outside the batch engine).  Under the thread/process
    executors the two diverge — per-query times overlap — so
    ``queries_per_second`` derives throughput from ``batch_seconds``
    whenever it was measured, and the old summed-time estimate survives
    as ``serial_queries_per_second``.
    """

    queries: int
    distance_evaluations: int
    scalar_evaluations: int
    batched_evaluations: int
    filter_checked: int
    filter_hits: int
    candidates: int
    results: int
    seconds: float
    batch_seconds: float = 0.0
    nodes_visited: int = 0
    nodes_pruned: int = 0
    #: Nearest-rank percentiles of the per-query wall times (0.0 when no
    #: traces were collected) — tail latency next to the mean throughput.
    p50_seconds: float = 0.0
    p95_seconds: float = 0.0

    @property
    def evaluations_per_query(self) -> float:
        """Mean logical distance computations per query."""
        if self.queries == 0:
            return 0.0
        return self.distance_evaluations / self.queries

    @property
    def queries_per_second(self) -> float:
        """Throughput from the batch wall clock (parallelism-aware).

        Falls back to :attr:`serial_queries_per_second` when no batch
        wall time was measured, so callers that aggregate hand-built
        traces keep getting a sensible number.
        """
        if self.batch_seconds > 0.0:
            return self.queries / self.batch_seconds
        return self.serial_queries_per_second

    @property
    def serial_queries_per_second(self) -> float:
        """Throughput implied by the summed per-query wall time.

        Overstates q/s under parallel executors (per-query times overlap
        wall time); kept for comparing per-query work across executors.
        """
        if self.seconds <= 0.0:
            return 0.0
        return self.queries / self.seconds


def _nearest_rank(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of pre-sorted values (0.0 when empty).

    The nearest-rank definition: the smallest value whose rank
    ``ceil(q * n)`` covers fraction *q* of the samples.  A single-element
    batch therefore yields p50 == p95 == that sample.  The rank is clamped
    into ``[1, n]`` so q=0 maps to the minimum and floating-point noise in
    ``q * n`` (e.g. ``1.0 * n`` landing a hair above ``n``) can never index
    past the end.
    """
    if not sorted_values:
        return 0.0
    n = len(sorted_values)
    rank = min(max(math.ceil(q * n), 1), n)
    return sorted_values[rank - 1]


class TraceCollector:
    """Thread-safe sink for completed :class:`QueryTrace` records."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._traces: list[QueryTrace] = []
        self._batch_seconds = 0.0

    def add(self, trace: QueryTrace) -> None:
        """Record one finished query (called from worker threads)."""
        with self._lock:
            self._traces.append(trace)

    def extend(self, traces: Iterable[QueryTrace]) -> None:
        """Record many finished queries at once."""
        with self._lock:
            self._traces.extend(traces)

    def add_batch_seconds(self, seconds: float) -> None:
        """Accumulate wall clock measured around a whole executed batch.

        Called once per :meth:`QueryBatch.run`; when several batches feed
        one collector, their wall times add up (they ran back to back).
        """
        with self._lock:
            self._batch_seconds += seconds

    @property
    def batch_seconds(self) -> float:
        """Total batch wall clock recorded so far."""
        with self._lock:
            return self._batch_seconds

    @property
    def traces(self) -> list[QueryTrace]:
        """Snapshot of the collected records, in batch order."""
        with self._lock:
            return sorted(self._traces, key=lambda t: t.query_index)

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def clear(self) -> None:
        """Drop all collected records."""
        with self._lock:
            self._traces.clear()

    def summary(self) -> TraceSummary:
        """Aggregate every collected trace into one cost row."""
        with self._lock:
            traces = list(self._traces)
            batch_seconds = self._batch_seconds
        times = sorted(t.seconds for t in traces)
        return TraceSummary(
            queries=len(traces),
            distance_evaluations=sum(t.distance_evaluations for t in traces),
            scalar_evaluations=sum(t.scalar_evaluations for t in traces),
            batched_evaluations=sum(t.batched_evaluations for t in traces),
            filter_checked=sum(t.filter_checked for t in traces),
            filter_hits=sum(t.filter_hits for t in traces),
            candidates=sum(t.candidates for t in traces),
            results=sum(t.results for t in traces),
            seconds=sum(t.seconds for t in traces),
            batch_seconds=batch_seconds,
            nodes_visited=sum(t.nodes_visited for t in traces),
            nodes_pruned=sum(t.nodes_pruned for t in traces),
            p50_seconds=_nearest_rank(times, 0.50),
            p95_seconds=_nearest_rank(times, 0.95),
        )


def current_trace() -> QueryTrace | None:
    """The trace of the query executing in this thread, if any."""
    return _ACTIVE_TRACE.get()


@contextmanager
def activate_trace(trace: QueryTrace | None) -> Iterator[QueryTrace | None]:
    """Make *trace* the active trace for the duration of the block.

    Passing ``None`` is a no-op, so call sites need no branching.
    """
    if trace is None:
        yield None
        return
    token = _ACTIVE_TRACE.set(trace)
    try:
        yield trace
    finally:
        _ACTIVE_TRACE.reset(token)


def record_filter(checked: int, hits: int) -> None:
    """Report a lower-bound filter outcome to the active trace (if any).

    Access methods with an explicit filter stage call this once per
    query: *checked* objects went through the cheap test, *hits*
    survived and became refinement candidates.
    """
    trace = _ACTIVE_TRACE.get()
    if trace is not None:
        trace.filter_checked += checked
        trace.filter_hits += hits


def record_candidates(count: int) -> None:
    """Report refined-candidate count to the active trace (if any).

    Called by access methods when they verify *count* objects with real
    distance evaluations — the ``x`` of the paper's ``p + x`` pivot-table
    querying cost.
    """
    trace = _ACTIVE_TRACE.get()
    if trace is not None:
        trace.candidates += count


def record_node_visit(count: int = 1) -> None:
    """Report that *count* index nodes had their entries examined.

    Tree access methods call this once per node whose entries the
    traversal actually processes; flat structures never call it.
    """
    trace = _ACTIVE_TRACE.get()
    if trace is not None:
        trace.nodes_visited += count


def record_pruned(count: int = 1) -> None:
    """Report that *count* subtrees were discarded by a cheap lower bound.

    Called by tree access methods when a covering-radius / hyperplane /
    ring test excludes a child without descending into it.
    """
    trace = _ACTIVE_TRACE.get()
    if trace is not None:
        trace.nodes_pruned += count


class TracingPort:
    """Decorator around a :class:`~repro.mam.base.DistancePort`.

    Forwards every evaluation to the wrapped port (so model-level
    :class:`CountingDistance` counters keep counting) and charges it to
    the thread's active :class:`QueryTrace` — scalar pairs and batched
    rows separately, matching the split of
    :class:`~repro.distances.base.DistanceStats`.  Filter outcomes and
    refined-candidate counts are reported by the access methods through
    :func:`record_filter` / :func:`record_candidates`.

    Duck-typed rather than subclassing ``DistancePort`` to keep this
    module free of :mod:`repro.mam` imports.
    """

    def __init__(self, inner) -> None:  # noqa: ANN001 - duck-typed DistancePort
        self._inner = inner

    def pair(self, u, v) -> float:  # noqa: ANN001
        trace = _ACTIVE_TRACE.get()
        if trace is not None:
            trace.scalar_evaluations += 1
        return self._inner.pair(u, v)

    def many(self, q, rows):  # noqa: ANN001
        out = self._inner.many(q, rows)
        trace = _ACTIVE_TRACE.get()
        if trace is not None:
            trace.batched_evaluations += int(out.shape[0])
        return out

    def bind_query(self, query, data=None):  # noqa: ANN001
        """Bound queries charge the active trace themselves — just forward."""
        return self._inner.bind_query(query, data)

    def charge(self, *, calls: int = 0, rows: int = 0) -> None:
        return self._inner.charge(calls=calls, rows=rows)

    def pairwise(self, rows, *, charge: bool = True):  # noqa: ANN001
        return self._inner.pairwise(rows, charge=charge)

    def cross(self, rows_a, rows_b, *, charge: bool = True):  # noqa: ANN001
        return self._inner.cross(rows_a, rows_b, charge=charge)

    def attach_database(self, data) -> None:  # noqa: ANN001
        self._inner.attach_database(data)

    @property
    def kernel(self):  # noqa: ANN001
        return self._inner.kernel

    @property
    def raw(self):  # noqa: ANN001
        return self._inner.raw

    @property
    def inner(self):  # noqa: ANN001
        """The wrapped port (used to unwrap after a traced batch)."""
        return self._inner
