"""Batch query engine: planners, executors, and per-query tracing.

The paper's headline numbers are *throughput* numbers — distance
evaluations per query (Tables 1-2) and wall time per query (Figures 5-9).
This package is the substrate for measuring and scaling both:

* :mod:`repro.engine.trace` — per-query :class:`QueryTrace` cost records
  and the thread-safe :class:`TraceCollector` that aggregates them into
  the paper's cost model;
* :mod:`repro.engine.executors` — serial / thread-pool / chunked
  process-pool execution backends behind one strategy interface;
* :mod:`repro.engine.batch` — the :class:`QueryBatch` planner that
  validates a batch once, chunks it, and runs it through any executor
  with bit-identical results to the single-query entry points.

Import layering: :mod:`repro.mam.base` (below this package) imports only
:mod:`repro.engine.trace`, which is dependency-free; the planner and
executors, which import :mod:`repro.mam`, are loaded lazily via PEP 562
so the package can sit both above and beside the access methods without
cycles.
"""

from __future__ import annotations

from typing import Any

from .trace import (
    QueryTrace,
    TraceCollector,
    TraceSummary,
    TracingPort,
    activate_trace,
    current_trace,
    record_candidates,
    record_filter,
)

__all__ = [
    "QueryTrace",
    "TraceCollector",
    "TraceSummary",
    "TracingPort",
    "activate_trace",
    "current_trace",
    "record_candidates",
    "record_filter",
    "QueryBatch",
    "run_query_batch",
    "BatchExecutor",
    "SerialExecutor",
    "ThreadPoolBatchExecutor",
    "ProcessPoolBatchExecutor",
    "EXECUTOR_REGISTRY",
    "resolve_executor",
]

_LAZY_BATCH = {"QueryBatch", "run_query_batch"}
_LAZY_EXECUTORS = {
    "BatchExecutor",
    "SerialExecutor",
    "ThreadPoolBatchExecutor",
    "ProcessPoolBatchExecutor",
    "EXECUTOR_REGISTRY",
    "resolve_executor",
}


def __getattr__(name: str) -> Any:
    if name in _LAZY_BATCH:
        from . import batch

        return getattr(batch, name)
    if name in _LAZY_EXECUTORS:
        from . import executors

        return getattr(executors, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(__all__)
