"""Pluggable execution backends for the batch query engine.

Three strategies, one interface (:meth:`BatchExecutor.map_ordered`):

* :class:`SerialExecutor` — the calling thread runs every task in order;
  zero overhead, the baseline every speedup is measured against.
* :class:`ThreadPoolBatchExecutor` — ``concurrent.futures`` threads.
  MAM queries are numpy-heavy (the one-to-many distance kernels release
  the GIL), so threads already deliver near-linear scaling for the
  paper's workloads without any serialization cost.
* :class:`ProcessPoolBatchExecutor` — chunked worker processes, for the
  pure-Python distance paths (SQFD, custom callables) where the GIL
  would serialize threads.  Tasks are shipped in chunks to amortize the
  per-task pickling of the index.

Executors know nothing about queries; they map an arbitrary function
over an index sequence and preserve input order in the output.  The
query semantics live in :mod:`repro.engine.batch`.
"""

from __future__ import annotations

import contextvars
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

from ..exceptions import QueryError

__all__ = [
    "BatchExecutor",
    "SerialExecutor",
    "ThreadPoolBatchExecutor",
    "ProcessPoolBatchExecutor",
    "EXECUTOR_REGISTRY",
    "resolve_executor",
]

T = TypeVar("T")


class BatchExecutor:
    """Strategy interface: run ``fn(i)`` for every ``i`` in order."""

    name = "abstract"

    #: Whether tasks may run concurrently in this process (drives the
    #: engine's decision to install per-thread trace contexts).
    concurrent_in_process = False

    def map_ordered(self, fn: Callable[[int], T], indices: Sequence[int]) -> list[T]:
        """Apply *fn* to every index, returning results in input order."""
        raise NotImplementedError


class SerialExecutor(BatchExecutor):
    """Run every query in the calling thread, one after another."""

    name = "serial"

    def map_ordered(self, fn: Callable[[int], T], indices: Sequence[int]) -> list[T]:
        return [fn(i) for i in indices]


class ThreadPoolBatchExecutor(BatchExecutor):
    """Fan queries out over a thread pool.

    Parameters
    ----------
    workers:
        Pool size; defaults to ``os.cpu_count()`` capped at 8 (beyond
        that the memory bandwidth of the distance kernels saturates on
        typical hosts).
    """

    name = "thread"
    concurrent_in_process = True

    def __init__(self, workers: int | None = None) -> None:
        if workers is None:
            workers = min(os.cpu_count() or 1, 8)
        if workers < 1:
            raise QueryError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    def map_ordered(self, fn: Callable[[int], T], indices: Sequence[int]) -> list[T]:
        if len(indices) <= 1 or self.workers == 1:
            return [fn(i) for i in indices]
        # Pool threads do not inherit the submitter's contextvars (the
        # active trace context and span stack), so snapshot the context
        # once per task at submit time and run the task inside its own
        # copy — worker-thread spans then nest under the batch span and
        # carry the request's trace_id.
        tasks = [(contextvars.copy_context(), i) for i in indices]
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            return list(pool.map(lambda task: task[0].run(fn, task[1]), tasks))


class ProcessPoolBatchExecutor(BatchExecutor):
    """Fan *chunks* of queries out over worker processes.

    The function shipped to each worker receives a contiguous slice of
    query indices and returns their results as a list; chunking keeps
    the number of times the (potentially large) index is pickled down to
    roughly one per worker rather than one per query.

    Worker processes cannot update in-process state of the parent —
    distance-evaluation counters and traces recorded *inside* the
    workers are returned with the results and merged by the engine, but
    a plain :class:`CountingDistance` owned by the parent will not see
    child evaluations.  The engine documents this in
    :meth:`QueryBatch.run`.
    """

    name = "process"
    concurrent_in_process = False

    def __init__(self, workers: int | None = None, *, chunk_size: int | None = None) -> None:
        if workers is None:
            workers = min(os.cpu_count() or 1, 8)
        if workers < 1:
            raise QueryError(f"workers must be >= 1, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise QueryError(f"chunk_size must be >= 1, got {chunk_size}")
        self.workers = workers
        self.chunk_size = chunk_size

    def chunks(self, n_tasks: int) -> list[tuple[int, int]]:
        """Contiguous ``[start, stop)`` task ranges, one per submission."""
        if n_tasks == 0:
            return []
        size = self.chunk_size
        if size is None:
            size = max(1, -(-n_tasks // self.workers))  # ceil division
        return [(start, min(start + size, n_tasks)) for start in range(0, n_tasks, size)]

    def map_chunks(
        self, fn: Callable[[tuple[int, int]], T], n_tasks: int
    ) -> list[T]:
        """Apply the (picklable) chunk function to every range, in order.

        With one chunk or one worker the pool is skipped entirely, so
        small batches never pay process start-up.
        """
        ranges = self.chunks(n_tasks)
        if len(ranges) <= 1 or self.workers == 1:
            return [fn(rng) for rng in ranges]
        with ProcessPoolExecutor(max_workers=min(self.workers, len(ranges))) as pool:
            return list(pool.map(fn, ranges))


#: Executor names accepted by the engine/CLI.
EXECUTOR_REGISTRY: dict[str, type[BatchExecutor]] = {
    "serial": SerialExecutor,
    "thread": ThreadPoolBatchExecutor,
    "process": ProcessPoolBatchExecutor,
}


def resolve_executor(
    executor: "str | BatchExecutor | None",
    *,
    workers: int | None = None,
    chunk_size: int | None = None,
) -> BatchExecutor:
    """Normalize an executor spec (instance, name, choice, or ``None``).

    ``None`` means serial unless *workers* asks for parallelism, in
    which case threads are chosen — the right default for numpy-backed
    distances.  A planner-chosen executor (any object with a string
    ``name`` and optional ``workers``/``chunk_size`` attributes, e.g.
    :class:`repro.planner.ExecutorChoice`) is accepted duck-typed, so
    the engine needs no planner import; explicit *workers*/*chunk_size*
    arguments override the choice's own fields.
    """
    if isinstance(executor, BatchExecutor):
        return executor
    if executor is not None and not isinstance(executor, str):
        name = getattr(executor, "name", None)
        if not isinstance(name, str):
            raise QueryError(
                f"cannot resolve executor from {executor!r}; pass a name, "
                "a BatchExecutor, or an object with a string 'name'"
            )
        if workers is None:
            workers = getattr(executor, "workers", None)
        if chunk_size is None:
            chunk_size = getattr(executor, "chunk_size", None)
        executor = name
    if executor is None:
        executor = "serial" if workers in (None, 0, 1) else "thread"
    if executor not in EXECUTOR_REGISTRY:
        raise QueryError(
            f"unknown executor {executor!r}; choose from {sorted(EXECUTOR_REGISTRY)}"
        )
    if executor == "serial":
        return SerialExecutor()
    if executor == "thread":
        return ThreadPoolBatchExecutor(workers)
    return ProcessPoolBatchExecutor(workers, chunk_size=chunk_size)
