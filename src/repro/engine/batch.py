"""The batch query planner: many queries, one execution plan.

A :class:`QueryBatch` bundles homogeneous queries (all-range or all-kNN
with shared parameters), validates them once, and executes them against
any :class:`~repro.mam.base.AccessMethod` through a pluggable
:class:`~repro.engine.executors.BatchExecutor`:

* queries are split into contiguous chunks so structures with a
  vectorized batch hook (sequential file, pivot table) amortize their
  per-scan work across the whole chunk;
* the serial executor runs the chunks inline, the thread executor fans
  them out (numpy distance kernels release the GIL), and the process
  executor ships pickled chunks to worker processes for pure-Python
  distances;
* with a :class:`~repro.engine.trace.TraceCollector` attached, every
  query gets a :class:`~repro.engine.trace.QueryTrace` and the access
  method's port is wrapped in a :class:`TracingPort` for the duration of
  the batch.

Results are, by construction, bit-identical to looping the single-query
entry points: chunk hooks reuse the exact per-query search code (or a
reduction that is float-exact), and ordering guarantees are unchanged.
"""

from __future__ import annotations

import functools
import pickle
from contextlib import nullcontext
from time import perf_counter
from typing import TYPE_CHECKING

import numpy as np

from .._typing import ArrayLike, as_vector_batch
from ..exceptions import QueryError
from ..obs import (
    MetricsRegistry,
    TraceContext,
    activate_trace_context,
    current_span,
    current_trace_context,
    get_logger,
    get_registry,
    log_event,
    observe_query_progress,
    record_batch_summary,
    record_traces,
    span,
    trace_scope,
    use_registry,
)
from .executors import (
    BatchExecutor,
    ProcessPoolBatchExecutor,
    SerialExecutor,
    resolve_executor,
)
from .trace import QueryTrace, TraceCollector, TracingPort

if TYPE_CHECKING:  # imported lazily at runtime to keep the layering acyclic
    from ..mam.base import AccessMethod, Neighbor

__all__ = ["QueryBatch"]


def _method_label(am: "AccessMethod") -> str:
    """Registry name of *am* for metric labels (class name as fallback).

    Uses the same label vocabulary as the model layer
    (``method="mtree"``, not ``method="MTree"``), so the funneled batch
    metrics join with the model's distance counters.  Imported lazily:
    the engine sits below :mod:`repro.models` in the layering.
    """
    try:
        from ..models.base import MAM_REGISTRY, SAM_REGISTRY

        for name, cls in {**MAM_REGISTRY, **SAM_REGISTRY}.items():
            if type(am) is cls:
                return name
    except Exception:
        pass
    return type(am).__name__


def _chunk_ranges(n: int, n_chunks: int) -> list[tuple[int, int]]:
    """Split ``[0, n)`` into at most *n_chunks* contiguous ranges."""
    n_chunks = max(1, min(n, n_chunks))
    size = -(-n // n_chunks)  # ceil
    return [(a, min(a + size, n)) for a in range(0, n, size)]


def _run_chunk(
    bounds: tuple[int, int],
    *,
    am: "AccessMethod",
    kind: str,
    parameter: float,
    queries: np.ndarray,
    tracing: bool,
    obs: "dict | None" = None,
) -> tuple[list[list["Neighbor"]], list[QueryTrace] | None, "dict | None"]:
    """Execute one contiguous chunk of the batch (process-pool entry).

    Usually runs in a worker process: *am* is this process's private
    copy, so wrapping its port for tracing cannot race with anyone.
    Traces are returned alongside the results and merged by the parent.

    *obs* is the parent's observability payload: the request's
    :class:`TraceContext` (so worker spans carry the batch's trace_id),
    whether the parent registry is live, and the method label.  When
    metrics are on, the chunk runs against a **fresh worker registry**
    under a ``query/chunk/<kind>`` span; the registry's
    :meth:`~repro.obs.MetricsRegistry.dump_state` delta and the chunk's
    exact :class:`CountingDistance` delta are returned in the third
    tuple slot for the parent to merge — this is what makes timelines
    and ``/metrics`` totals complete under ``--executor process``.
    """
    start, stop = bounds
    traces = None
    counter = getattr(am._port, "_counter", None)
    base = counter.stats if counter is not None else None
    original_port = am._port
    if tracing:
        traces = [
            QueryTrace(query_index=j, kind=kind, parameter=parameter)
            for j in range(start, stop)
        ]
        am._port = TracingPort(am._port)
    context = None if obs is None else obs.get("context")
    registry = (
        MetricsRegistry() if obs is not None and obs.get("metrics") else None
    )

    def execute() -> list[list["Neighbor"]]:
        chunk = queries[start:stop]
        if kind == "range":
            return am._range_search_batch(chunk, parameter, traces=traces)
        return am._knn_search_batch(chunk, int(parameter), traces=traces)

    try:
        if registry is not None:
            with activate_trace_context(context) if context is not None else nullcontext():
                with use_registry(registry):
                    with span(
                        f"query/chunk/{kind}",
                        method="" if obs is None else obs.get("method", ""),
                        queries=stop - start,
                    ):
                        results = execute()
        else:
            results = execute()
    finally:
        # Restore even though a true worker discards *am*: with a single
        # chunk (or one worker) the executor runs this inline on the
        # parent's index, which must not keep the tracing wrapper.
        am._port = original_port
    obs_out = None
    if obs is not None:
        delta = (0, 0)
        if counter is not None and base is not None:
            stats = counter.stats
            delta = (stats.calls - base.calls, stats.batch_rows - base.batch_rows)
        obs_out = {
            "delta": delta,
            "state": registry.dump_state() if registry is not None else None,
        }
    return results, traces, obs_out


class QueryBatch:
    """A homogeneous batch of similarity queries plus its execution plan.

    Build one with :meth:`range_queries` or :meth:`knn_queries`, then
    :meth:`run` it against an access method.  The planner owns batch-wide
    validation (dimensionality, radius/k) so the per-query hot path skips
    it, and guarantees results in input-query order.
    """

    def __init__(self, kind: str, queries: ArrayLike, parameter: float) -> None:
        if kind not in ("range", "knn"):
            raise QueryError(f"query kind must be 'range' or 'knn', got {kind!r}")
        self.kind = kind
        self.queries = queries
        self.parameter = parameter

    @classmethod
    def range_queries(cls, queries: ArrayLike, radius: float) -> "QueryBatch":
        """A batch of range queries sharing one *radius*."""
        if radius < 0.0:
            raise QueryError(f"radius must be non-negative, got {radius}")
        return cls("range", queries, float(radius))

    @classmethod
    def knn_queries(cls, queries: ArrayLike, k: int) -> "QueryBatch":
        """A batch of kNN queries sharing one *k*."""
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        return cls("knn", queries, int(k))

    def run(
        self,
        am: "AccessMethod",
        *,
        executor: "str | BatchExecutor | None" = None,
        workers: int | None = None,
        chunk_size: int | None = None,
        collector: TraceCollector | None = None,
    ) -> list[list["Neighbor"]]:
        """Execute the batch, returning one result list per query.

        Parameters
        ----------
        am:
            Any access method.
        executor:
            ``"serial"``, ``"thread"``, ``"process"``, an executor
            instance, or ``None`` (serial, or threads when *workers*
            asks for parallelism).
        workers, chunk_size:
            Forwarded to the executor when it is built from a name.
        collector:
            Attach to receive one :class:`QueryTrace` per query.  With
            the process executor, traces are recorded in the workers and
            merged back.  When an observability registry is active, the
            workers' exact ``CountingDistance`` deltas, spans, and
            registry state are merged back too, so the caller's counter
            and the registry totals match serial execution exactly.

        When an observability registry is active (see
        :mod:`repro.obs`), every executed batch is additionally funneled
        into it: per-query traces (collected internally when no
        *collector* was passed), a ``repro_batch_seconds`` observation
        measured around the whole batch, and a ``query/batch/<kind>``
        span.
        """
        queries = np.asarray(self.queries, dtype=np.float64)
        if queries.size == 0:
            return []
        qs = as_vector_batch(queries, am.dim, name="queries")
        parameter = self.parameter
        if self.kind == "knn":
            parameter = min(int(parameter), am.size)
        exec_ = resolve_executor(executor, workers=workers, chunk_size=chunk_size)
        registry = get_registry()
        logger = get_logger()
        observing = registry.enabled or logger.enabled
        method = _method_label(am) if observing else type(am).__name__
        # With a live registry or logger but no caller-owned collector,
        # trace into a private one so they still see per-query records.
        funnel = collector
        if funnel is None and observing:
            funnel = TraceCollector()
        # Give the batch a request identity (reusing any outer one), so
        # spans, worker chunks, and log records all share one trace_id.
        with trace_scope() if observing else nullcontext():
            with span(f"query/batch/{self.kind}", method=method):
                start = perf_counter()
                if isinstance(exec_, ProcessPoolBatchExecutor):
                    results, run_traces = self._run_process(am, qs, parameter, exec_, funnel)
                else:
                    results, run_traces = self._run_in_process(am, qs, parameter, exec_, funnel)
                elapsed = perf_counter() - start
            if funnel is not None:
                funnel.add_batch_seconds(elapsed)
            if registry.enabled and run_traces is not None:
                record_traces(run_traces, registry=registry, method=method)
                batch = TraceCollector()
                batch.extend(run_traces)
                batch.add_batch_seconds(elapsed)
                record_batch_summary(
                    batch.summary(), registry=registry, method=method, kind=self.kind
                )
            if logger.enabled and run_traces is not None:
                total = 0
                for trace in run_traces:
                    total += trace.distance_evaluations
                    log_event(
                        "query",
                        method=method,
                        kind=self.kind,
                        parameter=float(self.parameter),
                        query_index=trace.query_index,
                        seconds=trace.seconds,
                        distance_evaluations=trace.distance_evaluations,
                        scalar_evaluations=trace.scalar_evaluations,
                        batched_evaluations=trace.batched_evaluations,
                        candidates=trace.candidates,
                        results=trace.results,
                    )
                log_event(
                    "batch",
                    method=method,
                    kind=self.kind,
                    queries=len(run_traces),
                    seconds=elapsed,
                    distance_evaluations=total,
                    executor=exec_.name,
                )
        return results

    # ------------------------------------------------------------------
    # in-process execution (serial / threads)
    # ------------------------------------------------------------------

    def _run_in_process(
        self,
        am: "AccessMethod",
        qs: np.ndarray,
        parameter: float,
        exec_: BatchExecutor,
        collector: TraceCollector | None,
    ) -> tuple[list[list["Neighbor"]], list[QueryTrace] | None]:
        n = qs.shape[0]
        traces: list[QueryTrace] | None = None
        original_port = am._port
        if collector is not None:
            traces = [
                QueryTrace(query_index=j, kind=self.kind, parameter=float(self.parameter))
                for j in range(n)
            ]
            am._port = TracingPort(original_port)
        try:
            if isinstance(exec_, SerialExecutor):
                ranges = [(0, n)]
            else:
                # A few chunks per worker balances load while keeping the
                # vectorized batch hooks' per-chunk work worthwhile.
                workers = getattr(exec_, "workers", 1)
                ranges = _chunk_ranges(n, workers * 4)

            registry = get_registry()
            method = _method_label(am) if registry.enabled else ""

            def chunk_task(ci: int) -> list[list["Neighbor"]]:
                a, b = ranges[ci]
                chunk_traces = traces[a:b] if traces is not None else None
                if self.kind == "range":
                    out = am._range_search_batch(qs[a:b], parameter, traces=chunk_traces)
                else:
                    out = am._knn_search_batch(qs[a:b], int(parameter), traces=chunk_traces)
                if registry.enabled:
                    # Feed the rolling-rate windows as each chunk lands, so
                    # a /metrics scrape mid-batch shows live throughput.
                    evaluations = sum(
                        t.distance_evaluations for t in chunk_traces or ()
                    )
                    observe_query_progress(
                        b - a, evaluations, method=method, registry=registry
                    )
                return out

            parts = exec_.map_ordered(chunk_task, range(len(ranges)))
        finally:
            am._port = original_port
        results: list[list["Neighbor"]] = []
        for part in parts:
            results.extend(part)
        if collector is not None and traces is not None:
            collector.extend(traces)
        return results, traces

    # ------------------------------------------------------------------
    # process-pool execution (chunked, pickled)
    # ------------------------------------------------------------------

    def _run_process(
        self,
        am: "AccessMethod",
        qs: np.ndarray,
        parameter: float,
        exec_: ProcessPoolBatchExecutor,
        collector: TraceCollector | None,
    ) -> tuple[list[list["Neighbor"]], list[QueryTrace] | None]:
        n = qs.shape[0]
        registry = get_registry()
        method = (
            _method_label(am)
            if registry.enabled or get_logger().enabled
            else ""
        )
        context = current_trace_context()
        obs: dict | None = None
        if registry.enabled or context is not None:
            shipped = context
            parent_span = current_span()
            if context is not None and parent_span is not None and parent_span.span_id:
                # Re-root the shipped context at the open batch span so
                # worker chunk spans parent there, not at the trace root.
                shipped = TraceContext(
                    trace_id=context.trace_id,
                    span_id=parent_span.span_id,
                    parent_span_id=parent_span.parent_span_id,
                )
            obs = {
                "context": shipped,
                "metrics": registry.enabled,
                "method": method,
            }
        fn = functools.partial(
            _run_chunk,
            am=am,
            kind=self.kind,
            parameter=float(parameter),
            queries=qs,
            tracing=collector is not None,
            obs=obs,
        )
        # With one chunk (or one worker) the executor runs inline on the
        # parent's own index and counter, so the chunk's evaluations are
        # already in the parent counter; merging the delta again would
        # double-charge.
        pooled = len(exec_.chunks(n)) > 1 and exec_.workers > 1
        try:
            parts = exec_.map_chunks(fn, n)
        except (pickle.PicklingError, AttributeError, TypeError) as exc:
            raise QueryError(
                "the process executor must pickle the index and its distance "
                "function; use module-level distance callables, or the "
                "'thread' executor for unpicklable indexes"
            ) from exc
        results: list[list["Neighbor"]] = []
        all_traces: list[QueryTrace] = []
        counter = getattr(am._port, "_counter", None)
        for part_results, part_traces, part_obs in parts:
            results.extend(part_results)
            if part_obs is not None:
                if pooled and counter is not None:
                    calls, rows = part_obs["delta"]
                    if calls or rows:
                        # Fold the worker's exact evaluation delta into
                        # the parent's CountingDistance: query_costs()
                        # and the registry's delta-synced
                        # repro_distance_evaluations_total then equal
                        # serial execution exactly.
                        counter.add_counts(calls=calls, batch_rows=rows)
                state = part_obs.get("state")
                if state is not None and registry.enabled:
                    registry.merge_state(state)
            if part_traces is not None:
                all_traces.extend(part_traces)
                if registry.enabled:
                    observe_query_progress(
                        len(part_results),
                        sum(t.distance_evaluations for t in part_traces),
                        method=method,
                        registry=registry,
                    )
        if collector is not None:
            collector.extend(all_traces)
        return results, all_traces if collector is not None else None


def run_query_batch(
    am: "AccessMethod",
    kind: str,
    queries: ArrayLike,
    parameter: float,
    *,
    executor: "str | BatchExecutor | None" = None,
    workers: int | None = None,
    chunk_size: int | None = None,
    collector: TraceCollector | None = None,
) -> list[list["Neighbor"]]:
    """Functional shorthand used by ``AccessMethod.*_search_batch``."""
    if kind == "range":
        batch = QueryBatch.range_queries(queries, parameter)
    else:
        batch = QueryBatch.knn_queries(queries, int(parameter))
    return batch.run(
        am,
        executor=executor,
        workers=workers,
        chunk_size=chunk_size,
        collector=collector,
    )
