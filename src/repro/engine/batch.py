"""The batch query planner: many queries, one execution plan.

A :class:`QueryBatch` bundles homogeneous queries (all-range or all-kNN
with shared parameters), validates them once, and executes them against
any :class:`~repro.mam.base.AccessMethod` through a pluggable
:class:`~repro.engine.executors.BatchExecutor`:

* queries are split into contiguous chunks so structures with a
  vectorized batch hook (sequential file, pivot table) amortize their
  per-scan work across the whole chunk;
* the serial executor runs the chunks inline, the thread executor fans
  them out (numpy distance kernels release the GIL), and the process
  executor ships pickled chunks to worker processes for pure-Python
  distances;
* with a :class:`~repro.engine.trace.TraceCollector` attached, every
  query gets a :class:`~repro.engine.trace.QueryTrace` and the access
  method's port is wrapped in a :class:`TracingPort` for the duration of
  the batch.

Results are, by construction, bit-identical to looping the single-query
entry points: chunk hooks reuse the exact per-query search code (or a
reduction that is float-exact), and ordering guarantees are unchanged.
"""

from __future__ import annotations

import functools
import pickle
from time import perf_counter
from typing import TYPE_CHECKING

import numpy as np

from .._typing import ArrayLike, as_vector_batch
from ..exceptions import QueryError
from ..obs import (
    get_registry,
    observe_query_progress,
    record_batch_summary,
    record_traces,
    span,
)
from .executors import (
    BatchExecutor,
    ProcessPoolBatchExecutor,
    SerialExecutor,
    resolve_executor,
)
from .trace import QueryTrace, TraceCollector, TracingPort

if TYPE_CHECKING:  # imported lazily at runtime to keep the layering acyclic
    from ..mam.base import AccessMethod, Neighbor

__all__ = ["QueryBatch"]


def _method_label(am: "AccessMethod") -> str:
    """Registry name of *am* for metric labels (class name as fallback).

    Uses the same label vocabulary as the model layer
    (``method="mtree"``, not ``method="MTree"``), so the funneled batch
    metrics join with the model's distance counters.  Imported lazily:
    the engine sits below :mod:`repro.models` in the layering.
    """
    try:
        from ..models.base import MAM_REGISTRY, SAM_REGISTRY

        for name, cls in {**MAM_REGISTRY, **SAM_REGISTRY}.items():
            if type(am) is cls:
                return name
    except Exception:
        pass
    return type(am).__name__


def _chunk_ranges(n: int, n_chunks: int) -> list[tuple[int, int]]:
    """Split ``[0, n)`` into at most *n_chunks* contiguous ranges."""
    n_chunks = max(1, min(n, n_chunks))
    size = -(-n // n_chunks)  # ceil
    return [(a, min(a + size, n)) for a in range(0, n, size)]


def _run_chunk(
    bounds: tuple[int, int],
    *,
    am: "AccessMethod",
    kind: str,
    parameter: float,
    queries: np.ndarray,
    tracing: bool,
) -> tuple[list[list["Neighbor"]], list[QueryTrace] | None]:
    """Execute one contiguous chunk of the batch (process-pool entry).

    Runs in a worker process: *am* is this process's private copy, so
    wrapping its port for tracing cannot race with anyone.  Traces are
    returned alongside the results and merged by the parent.
    """
    start, stop = bounds
    traces = None
    if tracing:
        traces = [
            QueryTrace(query_index=j, kind=kind, parameter=parameter)
            for j in range(start, stop)
        ]
        am._port = TracingPort(am._port)
    chunk = queries[start:stop]
    if kind == "range":
        results = am._range_search_batch(chunk, parameter, traces=traces)
    else:
        results = am._knn_search_batch(chunk, int(parameter), traces=traces)
    return results, traces


class QueryBatch:
    """A homogeneous batch of similarity queries plus its execution plan.

    Build one with :meth:`range_queries` or :meth:`knn_queries`, then
    :meth:`run` it against an access method.  The planner owns batch-wide
    validation (dimensionality, radius/k) so the per-query hot path skips
    it, and guarantees results in input-query order.
    """

    def __init__(self, kind: str, queries: ArrayLike, parameter: float) -> None:
        if kind not in ("range", "knn"):
            raise QueryError(f"query kind must be 'range' or 'knn', got {kind!r}")
        self.kind = kind
        self.queries = queries
        self.parameter = parameter

    @classmethod
    def range_queries(cls, queries: ArrayLike, radius: float) -> "QueryBatch":
        """A batch of range queries sharing one *radius*."""
        if radius < 0.0:
            raise QueryError(f"radius must be non-negative, got {radius}")
        return cls("range", queries, float(radius))

    @classmethod
    def knn_queries(cls, queries: ArrayLike, k: int) -> "QueryBatch":
        """A batch of kNN queries sharing one *k*."""
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        return cls("knn", queries, int(k))

    def run(
        self,
        am: "AccessMethod",
        *,
        executor: "str | BatchExecutor | None" = None,
        workers: int | None = None,
        chunk_size: int | None = None,
        collector: TraceCollector | None = None,
    ) -> list[list["Neighbor"]]:
        """Execute the batch, returning one result list per query.

        Parameters
        ----------
        am:
            Any access method.
        executor:
            ``"serial"``, ``"thread"``, ``"process"``, an executor
            instance, or ``None`` (serial, or threads when *workers*
            asks for parallelism).
        workers, chunk_size:
            Forwarded to the executor when it is built from a name.
        collector:
            Attach to receive one :class:`QueryTrace` per query.  With
            the process executor, traces are recorded in the workers and
            merged back; note that in that case any in-process
            ``CountingDistance`` owned by the caller will *not* observe
            the workers' evaluations — the traces are the authoritative
            per-query counts.

        When an observability registry is active (see
        :mod:`repro.obs`), every executed batch is additionally funneled
        into it: per-query traces (collected internally when no
        *collector* was passed), a ``repro_batch_seconds`` observation
        measured around the whole batch, and a ``query/batch/<kind>``
        span.
        """
        queries = np.asarray(self.queries, dtype=np.float64)
        if queries.size == 0:
            return []
        qs = as_vector_batch(queries, am.dim, name="queries")
        parameter = self.parameter
        if self.kind == "knn":
            parameter = min(int(parameter), am.size)
        exec_ = resolve_executor(executor, workers=workers, chunk_size=chunk_size)
        registry = get_registry()
        method = _method_label(am) if registry.enabled else type(am).__name__
        # With a live registry but no caller-owned collector, trace into a
        # private one so the registry still sees per-query records.
        funnel = collector
        if funnel is None and registry.enabled:
            funnel = TraceCollector()
        with span(f"query/batch/{self.kind}", method=method):
            start = perf_counter()
            if isinstance(exec_, ProcessPoolBatchExecutor):
                results, run_traces = self._run_process(am, qs, parameter, exec_, funnel)
            else:
                results, run_traces = self._run_in_process(am, qs, parameter, exec_, funnel)
            elapsed = perf_counter() - start
        if funnel is not None:
            funnel.add_batch_seconds(elapsed)
        if registry.enabled and run_traces is not None:
            record_traces(run_traces, registry=registry, method=method)
            batch = TraceCollector()
            batch.extend(run_traces)
            batch.add_batch_seconds(elapsed)
            record_batch_summary(
                batch.summary(), registry=registry, method=method, kind=self.kind
            )
        return results

    # ------------------------------------------------------------------
    # in-process execution (serial / threads)
    # ------------------------------------------------------------------

    def _run_in_process(
        self,
        am: "AccessMethod",
        qs: np.ndarray,
        parameter: float,
        exec_: BatchExecutor,
        collector: TraceCollector | None,
    ) -> tuple[list[list["Neighbor"]], list[QueryTrace] | None]:
        n = qs.shape[0]
        traces: list[QueryTrace] | None = None
        original_port = am._port
        if collector is not None:
            traces = [
                QueryTrace(query_index=j, kind=self.kind, parameter=float(self.parameter))
                for j in range(n)
            ]
            am._port = TracingPort(original_port)
        try:
            if isinstance(exec_, SerialExecutor):
                ranges = [(0, n)]
            else:
                # A few chunks per worker balances load while keeping the
                # vectorized batch hooks' per-chunk work worthwhile.
                workers = getattr(exec_, "workers", 1)
                ranges = _chunk_ranges(n, workers * 4)

            registry = get_registry()
            method = _method_label(am) if registry.enabled else ""

            def chunk_task(ci: int) -> list[list["Neighbor"]]:
                a, b = ranges[ci]
                chunk_traces = traces[a:b] if traces is not None else None
                if self.kind == "range":
                    out = am._range_search_batch(qs[a:b], parameter, traces=chunk_traces)
                else:
                    out = am._knn_search_batch(qs[a:b], int(parameter), traces=chunk_traces)
                if registry.enabled:
                    # Feed the rolling-rate windows as each chunk lands, so
                    # a /metrics scrape mid-batch shows live throughput.
                    evaluations = sum(
                        t.distance_evaluations for t in chunk_traces or ()
                    )
                    observe_query_progress(
                        b - a, evaluations, method=method, registry=registry
                    )
                return out

            parts = exec_.map_ordered(chunk_task, range(len(ranges)))
        finally:
            am._port = original_port
        results: list[list["Neighbor"]] = []
        for part in parts:
            results.extend(part)
        if collector is not None and traces is not None:
            collector.extend(traces)
        return results, traces

    # ------------------------------------------------------------------
    # process-pool execution (chunked, pickled)
    # ------------------------------------------------------------------

    def _run_process(
        self,
        am: "AccessMethod",
        qs: np.ndarray,
        parameter: float,
        exec_: ProcessPoolBatchExecutor,
        collector: TraceCollector | None,
    ) -> tuple[list[list["Neighbor"]], list[QueryTrace] | None]:
        n = qs.shape[0]
        fn = functools.partial(
            _run_chunk,
            am=am,
            kind=self.kind,
            parameter=float(parameter),
            queries=qs,
            tracing=collector is not None,
        )
        try:
            parts = exec_.map_chunks(fn, n)
        except (pickle.PicklingError, AttributeError, TypeError) as exc:
            raise QueryError(
                "the process executor must pickle the index and its distance "
                "function; use module-level distance callables, or the "
                "'thread' executor for unpicklable indexes"
            ) from exc
        results: list[list["Neighbor"]] = []
        all_traces: list[QueryTrace] = []
        registry = get_registry()
        method = _method_label(am) if registry.enabled else ""
        for part_results, part_traces in parts:
            results.extend(part_results)
            if part_traces is not None:
                all_traces.extend(part_traces)
                if registry.enabled:
                    observe_query_progress(
                        len(part_results),
                        sum(t.distance_evaluations for t in part_traces),
                        method=method,
                        registry=registry,
                    )
        if collector is not None:
            collector.extend(all_traces)
        return results, all_traces if collector is not None else None


def run_query_batch(
    am: "AccessMethod",
    kind: str,
    queries: ArrayLike,
    parameter: float,
    *,
    executor: "str | BatchExecutor | None" = None,
    workers: int | None = None,
    chunk_size: int | None = None,
    collector: TraceCollector | None = None,
) -> list[list["Neighbor"]]:
    """Functional shorthand used by ``AccessMethod.*_search_batch``."""
    if kind == "range":
        batch = QueryBatch.range_queries(queries, parameter)
    else:
        batch = QueryBatch.knn_queries(queries, int(parameter))
    return batch.run(
        am,
        executor=executor,
        workers=workers,
        chunk_size=chunk_size,
        collector=collector,
    )
