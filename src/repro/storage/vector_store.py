"""Disk-backed vector storage: fixed-length records packed into pages.

This is the binary layout behind the paper's "sequential file" MAM
(Section 4.1): appending a vector writes its coordinates into the next
free slot; a sequential scan reads the pages in order through the LRU
cache, paying one physical read per page not resident.  Records default to
``float64``; a ``float32`` store halves the footprint at the cost of
rounding each stored coordinate once.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..exceptions import DimensionMismatchError, PageError, StorageError
from .cache import LRUPageCache
from .pages import DEFAULT_PAGE_SIZE, PagedFile

__all__ = ["VectorStore"]

_RECORD_DTYPES = (np.dtype(np.float64), np.dtype(np.float32))


class VectorStore:
    """Append-only store of fixed-dimensionality float vectors.

    Parameters
    ----------
    dim:
        Vector dimensionality; fixed for the lifetime of the store.
    page_size:
        Page payload size in bytes; must fit at least one record.
    cache_pages:
        LRU cache capacity in pages.
    path:
        Optional real file backing; in-memory by default.
    read_latency:
        Simulated seconds per physical page read (see
        :class:`~repro.storage.pages.PagedFile`).
    dtype:
        On-disk record precision, ``float64`` (default) or ``float32``.
        Reads always return ``float64`` arrays; with a ``float32`` store
        each coordinate passes through one precision-halving round-trip.
    """

    def __init__(
        self,
        dim: int,
        *,
        page_size: int = DEFAULT_PAGE_SIZE,
        cache_pages: int = 64,
        path: str | None = None,
        read_latency: float = 0.0,
        dtype: str | np.dtype = "float64",
    ) -> None:
        if dim < 1:
            raise StorageError(f"dim must be >= 1, got {dim}")
        record_dtype = np.dtype(dtype)
        if record_dtype not in _RECORD_DTYPES:
            names = ", ".join(str(d) for d in _RECORD_DTYPES)
            raise StorageError(
                f"record dtype must be one of {names}, got {record_dtype}"
            )
        record = dim * record_dtype.itemsize
        if record > page_size:
            raise StorageError(
                f"a {dim}-d {record_dtype} record ({record} B) does not fit "
                f"a {page_size} B page; raise page_size"
            )
        self._dim = dim
        self._dtype = record_dtype
        self._record_size = record
        self._per_page = page_size // record
        self._file = PagedFile(page_size, path=path, read_latency=read_latency)
        self._cache = LRUPageCache(self._file, cache_pages)
        self._count = 0

    @property
    def dim(self) -> int:
        """Vector dimensionality."""
        return self._dim

    @property
    def dtype(self) -> np.dtype:
        """On-disk record precision."""
        return self._dtype

    @property
    def record_size(self) -> int:
        """Bytes per stored vector record."""
        return self._record_size

    def __len__(self) -> int:
        return self._count

    @property
    def records_per_page(self) -> int:
        """How many vectors share one page."""
        return self._per_page

    @property
    def cache(self) -> LRUPageCache:
        """The LRU page cache (for stats and capacity introspection)."""
        return self._cache

    def append(self, vector: np.ndarray) -> int:
        """Append one vector, returning its record index."""
        arr = np.ascontiguousarray(vector, dtype=self._dtype)
        if arr.shape != (self._dim,):
            raise DimensionMismatchError(
                f"expected shape ({self._dim},), got {arr.shape}"
            )
        page_id, slot = divmod(self._count, self._per_page)
        if slot == 0:
            allocated = self._cache.allocate()
            if allocated != page_id:  # pragma: no cover - defensive
                raise PageError(f"allocation out of order: {allocated} != {page_id}")
            payload = bytearray(self._file.page_size)
        else:
            payload = bytearray(self._cache.read_page(page_id))
        offset = slot * self._record_size
        payload[offset : offset + self._record_size] = arr.tobytes()
        self._cache.write_page(page_id, bytes(payload))
        index = self._count
        self._count += 1
        return index

    def extend(self, batch: np.ndarray) -> None:
        """Append every row of *batch*."""
        rows = np.atleast_2d(np.asarray(batch, dtype=np.float64))
        for row in rows:
            self.append(row)

    def get(self, index: int) -> np.ndarray:
        """Read the vector at record *index* (through the cache)."""
        if not 0 <= index < self._count:
            raise PageError(f"record index {index} out of range [0, {self._count})")
        page_id, slot = divmod(index, self._per_page)
        payload = self._cache.read_page(page_id)
        offset = slot * self._record_size
        return (
            np.frombuffer(payload, dtype=self._dtype, count=self._dim, offset=offset)
            .astype(np.float64)
        )

    def scan(self) -> Iterator[tuple[int, np.ndarray]]:
        """Iterate ``(index, vector)`` in storage order, page by page."""
        for start in range(0, self._count, self._per_page):
            page_id = start // self._per_page
            payload = self._cache.read_page(page_id)
            in_page = min(self._per_page, self._count - start)
            block = np.frombuffer(
                payload, dtype=self._dtype, count=in_page * self._dim
            ).reshape(in_page, self._dim)
            for slot in range(in_page):
                yield start + slot, block[slot].astype(np.float64)

    def scan_pages(self) -> Iterator[tuple[int, np.ndarray]]:
        """Iterate ``(first_index, rows)`` one page at a time (vectorized scan)."""
        for start in range(0, self._count, self._per_page):
            page_id = start // self._per_page
            payload = self._cache.read_page(page_id)
            in_page = min(self._per_page, self._count - start)
            rows = np.frombuffer(
                payload, dtype=self._dtype, count=in_page * self._dim
            ).reshape(in_page, self._dim)
            yield start, rows.astype(np.float64)

    def close(self) -> None:
        """Close the backing paged file."""
        self._file.close()

    def __enter__(self) -> "VectorStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
