"""Disk-backed vector storage: fixed-length records packed into pages.

This is the binary layout behind the paper's "sequential file" MAM
(Section 4.1): appending a vector writes its ``float64`` coordinates into
the next free slot; a sequential scan reads the pages in order through the
LRU cache, paying one physical read per page not resident.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..exceptions import DimensionMismatchError, PageError, StorageError
from .cache import LRUPageCache
from .pages import DEFAULT_PAGE_SIZE, PagedFile

__all__ = ["VectorStore"]

_FLOAT_BYTES = 8


class VectorStore:
    """Append-only store of fixed-dimensionality ``float64`` vectors.

    Parameters
    ----------
    dim:
        Vector dimensionality; fixed for the lifetime of the store.
    page_size:
        Page payload size in bytes; must fit at least one record.
    cache_pages:
        LRU cache capacity in pages.
    path:
        Optional real file backing; in-memory by default.
    read_latency:
        Simulated seconds per physical page read (see
        :class:`~repro.storage.pages.PagedFile`).
    """

    def __init__(
        self,
        dim: int,
        *,
        page_size: int = DEFAULT_PAGE_SIZE,
        cache_pages: int = 64,
        path: str | None = None,
        read_latency: float = 0.0,
    ) -> None:
        if dim < 1:
            raise StorageError(f"dim must be >= 1, got {dim}")
        record = dim * _FLOAT_BYTES
        if record > page_size:
            raise StorageError(
                f"a {dim}-d float64 record ({record} B) does not fit a "
                f"{page_size} B page; raise page_size"
            )
        self._dim = dim
        self._record_size = record
        self._per_page = page_size // record
        self._file = PagedFile(page_size, path=path, read_latency=read_latency)
        self._cache = LRUPageCache(self._file, cache_pages)
        self._count = 0

    @property
    def dim(self) -> int:
        """Vector dimensionality."""
        return self._dim

    def __len__(self) -> int:
        return self._count

    @property
    def records_per_page(self) -> int:
        """How many vectors share one page."""
        return self._per_page

    @property
    def cache(self) -> LRUPageCache:
        """The LRU page cache (for stats and capacity introspection)."""
        return self._cache

    def append(self, vector: np.ndarray) -> int:
        """Append one vector, returning its record index."""
        arr = np.ascontiguousarray(vector, dtype=np.float64)
        if arr.shape != (self._dim,):
            raise DimensionMismatchError(
                f"expected shape ({self._dim},), got {arr.shape}"
            )
        page_id, slot = divmod(self._count, self._per_page)
        if slot == 0:
            allocated = self._cache.allocate()
            if allocated != page_id:  # pragma: no cover - defensive
                raise PageError(f"allocation out of order: {allocated} != {page_id}")
            payload = bytearray(self._file.page_size)
        else:
            payload = bytearray(self._cache.read_page(page_id))
        offset = slot * self._record_size
        payload[offset : offset + self._record_size] = arr.tobytes()
        self._cache.write_page(page_id, bytes(payload))
        index = self._count
        self._count += 1
        return index

    def extend(self, batch: np.ndarray) -> None:
        """Append every row of *batch*."""
        rows = np.atleast_2d(np.asarray(batch, dtype=np.float64))
        for row in rows:
            self.append(row)

    def get(self, index: int) -> np.ndarray:
        """Read the vector at record *index* (through the cache)."""
        if not 0 <= index < self._count:
            raise PageError(f"record index {index} out of range [0, {self._count})")
        page_id, slot = divmod(index, self._per_page)
        payload = self._cache.read_page(page_id)
        offset = slot * self._record_size
        return np.frombuffer(payload, dtype=np.float64, count=self._dim, offset=offset).copy()

    def scan(self) -> Iterator[tuple[int, np.ndarray]]:
        """Iterate ``(index, vector)`` in storage order, page by page."""
        for start in range(0, self._count, self._per_page):
            page_id = start // self._per_page
            payload = self._cache.read_page(page_id)
            in_page = min(self._per_page, self._count - start)
            block = np.frombuffer(
                payload, dtype=np.float64, count=in_page * self._dim
            ).reshape(in_page, self._dim)
            for slot in range(in_page):
                yield start + slot, block[slot].copy()

    def scan_pages(self) -> Iterator[tuple[int, np.ndarray]]:
        """Iterate ``(first_index, rows)`` one page at a time (vectorized scan)."""
        for start in range(0, self._count, self._per_page):
            page_id = start // self._per_page
            payload = self._cache.read_page(page_id)
            in_page = min(self._per_page, self._count - start)
            rows = np.frombuffer(
                payload, dtype=np.float64, count=in_page * self._dim
            ).reshape(in_page, self._dim)
            yield start, rows.copy()

    def close(self) -> None:
        """Close the backing paged file."""
        self._file.close()

    def __enter__(self) -> "VectorStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
