"""Fixed-size LRU page cache (paper Section 5.3).

The paper explains the relative slowdown of query processing on its largest
databases by "a fixed-size disk cache used in the experiments".  This cache
reproduces that behaviour: while the working set fits, queries touch the
disk only once; once the database outgrows ``capacity`` pages, every scan
starts faulting and the cost curve bends upward (bench E_A4).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from ..exceptions import StorageError
from .pages import PagedFile

__all__ = ["CacheStats", "LRUPageCache"]


@dataclass
class CacheStats:
    """Hit/fault counters of an :class:`LRUPageCache`.

    Reads and writes are counted separately: ``hits``/``faults`` cover
    the read path (a fault is a physical read), ``write_hits``/
    ``write_faults`` cover the write-through path (a *write hit*
    refreshes a resident page, a *write fault* installs a page that was
    not cached).  Write-heavy workloads — bulk loads, dynamic inserts —
    would otherwise report a misleading hit rate built from reads alone.
    """

    hits: int = 0
    faults: int = 0
    write_hits: int = 0
    write_faults: int = 0

    @property
    def accesses(self) -> int:
        """Read accesses through the cache."""
        return self.hits + self.faults

    @property
    def hit_rate(self) -> float:
        """Fraction of reads served from the cache (0 when untouched)."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    @property
    def write_accesses(self) -> int:
        """Write accesses through the cache."""
        return self.write_hits + self.write_faults

    @property
    def write_hit_rate(self) -> float:
        """Fraction of writes that refreshed an already-resident page."""
        if self.write_accesses == 0:
            return 0.0
        return self.write_hits / self.write_accesses

    @property
    def total_accesses(self) -> int:
        """All page accesses, reads and writes."""
        return self.accesses + self.write_accesses

    @property
    def combined_hit_rate(self) -> float:
        """Fraction of all accesses (reads + writes) that hit the cache."""
        if self.total_accesses == 0:
            return 0.0
        return (self.hits + self.write_hits) / self.total_accesses

    @property
    def combined_rate(self) -> float:
        """Alias of :attr:`combined_hit_rate`.

        The name the observability cache instrument
        (:func:`repro.obs.instruments.record_cache_stats`) reads, kept
        separate so the duck-typed adapter has a stable, short contract.
        """
        return self.combined_hit_rate

    def reset(self) -> None:
        """Zero the counters."""
        self.hits = 0
        self.faults = 0
        self.write_hits = 0
        self.write_faults = 0


class LRUPageCache:
    """Least-recently-used cache in front of a :class:`PagedFile`.

    Writes are write-through: the page goes to the backing file immediately
    and the cached copy (if any) is refreshed, so a crash-free read path
    never observes stale data.

    Parameters
    ----------
    backing:
        The paged file to cache.
    capacity:
        Cache size in pages; must be at least 1.
    """

    def __init__(self, backing: PagedFile, capacity: int) -> None:
        if capacity < 1:
            raise StorageError(f"cache capacity must be >= 1 page, got {capacity}")
        self._backing = backing
        self._capacity = capacity
        self._pages: OrderedDict[int, bytes] = OrderedDict()
        self._stats = CacheStats()
        # Queries from the batch engine's thread executor share this
        # cache; the LRU bookkeeping is check-then-act and must not race.
        self._lock = threading.RLock()

    @property
    def capacity(self) -> int:
        """Cache capacity in pages."""
        return self._capacity

    @property
    def stats(self) -> CacheStats:
        """Hit/fault counters."""
        return self._stats

    @property
    def backing(self) -> PagedFile:
        """The underlying paged file."""
        return self._backing

    def __len__(self) -> int:
        with self._lock:
            return len(self._pages)

    def read_page(self, page_id: int) -> bytes:
        """Read a page, serving from the cache when possible.

        Thread-safe: concurrent readers (the batch engine's thread
        executor) serialize on the LRU bookkeeping.
        """
        with self._lock:
            if page_id in self._pages:
                self._stats.hits += 1
                self._pages.move_to_end(page_id)
                return self._pages[page_id]
            self._stats.faults += 1
            data = self._backing.read_page(page_id)
            self._insert(page_id, data)
            return data

    def write_page(self, page_id: int, payload: bytes) -> None:
        """Write-through a page and refresh the cached copy.

        Counted in the write-path statistics: refreshing a resident page
        is a write hit, installing a non-resident one a write fault.
        """
        with self._lock:
            self._backing.write_page(page_id, payload)
            padded = payload.ljust(self._backing.page_size, b"\x00")
            if page_id in self._pages:
                self._stats.write_hits += 1
                self._pages[page_id] = padded
                self._pages.move_to_end(page_id)
            else:
                self._stats.write_faults += 1
                self._insert(page_id, padded)

    def allocate(self) -> int:
        """Allocate a page in the backing file."""
        return self._backing.allocate()

    def _insert(self, page_id: int, data: bytes) -> None:
        self._pages[page_id] = data
        self._pages.move_to_end(page_id)
        while len(self._pages) > self._capacity:
            self._pages.popitem(last=False)

    def clear(self, *, reset_stats: bool = False) -> None:
        """Drop all cached pages.

        Counters are kept by default (the historical behaviour, which
        lets a warm-up phase stay visible in the totals).  Benchmarks
        that reuse one store across repetitions pass ``reset_stats=True``
        so each run's hit/fault rates start from zero instead of
        accumulating the previous runs' traffic.
        """
        with self._lock:
            self._pages.clear()
            if reset_stats:
                self._stats.reset()
