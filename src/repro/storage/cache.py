"""Fixed-size LRU page cache (paper Section 5.3).

The paper explains the relative slowdown of query processing on its largest
databases by "a fixed-size disk cache used in the experiments".  This cache
reproduces that behaviour: while the working set fits, queries touch the
disk only once; once the database outgrows ``capacity`` pages, every scan
starts faulting and the cost curve bends upward (bench E_A4).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..exceptions import StorageError
from .pages import PagedFile

__all__ = ["CacheStats", "LRUPageCache"]


@dataclass
class CacheStats:
    """Hit/fault counters of an :class:`LRUPageCache`."""

    hits: int = 0
    faults: int = 0

    @property
    def accesses(self) -> int:
        """Total page accesses through the cache."""
        return self.hits + self.faults

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses served from the cache (0 when untouched)."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def reset(self) -> None:
        """Zero the counters."""
        self.hits = 0
        self.faults = 0


class LRUPageCache:
    """Least-recently-used cache in front of a :class:`PagedFile`.

    Writes are write-through: the page goes to the backing file immediately
    and the cached copy (if any) is refreshed, so a crash-free read path
    never observes stale data.

    Parameters
    ----------
    backing:
        The paged file to cache.
    capacity:
        Cache size in pages; must be at least 1.
    """

    def __init__(self, backing: PagedFile, capacity: int) -> None:
        if capacity < 1:
            raise StorageError(f"cache capacity must be >= 1 page, got {capacity}")
        self._backing = backing
        self._capacity = capacity
        self._pages: OrderedDict[int, bytes] = OrderedDict()
        self._stats = CacheStats()

    @property
    def capacity(self) -> int:
        """Cache capacity in pages."""
        return self._capacity

    @property
    def stats(self) -> CacheStats:
        """Hit/fault counters."""
        return self._stats

    @property
    def backing(self) -> PagedFile:
        """The underlying paged file."""
        return self._backing

    def __len__(self) -> int:
        return len(self._pages)

    def read_page(self, page_id: int) -> bytes:
        """Read a page, serving from the cache when possible."""
        if page_id in self._pages:
            self._stats.hits += 1
            self._pages.move_to_end(page_id)
            return self._pages[page_id]
        self._stats.faults += 1
        data = self._backing.read_page(page_id)
        self._insert(page_id, data)
        return data

    def write_page(self, page_id: int, payload: bytes) -> None:
        """Write-through a page and refresh the cached copy."""
        self._backing.write_page(page_id, payload)
        padded = payload.ljust(self._backing.page_size, b"\x00")
        if page_id in self._pages:
            self._pages[page_id] = padded
            self._pages.move_to_end(page_id)
        else:
            self._insert(page_id, padded)

    def allocate(self) -> int:
        """Allocate a page in the backing file."""
        return self._backing.allocate()

    def _insert(self, page_id: int, data: bytes) -> None:
        self._pages[page_id] = data
        self._pages.move_to_end(page_id)
        while len(self._pages) > self._capacity:
            self._pages.popitem(last=False)

    def clear(self) -> None:
        """Drop all cached pages (counters are kept)."""
        self._pages.clear()
