"""Disk substrate: paged files, a fixed-size LRU cache, and vector storage.

Reproduces the secondary-memory environment of the paper's experiments,
including the Section 5.3 "fixed-size disk cache" whose overflow bends the
query-time curves on the largest databases (ablation bench E_A4).
"""

from .cache import CacheStats, LRUPageCache
from .pages import DEFAULT_PAGE_SIZE, PagedFile, PageStats
from .vector_store import VectorStore

__all__ = [
    "PagedFile",
    "PageStats",
    "DEFAULT_PAGE_SIZE",
    "LRUPageCache",
    "CacheStats",
    "VectorStore",
]
