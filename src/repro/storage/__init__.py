"""Disk substrate: paged files, a fixed-size LRU cache, and vector storage.

Reproduces the secondary-memory environment of the paper's experiments,
including the Section 5.3 "fixed-size disk cache" whose overflow bends the
query-time curves on the largest databases (ablation bench E_A4).

Two record backends share the vector-store API: the paged
:class:`VectorStore` (explicit pages + LRU cache + physical-I/O
accounting, the paper's simulated disk) and the memory-mapped
:class:`MmapVectorStore` (``np.memmap`` float32 records behind zero-copy
row views — the out-of-core backend for the 1M x 512-d testbed).
"""

from .cache import CacheStats, LRUPageCache
from .mmap_store import MmapVectorStore
from .pages import DEFAULT_PAGE_SIZE, PagedFile, PageStats
from .vector_store import VectorStore

__all__ = [
    "PagedFile",
    "PageStats",
    "DEFAULT_PAGE_SIZE",
    "LRUPageCache",
    "CacheStats",
    "MmapVectorStore",
    "VectorStore",
]
