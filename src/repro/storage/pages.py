"""Paged binary storage — the disk substrate (paper Section 5.3).

The paper's indexes live in secondary memory behind a *fixed-size disk
cache*; Section 5.3 attributes the relative slowdown on the largest
databases to that cache overflowing.  To reproduce the effect
deterministically we model a disk as an array of fixed-size pages with
explicit read/write accounting (and optional simulated latency), fronted by
the LRU cache in :mod:`repro.storage.cache`.

:class:`PagedFile` supports both a RAM-backed mode (fast, used by tests)
and a real file on disk.
"""

from __future__ import annotations

import io
import os
import time
from dataclasses import dataclass

from ..exceptions import PageError, StorageError

__all__ = ["PageStats", "PagedFile", "DEFAULT_PAGE_SIZE"]

#: Default page size in bytes; 4 KiB like a common filesystem block.
DEFAULT_PAGE_SIZE = 4096


@dataclass
class PageStats:
    """Physical I/O counters of a :class:`PagedFile`."""

    reads: int = 0
    writes: int = 0

    def reset(self) -> None:
        """Zero the counters."""
        self.reads = 0
        self.writes = 0


class PagedFile:
    """A file of fixed-size pages with physical-I/O accounting.

    Parameters
    ----------
    page_size:
        Page payload size in bytes.
    path:
        When given, pages live in a real file at *path*; otherwise in an
        in-memory buffer (still paying the accounting, which is what the
        experiments measure).
    read_latency:
        Optional simulated seconds per physical page read; lets benches
        exaggerate the cost gap between cached and uncached access without
        real spinning rust.
    """

    def __init__(
        self,
        page_size: int = DEFAULT_PAGE_SIZE,
        *,
        path: str | os.PathLike[str] | None = None,
        read_latency: float = 0.0,
    ) -> None:
        if page_size < 16:
            raise StorageError(f"page_size must be >= 16 bytes, got {page_size}")
        if read_latency < 0.0:
            raise StorageError("read_latency must be non-negative")
        self._page_size = page_size
        self._read_latency = read_latency
        self._n_pages = 0
        self._stats = PageStats()
        self._path = os.fspath(path) if path is not None else None
        if self._path is None:
            self._buffer: io.BytesIO | None = io.BytesIO()
            self._file = None
        else:
            self._buffer = None
            self._file = open(self._path, "w+b")

    @property
    def page_size(self) -> int:
        """Page payload size in bytes."""
        return self._page_size

    @property
    def n_pages(self) -> int:
        """Number of allocated pages."""
        return self._n_pages

    @property
    def stats(self) -> PageStats:
        """Physical I/O counters (reads bypass the cache layer only)."""
        return self._stats

    def _backend(self) -> io.BufferedRandom | io.BytesIO:
        backend = self._file if self._file is not None else self._buffer
        if backend is None:  # pragma: no cover - defensive
            raise StorageError("paged file is closed")
        return backend

    def allocate(self) -> int:
        """Allocate a zero-filled page, returning its page id."""
        backend = self._backend()
        page_id = self._n_pages
        backend.seek(page_id * self._page_size)
        backend.write(b"\x00" * self._page_size)
        self._n_pages += 1
        return page_id

    def _check_page_id(self, page_id: int) -> None:
        if not 0 <= page_id < self._n_pages:
            raise PageError(f"page id {page_id} out of range [0, {self._n_pages})")

    def write_page(self, page_id: int, payload: bytes) -> None:
        """Write *payload* (at most one page) to page *page_id*."""
        self._check_page_id(page_id)
        if len(payload) > self._page_size:
            raise PageError(
                f"payload of {len(payload)} bytes exceeds page size {self._page_size}"
            )
        backend = self._backend()
        backend.seek(page_id * self._page_size)
        backend.write(payload.ljust(self._page_size, b"\x00"))
        self._stats.writes += 1

    def read_page(self, page_id: int) -> bytes:
        """Read the full payload of page *page_id* (a physical read)."""
        self._check_page_id(page_id)
        if self._read_latency > 0.0:
            time.sleep(self._read_latency)
        backend = self._backend()
        backend.seek(page_id * self._page_size)
        data = backend.read(self._page_size)
        if len(data) != self._page_size:
            raise PageError(f"short read on page {page_id}")
        self._stats.reads += 1
        return data

    def close(self) -> None:
        """Release the backing file or buffer."""
        if self._file is not None:
            self._file.close()
            self._file = None
        self._buffer = None

    def __enter__(self) -> "PagedFile":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
