"""Memory-mapped vector storage — the out-of-core record backend.

The paper's testbed (1M Flickr histograms at 512 dimensions) does not fit
the heap-resident float64 arrays the in-memory path uses (~4 GB for the
raw copy alone).  :class:`MmapVectorStore` keeps the records in a single
``np.memmap`` file of packed float32 (or float64) rows instead: the
operating system pages vector data in and out on demand, the process RSS
stays bounded by the working set, and the blocked kernels
(:mod:`repro.kernels.blocked`) stream row-range *views* of the mapping
without ever copying the whole store.

The record API mirrors :class:`~repro.storage.vector_store.VectorStore`
(``append`` / ``extend`` / ``get`` / ``scan`` / ``scan_pages`` /
``len``), so call sites written against the paged store work unchanged;
on top of it sit the zero-copy accessors the out-of-core path needs:
``rows`` (one stable view of all records), ``row_range`` and
``iter_blocks`` (tile streaming), and ``drop_pages`` (return clean
resident pages to the OS between build phases).

Unlike the paged store there is no LRU cache or physical-I/O accounting
in front of the mapping — the kernel's page cache plays that role; the
logical *distance* accounting that the experiments measure is unaffected
(it lives in :class:`repro.mam.base.DistancePort`).
"""

from __future__ import annotations

import mmap as _mmap
import os
import tempfile
from typing import Iterator

import numpy as np

from ..exceptions import DimensionMismatchError, PageError, StorageError

__all__ = ["MmapVectorStore"]

_RECORD_DTYPES = (np.dtype(np.float64), np.dtype(np.float32))

#: Initial capacity (rows) of a store created without an explicit one.
_INITIAL_CAPACITY = 1024


class MmapVectorStore:
    """Append-only store of fixed-dimensionality vectors in one memmap file.

    Parameters
    ----------
    dim:
        Vector dimensionality; fixed for the lifetime of the store.
    dtype:
        On-disk record precision, ``float32`` (default — this is the
        out-of-core backend, halving the footprint is the point) or
        ``float64``.  Like :class:`~repro.storage.vector_store.VectorStore`,
        record-level reads return float64; a float32 store rounds each
        stored coordinate once on write.
    path:
        Backing file path.  When omitted, a temporary file is created and
        removed on :meth:`close`; an explicit path persists.
    capacity:
        Initial capacity in rows; the file grows by doubling as records
        are appended.  Pre-sizing to the final count avoids remaps (which
        invalidate previously handed-out views).

    Notes
    -----
    Row views (:attr:`rows`, :meth:`row_range`, :meth:`iter_blocks`)
    alias the live mapping: they are zero-copy, read-only, and remain
    valid only until the next capacity growth.  Freeze the store (stop
    appending) before handing views to an index build.
    """

    def __init__(
        self,
        dim: int,
        *,
        dtype: str | np.dtype = "float32",
        path: str | os.PathLike[str] | None = None,
        capacity: int = 0,
    ) -> None:
        if dim < 1:
            raise StorageError(f"dim must be >= 1, got {dim}")
        record_dtype = np.dtype(dtype)
        if record_dtype not in _RECORD_DTYPES:
            names = ", ".join(str(d) for d in _RECORD_DTYPES)
            raise StorageError(
                f"record dtype must be one of {names}, got {record_dtype}"
            )
        if capacity < 0:
            raise StorageError(f"capacity must be >= 0, got {capacity}")
        self._dim = dim
        self._dtype = record_dtype
        self._record_size = dim * record_dtype.itemsize
        self._count = 0
        self._capacity = 0
        self._mm: np.memmap | None = None
        if path is None:
            fd, self._path = tempfile.mkstemp(prefix="repro-vectors-", suffix=".mmap")
            os.close(fd)
            self._owns_file = True
        else:
            self._path = os.fspath(path)
            self._owns_file = False
            open(self._path, "a+b").close()
        self._closed = False
        if capacity:
            self._grow(capacity)

    # ------------------------------------------------------------------
    # introspection (VectorStore parity)
    # ------------------------------------------------------------------

    @property
    def dim(self) -> int:
        """Vector dimensionality."""
        return self._dim

    @property
    def dtype(self) -> np.dtype:
        """On-disk record precision."""
        return self._dtype

    @property
    def record_size(self) -> int:
        """Bytes per stored vector record."""
        return self._record_size

    @property
    def path(self) -> str:
        """The backing file path."""
        return self._path

    @property
    def capacity(self) -> int:
        """Currently mapped capacity in rows."""
        return self._capacity

    @property
    def nbytes(self) -> float:
        """Bytes of record payload currently stored."""
        return self._count * self._record_size

    def __len__(self) -> int:
        return self._count

    # ------------------------------------------------------------------
    # growth / lifecycle
    # ------------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError("memory-mapped store is closed")

    def _grow(self, min_capacity: int) -> None:
        """Extend the backing file and remap (invalidates old views)."""
        new_capacity = max(self._capacity, _INITIAL_CAPACITY)
        while new_capacity < min_capacity:
            new_capacity *= 2
        new_capacity = max(new_capacity, min_capacity)
        if self._mm is not None:
            self._mm.flush()
            del self._mm
        with open(self._path, "r+b") as fh:
            fh.truncate(new_capacity * self._record_size)
        self._mm = np.memmap(
            self._path, dtype=self._dtype, mode="r+", shape=(new_capacity, self._dim)
        )
        self._capacity = new_capacity

    def ensure_capacity(self, rows: int) -> None:
        """Pre-size the mapping so *rows* records fit without remapping."""
        self._check_open()
        if rows > self._capacity:
            self._grow(rows)

    def flush(self) -> None:
        """Write dirty mapped pages back to the file."""
        self._check_open()
        if self._mm is not None:
            self._mm.flush()

    def drop_pages(self) -> bool:
        """Hint the OS to evict this mapping's resident pages.

        Flushes first, then issues ``madvise(MADV_DONTNEED)`` over the
        whole mapping — clean pages are returned to the OS immediately,
        bounding the measured peak RSS between phases.  Returns ``False``
        (and does nothing) on platforms without ``MADV_DONTNEED``.
        """
        self._check_open()
        if self._mm is None or not hasattr(_mmap, "MADV_DONTNEED"):
            return False
        self._mm.flush()
        # np.memmap keeps the underlying mmap object in ._mmap; madvise
        # over the full mapping needs no page-range arithmetic.
        self._mm._mmap.madvise(_mmap.MADV_DONTNEED)
        return True

    def close(self) -> None:
        """Flush, unmap, and remove the backing file if it was temporary."""
        if self._closed:
            return
        if self._mm is not None:
            self._mm.flush()
            del self._mm
            self._mm = None
        if self._owns_file:
            try:
                os.unlink(self._path)
            except OSError:
                pass
        self._closed = True

    def __enter__(self) -> "MmapVectorStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def append(self, vector: np.ndarray) -> int:
        """Append one vector, returning its record index."""
        self._check_open()
        arr = np.ascontiguousarray(vector, dtype=self._dtype)
        if arr.shape != (self._dim,):
            raise DimensionMismatchError(
                f"expected shape ({self._dim},), got {arr.shape}"
            )
        if self._count + 1 > self._capacity:
            self._grow(self._count + 1)
        assert self._mm is not None
        self._mm[self._count] = arr
        index = self._count
        self._count += 1
        return index

    def append_block(self, rows: np.ndarray) -> int:
        """Append a ``(k, dim)`` block in one write, returning the first index.

        The streaming write path of the synthetic generator and the
        QMap transform: rows are cast to the record dtype and written
        straight into the mapping, so the heap never holds more than one
        block.
        """
        self._check_open()
        block = np.atleast_2d(np.asarray(rows))
        if block.ndim != 2 or block.shape[1] != self._dim:
            raise DimensionMismatchError(
                f"expected shape (k, {self._dim}), got {block.shape}"
            )
        k = block.shape[0]
        if k == 0:
            return self._count
        if self._count + k > self._capacity:
            self._grow(self._count + k)
        assert self._mm is not None
        self._mm[self._count : self._count + k] = block.astype(
            self._dtype, copy=False
        )
        first = self._count
        self._count += k
        return first

    def extend(self, batch: np.ndarray) -> None:
        """Append every row of *batch* (block write)."""
        self.append_block(batch)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def get(self, index: int) -> np.ndarray:
        """Read the vector at record *index* (a float64 copy)."""
        self._check_open()
        if not 0 <= index < self._count:
            raise PageError(f"record index {index} out of range [0, {self._count})")
        assert self._mm is not None
        return np.asarray(self._mm[index], dtype=np.float64).copy()

    @property
    def rows(self) -> np.ndarray:
        """Zero-copy read-only view of all stored records (native dtype).

        This is the array handed to an out-of-core index build: slicing
        it streams pages through the OS cache without materializing the
        store.  Valid until the next capacity growth.
        """
        self._check_open()
        if self._mm is None:
            self._grow(_INITIAL_CAPACITY)
        assert self._mm is not None
        view = self._mm[: self._count]
        view.flags.writeable = False
        return view

    def row_range(self, start: int, stop: int) -> np.ndarray:
        """Zero-copy read-only view of records ``[start, stop)``."""
        self._check_open()
        if not 0 <= start <= stop <= self._count:
            raise PageError(
                f"row range [{start}, {stop}) outside [0, {self._count})"
            )
        assert self._mm is not None
        view = self._mm[start:stop]
        view.flags.writeable = False
        return view

    def iter_blocks(
        self, block_rows: int
    ) -> Iterator[tuple[int, np.ndarray]]:
        """Iterate ``(first_index, rows_view)`` in tiles of *block_rows*."""
        if block_rows < 1:
            raise StorageError(f"block_rows must be >= 1, got {block_rows}")
        for start in range(0, self._count, block_rows):
            stop = min(start + block_rows, self._count)
            yield start, self.row_range(start, stop)

    def scan(self) -> Iterator[tuple[int, np.ndarray]]:
        """Iterate ``(index, vector)`` in storage order (float64 copies)."""
        for start, block in self.iter_blocks(max(1, 65536 // max(1, self._record_size))):
            rows = np.asarray(block, dtype=np.float64)
            for slot in range(rows.shape[0]):
                yield start + slot, rows[slot]

    def scan_pages(self) -> Iterator[tuple[int, np.ndarray]]:
        """Iterate ``(first_index, rows)`` block-at-a-time (float64 copies)."""
        for start, block in self.iter_blocks(max(1, 65536 // max(1, self._record_size))):
            yield start, np.asarray(block, dtype=np.float64)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_array(
        cls,
        data: np.ndarray,
        *,
        dtype: str | np.dtype = "float32",
        path: str | os.PathLike[str] | None = None,
        block_rows: int = 65536,
    ) -> "MmapVectorStore":
        """Build a store from an in-memory ``(m, n)`` array, block by block."""
        arr = np.atleast_2d(np.asarray(data))
        if arr.ndim != 2:
            raise DimensionMismatchError(
                f"expected a (m, n) array, got shape {arr.shape}"
            )
        store = cls(arr.shape[1], dtype=dtype, path=path, capacity=arr.shape[0])
        for start in range(0, arr.shape[0], block_rows):
            store.append_block(arr[start : start + block_rows])
        return store
