"""The QMap model: transform once, index and query in Euclidean space.

The paper's contribution as a drop-in pipeline (Sections 3 and 4):

1. factor the static QFD matrix, ``A = B B^T`` (done once, O(n^3));
2. map every database vector ``u -> uB`` (O(n^2) each, at indexing time);
3. build any unmodified MAM — or SAM — over the mapped vectors with the
   plain Euclidean distance (O(n) per evaluation);
4. map each query vector the same way and search; distances, and therefore
   results and pruning behaviour, are *exactly* those of the QFD space.

Query results refer to database row indices, so answers are directly
comparable with the QFD model's.
"""

from __future__ import annotations

import time
from typing import Any

import numpy as np

from .._typing import ArrayLike, as_vector_batch
from ..core.qfd import QuadraticFormDistance
from ..core.qmap import QMap
from ..distances.base import CountingDistance
from ..distances.minkowski import euclidean, euclidean_one_to_many
from ..exceptions import QueryError
from ..obs import span
from ..storage.mmap_store import MmapVectorStore
from .base import (
    BuiltIndex,
    IndexCosts,
    instantiate,
    record_build_metrics,
    restore_distance,
)

__all__ = ["QMapModel"]


class QMapModel:
    """Builds access methods over the QMap-transformed Euclidean space.

    Parameters
    ----------
    qfd:
        The static quadratic form distance (or raw QFD matrix) to map.
    """

    name = "qmap"

    def __init__(self, qfd: QuadraticFormDistance | ArrayLike | QMap) -> None:
        self._qmap = qfd if isinstance(qfd, QMap) else QMap(qfd)

    @property
    def qmap(self) -> QMap:
        """The underlying transformation."""
        return self._qmap

    @property
    def qfd(self) -> QuadraticFormDistance:
        """The source distance the model reproduces exactly."""
        return self._qmap.qfd

    @property
    def dim(self) -> int:
        """Histogram dimensionality ``n`` (preserved by the map, k = n)."""
        return self._qmap.dim

    def _iter_source_blocks(self, database: ArrayLike, chunk: int) -> Any:
        """Yield float64 ``(k, n)`` blocks of the source database.

        A :class:`~repro.storage.MmapVectorStore` (or a raw 2-D array /
        memmap) is streamed in *chunk*-row slices, so the heap holds one
        block at a time; anything else is coerced through the standard
        validation first.
        """
        if isinstance(database, MmapVectorStore):
            if database.dim != self.dim:
                raise QueryError(
                    f"database dimensionality {database.dim} does not match "
                    f"the model's {self.dim}"
                )
            for _, view in database.iter_blocks(chunk):
                yield np.asarray(view, dtype=np.float64)
            return
        rows = np.asarray(database)
        if rows.ndim != 2 or rows.dtype not in (np.float32, np.float64):
            rows = as_vector_batch(database, self.dim, name="database")
        elif rows.shape[1] != self.dim:
            raise QueryError(
                f"database shape {rows.shape} does not match expected "
                f"dimensionality {self.dim}"
            )
        for start in range(0, rows.shape[0], chunk):
            yield np.asarray(rows[start : start + chunk], dtype=np.float64)

    def _source_length(self, database: ArrayLike) -> int:
        if isinstance(database, MmapVectorStore):
            return len(database)
        return int(np.asarray(database).shape[0])

    def build_index(
        self,
        method: str,
        database: ArrayLike,
        *,
        store: str = "heap",
        store_dtype: Any = None,
        store_path: "str | None" = None,
        block_rows: int | None = None,
        **kwargs: Any,
    ) -> BuiltIndex:
        """Transform *database* and build the named access method over it.

        Works for every MAM *and* SAM in the registry — the point of the
        homeomorphic map is that the target space is an ordinary Euclidean
        one.

        ``store="mmap"`` streams the transform: source blocks (from a
        :class:`~repro.storage.MmapVectorStore`, a raw memmap, or any 2-D
        array) are mapped chunk-by-chunk straight into a second
        memory-mapped store of *mapped* vectors, so the heap never holds
        the full ``m x n`` matrix on either side of the transform.  The
        mapped records are stored in ``store_dtype`` (float32 by default
        — one extra rounding per coordinate versus the heap path; pass
        ``store_dtype`` on a heap build to get its bit-exact heap twin).
        """
        if store == "mmap" and block_rows is None:
            from ..kernels import DEFAULT_BLOCK_ROWS

            block_rows = DEFAULT_BLOCK_ROWS
        counter = CountingDistance(euclidean, one_to_many=euclidean_one_to_many)
        m = self._source_length(database)
        backing: MmapVectorStore | None = None
        with span(f"build/{method}", model=self.name):
            start = time.perf_counter()
            if store == "mmap":
                from ..kernels import DEFAULT_BLOCK_ROWS

                chunk = block_rows or DEFAULT_BLOCK_ROWS
                backing = MmapVectorStore(
                    self.dim,
                    dtype=store_dtype or "float32",
                    path=store_path,
                    capacity=max(m, 1),
                )
                # Release written pages every ~256 MiB: dirty mapped
                # pages count toward RSS until flushed, and the mapped
                # rows are not read back until the index build.
                drop_every = max(
                    1,
                    (256 << 20)
                    // max(1, chunk * self.dim * backing.dtype.itemsize),
                )
                with span("build/transform", model=self.name):
                    for i, block in enumerate(
                        self._iter_source_blocks(database, chunk)
                    ):
                        backing.append_block(self._qmap.transform_batch(block))
                        if (i + 1) % drop_every == 0:
                            backing.drop_pages()
                mapped = backing.rows
            elif store_dtype is not None and np.dtype(store_dtype) != np.float64:
                # Heap twin of the mmap path: same chunk boundaries, same
                # per-block transform, same rounding through the record
                # dtype — the rows differ from an mmap build only in
                # where they live.
                from ..kernels import DEFAULT_BLOCK_ROWS

                chunk = block_rows or DEFAULT_BLOCK_ROWS
                record = np.dtype(store_dtype)
                mapped = np.empty((m, self.dim), dtype=np.float64)
                pos = 0
                with span("build/transform", model=self.name):
                    for block in self._iter_source_blocks(database, chunk):
                        out = self._qmap.transform_batch(block)
                        mapped[pos : pos + out.shape[0]] = (
                            out.astype(record).astype(np.float64)
                        )
                        pos += out.shape[0]
            else:
                data = as_vector_batch(database, self.dim, name="database")
                with span("build/transform", model=self.name):
                    mapped = self._qmap.transform_batch(data)
            am = instantiate(method, mapped, counter, kwargs, block_rows=block_rows)
            elapsed = time.perf_counter() - start
        if backing is not None:
            am._backing_store = backing
        build_costs = IndexCosts(
            distance_computations=counter.count,
            transforms=m,
            seconds=elapsed,
        )
        record_build_metrics(
            am, counter, model=self.name, method=method, transforms=m,
            block_rows=block_rows, seconds=elapsed,
        )
        counter.reset()
        return BuiltIndex(
            am,
            counter,
            model_name=self.name,
            query_mapper=self._qmap.transform,
            batch_mapper=self._qmap.transform_batch,
            build_costs=build_costs,
            method_name=method,
            source_matrix=self.qfd.matrix,
        )

    def load_index(
        self,
        source: Any,
        *,
        verify: bool = True,
        store: str = "heap",
        store_path: "str | None" = None,
        block_rows: int | None = None,
    ) -> BuiltIndex:
        """Restore a :meth:`BuiltIndex.save` snapshot into this model.

        The snapshot stores the *mapped* database (rows are ``uB``), so
        the restore pays neither the O(m n^2) transform pass nor a single
        distance evaluation — ``build_costs`` comes back with zero
        distance computations and zero transforms, the whole point of
        persisting QMap-model indexes.  ``store="mmap"`` re-wires the
        structure over a memory-mapped spill of the archived mapped rows,
        still at zero evaluations and zero transforms.
        """
        from ..exceptions import StorageError
        from ..persistence import IndexSnapshot, load_index, read_snapshot

        snapshot = (
            source if isinstance(source, IndexSnapshot) else read_snapshot(source)
        )
        label = snapshot.path or "snapshot"
        model = str(snapshot.meta.get("model", "<missing>"))
        if model != self.name:
            raise StorageError(
                f"{label} was saved by the {model!r} model, expected {self.name!r}"
            )
        matrix = snapshot.meta.get("matrix")
        if matrix is None or not np.allclose(
            np.asarray(matrix, dtype=np.float64), self.qfd.matrix,
            rtol=1e-9, atol=1e-12,
        ):
            raise StorageError(
                f"{label}: snapshot's QFD matrix disagrees with the model's "
                "(wrong matrix?)"
            )
        counter = CountingDistance(euclidean, one_to_many=euclidean_one_to_many)
        from ..persistence import codec_for

        distance, backing = restore_distance(
            counter,
            snapshot,
            store=store,
            store_path=store_path,
            block_rows=block_rows,
            force_port=codec_for(snapshot.method).is_sam,
        )
        with span(f"load/{snapshot.method}", model=self.name):
            start = time.perf_counter()
            am = load_index(
                snapshot,
                distance,
                verify=verify,
                database=None if backing is None else backing.rows,
            )
            elapsed = time.perf_counter() - start
        if backing is not None:
            am._backing_store = backing
        build_costs = IndexCosts(
            distance_computations=counter.count, transforms=0, seconds=elapsed
        )
        record_build_metrics(
            am, counter, model=self.name, method=snapshot.method,
            seconds=elapsed, event="load",
        )
        counter.reset()
        return BuiltIndex(
            am,
            counter,
            model_name=self.name,
            query_mapper=self._qmap.transform,
            batch_mapper=self._qmap.transform_batch,
            build_costs=build_costs,
            method_name=snapshot.method,
            source_matrix=self.qfd.matrix,
        )

    def distance(self, u: ArrayLike, v: ArrayLike) -> float:
        """QFD evaluated the QMap way (transform + L2); exact by Theorem 3.3."""
        return self._qmap.distance_via_map(u, v)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QMapModel(dim={self.dim})"
