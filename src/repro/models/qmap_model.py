"""The QMap model: transform once, index and query in Euclidean space.

The paper's contribution as a drop-in pipeline (Sections 3 and 4):

1. factor the static QFD matrix, ``A = B B^T`` (done once, O(n^3));
2. map every database vector ``u -> uB`` (O(n^2) each, at indexing time);
3. build any unmodified MAM — or SAM — over the mapped vectors with the
   plain Euclidean distance (O(n) per evaluation);
4. map each query vector the same way and search; distances, and therefore
   results and pruning behaviour, are *exactly* those of the QFD space.

Query results refer to database row indices, so answers are directly
comparable with the QFD model's.
"""

from __future__ import annotations

import time
from typing import Any

import numpy as np

from .._typing import ArrayLike, as_vector_batch
from ..core.qfd import QuadraticFormDistance
from ..core.qmap import QMap
from ..distances.base import CountingDistance
from ..distances.minkowski import euclidean, euclidean_one_to_many
from ..obs import span
from .base import BuiltIndex, IndexCosts, instantiate, record_build_metrics

__all__ = ["QMapModel"]


class QMapModel:
    """Builds access methods over the QMap-transformed Euclidean space.

    Parameters
    ----------
    qfd:
        The static quadratic form distance (or raw QFD matrix) to map.
    """

    name = "qmap"

    def __init__(self, qfd: QuadraticFormDistance | ArrayLike | QMap) -> None:
        self._qmap = qfd if isinstance(qfd, QMap) else QMap(qfd)

    @property
    def qmap(self) -> QMap:
        """The underlying transformation."""
        return self._qmap

    @property
    def qfd(self) -> QuadraticFormDistance:
        """The source distance the model reproduces exactly."""
        return self._qmap.qfd

    @property
    def dim(self) -> int:
        """Histogram dimensionality ``n`` (preserved by the map, k = n)."""
        return self._qmap.dim

    def build_index(self, method: str, database: ArrayLike, **kwargs: Any) -> BuiltIndex:
        """Transform *database* and build the named access method over it.

        Works for every MAM *and* SAM in the registry — the point of the
        homeomorphic map is that the target space is an ordinary Euclidean
        one.
        """
        data = as_vector_batch(database, self.dim, name="database")
        counter = CountingDistance(euclidean, one_to_many=euclidean_one_to_many)
        with span(f"build/{method}", model=self.name):
            start = time.perf_counter()
            with span("build/transform", model=self.name):
                mapped = self._qmap.transform_batch(data)
            am = instantiate(method, mapped, counter, kwargs)
            elapsed = time.perf_counter() - start
        build_costs = IndexCosts(
            distance_computations=counter.count,
            transforms=data.shape[0],
            seconds=elapsed,
        )
        record_build_metrics(
            am, counter, model=self.name, method=method, transforms=data.shape[0]
        )
        counter.reset()
        return BuiltIndex(
            am,
            counter,
            model_name=self.name,
            query_mapper=self._qmap.transform,
            batch_mapper=self._qmap.transform_batch,
            build_costs=build_costs,
            method_name=method,
            source_matrix=self.qfd.matrix,
        )

    def load_index(self, source: Any, *, verify: bool = True) -> BuiltIndex:
        """Restore a :meth:`BuiltIndex.save` snapshot into this model.

        The snapshot stores the *mapped* database (rows are ``uB``), so
        the restore pays neither the O(m n^2) transform pass nor a single
        distance evaluation — ``build_costs`` comes back with zero
        distance computations and zero transforms, the whole point of
        persisting QMap-model indexes.
        """
        from ..exceptions import StorageError
        from ..persistence import IndexSnapshot, load_index, read_snapshot

        snapshot = (
            source if isinstance(source, IndexSnapshot) else read_snapshot(source)
        )
        label = snapshot.path or "snapshot"
        model = str(snapshot.meta.get("model", "<missing>"))
        if model != self.name:
            raise StorageError(
                f"{label} was saved by the {model!r} model, expected {self.name!r}"
            )
        matrix = snapshot.meta.get("matrix")
        if matrix is None or not np.allclose(
            np.asarray(matrix, dtype=np.float64), self.qfd.matrix,
            rtol=1e-9, atol=1e-12,
        ):
            raise StorageError(
                f"{label}: snapshot's QFD matrix disagrees with the model's "
                "(wrong matrix?)"
            )
        counter = CountingDistance(euclidean, one_to_many=euclidean_one_to_many)
        from ..mam.base import DistancePort
        from ..persistence import codec_for

        distance = (
            DistancePort(counter) if codec_for(snapshot.method).is_sam else counter
        )
        with span(f"load/{snapshot.method}", model=self.name):
            start = time.perf_counter()
            am = load_index(snapshot, distance, verify=verify)
            elapsed = time.perf_counter() - start
        build_costs = IndexCosts(
            distance_computations=counter.count, transforms=0, seconds=elapsed
        )
        record_build_metrics(am, counter, model=self.name, method=snapshot.method)
        counter.reset()
        return BuiltIndex(
            am,
            counter,
            model_name=self.name,
            query_mapper=self._qmap.transform,
            batch_mapper=self._qmap.transform_batch,
            build_costs=build_costs,
            method_name=snapshot.method,
            source_matrix=self.qfd.matrix,
        )

    def distance(self, u: ArrayLike, v: ArrayLike) -> float:
        """QFD evaluated the QMap way (transform + L2); exact by Theorem 3.3."""
        return self._qmap.distance_via_map(u, v)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QMapModel(dim={self.dim})"
