"""Model-agnostic index restore: rebuild the pipeline from the snapshot.

:meth:`~repro.models.base.BuiltIndex.save` stores the model marker and
the QFD matrix alongside the index structure, so a snapshot is
self-contained — this module reconstructs the right model (QFD or QMap)
from the stored matrix and restores the index into it, without the
caller having to remember which pipeline produced the file.
"""

from __future__ import annotations

import os

import numpy as np

from ..exceptions import StorageError
from .base import BuiltIndex
from .qfd_model import QFDModel
from .qmap_model import QMapModel

__all__ = ["load_built_index", "load_catalog"]


def load_built_index(
    source: object,
    *,
    verify: bool = True,
    store: str = "heap",
    store_path: "str | None" = None,
    block_rows: int | None = None,
) -> BuiltIndex:
    """Restore a :meth:`BuiltIndex.save` snapshot, model included.

    *source* is a snapshot path or an already-read
    :class:`~repro.persistence.IndexSnapshot` — callers that inspected
    the archive first (``repro index query``, the planner's probe
    materializer) pass the parsed snapshot through, so a restore stays a
    single file open.  Reads the stored model marker and QFD matrix,
    builds the matching :class:`QFDModel` or :class:`QMapModel`, and
    delegates to its ``load_index`` — zero distance evaluations, like
    every snapshot restore.  ``store``/``store_path``/``block_rows``
    forward to the model: ``store="mmap"`` re-wires the structure over a
    memory-mapped spill of the archived rows and evaluates through the
    blocked kernels.
    """
    from ..persistence import IndexSnapshot, read_snapshot

    snapshot = source if isinstance(source, IndexSnapshot) else read_snapshot(source)
    label = snapshot.path or "snapshot"
    model = str(snapshot.meta.get("model", "<missing>"))
    matrix = snapshot.meta.get("matrix")
    if matrix is None:
        raise StorageError(
            f"{label} carries no QFD matrix; it was not written by "
            "BuiltIndex.save"
        )
    matrix = np.asarray(matrix, dtype=np.float64)
    restore_kwargs = dict(store=store, store_path=store_path, block_rows=block_rows)
    if model == QFDModel.name:
        return QFDModel(matrix).load_index(snapshot, verify=verify, **restore_kwargs)
    if model == QMapModel.name:
        return QMapModel(matrix).load_index(snapshot, verify=verify, **restore_kwargs)
    raise StorageError(
        f"{label} was saved by unknown model {model!r}; "
        f"expected {QFDModel.name!r} or {QMapModel.name!r}"
    )


def load_catalog(directory: "str | os.PathLike[str]"):
    """Discover built index snapshots under *directory*.

    Thin lifecycle entry point over
    :meth:`repro.planner.IndexCatalog.scan`: probes every ``*.npz``
    through its zip/npy headers (never loading vectors) and returns the
    catalog, with unreadable files surfaced as warnings.  The planner
    import is deferred so ``repro.models`` stays loadable without the
    planner package's dependency chain.
    """
    from ..planner import IndexCatalog

    return IndexCatalog.scan(directory)
