"""The QFD model: index raw histograms under the black-box QFD (Section 4).

This is the "straightforward" configuration the paper argues *against* for
static matrices: every distance evaluation — during indexing as well as
querying — pays the full O(n^2) quadratic form.  The number of evaluations
per operation is identical to the QMap model's (distances are the same);
only the per-evaluation cost differs.
"""

from __future__ import annotations

import time
from typing import Any

import numpy as np

from .._typing import ArrayLike, as_vector_batch
from ..core.qfd import QuadraticFormDistance
from ..distances.base import CountingDistance
from ..exceptions import QueryError
from ..obs import span
from .base import (
    SAM_REGISTRY,
    BuiltIndex,
    IndexCosts,
    instantiate,
    record_build_metrics,
    resolve_store,
    restore_distance,
)

__all__ = ["QFDModel"]


class QFDModel:
    """Builds access methods directly over the QFD space.

    Parameters
    ----------
    qfd:
        The static quadratic form distance (or a raw QFD matrix).
    """

    name = "qfd"

    def __init__(self, qfd: QuadraticFormDistance | ArrayLike) -> None:
        if not isinstance(qfd, QuadraticFormDistance):
            qfd = QuadraticFormDistance(qfd)
        self._qfd = qfd

    @property
    def qfd(self) -> QuadraticFormDistance:
        """The model's distance function."""
        return self._qfd

    @property
    def dim(self) -> int:
        """Histogram dimensionality ``n``."""
        return self._qfd.dim

    def build_index(
        self,
        method: str,
        database: ArrayLike,
        *,
        store: str = "heap",
        store_dtype: Any = None,
        store_path: "str | None" = None,
        block_rows: int | None = None,
        **kwargs: Any,
    ) -> BuiltIndex:
        """Build the named access method over *database*.

        SAM methods are rejected: a coordinate index built for rectangles
        cannot answer QFD ball queries without ellipsoid-aware bounds,
        which is precisely the paper's Section 2.1 caveat.  Use the QMap
        model for SAMs.

        ``store="mmap"`` indexes a memory-mapped record store (built from
        *database* if it is not already a
        :class:`~repro.storage.MmapVectorStore`) and defaults
        ``block_rows`` on, so out-of-core capable methods stream the rows
        through the blocked kernels instead of materializing them.
        """
        if method in SAM_REGISTRY:
            raise QueryError(
                f"SAM {method!r} cannot index the raw QFD space; transform "
                "it with the QMap model first (paper Section 2.4)"
            )
        if store == "mmap" and block_rows is None:
            from ..kernels import DEFAULT_BLOCK_ROWS

            block_rows = DEFAULT_BLOCK_ROWS
        data, backing = resolve_store(
            database, self.dim, store=store, store_dtype=store_dtype,
            store_path=store_path,
        )
        counter = CountingDistance(self._qfd, one_to_many=self._qfd.one_to_many)
        with span(f"build/{method}", model=self.name):
            start = time.perf_counter()
            am = instantiate(method, data, counter, kwargs, block_rows=block_rows)
            elapsed = time.perf_counter() - start
        if backing is not None:
            # The rows view aliases the mapping; pin the store to the index
            # so the file outlives every query against it.
            am._backing_store = backing
        build_costs = IndexCosts(
            distance_computations=counter.count, transforms=0, seconds=elapsed
        )
        record_build_metrics(
            am, counter, model=self.name, method=method, block_rows=block_rows,
            seconds=elapsed,
        )
        counter.reset()
        return BuiltIndex(
            am,
            counter,
            model_name=self.name,
            query_mapper=None,
            build_costs=build_costs,
            method_name=method,
            source_matrix=self._qfd.matrix,
        )

    def load_index(
        self,
        source: Any,
        *,
        verify: bool = True,
        store: str = "heap",
        store_path: "str | None" = None,
        block_rows: int | None = None,
    ) -> BuiltIndex:
        """Restore a :meth:`BuiltIndex.save` snapshot into this model.

        *source* is a snapshot path (or an already-read
        :class:`~repro.persistence.IndexSnapshot`).  The snapshot must
        have been saved by the QFD model with this model's matrix; both
        are checked before any structure is rebuilt.  Restoring performs
        **zero** distance evaluations — the saved structure is re-wired,
        not rebuilt (``build_costs.distance_computations == 0``).

        ``store="mmap"`` spills the archived rows into a memory-mapped
        store (block by block — the heap never holds the full database)
        and re-wires the structure over its pages, still at zero
        evaluations; ``block_rows`` defaults on in that case.
        """
        from ..exceptions import StorageError
        from ..persistence import IndexSnapshot, load_index, read_snapshot

        snapshot = (
            source if isinstance(source, IndexSnapshot) else read_snapshot(source)
        )
        label = snapshot.path or "snapshot"
        model = str(snapshot.meta.get("model", "<missing>"))
        if model != self.name:
            raise StorageError(
                f"{label} was saved by the {model!r} model, expected {self.name!r}"
            )
        matrix = snapshot.meta.get("matrix")
        if matrix is None or not np.allclose(
            np.asarray(matrix, dtype=np.float64), self._qfd.matrix,
            rtol=1e-9, atol=1e-12,
        ):
            raise StorageError(
                f"{label}: snapshot's QFD matrix disagrees with the model's "
                "(wrong matrix?)"
            )
        if snapshot.method in SAM_REGISTRY:
            raise QueryError(
                f"SAM {snapshot.method!r} cannot index the raw QFD space; "
                "transform it with the QMap model first (paper Section 2.4)"
            )
        counter = CountingDistance(self._qfd, one_to_many=self._qfd.one_to_many)
        distance, backing = restore_distance(
            counter, snapshot, store=store, store_path=store_path,
            block_rows=block_rows,
        )
        with span(f"load/{snapshot.method}", model=self.name):
            start = time.perf_counter()
            am = load_index(
                snapshot,
                distance,
                verify=verify,
                database=None if backing is None else backing.rows,
            )
            elapsed = time.perf_counter() - start
        if backing is not None:
            am._backing_store = backing
        build_costs = IndexCosts(
            distance_computations=counter.count, transforms=0, seconds=elapsed
        )
        record_build_metrics(
            am, counter, model=self.name, method=snapshot.method,
            seconds=elapsed, event="load",
        )
        counter.reset()
        return BuiltIndex(
            am,
            counter,
            model_name=self.name,
            query_mapper=None,
            build_costs=build_costs,
            method_name=snapshot.method,
            source_matrix=self._qfd.matrix,
        )

    def distance(self, u: ArrayLike, v: ArrayLike) -> float:
        """One exact QFD evaluation (convenience passthrough)."""
        return self._qfd(u, v)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QFDModel(dim={self.dim})"
