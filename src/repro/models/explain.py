"""Run one query under event collection and assemble its EXPLAIN plan.

:mod:`repro.obs.explain` is pure assembly; this module is the runner that
knows about :class:`~repro.models.base.BuiltIndex`: it snapshots the
model's distance counter, executes the query inside a
:func:`~repro.obs.events.collect_events` block, and hands the filled
buffer plus the exact counter delta to :func:`~repro.obs.explain.
assemble_plan`.  For the methods with a Table 2 closed form (sequential,
pivot table, M-tree) it also attaches the :class:`~repro.obs.explain.
CostAudit` comparing the observed arithmetic against the paper's
prediction.

The import of :mod:`repro.bench.complexity` is deferred into the audit
helper: ``bench`` imports ``models`` at module load, so a top-level
import here would be circular.
"""

from __future__ import annotations

from time import perf_counter

from ..exceptions import QueryError
from ..obs.events import ROOT, EventBuffer, collect_events
from ..obs.explain import CostAudit, ExplainPlan, assemble_plan
from .base import BuiltIndex, IndexCosts

__all__ = ["explain_query", "AUDITABLE_METHODS"]

#: Methods whose querying cost has a Table 2 closed form to audit against.
AUDITABLE_METHODS = ("sequential", "pivot-table", "mtree")


def _table2_audit(
    index: BuiltIndex,
    buffer: EventBuffer,
    evaluations: int,
    transforms: int,
) -> "CostAudit | None":
    """Observed vs predicted querying flops, for auditable methods only."""
    method = index.method_name
    if method not in AUDITABLE_METHODS:
        return None
    from ..bench.complexity import measured_flops, theoretical_querying_flops

    am = index.access_method
    m, n = am.size, am.dim
    p = 0
    x = 0
    filter_flops = 0.0
    if method == "pivot-table":
        p = am.n_pivots
        # Table 2's x = non-filtered objects = the candidates actually
        # verified with a real distance during refinement.
        x = buffer.candidates_verified
        # The hyper-cube filter compares m objects against p pivot
        # distances — arithmetic Table 2 prices but no CountingDistance
        # observes.  Charging it on the observed side makes the pivot
        # table audit zero-drift like the other closed forms.
        filter_flops = float(m * p)
    elif method == "mtree":
        # Table 2 prices the M-tree query as x distance computations.
        x = evaluations
    predicted = theoretical_querying_flops(
        method, index.model_name, m=m, n=n, p=p, x=x
    )
    observed = (
        measured_flops(
            IndexCosts(distance_computations=evaluations, transforms=transforms),
            index.model_name,
            n,
        )
        + filter_flops
    )
    return CostAudit(
        method=method,
        model=index.model_name,
        predicted_flops=predicted,
        observed_flops=observed,
        observed_evaluations=evaluations,
        observed_transforms=transforms,
        observed_filter_flops=filter_flops,
    )


def explain_query(
    index: BuiltIndex,
    query: object,
    *,
    k: "int | None" = None,
    radius: "float | None" = None,
    max_events: int = 10_000,
    sample_every: int = 1,
    audit: bool = True,
) -> ExplainPlan:
    """Execute one query and return its :class:`ExplainPlan`.

    Pass exactly one of ``k`` (kNN) or ``radius`` (range).  The query runs
    normally — same answers, same counter updates as an unobserved run —
    with an :class:`~repro.obs.events.EventBuffer` collecting traversal
    events; ``max_events`` / ``sample_every`` bound the recorded event
    list without affecting the plan's exact aggregates.

    kNN traversals never emit ``result_add`` inside the structure (the
    bounded heap may evict any accepted neighbor later), so the answer's
    result events are synthesized after the fact; the same applies to the
    SAM structures, which are observed through their refinement port only.
    """
    if (k is None) == (radius is None):
        raise QueryError("explain_query needs exactly one of k= or radius=")
    counter = index._counter
    before = counter.stats
    transforms_before = index._query_transforms
    buffer = EventBuffer(max_events=max_events, sample_every=sample_every)
    start = perf_counter()
    with collect_events(buffer):
        if k is not None:
            answer = index.knn_search(query, int(k))
        else:
            answer = index.range_search(query, float(radius))
    seconds = perf_counter() - start
    after = counter.stats
    counter_calls = after.calls - before.calls
    counter_rows = after.batch_rows - before.batch_rows
    transforms = index._query_transforms - transforms_before
    if not buffer.results_added and answer:
        for neighbor in answer:
            buffer.result_add(ROOT, neighbor.index, neighbor.distance)
    plan_audit = (
        _table2_audit(index, buffer, counter_calls + counter_rows, transforms)
        if audit
        else None
    )
    return assemble_plan(
        buffer,
        method=index.method_name or type(index.access_method).__name__,
        model=index.model_name,
        kind="knn" if k is not None else "range",
        parameter=float(k if k is not None else radius),
        counter_calls=counter_calls,
        counter_rows=counter_rows,
        transforms=transforms,
        answer=[(neighbor.index, neighbor.distance) for neighbor in answer],
        seconds=seconds,
        audit=plan_audit,
    )
