"""Materialize and execute planner-chosen physical plans.

:mod:`repro.planner` deliberately knows nothing about models, access
methods, or observability — it prices abstract plan nodes from snapshot
headers and Table 2 closed forms.  This module is the other half: given a
:class:`~repro.planner.PlanChoice` and the actual workload (QFD matrix,
database, queries), it

* builds the empirical :class:`~repro.planner.DistanceHistogram` the
  planner uses for range selectivity (uncounted sample distances);
* turns the chosen node into something that can answer queries — a
  :class:`~repro.models.base.BuiltIndex` for scans and probes, a
  :class:`~repro.lowerbound.FilterRefineScan` for the Section 2.3.1
  pipelines — wrapped in a :class:`PlanExecution` with uniform batch
  entry points and cost accounting;
* measures per-alternative *actual* costs for the EXPLAIN "considered
  plans" header, in the same arithmetic unit the cost model predicts.

Import direction: this module imports the planner, never the reverse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core.qfd import QuadraticFormDistance
from ..exceptions import QueryError, StorageError
from ..obs import log_event
from ..lowerbound import FilterRefineScan, FilterRefineStats, SVDReduction, average_color_bound
from ..planner import (
    CostModel,
    DirectScan,
    DistanceHistogram,
    ExecutorChoice,
    FilterRefine,
    IndexCatalog,
    IndexProbe,
    PlanChoice,
    Planner,
    PlanNode,
    QuerySpec,
    calibration_from_history,
)
from .base import BuiltIndex, IndexCosts
from .lifecycle import load_built_index
from .qfd_model import QFDModel
from .qmap_model import QMapModel

__all__ = [
    "sample_distance_histogram",
    "PlanExecution",
    "materialize_plan",
    "plan_query_batch",
    "PlannedBatch",
    "alternative_actual_flops",
]

#: Sampling caps for planning-time distance histograms: enough mass for a
#: selectivity estimate, negligible next to one real query.
_HISTOGRAM_MAX_ROWS = 256
_HISTOGRAM_MAX_QUERIES = 8


def sample_distance_histogram(
    matrix: "QuadraticFormDistance | np.ndarray",
    database: np.ndarray,
    queries: "np.ndarray | None" = None,
    *,
    max_rows: int = _HISTOGRAM_MAX_ROWS,
    max_queries: int = _HISTOGRAM_MAX_QUERIES,
    seed: int = 0,
) -> DistanceHistogram:
    """Sample query-to-row QFD distances for range-selectivity estimates.

    Uses the *uncounted* :meth:`QuadraticFormDistance.one_to_many`
    kernel, so planning never perturbs the experiment's distance
    counters.  Rows are subsampled deterministically (*seed*); probes are
    the first *max_queries* query vectors, or held-out database rows when
    no queries are given.
    """
    qfd = (
        matrix
        if isinstance(matrix, QuadraticFormDistance)
        else QuadraticFormDistance(matrix)
    )
    data = np.atleast_2d(np.asarray(database, dtype=np.float64))
    rng = np.random.default_rng(seed)
    if data.shape[0] > max_rows:
        rows = data[rng.choice(data.shape[0], size=max_rows, replace=False)]
    else:
        rows = data
    if queries is not None:
        probes = np.atleast_2d(np.asarray(queries, dtype=np.float64))[:max_queries]
    else:
        probes = rows[: min(max_queries, rows.shape[0])]
    samples = [qfd.one_to_many(probe, rows) for probe in probes]
    return DistanceHistogram.from_sample(np.concatenate(samples))


@dataclass
class PlanExecution:
    """A materialized plan: ready to answer queries, with cost accounting.

    Exactly one of ``index`` (scans, probes) and ``scan`` (filter-and-
    refine) is set.  ``run_batch`` answers a whole query batch through
    the planner-chosen executor; ``query_costs``/``actual_flops`` report
    what it actually cost, in the counters' unit and in Table 2's
    arithmetic unit respectively.
    """

    plan: PlanNode
    executor: ExecutorChoice
    index: "BuiltIndex | None" = None
    scan: "FilterRefineScan | None" = None
    stats: "list[FilterRefineStats]" = field(default_factory=list)
    queries_run: int = 0

    @property
    def name(self) -> str:
        return self.plan.name

    @property
    def model_name(self) -> str:
        if self.index is not None:
            return self.index.model_name
        return "qfd"  # filter-and-refine refines with the raw QFD

    def run_batch(
        self,
        queries: np.ndarray,
        *,
        k: "int | None" = None,
        radius: "float | None" = None,
    ) -> "list[list[Any]]":
        """Answer every query; pass exactly one of ``k=`` / ``radius=``."""
        if (k is None) == (radius is None):
            raise QueryError("run_batch needs exactly one of k= or radius=")
        rows = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        self.queries_run += rows.shape[0]
        if self.index is not None:
            if k is not None:
                return self.index.knn_search_batch(rows, int(k), executor=self.executor)
            return self.index.range_search_batch(
                rows, float(radius), executor=self.executor
            )
        assert self.scan is not None
        out = []
        for row in rows:  # serial by design: the scan's stats are shared state
            if k is not None:
                out.append(self.scan.knn_search(row, int(k)))
            else:
                out.append(self.scan.range_search(row, float(radius)))
            if self.scan.last_stats is not None:
                self.stats.append(self.scan.last_stats)
        return out

    def query_costs(self, seconds: float = 0.0) -> IndexCosts:
        """Distance evaluations / transforms spent answering queries so far.

        For filter-and-refine plans the evaluations are the exact QFD
        refinements (the filter's lower bounds are O(k) arithmetic, not
        distance evaluations — same accounting as bench E_A1).
        """
        if self.index is not None:
            return self.index.query_costs(seconds)
        return IndexCosts(
            distance_computations=sum(s.candidates for s in self.stats),
            transforms=0,
            seconds=seconds,
        )

    def actual_flops(self) -> float:
        """Observed arithmetic, in the cost model's unit, so far.

        Scans/probes convert the distance counters through
        :func:`repro.bench.complexity.measured_flops`; the pivot table
        additionally pays its ``m * p`` filter arithmetic per query (the
        term the zero-drift Table 2 audit accounts for).  Filter-and-
        refine plans price their recorded stats: per query one O(n*k)
        query reduction, ``m`` O(k) lower bounds and ``candidates`` exact
        O(n^2) refinements.
        """
        from ..bench.complexity import measured_flops

        if self.index is not None:
            am = self.index.access_method
            flops = measured_flops(
                self.index.query_costs(), self.index.model_name, am.dim
            )
            if self.index.method_name == "pivot-table":
                flops += float(self.queries_run) * am.size * am.n_pivots
            return flops
        assert self.scan is not None
        bound = self.scan.bound
        n = bound.source_dim
        rank = bound.k
        m = self.scan.size
        total = 0.0
        for s in self.stats:
            total += n * rank + m * rank + s.candidates * float(n) * n
        return total


def _filter_refine_bound(node: FilterRefine, matrix: np.ndarray):
    if node.lower_bound == "svd":
        return SVDReduction(matrix, int(node.rank))
    dim = int(np.asarray(matrix).shape[0])
    bins = round(dim ** (1.0 / 3.0))
    if bins**3 != dim:
        raise QueryError(
            f"avg_color filter needs a color-cube dimensionality, got n={dim}"
        )
    from ..color import lab_bin_prototypes

    return average_color_bound(matrix, lab_bin_prototypes(bins))


def materialize_plan(
    node: PlanNode,
    matrix: np.ndarray,
    database: np.ndarray,
    *,
    executor: "ExecutorChoice | None" = None,
    batch_size: int = 1,
) -> PlanExecution:
    """Turn an abstract plan node into a runnable :class:`PlanExecution`.

    * :class:`DirectScan` builds a fresh sequential index under the
      node's model (the QMap variant pays its database transform here —
      the setup cost the planner amortized);
    * :class:`IndexProbe` restores the cataloged snapshot with
      :func:`load_built_index` (zero evaluations) and verifies the
      archived QFD matrix matches the workload's;
    * :class:`FilterRefine` wires the contractive bound and the
      sequential filter-and-refine scanner.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    choice = executor if executor is not None else node.executor_hint(batch_size)
    if isinstance(node, DirectScan):
        model = QFDModel(matrix) if node.model == "qfd" else QMapModel(matrix)
        index = model.build_index("sequential", database)
        return PlanExecution(plan=node, executor=choice, index=index)
    if isinstance(node, IndexProbe):
        index = load_built_index(node.entry.path)
        archived = index._source_matrix
        if archived is None or not np.allclose(
            np.asarray(archived, dtype=np.float64), matrix, rtol=1e-9, atol=1e-12
        ):
            raise StorageError(
                f"{node.entry.path}: snapshot's QFD matrix disagrees with the "
                "planned workload's; the probe would answer a different query"
            )
        expected = np.atleast_2d(np.asarray(database)).shape
        if (index.access_method.size, index.access_method.dim) != expected:
            raise StorageError(
                f"{node.entry.path}: snapshot indexes "
                f"{index.access_method.size} x {index.access_method.dim} "
                f"rows, workload has {expected[0]} x {expected[1]}"
            )
        return PlanExecution(plan=node, executor=choice, index=index)
    if isinstance(node, FilterRefine):
        bound = _filter_refine_bound(node, matrix)
        scan = FilterRefineScan(database, bound)
        return PlanExecution(plan=node, executor=choice, scan=scan)
    raise QueryError(f"cannot materialize unknown plan node {node!r}")


@dataclass(frozen=True)
class PlannedBatch:
    """A planning run's full context: spec, choice, and materialized plan."""

    spec: QuerySpec
    choice: PlanChoice
    execution: PlanExecution
    catalog: IndexCatalog

    @property
    def plan_name(self) -> str:
        return self.choice.chosen.name


def plan_query_batch(
    matrix: np.ndarray,
    database: np.ndarray,
    queries: np.ndarray,
    *,
    k: "int | None" = None,
    radius: "float | None" = None,
    index_dir: "str | None" = None,
    history: "list[dict] | None" = None,
    force: "str | None" = None,
    executor: "ExecutorChoice | None" = None,
    seed: int = 0,
) -> PlannedBatch:
    """Plan one query batch end to end and materialize the chosen plan.

    Builds the :class:`QuerySpec` from the workload shape, scans
    *index_dir* into a catalog (empty catalog when ``None``), calibrates
    the cost model from *history* records (``repro.bench.load_history``
    lines) when given, picks the argmin — or the *force*-named plan — and
    materializes it, ready for :meth:`PlanExecution.run_batch`.  An
    explicit *executor* overrides the plan's own hint (the CLI's
    ``--executor`` escape hatch).
    """
    if (k is None) == (radius is None):
        raise QueryError("plan_query_batch needs exactly one of k= or radius=")
    data = np.atleast_2d(np.asarray(database, dtype=np.float64))
    rows = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    histogram = None
    if radius is not None:
        histogram = sample_distance_histogram(matrix, data, rows, seed=seed)
    spec = QuerySpec(
        kind="knn" if k is not None else "range",
        param=float(k if k is not None else radius),
        batch_size=rows.shape[0],
        m=data.shape[0],
        dim=data.shape[1],
        histogram=histogram,
    )
    catalog = IndexCatalog.scan(index_dir) if index_dir is not None else IndexCatalog()
    calibration = calibration_from_history(history) if history else None
    planner = Planner(catalog=catalog, cost_model=CostModel(calibration=calibration))
    choice = planner.plan(spec, force=force)
    log_event(
        "plan",
        kind=spec.kind,
        parameter=spec.param,
        batch_size=spec.batch_size,
        plan=choice.chosen.name,
        executor=choice.chosen.executor.name,
        predicted_cost=choice.predicted_cost,
        considered=len(choice.considered),
        forced=force,
    )
    execution = materialize_plan(
        choice.chosen.plan,
        matrix,
        data,
        executor=executor if executor is not None else choice.chosen.executor,
        batch_size=spec.batch_size,
    )
    return PlannedBatch(spec=spec, choice=choice, execution=execution, catalog=catalog)


def alternative_actual_flops(
    choice: PlanChoice,
    matrix: np.ndarray,
    database: np.ndarray,
    query: np.ndarray,
    *,
    k: "int | None" = None,
    radius: "float | None" = None,
) -> "dict[str, float]":
    """Measure every considered alternative's *actual* per-query cost.

    Runs one probe query through each alternative (materializing it
    first) and returns ``{plan name: observed flops}`` in the cost
    model's unit — the numbers the EXPLAIN "considered plans" header
    shows next to the predictions.  Alternatives that fail to
    materialize (e.g. a snapshot deleted between planning and explain)
    are simply absent from the result.
    """
    actuals: dict[str, float] = {}
    for candidate in choice.considered:
        try:
            execution = materialize_plan(
                candidate.plan,
                matrix,
                database,
                executor=ExecutorChoice(name="serial"),
                batch_size=1,
            )
        except (QueryError, StorageError):
            continue
        if execution.index is not None:
            execution.index.reset_query_costs()
        execution.run_batch(np.atleast_2d(query), k=k, radius=radius)
        actuals[candidate.name] = execution.actual_flops()
    return actuals
