"""Shared machinery of the QFD and QMap models (paper Section 4).

A *model* decides how the database and queries are represented and which
distance the access method sees:

* **QFD model** — raw histograms, black-box QFD (O(n^2) per evaluation);
* **QMap model** — histograms mapped through the Cholesky factor once,
  plain Euclidean distance (O(n) per evaluation), distances *exactly*
  preserved.

Both models build the same access methods through one registry, and both
report their costs through :class:`IndexCosts`: distance evaluations
(counted by :class:`~repro.distances.base.CountingDistance`) and vector
transformations — the two quantities whose trade-off Tables 1 and 2
analyze.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from .._typing import ArrayLike, as_vector, as_vector_batch
from ..distances.base import CountingDistance
from ..exceptions import QueryError
from ..mam.base import AccessMethod, Neighbor
from ..obs import (
    TRANSFORMS,
    DistanceInstrument,
    get_logger,
    get_registry,
    log_event,
    observe_query_progress,
    record_cache_stats,
    record_cholesky_cache,
    record_distance_stats,
    record_index_description,
    record_memory,
    record_query_error,
    trace_scope,
)
from ..storage.mmap_store import MmapVectorStore
from ..mam.gnat import GNAT
from ..mam.mindex import MIndex
from ..mam.mtree import MTree
from ..mam.paged_mtree import PagedMTree
from ..mam.pivot_table import PivotTable
from ..mam.sat import SATree
from ..mam.sequential import DiskSequentialFile, SequentialFile
from ..mam.vptree import VPTree
from ..sam.rtree import RTree
from ..sam.vafile import VAFile
from ..sam.xtree import XTree

__all__ = [
    "IndexCosts",
    "BuiltIndex",
    "MAM_REGISTRY",
    "SAM_REGISTRY",
    "STORES",
    "resolve_method",
    "resolve_store",
    "restore_distance",
    "record_build_metrics",
]

#: Database record backends a model build accepts.
STORES = ("heap", "mmap")

#: MAMs take (database, distance, **kwargs).
MAM_REGISTRY: dict[str, type[AccessMethod]] = {
    "sequential": SequentialFile,
    "disk-sequential": DiskSequentialFile,
    "pivot-table": PivotTable,
    "mtree": MTree,
    "paged-mtree": PagedMTree,
    "mindex": MIndex,
    "sat": SATree,
    "vptree": VPTree,
    "gnat": GNAT,
}

#: SAMs take (database, **kwargs) — they pick the distance at query time.
SAM_REGISTRY: dict[str, type[AccessMethod]] = {
    "rtree": RTree,
    "xtree": XTree,
    "vafile": VAFile,
}


def resolve_method(name: str) -> tuple[type[AccessMethod], bool]:
    """Look up an access method by registry name.

    Returns ``(cls, is_sam)``.
    """
    if name in MAM_REGISTRY:
        return MAM_REGISTRY[name], False
    if name in SAM_REGISTRY:
        return SAM_REGISTRY[name], True
    known = sorted(MAM_REGISTRY) + sorted(SAM_REGISTRY)
    raise QueryError(f"unknown access method {name!r}; choose from {known}")


@dataclass(frozen=True)
class IndexCosts:
    """Cost snapshot of a build or a batch of queries.

    Attributes
    ----------
    distance_computations:
        Logical distance evaluations (the paper's primary cost unit).
    transforms:
        Vector transformations into the Euclidean space (QMap model only;
        each costs O(n^2), same order as one QFD evaluation).
    seconds:
        Wall-clock time, when measured by the caller (0 otherwise).
    """

    distance_computations: int
    transforms: int
    seconds: float = 0.0

    def __add__(self, other: "IndexCosts") -> "IndexCosts":
        return IndexCosts(
            self.distance_computations + other.distance_computations,
            self.transforms + other.transforms,
            self.seconds + other.seconds,
        )


def resolve_store(
    database: ArrayLike,
    dim: int | None,
    *,
    store: str = "heap",
    store_dtype: "str | np.dtype | None" = None,
    store_path: "str | None" = None,
) -> tuple[np.ndarray, "MmapVectorStore | None"]:
    """Resolve a model database into ``(rows, backing_store)``.

    ``store="heap"`` keeps the historical in-memory float64 path; with a
    ``store_dtype`` of float32 the rows are additionally *rounded through*
    float32 — the exact heap twin of an mmap-backed build, which the
    bit-identity property tests compare against.

    ``store="mmap"`` returns a zero-copy view over a
    :class:`~repro.storage.MmapVectorStore`: an existing store (or raw
    ``np.memmap``) is used as-is, any other array-like is spilled into a
    fresh store block-by-block (``store_path`` persists it; the default
    is an unlinked temporary file).  The returned store must be kept
    alive as long as the rows view is used — model builds stash it on
    the built index.
    """
    if store not in STORES:
        raise QueryError(f"unknown store {store!r}; choose from {list(STORES)}")
    if store == "heap":
        data = as_vector_batch(database, dim, name="database")
        if store_dtype is not None and np.dtype(store_dtype) != np.float64:
            data = data.astype(np.dtype(store_dtype)).astype(np.float64)
        return data, None
    if isinstance(database, MmapVectorStore):
        rows = database.rows
        backing: MmapVectorStore | None = database
    elif isinstance(database, np.memmap):
        rows = database
        backing = None
    else:
        backing = MmapVectorStore.from_array(
            np.atleast_2d(np.asarray(database)),
            dtype=store_dtype or "float32",
            path=store_path,
        )
        rows = backing.rows
    if rows.ndim != 2 or (dim is not None and rows.shape[1] != dim):
        raise QueryError(
            f"database shape {rows.shape} does not match expected "
            f"dimensionality {dim}"
        )
    return rows, backing


def restore_distance(
    counter: CountingDistance,
    snapshot: Any,
    *,
    store: str = "heap",
    store_path: "str | None" = None,
    block_rows: int | None = None,
    force_port: bool = False,
) -> tuple[Any, "MmapVectorStore | None"]:
    """Snapshot-restore companion of :func:`resolve_store`.

    Returns ``(distance, backing_store)`` for
    :func:`repro.persistence.load_index`: with ``store="mmap"`` the
    archived rows are spilled block-by-block into a memory-mapped store
    (pass its ``rows`` as the load's database override) and
    ``block_rows`` defaults on, so the restored index streams pages
    exactly like a fresh out-of-core build.  *force_port* wraps the
    counter in a :class:`~repro.mam.base.DistancePort` even without
    blocking (the SAM refinement contract).
    """
    if store not in STORES:
        raise QueryError(f"unknown store {store!r}; choose from {list(STORES)}")
    if store == "mmap" and block_rows is None:
        from ..kernels import DEFAULT_BLOCK_ROWS

        block_rows = DEFAULT_BLOCK_ROWS
    backing: MmapVectorStore | None = None
    if store == "mmap":
        db = np.asarray(snapshot.database)
        dtype = db.dtype if db.dtype in (np.float32, np.float64) else np.float64
        backing = MmapVectorStore.from_array(db, dtype=dtype, path=store_path)
    if block_rows is None and not force_port:
        return counter, backing
    from ..mam.base import DistancePort

    return DistancePort(counter, block_rows=block_rows), backing


def _page_cache(am: AccessMethod) -> Any:
    """The LRU page cache backing *am*, if it has one (else ``None``)."""
    cache = getattr(am, "cache", None)
    if cache is not None:
        return cache
    store = getattr(am, "store", None)
    return getattr(store, "cache", None) if store is not None else None


def record_build_metrics(
    am: AccessMethod,
    counter: CountingDistance,
    *,
    model: str,
    method: str,
    transforms: int = 0,
    block_rows: int | None = None,
    seconds: float = 0.0,
    event: str = "build",
) -> None:
    """Funnel a finished build into the active observability registry.

    Call *before* the model resets its counter: the build-phase
    evaluations are recorded one-shot here (labeled ``phase="build"``),
    then the query-phase delta-sync starts from zero.  A no-op with the
    null registry.  When the structured JSON-lines logger is active, one
    *event* record (``"build"`` or ``"load"``) with the exact build-phase
    costs is emitted regardless of the registry — inside a trace scope,
    so the record carries a ``trace_id``.
    """
    logger = get_logger()
    if logger.enabled:
        with trace_scope():
            log_event(
                event,
                model=model,
                method=method,
                distance_computations=int(counter.count),
                transforms=transforms or None,
                seconds=round(seconds, 6) if seconds else None,
            )
    registry = get_registry()
    if not registry.enabled:
        return
    record_distance_stats(
        counter.stats, registry=registry, model=model, method=method, phase="build"
    )
    if transforms:
        registry.counter(
            TRANSFORMS, "vector transformations into the Euclidean space"
        ).inc(transforms, model=model, method=method, phase="build")
    from ..kernels.cholesky_cache import cholesky_cache_info
    from ..mam.stats import describe_index

    record_cholesky_cache(cholesky_cache_info(), registry=registry)
    try:
        description = describe_index(am)
    except Exception:
        # Diagnostics must never break a build; structure gauges are
        # best-effort for exotic hand-wired methods.
        description = None
    if description is not None:
        record_index_description(
            description, registry=registry, model=model, method=method
        )
    cache = _page_cache(am)
    if cache is not None:
        record_cache_stats(cache.stats, registry=registry)
    record_memory(
        registry=registry,
        model=model,
        method=method,
        phase="build",
        block_rows=block_rows,
    )


class BuiltIndex:
    """An access method bound to a model's representation and counters.

    Query methods accept vectors in the *source* (QFD) space; the QMap
    model transforms them on the way in (and counts the transform), so the
    two models are interchangeable drop-ins for the benches and tests.
    """

    def __init__(
        self,
        access_method: AccessMethod,
        counter: CountingDistance,
        *,
        model_name: str,
        query_mapper: Callable[[np.ndarray], np.ndarray] | None = None,
        batch_mapper: Callable[[np.ndarray], np.ndarray] | None = None,
        build_costs: IndexCosts,
        method_name: str | None = None,
        source_matrix: np.ndarray | None = None,
    ) -> None:
        self._am = access_method
        self._counter = counter
        self._model_name = model_name
        self._query_mapper = query_mapper
        self._batch_mapper = batch_mapper
        self._build_costs = build_costs
        self._method_name = method_name
        self._source_matrix = source_matrix
        self._query_transforms = 0
        self._instrument = DistanceInstrument(
            counter,
            model=model_name,
            method=method_name or type(access_method).__name__,
        )
        self._transform_baselines: dict[int, int] = {}

    @property
    def access_method(self) -> AccessMethod:
        """The underlying index structure."""
        return self._am

    @property
    def model_name(self) -> str:
        """``"qfd"`` or ``"qmap"``."""
        return self._model_name

    @property
    def build_costs(self) -> IndexCosts:
        """Costs spent building the index (including data transforms)."""
        return self._build_costs

    @property
    def method_name(self) -> str | None:
        """Registry name of the access method (``None`` if hand-wired)."""
        return self._method_name

    def save(self, path: object, *, extra_meta: "dict[str, Any] | None" = None) -> str:
        """Snapshot the built index, the model marker and the QFD matrix.

        The archive restores through :meth:`QFDModel.load_index` /
        :meth:`QMapModel.load_index` (which re-check the matrix) or
        :func:`repro.models.load_built_index` (which rebuilds the model
        from the stored matrix) — in all cases with zero distance
        evaluations.  Returns the path written.
        """
        from ..exceptions import StorageError
        from ..persistence import save_index

        if self._method_name is None or self._source_matrix is None:
            raise StorageError(
                "this index was not built through a model pipeline; "
                "snapshot the access method with repro.persistence.save_index"
            )
        meta: dict[str, Any] = {
            "model": np.str_(self._model_name),
            "matrix": np.asarray(self._source_matrix, dtype=np.float64),
            "build_distance_computations": np.int64(
                self._build_costs.distance_computations
            ),
            "build_transforms": np.int64(self._build_costs.transforms),
            "build_seconds": np.float64(self._build_costs.seconds),
        }
        for key, value in (extra_meta or {}).items():
            meta[key] = value
        return save_index(self._am, path, meta=meta)

    def _map_query(self, query: ArrayLike) -> np.ndarray:
        q = as_vector(query, name="query")
        if self._query_mapper is None:
            return q
        self._query_transforms += 1
        return self._query_mapper(q)

    def _sync_metrics(self, queries: int = 0, kind: str = "") -> None:
        """Mirror query-phase counters into the active observability registry.

        Delta-synced, so the registry's ``repro_distance_evaluations_total``
        for this model/method equals the :class:`CountingDistance` exactly
        at every sync point.  A no-op with the null registry active.

        *queries* is how many queries this sync closes out; the
        single-query entry points pass 1 so the rolling-rate windows see
        per-query loops too.  Batch paths pass 0 — the engine already
        fed the windows chunk-by-chunk as the batch ran.  When *kind* is
        given for a single-query sync, the exact counter delta also
        lands in the ``repro_query_distance_evaluations`` histogram (the
        batch paths feed it per-trace through the engine funnel instead).
        """
        registry = get_registry()
        if not registry.enabled:
            return
        delta = self._instrument.sync(registry)
        if queries:
            observe_query_progress(
                queries,
                delta,
                method=self._method_name or type(self._am).__name__,
                registry=registry,
            )
            if kind:
                registry.histogram(
                    "repro_query_distance_evaluations",
                    "distance evaluations per query",
                ).observe(
                    float(delta),
                    method=self._method_name or type(self._am).__name__,
                    kind=kind,
                )
        current = self._query_transforms
        base = self._transform_baselines.get(id(registry), 0)
        if current < base:
            base = 0
        if current > base:
            registry.counter(
                TRANSFORMS, "vector transformations into the Euclidean space"
            ).inc(
                current - base,
                model=self._model_name,
                method=self._method_name or type(self._am).__name__,
                phase="query",
            )
        self._transform_baselines[id(registry)] = current
        cache = _page_cache(self._am)
        if cache is not None:
            record_cache_stats(cache.stats, registry=registry)

    def _method_label(self) -> str:
        return self._method_name or type(self._am).__name__

    def _run_single(
        self, kind: str, parameter: float, call: Callable[[], list[Neighbor]]
    ) -> list[Neighbor]:
        """Run one query under the active observability sinks.

        With both the registry and the structured logger off this is the
        bare call plus the (no-op) metrics sync — bit-identical to the
        uninstrumented path.  With either sink on, the query runs inside
        a trace scope (minting a root context if the caller has none), a
        failure is accounted through :func:`record_query_error`, and a
        success emits one ``"query"`` log record carrying the exact
        :class:`CountingDistance` delta and wall time.
        """
        registry = get_registry()
        logger = get_logger()
        if not (registry.enabled or logger.enabled):
            try:
                return call()
            finally:
                self._sync_metrics(queries=1)
        method = self._method_label()
        base = self._counter.stats
        start = time.perf_counter()
        with trace_scope():
            try:
                result = call()
            except BaseException as exc:
                self._sync_metrics(queries=1)
                record_query_error(
                    exc,
                    registry=registry,
                    model=self._model_name,
                    method=method,
                    kind=kind,
                )
                raise
            self._sync_metrics(queries=1, kind=kind)
            if logger.enabled:
                stats = self._counter.stats
                calls = int(stats.calls - base.calls)
                rows = int(stats.batch_rows - base.batch_rows)
                log_event(
                    "query",
                    model=self._model_name,
                    method=method,
                    kind=kind,
                    parameter=parameter,
                    seconds=round(time.perf_counter() - start, 6),
                    distance_evaluations=calls + rows,
                    scalar_evaluations=calls,
                    batched_evaluations=rows,
                    results=len(result),
                )
            return result

    def knn_search(self, query: ArrayLike, k: int) -> list[Neighbor]:
        """kNN in the source space (transforming the query if needed)."""
        return self._run_single(
            "knn", float(k), lambda: self._am.knn_search(self._map_query(query), k)
        )

    def range_search(self, query: ArrayLike, radius: float) -> list[Neighbor]:
        """Range query in the source space (radii are preserved exactly)."""
        return self._run_single(
            "range",
            float(radius),
            lambda: self._am.range_search(self._map_query(query), radius),
        )

    def knn_search_batch(
        self,
        queries: ArrayLike,
        k: int,
        *,
        executor: Any = None,
        workers: int | None = None,
        chunk_size: int | None = None,
        collector: Any = None,
    ) -> list[list[Neighbor]]:
        """kNN for a whole batch of source-space queries.

        In the QMap model all queries are transformed in one matrix-matrix
        product, amortizing the O(n^2) per-query mapping cost.  The mapped
        batch then runs through the :mod:`repro.engine` planner: pass
        ``executor``/``workers`` to parallelize and ``collector`` (a
        :class:`~repro.engine.trace.TraceCollector`) for per-query cost
        traces.  With the ``"process"`` executor the model's in-process
        distance counter does not observe worker evaluations — use the
        collector's traces as the authoritative counts there.
        """
        return self._run_batch(
            "knn",
            lambda: self._am.knn_search_batch(
                self._map_query_batch(queries),
                k,
                executor=executor,
                workers=workers,
                chunk_size=chunk_size,
                collector=collector,
            ),
        )

    def range_search_batch(
        self,
        queries: ArrayLike,
        radius: float,
        *,
        executor: Any = None,
        workers: int | None = None,
        chunk_size: int | None = None,
        collector: Any = None,
    ) -> list[list[Neighbor]]:
        """Range queries for a whole batch of source-space queries.

        Same engine plumbing as :meth:`knn_search_batch`; range radii are
        preserved exactly by the QMap transform, so batch results in both
        models are directly comparable.
        """
        return self._run_batch(
            "range",
            lambda: self._am.range_search_batch(
                self._map_query_batch(queries),
                float(radius),
                executor=executor,
                workers=workers,
                chunk_size=chunk_size,
                collector=collector,
            ),
        )

    def _run_batch(
        self, kind: str, call: Callable[[], list[list[Neighbor]]]
    ) -> list[list[Neighbor]]:
        """Run a batch call, accounting a failure against this index.

        The engine's own trace scope is entered inside the call; opening
        one here first (only when a sink is active — :func:`trace_scope`
        is idempotent) means a query that raises mid-batch is logged and
        counted under the same ``trace_id`` as the batch that carried it.
        """
        registry = get_registry()
        logger = get_logger()
        if not (registry.enabled or logger.enabled):
            try:
                return call()
            finally:
                self._sync_metrics()
        with trace_scope():
            try:
                return call()
            except BaseException as exc:
                record_query_error(
                    exc,
                    registry=registry,
                    model=self._model_name,
                    method=self._method_label(),
                    kind=kind,
                )
                raise
            finally:
                self._sync_metrics()

    def _map_query_batch(self, queries: ArrayLike) -> np.ndarray:
        rows = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if self._query_mapper is None:
            return rows
        self._query_transforms += rows.shape[0]
        if self._batch_mapper is not None:
            return self._batch_mapper(rows)
        return np.array([self._query_mapper(q) for q in rows])

    def insert(self, vector: ArrayLike) -> int:
        """Dynamically insert a source-space vector, returning its index.

        In the QMap model the vector is transformed first (one O(n^2)
        product, counted); the underlying structure then pays its normal
        insertion distances.  This is the "dynamically changing databases
        without any distortion" property of paper Section 6 — unlike the
        database-dependent reductions of Section 2.3.1, the map never
        degrades as objects arrive.
        """
        try:
            return self._am.insert(self._map_query(vector))
        finally:
            self._sync_metrics()

    def reset_query_costs(self) -> None:
        """Zero the query-time counters (call between measured batches)."""
        self._counter.reset()
        self._query_transforms = 0
        self._instrument.rebase()
        self._transform_baselines = {key: 0 for key in self._transform_baselines}

    def query_costs(self, seconds: float = 0.0) -> IndexCosts:
        """Costs accumulated since the last :meth:`reset_query_costs`."""
        return IndexCosts(
            distance_computations=self._counter.count,
            transforms=self._query_transforms,
            seconds=seconds,
        )


def instantiate(
    name: str,
    database: np.ndarray,
    counter: CountingDistance,
    kwargs: dict[str, Any],
    *,
    block_rows: int | None = None,
) -> AccessMethod:
    """Build a registry access method, wiring the model's counter in.

    MAMs take the distance as their black box; SAMs pick their own query
    distance but accept an injected refinement counter so the experiments
    can account their distance evaluations identically.  *block_rows*
    flows into the method's :class:`~repro.mam.base.DistancePort`,
    switching its batched evaluations onto the blocked kernels (and, for
    out-of-core capable methods, letting a memory-mapped database pass
    through without a heap copy).
    """
    cls, is_sam = resolve_method(name)
    from ..mam.base import DistancePort

    if is_sam:
        return cls(
            database,
            refine_distance=DistancePort(counter, block_rows=block_rows),
            **kwargs,
        )
    if block_rows is None:
        return cls(database, counter, **kwargs)
    return cls(database, DistancePort(counter, block_rows=block_rows), **kwargs)
