"""The two similarity-model pipelines compared throughout the paper.

:class:`QFDModel` indexes raw histograms under the O(n^2) QFD;
:class:`QMapModel` transforms once and indexes under the O(n) Euclidean
distance.  Both build any registered access method and expose uniform cost
accounting, so every experiment is a two-line comparison.
"""

from .base import MAM_REGISTRY, SAM_REGISTRY, BuiltIndex, IndexCosts, resolve_method
from .explain import AUDITABLE_METHODS, explain_query
from .lifecycle import load_built_index, load_catalog
from .qfd_model import QFDModel
from .qmap_model import QMapModel

__all__ = [
    "QFDModel",
    "QMapModel",
    "BuiltIndex",
    "IndexCosts",
    "MAM_REGISTRY",
    "SAM_REGISTRY",
    "resolve_method",
    "load_built_index",
    "load_catalog",
    "explain_query",
    "AUDITABLE_METHODS",
]
