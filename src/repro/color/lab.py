"""RGB to CIE Lab color conversion (paper Section 5.1).

The paper's testbed converts each histogram bin's "color prototype" from RGB
to CIE Lab before measuring inter-bin distances, because Euclidean distance
in Lab approximates perceptual color difference far better than in RGB.

The implementation follows the standard sRGB -> linear RGB -> CIE XYZ (D65
white point) -> CIE L*a*b* chain; the same chain Rubner et al. (the paper's
reference [25]) assume.  Inputs are arrays of RGB triples in [0, 1].
"""

from __future__ import annotations

import numpy as np

from .._typing import ArrayLike
from ..exceptions import DimensionMismatchError

__all__ = ["srgb_to_linear", "rgb_to_xyz", "xyz_to_lab", "rgb_to_lab"]

#: sRGB -> XYZ matrix for the D65 white point (IEC 61966-2-1).
_RGB_TO_XYZ = np.array(
    [
        [0.4124564, 0.3575761, 0.1804375],
        [0.2126729, 0.7151522, 0.0721750],
        [0.0193339, 0.1191920, 0.9503041],
    ]
)

#: D65 reference white in XYZ.
_WHITE_D65 = np.array([0.95047, 1.00000, 1.08883])

#: CIE Lab nonlinearity threshold (6/29)^3 and slope constants.
_LAB_EPS = 216.0 / 24389.0
_LAB_KAPPA = 24389.0 / 27.0


def _as_rgb(colors: ArrayLike) -> np.ndarray:
    arr = np.asarray(colors, dtype=np.float64)
    squeeze = arr.ndim == 1
    if squeeze:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2 or arr.shape[1] != 3:
        raise DimensionMismatchError(f"expected (m, 3) RGB array, got shape {arr.shape}")
    if arr.min(initial=0.0) < 0.0 or arr.max(initial=0.0) > 1.0:
        raise DimensionMismatchError("RGB components must lie in [0, 1]")
    return arr


def srgb_to_linear(colors: ArrayLike) -> np.ndarray:
    """Undo the sRGB gamma: companded [0,1] values -> linear-light values."""
    rgb = _as_rgb(colors)
    low = rgb <= 0.04045
    return np.where(low, rgb / 12.92, np.power((rgb + 0.055) / 1.055, 2.4))


def rgb_to_xyz(colors: ArrayLike) -> np.ndarray:
    """sRGB triples in [0,1] -> CIE XYZ (D65)."""
    return srgb_to_linear(colors) @ _RGB_TO_XYZ.T


def xyz_to_lab(xyz: ArrayLike) -> np.ndarray:
    """CIE XYZ (D65) -> CIE L*a*b*."""
    arr = np.asarray(xyz, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2 or arr.shape[1] != 3:
        raise DimensionMismatchError(f"expected (m, 3) XYZ array, got shape {arr.shape}")
    ratio = arr / _WHITE_D65
    big = ratio > _LAB_EPS
    f = np.where(big, np.cbrt(ratio), (_LAB_KAPPA * ratio + 16.0) / 116.0)
    lightness = 116.0 * f[:, 1] - 16.0
    a = 500.0 * (f[:, 0] - f[:, 1])
    b = 200.0 * (f[:, 1] - f[:, 2])
    return np.column_stack([lightness, a, b])


def rgb_to_lab(colors: ArrayLike) -> np.ndarray:
    """sRGB triples in [0,1] -> CIE L*a*b* (the paper's prototype space)."""
    return xyz_to_lab(rgb_to_xyz(_as_rgb(colors)))
