"""RGB histogram extraction and normalization (paper Section 5.1).

Each image is represented by a ``b^3``-dimensional color histogram — bin *i*
counts the pixels whose color falls into bin *i* — normalized to sum to one,
exactly as the paper's testbed prescribes (Section 5.1: "Each histogram was
normalized to have the sum equal to 1").
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DimensionMismatchError, MatrixError
from .prototypes import bin_index

__all__ = ["rgb_histogram", "rgb_histograms", "normalize_histogram"]


def rgb_histogram(image: np.ndarray, bins_per_channel: int, *, normalize: bool = True) -> np.ndarray:
    """Color histogram of one image.

    Parameters
    ----------
    image:
        ``(h, w, 3)`` or ``(pixels, 3)`` array of RGB values in [0, 1].
    bins_per_channel:
        ``b``; the histogram has ``b^3`` bins (8 -> 512 as in the paper).
    normalize:
        Normalize the histogram to unit sum (the paper's convention).
    """
    arr = np.asarray(image, dtype=np.float64)
    if arr.ndim == 3 and arr.shape[2] == 3:
        pixels = arr.reshape(-1, 3)
    elif arr.ndim == 2 and arr.shape[1] == 3:
        pixels = arr
    else:
        raise DimensionMismatchError(
            f"expected (h, w, 3) image or (pixels, 3) array, got shape {arr.shape}"
        )
    if pixels.shape[0] == 0:
        raise MatrixError("image has no pixels")
    if pixels.min() < 0.0 or pixels.max() > 1.0:
        raise MatrixError("pixel components must lie in [0, 1]")
    n_bins = bins_per_channel**3
    counts = np.bincount(bin_index(pixels, bins_per_channel), minlength=n_bins)
    hist = counts.astype(np.float64)
    if normalize:
        hist = normalize_histogram(hist)
    return hist


def rgb_histograms(
    images: list[np.ndarray] | np.ndarray,
    bins_per_channel: int,
    *,
    normalize: bool = True,
) -> np.ndarray:
    """Stack :func:`rgb_histogram` over a collection of images."""
    rows = [rgb_histogram(img, bins_per_channel, normalize=normalize) for img in images]
    if not rows:
        raise MatrixError("no images given")
    return np.vstack(rows)


def normalize_histogram(hist: np.ndarray) -> np.ndarray:
    """Scale a non-negative histogram to unit sum."""
    arr = np.asarray(hist, dtype=np.float64)
    if arr.ndim != 1:
        raise DimensionMismatchError(f"histogram must be 1-D, got shape {arr.shape}")
    if np.any(arr < 0.0):
        raise MatrixError("histogram bins must be non-negative")
    total = arr.sum()
    if total <= 0.0:
        raise MatrixError("histogram sums to zero; cannot normalize")
    return arr / total
