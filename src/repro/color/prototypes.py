"""Histogram bin color prototypes (paper Section 5.1).

The testbed divides each of the R, G, B channels into ``b`` bins
(``b = 8`` in the paper, hence ``8 * 8 * 8 = 512`` histogram bins) and
assigns each bin the "color prototype" at its center,

    ((R_min + R_max) / 2, (G_min + G_max) / 2, (B_min + B_max) / 2),

which is then converted to CIE Lab.  The QFD matrix follows as
``A_ij = 1 - d_ij / d_max`` with ``d_ij`` the Euclidean distance between the
Lab prototypes — see :func:`repro.core.prototype_similarity_matrix`.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import MatrixError
from .lab import rgb_to_lab

__all__ = ["rgb_bin_prototypes", "lab_bin_prototypes", "bin_index"]


def rgb_bin_prototypes(bins_per_channel: int) -> np.ndarray:
    """Prototype RGB colors (bin centers) of the ``b^3`` histogram bins.

    Returns an ``(b^3, 3)`` array in bin order ``index = r*b^2 + g*b + b_``,
    each row the RGB center of a bin, components in [0, 1].
    """
    if bins_per_channel < 1:
        raise MatrixError(f"bins_per_channel must be >= 1, got {bins_per_channel}")
    b = bins_per_channel
    centers = (np.arange(b) + 0.5) / b
    r, g, bl = np.meshgrid(centers, centers, centers, indexing="ij")
    return np.column_stack([r.ravel(), g.ravel(), bl.ravel()])


def lab_bin_prototypes(bins_per_channel: int) -> np.ndarray:
    """CIE Lab prototypes of the RGB histogram bins (the paper's choice)."""
    return rgb_to_lab(rgb_bin_prototypes(bins_per_channel))


def bin_index(colors: np.ndarray, bins_per_channel: int) -> np.ndarray:
    """Histogram bin index of each RGB pixel (components in [0, 1]).

    Vectorized over an ``(m, 3)`` pixel array; the component 1.0 falls into
    the last bin.
    """
    if bins_per_channel < 1:
        raise MatrixError(f"bins_per_channel must be >= 1, got {bins_per_channel}")
    arr = np.asarray(colors, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.shape[-1] != 3:
        raise MatrixError(f"expected RGB triples, got shape {arr.shape}")
    b = bins_per_channel
    idx = np.clip((arr * b).astype(np.int64), 0, b - 1)
    return idx[:, 0] * b * b + idx[:, 1] * b + idx[:, 2]
