"""Color substrate of the paper's testbed (Section 5.1).

RGB color histograms with ``b`` bins per channel, bin-center color
prototypes, and the sRGB -> CIE Lab conversion used to measure perceptual
distances between prototypes when building the Hafner QFD matrix.
"""

from .histograms import normalize_histogram, rgb_histogram, rgb_histograms
from .lab import rgb_to_lab, rgb_to_xyz, srgb_to_linear, xyz_to_lab
from .prototypes import bin_index, lab_bin_prototypes, rgb_bin_prototypes

__all__ = [
    "rgb_histogram",
    "rgb_histograms",
    "normalize_histogram",
    "srgb_to_linear",
    "rgb_to_xyz",
    "xyz_to_lab",
    "rgb_to_lab",
    "rgb_bin_prototypes",
    "lab_bin_prototypes",
    "bin_index",
]
