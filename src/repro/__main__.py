"""``python -m repro`` dispatches to :mod:`repro.cli`."""

import sys

from .cli import main

sys.exit(main())
