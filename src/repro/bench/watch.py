"""Drift detection over the benchmark history, and metrics-file diffing.

:func:`~repro.bench.history.check_regression` gates the latest run
against a *single committed baseline* with zero tolerance on counts —
the right gate for bit-reproducible cost metrics, but blind to the
history's own trajectory: a timing metric can degrade 5% per run for
ten runs without ever tripping a per-run threshold, and machine noise
makes any fixed threshold on wall-clock values either deaf or flappy.

This module watches the *trailing window* instead, per metric key:

* the trailing window (default: the 10 runs before the latest) gives a
  **median** and **MAD** (median absolute deviation) — robust location
  and scale, one outlier run cannot poison either;
* the latest value's robust z-score is ``0.6745 * (x - median) / MAD``
  (0.6745 is the normal-consistency constant, so sigma thresholds read
  like ordinary z-scores);
* **count keys** (``*_evaluations``, ``*_transforms``, ...) stay
  zero-tolerance: any deviation from the window median is drift — the
  paper's cost unit is deterministic for a fixed seed, so "noise" in a
  count is a behavior change by definition;
* **timing keys** (everything else: seconds, queries/sec, RSS bytes)
  drift when ``|z| > sigma`` (default 5.0).  When the MAD is zero (the
  window is constant) any change is infinitely surprising, so the
  z-score degenerates to 0 (equal) or ``inf`` (different) — documented
  behavior, not an accident.

Surfaced as ``repro bench watch`` (exit 0 clean / 1 drift / 2
insufficient history) and, for comparing two exported metrics files
directly, :func:`diff_metrics` behind ``repro report --diff A B``.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from statistics import median
from typing import Any, Mapping

from .history import HISTORY_FILENAME, load_history

__all__ = [
    "MetricDrift",
    "BenchWatch",
    "WatchReport",
    "robust_zscore",
    "is_count_metric",
    "watch_history",
    "load_metrics_jsonl",
    "diff_metrics",
    "render_diff",
]

#: Normal-consistency constant: for Gaussian data MAD*1.4826 ~= stddev,
#: so multiplying by its inverse makes the robust z read like a z-score.
_MAD_CONSISTENCY = 0.6745

#: Last dotted segment of a metric key naming a deterministic count.
_COUNT_KEY = re.compile(
    r"(_|^)(evaluations|transforms|alternatives|checks|candidates|hits|"
    r"count|counts|nodes|pivots|results|queries|size|dim|bins)$"
)


def is_count_metric(key: str) -> bool:
    """Whether *key* names a deterministic count (zero-tolerance gate)."""
    return bool(_COUNT_KEY.search(key.rsplit(".", 1)[-1]))


def robust_zscore(value: float, window: "list[float]") -> tuple[float, float, float]:
    """``(z, median, MAD)`` of *value* against the trailing *window*.

    With a zero MAD (constant window) the z degenerates to 0.0 when the
    value equals the median and ``inf`` otherwise.
    """
    med = median(window)
    mad = median(abs(x - med) for x in window)
    if mad == 0.0:
        z = 0.0 if value == med else float("inf")
    else:
        z = _MAD_CONSISTENCY * (value - med) / mad
    return z, med, mad


@dataclass(frozen=True)
class MetricDrift:
    """Verdict for one metric key of one bench."""

    bench: str
    metric: str
    kind: str  # "count" | "timing"
    value: float
    median: float
    mad: float
    zscore: float
    window: int
    status: str  # "ok" | "drift" | "new"

    def describe(self) -> str:
        tail = (
            f"value={self.value:g} median={self.median:g} "
            f"mad={self.mad:g} z={self.zscore:+.2f} n={self.window}"
        )
        return f"[{self.status.upper():5s}] {self.metric} ({self.kind}): {tail}"


@dataclass
class BenchWatch:
    """All verdicts for one bench name."""

    bench: str
    checked: int = 0
    priors: int = 0
    drifts: "list[MetricDrift]" = field(default_factory=list)
    news: "list[MetricDrift]" = field(default_factory=list)
    oks: "list[MetricDrift]" = field(default_factory=list)
    insufficient: bool = False


@dataclass
class WatchReport:
    """The whole watch run: per-bench results plus the process exit code."""

    benches: "list[BenchWatch]" = field(default_factory=list)
    sigma: float = 5.0
    window: int = 10
    min_history: int = 3

    @property
    def drifted(self) -> bool:
        return any(b.drifts for b in self.benches)

    @property
    def checked_any(self) -> bool:
        return any(not b.insufficient for b in self.benches)

    @property
    def exit_code(self) -> int:
        """0 clean, 1 drift detected, 2 insufficient history everywhere."""
        if self.drifted:
            return 1
        if not self.checked_any:
            return 2
        return 0

    def render(self) -> str:
        lines = [
            f"bench watch: window={self.window} sigma={self.sigma:g} "
            f"min-history={self.min_history}"
        ]
        if not self.benches:
            lines.append("  (no history records)")
        for bench in self.benches:
            if bench.insufficient:
                lines.append(
                    f"  {bench.bench}: SKIPPED — {bench.priors} prior run(s), "
                    f"need {self.min_history}"
                )
                continue
            verdict = "DRIFT" if bench.drifts else "ok"
            lines.append(
                f"  {bench.bench}: {verdict} — {bench.checked} metric(s) vs "
                f"{bench.priors} prior run(s)"
                + (f", {len(bench.news)} new" if bench.news else "")
            )
            for drift in bench.drifts:
                lines.append("    " + drift.describe())
        codes = {0: "clean", 1: "drift detected", 2: "insufficient history"}
        lines.append(f"result: {codes[self.exit_code]} (exit {self.exit_code})")
        return "\n".join(lines)


def _numeric_metrics(record: Mapping[str, Any]) -> dict[str, float]:
    out: dict[str, float] = {}
    for key, value in (record.get("metrics") or {}).items():
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            out[str(key)] = float(value)
    return out


def watch_history(
    path: "str | Path" = HISTORY_FILENAME,
    *,
    bench: "str | None" = None,
    window: int = 10,
    sigma: float = 5.0,
    min_history: int = 3,
) -> WatchReport:
    """Run the drift detector over a ``BENCH_history.jsonl`` file.

    For each bench name (or just *bench*), the newest record is compared
    per metric key against the up-to-*window* prior records.  A bench
    with fewer than *min_history* priors is skipped (and, if no bench
    has enough history, the report's exit code is 2).  Metric keys new
    in the latest record are reported informationally, never as drift.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if min_history < 1:
        raise ValueError(f"min_history must be >= 1, got {min_history}")
    records = load_history(path)
    by_bench: dict[str, list[dict]] = {}
    for record in records:
        name = str(record.get("bench", ""))
        if bench is not None and name != bench:
            continue
        by_bench.setdefault(name, []).append(record)
    report = WatchReport(sigma=sigma, window=window, min_history=min_history)
    for name, runs in by_bench.items():
        result = BenchWatch(bench=name)
        latest = _numeric_metrics(runs[-1])
        priors = [_numeric_metrics(r) for r in runs[:-1]][-window:]
        result.priors = len(priors)
        if len(priors) < min_history:
            result.insufficient = True
            report.benches.append(result)
            continue
        for key in sorted(latest):
            series = [m[key] for m in priors if key in m]
            if not series:
                result.news.append(
                    MetricDrift(
                        bench=name, metric=key, kind="new", value=latest[key],
                        median=latest[key], mad=0.0, zscore=0.0,
                        window=0, status="new",
                    )
                )
                continue
            kind = "count" if is_count_metric(key) else "timing"
            z, med, mad = robust_zscore(latest[key], series)
            if kind == "count":
                drifted = latest[key] != med
            else:
                drifted = abs(z) > sigma
            verdict = MetricDrift(
                bench=name, metric=key, kind=kind, value=latest[key],
                median=med, mad=mad, zscore=z, window=len(series),
                status="drift" if drifted else "ok",
            )
            result.checked += 1
            (result.drifts if drifted else result.oks).append(verdict)
        report.benches.append(result)
    return report


# ----------------------------------------------------------------------
# metrics-JSONL diffing (repro report --diff A B)
# ----------------------------------------------------------------------

def load_metrics_jsonl(path: "str | Path") -> dict[str, float]:
    """Flatten one ``--metrics jsonl`` export into ``{key: value}``.

    Keys are ``name{label=value,...}`` for counters/gauges; histograms
    contribute ``...#count`` and ``...#sum``.  Span records are skipped
    (wall times per individual span are not comparable run to run).
    """
    out: dict[str, float] = {}
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        entry = json.loads(line)
        if entry.get("type") == "span":
            continue
        name = str(entry.get("name", ""))
        labels = entry.get("labels") or {}
        label_text = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        key = f"{name}{{{label_text}}}" if label_text else name
        if "value" in entry:
            out[key] = float(entry["value"])
        else:
            out[f"{key}#count"] = float(entry.get("count", 0))
            out[f"{key}#sum"] = float(entry.get("sum", 0.0))
    return out


@dataclass(frozen=True)
class MetricDelta:
    """One key's A-vs-B comparison in :func:`diff_metrics`."""

    key: str
    a: "float | None"
    b: "float | None"

    @property
    def delta(self) -> float:
        return (self.b or 0.0) - (self.a or 0.0)

    @property
    def relative(self) -> float:
        if not self.a:
            return float("inf") if self.delta else 0.0
        return self.delta / self.a


def diff_metrics(
    a: Mapping[str, float], b: Mapping[str, float]
) -> list[MetricDelta]:
    """Key-wise comparison of two flattened metrics maps (changed first)."""
    deltas = [
        MetricDelta(key, a.get(key), b.get(key))
        for key in sorted(set(a) | set(b))
    ]
    return sorted(
        deltas, key=lambda d: (-abs(d.delta), d.key)
    )


def render_diff(
    deltas: "list[MetricDelta]", *, label_a: str = "A", label_b: str = "B"
) -> str:
    """Aligned table of :func:`diff_metrics` output."""
    changed = [d for d in deltas if d.delta or d.a is None or d.b is None]
    lines = [
        f"metrics diff: {label_a} -> {label_b} "
        f"({len(changed)} changed / {len(deltas)} keys)"
    ]
    if not changed:
        lines.append("  (identical)")
        return "\n".join(lines)
    width = max(len(d.key) for d in changed)

    def cell(value: "float | None") -> str:
        return "-" if value is None else f"{value:g}"

    for d in changed:
        rel = "" if d.a in (None, 0.0) or d.b is None else f"  ({d.relative:+.1%})"
        lines.append(
            f"  {d.key:<{width}}  {cell(d.a):>14} -> {cell(d.b):>14}"
            f"  Δ={d.delta:+g}{rel}"
        )
    return "\n".join(lines)
