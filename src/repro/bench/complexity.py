"""Empirical verification of the paper's complexity Tables 1 and 2.

The paper's cost unit is the distance computation: O(n^2) arithmetic for a
QFD evaluation, O(n) for a Euclidean one, plus O(n^2) per QMap vector
transformation.  :func:`measured_flops` converts the counters recorded by
the models into that arithmetic estimate, and the ``theoretical_*``
functions evaluate the closed forms from Tables 1 and 2 so the benches can
check that the measured costs scale the way the paper proves — and that
the "Better" column comes out the same.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import QueryError
from ..models import IndexCosts

__all__ = [
    "measured_flops",
    "theoretical_indexing_flops",
    "theoretical_querying_flops",
    "ComplexityRow",
]


def measured_flops(costs: IndexCosts, model_name: str, dim: int) -> float:
    """Arithmetic-operation estimate of recorded costs.

    QFD evaluations cost ``n^2``, Euclidean evaluations ``n``, and each
    QMap transformation ``n^2`` (one matrix-to-vector product).
    """
    if model_name == "qfd":
        eval_cost = dim * dim
    elif model_name == "qmap":
        eval_cost = dim
    else:
        raise QueryError(f"unknown model {model_name!r}")
    return float(
        costs.distance_computations * eval_cost + costs.transforms * dim * dim
    )


def theoretical_indexing_flops(
    method: str,
    model: str,
    *,
    m: int,
    n: int,
    p: int = 0,
    selection_cost: int = 0,
) -> float:
    """Closed forms of the paper's Table 1 (indexing time complexity).

    Parameters mirror the paper's symbols: database size ``m``,
    dimensionality ``n``, pivot count ``p``, and ``c`` = *selection_cost*
    (distance computations spent selecting pivots).
    """
    import math

    if method == "sequential":
        return float(m * n) if model == "qfd" else float(m * n * n)
    if method == "pivot-table":
        if model == "qfd":
            return float(selection_cost * n * n + m * p * n * n)
        return float(selection_cost * n + m * n * n + m * p * n)
    if method == "mtree":
        log_m = math.log2(max(m, 2))
        if model == "qfd":
            return float(m * n * n * log_m)
        return float(m * n * n + m * n * log_m)
    raise QueryError(f"no Table 1 closed form for method {method!r}")


def theoretical_querying_flops(
    method: str,
    model: str,
    *,
    m: int,
    n: int,
    p: int = 0,
    x: int = 0,
) -> float:
    """Closed forms of the paper's Table 2 (querying time complexity).

    ``x`` is the number of non-filtered objects (pivot table) or distance
    computations spent by the query (M-tree), measured from the actual run.
    """
    if method == "sequential":
        return float(m * n * n) if model == "qfd" else float(m * n + n * n)
    if method == "pivot-table":
        if model == "qfd":
            return float(p * n * n + m * p + x * n * n)
        return float(n * n + p * n + m * p + x * n)
    if method == "mtree":
        return float(x * n * n) if model == "qfd" else float(n * n + x * n)
    raise QueryError(f"no Table 2 closed form for method {method!r}")


@dataclass(frozen=True)
class ComplexityRow:
    """One row of the reproduced Table 1 / Table 2."""

    method: str
    model: str
    measured_evaluations: int
    measured_transforms: int
    measured_flops: float
    theoretical_flops: float

    @property
    def flops_ratio(self) -> float:
        """Measured over theoretical; O-constant, stable across sizes."""
        if self.theoretical_flops <= 0.0:
            return float("inf")
        return self.measured_flops / self.theoretical_flops
