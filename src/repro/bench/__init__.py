"""Benchmark harness: timing, cost measurement, sweep running, reporting.

One module per concern; the actual per-figure experiment definitions live
in ``benchmarks/`` at the repository root (one file per paper table or
figure, see DESIGN.md Section 3).
"""

from .complexity import (
    ComplexityRow,
    measured_flops,
    theoretical_indexing_flops,
    theoretical_querying_flops,
)
from .history import (
    HISTORY_FILENAME,
    RegressionCheck,
    append_history,
    check_regression,
    environment_fingerprint,
    git_revision,
    history_record,
    load_history,
)
from .reporting import format_series, format_table, metrics_block, speedup
from .watch import (
    BenchWatch,
    MetricDelta,
    MetricDrift,
    WatchReport,
    diff_metrics,
    is_count_metric,
    load_metrics_jsonl,
    render_diff,
    robust_zscore,
    watch_history,
)
from .runner import (
    ModelComparison,
    QueryMeasurement,
    compare_models,
    measure_queries,
    sweep_sizes,
)
from .timing import Stopwatch, TimingResult, time_callable

__all__ = [
    "Stopwatch",
    "TimingResult",
    "time_callable",
    "format_table",
    "format_series",
    "speedup",
    "metrics_block",
    "QueryMeasurement",
    "ModelComparison",
    "measure_queries",
    "compare_models",
    "sweep_sizes",
    "measured_flops",
    "theoretical_indexing_flops",
    "theoretical_querying_flops",
    "ComplexityRow",
    "HISTORY_FILENAME",
    "RegressionCheck",
    "environment_fingerprint",
    "git_revision",
    "history_record",
    "append_history",
    "load_history",
    "check_regression",
    "BenchWatch",
    "MetricDelta",
    "MetricDrift",
    "WatchReport",
    "diff_metrics",
    "is_count_metric",
    "load_metrics_jsonl",
    "render_diff",
    "robust_zscore",
    "watch_history",
]
