"""Experiment runner: build/query cost measurement for both models.

Every figure bench boils down to the same loop — build an index in the QFD
model and in the QMap model over a growing database, run a query batch,
record seconds and distance evaluations, report the speedup.  This module
is that loop, factored once.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..datasets.workloads import Workload
from ..exceptions import QueryError
from ..models import BuiltIndex, IndexCosts, QFDModel, QMapModel

__all__ = ["QueryMeasurement", "ModelComparison", "measure_queries", "compare_models", "sweep_sizes"]


@dataclass(frozen=True)
class QueryMeasurement:
    """Averaged query costs over a batch."""

    queries: int
    total: IndexCosts

    @property
    def seconds_per_query(self) -> float:
        """Mean wall seconds per query."""
        return self.total.seconds / self.queries

    @property
    def evaluations_per_query(self) -> float:
        """Mean distance evaluations per query."""
        return self.total.distance_computations / self.queries


def measure_queries(
    index: BuiltIndex,
    queries: np.ndarray,
    *,
    mode: str = "knn",
    k: int = 1,
    radius: float = 0.1,
) -> QueryMeasurement:
    """Run a query batch against *index*, returning averaged costs.

    ``mode`` is ``"knn"`` (paper Figures 5-9) or ``"range"``.
    """
    if mode not in ("knn", "range"):
        raise QueryError(f"mode must be 'knn' or 'range', got {mode!r}")
    if queries.shape[0] == 0:
        raise QueryError("need at least one query")
    index.reset_query_costs()
    start = time.perf_counter()
    for q in queries:
        if mode == "knn":
            index.knn_search(q, k)
        else:
            index.range_search(q, radius)
    elapsed = time.perf_counter() - start
    return QueryMeasurement(
        queries=queries.shape[0], total=index.query_costs(seconds=elapsed)
    )


@dataclass(frozen=True)
class ModelComparison:
    """One experiment cell: QFD model vs QMap model on the same task."""

    method: str
    database_size: int
    dim: int
    qfd_build: IndexCosts
    qmap_build: IndexCosts
    qfd_query: QueryMeasurement
    qmap_query: QueryMeasurement

    @property
    def indexing_speedup(self) -> float:
        """QFD-over-QMap build-time ratio (>1 means QMap wins)."""
        if self.qmap_build.seconds <= 0.0:
            return float("inf")
        return self.qfd_build.seconds / self.qmap_build.seconds

    @property
    def querying_speedup(self) -> float:
        """QFD-over-QMap per-query time ratio (>1 means QMap wins)."""
        if self.qmap_query.seconds_per_query <= 0.0:
            return float("inf")
        return self.qfd_query.seconds_per_query / self.qmap_query.seconds_per_query


def compare_models(
    workload: Workload,
    method: str,
    *,
    method_kwargs: dict[str, Any] | None = None,
    mode: str = "knn",
    k: int = 1,
    radius: float = 0.1,
) -> ModelComparison:
    """Build and query the same MAM in both models on one workload."""
    kwargs = dict(method_kwargs or {})
    qfd_model = QFDModel(workload.matrix)
    qmap_model = QMapModel(workload.matrix)
    qfd_index = qfd_model.build_index(method, workload.database, **kwargs)
    qmap_index = qmap_model.build_index(method, workload.database, **kwargs)
    qfd_query = measure_queries(qfd_index, workload.queries, mode=mode, k=k, radius=radius)
    qmap_query = measure_queries(qmap_index, workload.queries, mode=mode, k=k, radius=radius)
    return ModelComparison(
        method=method,
        database_size=workload.size,
        dim=workload.dim,
        qfd_build=qfd_index.build_costs,
        qmap_build=qmap_index.build_costs,
        qfd_query=qfd_query,
        qmap_query=qmap_query,
    )


def sweep_sizes(
    workload: Workload,
    method: str,
    sizes: list[int],
    *,
    method_kwargs: dict[str, Any] | None = None,
    mode: str = "knn",
    k: int = 1,
    radius: float = 0.1,
) -> list[ModelComparison]:
    """The paper's growing-database sweep (x-axes of Figures 2-7)."""
    out = []
    for m in sizes:
        out.append(
            compare_models(
                workload.prefix(m),
                method,
                method_kwargs=method_kwargs,
                mode=mode,
                k=k,
                radius=radius,
            )
        )
    return out
