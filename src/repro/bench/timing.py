"""Wall-clock measurement helpers for the experiment harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from ..exceptions import QueryError

__all__ = ["Stopwatch", "time_callable", "TimingResult"]


class Stopwatch:
    """Context manager measuring elapsed seconds via ``perf_counter``.

    Examples
    --------
    >>> with Stopwatch() as sw:
    ...     _ = sum(range(1000))
    >>> sw.seconds >= 0.0
    True
    """

    def __init__(self) -> None:
        self.seconds = 0.0
        self._start = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.seconds = time.perf_counter() - self._start


@dataclass(frozen=True)
class TimingResult:
    """Summary of repeated timings of one callable."""

    repeats: int
    total_seconds: float
    per_call: list[float] = field(repr=False, default_factory=list)

    @property
    def mean(self) -> float:
        """Mean seconds per call."""
        return self.total_seconds / self.repeats

    @property
    def best(self) -> float:
        """Fastest observed call."""
        return min(self.per_call)


def time_callable(func: Callable[[], object], *, repeats: int = 3) -> TimingResult:
    """Time *func* for *repeats* calls (no warmup discard; callers decide)."""
    if repeats < 1:
        raise QueryError(f"repeats must be >= 1, got {repeats}")
    per_call = []
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        per_call.append(time.perf_counter() - start)
    return TimingResult(repeats=repeats, total_seconds=sum(per_call), per_call=per_call)
