"""Plain-text reporting of experiment tables and figure series.

The benches print the same rows/series the paper's tables and figures
report; these helpers keep the formatting uniform (fixed-width columns,
explicit units) so the outputs in EXPERIMENTS.md stay readable.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

__all__ = [
    "format_table",
    "format_series",
    "speedup",
    "memory_block",
    "metrics_block",
]


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]], *, title: str = "") -> str:
    """Render an aligned fixed-width table."""
    str_rows = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("-" * len(header))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    *,
    title: str = "",
) -> str:
    """Render figure-style data: one x column plus one column per series."""
    headers = [x_label, *series.keys()]
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x, *[values[i] for values in series.values()]])
    return format_table(headers, rows, title=title)


def speedup(baseline: float, improved: float) -> float:
    """Baseline-over-improved ratio (how many times faster), inf-safe."""
    if improved <= 0.0:
        return float("inf") if baseline > 0.0 else 1.0
    return baseline / improved


def memory_block() -> dict[str, Any]:
    """Process peak-memory snapshot embedded in every bench report.

    ``peak_rss_bytes`` is the high-water mark of the process resident
    set (``getrusage``; a running ``tracemalloc`` session where the
    :mod:`resource` module is unavailable — ``source`` says which), so
    the scale benches can assert the out-of-core path stayed out of
    core.  Always present, even with observability off.
    """
    from ..obs import peak_rss_bytes, peak_rss_source

    return {
        "peak_rss_bytes": peak_rss_bytes(),
        "source": peak_rss_source(),
    }


def metrics_block(registry: Any = None) -> dict[str, Any]:
    """The ``metrics`` block the ``BENCH_*.json`` reports embed.

    A JSON-able snapshot of *registry* (default: the active one) in the
    :func:`repro.obs.snapshot_dict` shape, plus a ``memory`` key (see
    :func:`memory_block`).  With the null registry active the metric list
    is empty but the keys are present, so report consumers can rely on
    them.
    """
    from ..obs import get_registry, snapshot_dict

    reg = registry if registry is not None else get_registry()
    if not getattr(reg, "enabled", False):
        block: dict[str, Any] = {"metrics": [], "spans": []}
    else:
        block = snapshot_dict(reg)
    block["memory"] = memory_block()
    return block
