"""Benchmark regression history: append-only run log + baseline gate.

Two pieces keep the paper-shaped performance claims honest over time:

* an **append-only history** (``BENCH_history.jsonl``): every benchmark
  run appends one JSON record — environment fingerprint, git revision,
  and the run's metrics block — so regressions can be bisected against
  real data instead of memory;
* a **baseline gate** (:func:`check_regression`): deterministic cost
  metrics (distance-evaluation counts on a fixed-seed workload) are
  compared against a committed baseline with per-metric relative
  thresholds; any increase beyond its threshold is a regression.

Counts are the right gate because the paper's cost unit is the distance
computation: the counts are bit-reproducible for a fixed seed, so the
default threshold is **zero** — any count drift means the traversal
changed.  Wall-clock metrics are recorded in the history but never gated
(machine-dependent).
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

__all__ = [
    "HISTORY_FILENAME",
    "RegressionCheck",
    "environment_fingerprint",
    "git_revision",
    "history_record",
    "append_history",
    "load_history",
    "check_regression",
]

#: Default history file name, created in the current working directory
#: (the repository root when run from a checkout).
HISTORY_FILENAME = "BENCH_history.jsonl"


def environment_fingerprint() -> dict:
    """Where a benchmark ran: interpreter, numpy, platform, CPU count."""
    return {
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
    }


def git_revision(root: "str | os.PathLike | None" = None) -> str:
    """The checkout's commit SHA, or ``"unknown"`` outside a work tree."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def history_record(
    bench: str,
    metrics: dict,
    *,
    meta: "dict | None" = None,
) -> dict:
    """One history line: who/where/when plus the run's metrics."""
    record = {
        "bench": bench,
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "git": git_revision(),
        "env": environment_fingerprint(),
        "metrics": metrics,
    }
    if meta:
        record["meta"] = meta
    return record


def append_history(
    record: dict, path: "str | os.PathLike" = HISTORY_FILENAME
) -> Path:
    """Append *record* as one JSON line (creating the file if needed)."""
    target = Path(path)
    with target.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")
    return target


def load_history(path: "str | os.PathLike" = HISTORY_FILENAME) -> list[dict]:
    """All history records, oldest first (empty list if no file)."""
    target = Path(path)
    if not target.exists():
        return []
    records = []
    for line in target.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


@dataclass(frozen=True)
class RegressionCheck:
    """One gated metric: baseline vs observed under a relative threshold.

    ``regressed`` is True when the observed value *increased* past
    ``baseline * (1 + threshold)`` (costs only go bad upward).
    ``drifted`` additionally flags any out-of-threshold change in either
    direction — an improvement should prompt a baseline update, not
    silent staleness.
    """

    metric: str
    baseline: float
    observed: float
    threshold: float

    @property
    def relative_change(self) -> float:
        if self.baseline == 0:
            return 0.0 if self.observed == 0 else float("inf")
        return (self.observed - self.baseline) / self.baseline

    @property
    def regressed(self) -> bool:
        change = self.relative_change
        return change > self.threshold

    @property
    def drifted(self) -> bool:
        return abs(self.relative_change) > self.threshold

    def describe(self) -> str:
        change = self.relative_change
        if self.regressed:
            verdict = "REGRESSED"
        elif self.drifted:
            verdict = "improved (update the baseline)"
        else:
            verdict = "ok"
        return (
            f"{self.metric}: baseline={self.baseline:g} observed={self.observed:g} "
            f"change={change:+.2%} (threshold {self.threshold:.2%}) [{verdict}]"
        )


def check_regression(
    observed: dict,
    baseline: dict,
    *,
    default_threshold: float = 0.0,
    thresholds: "dict | None" = None,
) -> list[RegressionCheck]:
    """Gate *observed* metrics against *baseline* metrics.

    Every baseline metric must be present in *observed* (a vanished
    metric is reported as a regression from baseline to ``inf``).
    Metrics only present in *observed* are ignored — adding measurements
    must not fail old baselines.
    """
    thresholds = thresholds or {}
    checks = []
    for metric in sorted(baseline):
        base = float(baseline[metric])
        threshold = float(thresholds.get(metric, default_threshold))
        if metric not in observed:
            checks.append(
                RegressionCheck(
                    metric=metric,
                    baseline=base,
                    observed=float("inf"),
                    threshold=threshold,
                )
            )
            continue
        checks.append(
            RegressionCheck(
                metric=metric,
                baseline=base,
                observed=float(observed[metric]),
                threshold=threshold,
            )
        )
    return checks
