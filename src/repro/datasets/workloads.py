"""Experiment workloads: database + held-out queries + QFD matrix.

The paper's evaluation protocol (Section 5.1): index a growing database,
then average query times over a set of query histograms that "were not
indexed".  A :class:`Workload` bundles exactly those pieces, and the
builders below produce the standard configurations used by the benches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..color.prototypes import lab_bin_prototypes
from ..core.matrices import prototype_similarity_matrix, random_spd_matrix
from ..core.validation import PDRepair
from ..exceptions import QueryError
from .synthetic import clustered_histograms, gaussian_vectors

__all__ = ["Workload", "histogram_workload", "vector_workload", "growing_prefixes"]


@dataclass(frozen=True)
class Workload:
    """A benchmark workload.

    Attributes
    ----------
    database:
        ``(m, n)`` vectors to index.
    queries:
        ``(q, n)`` query vectors, disjoint from the database (the paper
        keeps query histograms unindexed).
    matrix:
        The static QFD matrix ``A`` of the similarity model.
    matrix_repair:
        Positive-definiteness repair record for *matrix* (DESIGN.md §5);
        ``shift == 0`` means the construction was already strictly PD.
    name:
        Human-readable tag used by bench reports.
    """

    database: np.ndarray
    queries: np.ndarray
    matrix: np.ndarray
    matrix_repair: PDRepair
    name: str

    @property
    def size(self) -> int:
        """Number of database vectors ``m``."""
        return self.database.shape[0]

    @property
    def dim(self) -> int:
        """Vector dimensionality ``n``."""
        return self.database.shape[1]

    def prefix(self, m: int) -> "Workload":
        """The same workload restricted to the first *m* database vectors.

        Used for the paper's growing-database sweeps (Figures 2-7): all
        sizes share one generation pass, so bigger databases are strict
        supersets of smaller ones.
        """
        if not 1 <= m <= self.size:
            raise QueryError(f"prefix size must be in [1, {self.size}], got {m}")
        return Workload(
            database=self.database[:m],
            queries=self.queries,
            matrix=self.matrix,
            matrix_repair=self.matrix_repair,
            name=f"{self.name}[:{m}]",
        )


def histogram_workload(
    m: int,
    n_queries: int,
    *,
    bins_per_channel: int = 4,
    themes: int = 10,
    seed: int = 0,
) -> Workload:
    """The paper's testbed, scaled: RGB histograms + Hafner Lab-prototype matrix.

    ``bins_per_channel=8`` reproduces the 512-d setting exactly; the default
    of 4 (64-d) keeps pure-Python sweeps tractable (DESIGN.md Section 5).
    """
    if m < 1 or n_queries < 1:
        raise QueryError("m and n_queries must be >= 1")
    rng = np.random.default_rng(seed)
    data = clustered_histograms(m + n_queries, bins_per_channel, themes=themes, rng=rng)
    repair = prototype_similarity_matrix(lab_bin_prototypes(bins_per_channel))
    return Workload(
        database=data[:m],
        queries=data[m:],
        matrix=repair.matrix,
        matrix_repair=repair,
        name=f"rgb-histograms(b={bins_per_channel}, n={bins_per_channel ** 3})",
    )


def vector_workload(
    m: int,
    n_queries: int,
    dim: int,
    *,
    clusters: int = 8,
    condition: float = 10.0,
    seed: int = 0,
) -> Workload:
    """Generic clustered vectors under a random SPD matrix.

    Used by dimensionality sweeps where ``n`` must vary freely rather than
    being a cube of the bins-per-channel.
    """
    if m < 1 or n_queries < 1:
        raise QueryError("m and n_queries must be >= 1")
    rng = np.random.default_rng(seed)
    data = gaussian_vectors(m + n_queries, dim, clusters=clusters, rng=rng)
    matrix = random_spd_matrix(dim, rng=rng, condition=condition)
    repair = PDRepair(matrix=matrix, shift=0.0, min_eigenvalue=float(np.linalg.eigvalsh(matrix)[0]))
    return Workload(
        database=data[:m],
        queries=data[m:],
        matrix=matrix,
        matrix_repair=repair,
        name=f"gaussian-vectors(n={dim})",
    )


def calibrate_radius(
    workload: Workload,
    target_results: int,
    *,
    sample_queries: int | None = None,
) -> float:
    """Radius whose range queries return about *target_results* objects.

    Uses the exact QFD distances from (a sample of) the workload's queries
    to the database, taking the mean ``target_results``-th smallest
    distance.  Benches use this so range-query experiments run at a
    controlled selectivity instead of a magic radius constant.
    """
    from ..core.qfd import QuadraticFormDistance

    if not 1 <= target_results <= workload.size:
        raise QueryError(
            f"target_results must be in [1, {workload.size}], got {target_results}"
        )
    queries = workload.queries
    if sample_queries is not None:
        if sample_queries < 1:
            raise QueryError("sample_queries must be >= 1")
        queries = queries[:sample_queries]
    qfd = QuadraticFormDistance(workload.matrix)
    kth = []
    for q in queries:
        distances = qfd.one_to_many(q, workload.database)
        kth.append(float(np.partition(distances, target_results - 1)[target_results - 1]))
    return float(np.mean(kth))


def growing_prefixes(workload: Workload, steps: int = 5) -> list[Workload]:
    """Evenly spaced growing-database prefixes of *workload*.

    Mirrors the paper's x-axes ("growing volumes of the indexed database");
    the last prefix is always the full workload.
    """
    if steps < 1:
        raise QueryError(f"steps must be >= 1, got {steps}")
    sizes = np.unique(np.linspace(workload.size / steps, workload.size, steps).astype(int))
    return [workload.prefix(int(s)) for s in sizes if s >= 1]
