"""Dataset generators and benchmark workloads (Flickr substitute).

See DESIGN.md Section 5 for the substitution rationale: synthetic clustered
RGB histograms stand in for the paper's 1M Flickr images.
"""

from .synthetic import (
    SyntheticImageCorpus,
    clustered_histograms,
    gaussian_vectors,
    stream_clustered_histograms,
)
from .workloads import (
    Workload,
    calibrate_radius,
    growing_prefixes,
    histogram_workload,
    vector_workload,
)

__all__ = [
    "SyntheticImageCorpus",
    "clustered_histograms",
    "gaussian_vectors",
    "stream_clustered_histograms",
    "Workload",
    "histogram_workload",
    "vector_workload",
    "growing_prefixes",
    "calibrate_radius",
]
