"""Synthetic image and histogram generators — the Flickr substitute.

The paper's testbed is 1M images downloaded from Flickr.com, represented by
512-d normalized RGB histograms (Section 5.1).  Without network access we
substitute a synthetic corpus (DESIGN.md Section 5) with the structure that
matters for the experiments:

* histograms are sparse-ish, non-negative, unit-sum;
* the corpus is *clustered* (photos of sunsets resemble each other), so
  metric access methods have something to prune on;
* mass concentrates on perceptually adjacent bins, so the QFD matrix's
  cross-bin correlations are exercised.

Two generators are provided.  :class:`SyntheticImageCorpus` renders actual
pixel arrays from parametric color-blob scenes and feeds them through the
real histogram extractor — slow but end-to-end faithful.
:func:`clustered_histograms` samples equivalent histograms directly — the
fast path used by the large benchmark sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..color.histograms import rgb_histogram
from ..color.prototypes import rgb_bin_prototypes
from ..exceptions import QueryError
from ..storage.mmap_store import MmapVectorStore

__all__ = [
    "SyntheticImageCorpus",
    "clustered_histograms",
    "stream_clustered_histograms",
    "gaussian_vectors",
]


def _random_palette(rng: np.random.Generator, blobs: int) -> tuple[np.ndarray, np.ndarray]:
    """Random scene palette: blob centers in RGB and mixing proportions."""
    centers = rng.uniform(0.0, 1.0, size=(blobs, 3))
    weights = rng.dirichlet(np.ones(blobs) * 2.0)
    return centers, weights


@dataclass(frozen=True)
class SyntheticImageCorpus:
    """Parametric photo-like scenes rendered as RGB pixel arrays.

    Each image is a mixture of Gaussian color blobs: a "sunset" scene, for
    example, is a couple of red/orange blobs plus a dark one.  Scenes are
    grouped into *themes* (shared palettes with per-image jitter) so the
    corpus is clustered like a real photo collection.

    Parameters
    ----------
    height, width:
        Rendered image size in pixels.
    themes:
        Number of shared palettes (clusters) in the corpus.
    blobs_per_theme:
        Color blobs per palette.
    color_noise:
        Std-dev of per-pixel color noise around a blob center.
    seed:
        Seed of the corpus; each image then derives its own stream.
    """

    height: int = 32
    width: int = 32
    themes: int = 10
    blobs_per_theme: int = 4
    color_noise: float = 0.08
    seed: int = 0

    def __post_init__(self) -> None:
        if self.height < 1 or self.width < 1:
            raise QueryError("image size must be at least 1x1")
        if self.themes < 1 or self.blobs_per_theme < 1:
            raise QueryError("themes and blobs_per_theme must be >= 1")
        if self.color_noise < 0.0:
            raise QueryError("color_noise must be non-negative")

    def _theme_palettes(self) -> list[tuple[np.ndarray, np.ndarray]]:
        rng = np.random.default_rng(self.seed)
        return [_random_palette(rng, self.blobs_per_theme) for _ in range(self.themes)]

    def render(self, index: int) -> np.ndarray:
        """Render image *index* as an ``(h, w, 3)`` array of RGB in [0, 1]."""
        if index < 0:
            raise QueryError(f"image index must be non-negative, got {index}")
        palettes = self._theme_palettes()
        rng = np.random.default_rng((self.seed, index))
        centers, weights = palettes[index % self.themes]
        # Per-image palette jitter keeps images within a theme distinct.
        centers = np.clip(centers + rng.normal(0.0, 0.05, size=centers.shape), 0.0, 1.0)
        n_pixels = self.height * self.width
        blob_of_pixel = rng.choice(len(weights), size=n_pixels, p=weights)
        colors = centers[blob_of_pixel] + rng.normal(0.0, self.color_noise, size=(n_pixels, 3))
        return np.clip(colors, 0.0, 1.0).reshape(self.height, self.width, 3)

    def histograms(self, count: int, bins_per_channel: int) -> np.ndarray:
        """Render *count* images and extract their normalized histograms."""
        if count < 1:
            raise QueryError(f"count must be >= 1, got {count}")
        return np.vstack(
            [rgb_histogram(self.render(i), bins_per_channel) for i in range(count)]
        )


def _theme_base_shapes(
    rng: np.random.Generator,
    prototypes: np.ndarray,
    themes: int,
    smoothing: float,
) -> list[np.ndarray]:
    """Per-theme normalized bin-mass shapes (shared by both generators)."""
    n_bins = prototypes.shape[0]
    base_shapes = []
    for _ in range(themes):
        anchors = rng.uniform(0.0, 1.0, size=(3, 3))
        anchor_weights = rng.dirichlet(np.ones(3) * 2.0)
        diff = prototypes[:, None, :] - anchors[None, :, :]
        dist = np.sqrt(np.sum(diff * diff, axis=2))
        bumps = np.exp(-(dist / smoothing) ** 2) @ anchor_weights
        total = bumps.sum()
        if total <= 0.0:  # pragma: no cover - smoothing > 0 prevents this
            bumps = np.full(n_bins, 1.0 / n_bins)
        else:
            bumps = bumps / total
        base_shapes.append(bumps)
    return base_shapes


def clustered_histograms(
    count: int,
    bins_per_channel: int,
    *,
    themes: int = 10,
    concentration: float = 6.0,
    smoothing: float = 0.12,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Sample normalized RGB histograms directly (fast Flickr substitute).

    Each theme places mass around a few anchor colors; the mass of a bin
    decays with the RGB distance between the bin prototype and its anchor
    (``smoothing`` controls the decay length, coupling perceptually adjacent
    bins exactly as photographs do).  Per-image Dirichlet noise individuates
    the images within a theme.

    Returns an ``(count, bins_per_channel^3)`` array with unit row sums.
    """
    if count < 1:
        raise QueryError(f"count must be >= 1, got {count}")
    if themes < 1:
        raise QueryError(f"themes must be >= 1, got {themes}")
    if smoothing <= 0.0 or concentration <= 0.0:
        raise QueryError("smoothing and concentration must be positive")
    rng = np.random.default_rng(0) if rng is None else rng
    prototypes = rgb_bin_prototypes(bins_per_channel)
    n_bins = prototypes.shape[0]
    base_shapes = _theme_base_shapes(rng, prototypes, themes, smoothing)

    out = np.empty((count, n_bins), dtype=np.float64)
    theme_of = rng.integers(0, themes, size=count)
    for i in range(count):
        shape = base_shapes[theme_of[i]]
        # Dirichlet jitter around the theme shape; alpha ~ concentration.
        alpha = shape * concentration * n_bins + 1e-3
        out[i] = rng.dirichlet(alpha)
    return out


def stream_clustered_histograms(
    count: int,
    bins_per_channel: int,
    *,
    themes: int = 10,
    concentration: float = 6.0,
    smoothing: float = 0.12,
    rng: np.random.Generator | None = None,
    store: MmapVectorStore | None = None,
    dtype: str = "float32",
    path: "str | None" = None,
    block_rows: int = 65536,
) -> MmapVectorStore:
    """Stream Flickr-scale clustered histograms straight into a memmap store.

    The out-of-core twin of :func:`clustered_histograms`: the same theme
    model (anchor colors, distance-decayed bin mass, Dirichlet jitter per
    image), but sampled block-by-block with vectorized gamma draws
    (``Dirichlet(a) = Gamma(a) / sum``) and written directly to a
    :class:`~repro.storage.MmapVectorStore` — the heap never holds more
    than one ``(block_rows, n_bins)`` slab, so the paper's 1M x 512-d
    testbed generates in bounded memory.

    Appends to *store* when given (its dimensionality must match),
    otherwise creates one (``dtype``/``path`` forwarded, pre-sized to
    *count*).  Returns the store.  Deterministic for a given *rng*
    seed; the sampling stream differs from :func:`clustered_histograms`,
    so the two generators produce statistically equivalent but not
    row-identical corpora.
    """
    if count < 1:
        raise QueryError(f"count must be >= 1, got {count}")
    if themes < 1:
        raise QueryError(f"themes must be >= 1, got {themes}")
    if smoothing <= 0.0 or concentration <= 0.0:
        raise QueryError("smoothing and concentration must be positive")
    if block_rows < 1:
        raise QueryError(f"block_rows must be >= 1, got {block_rows}")
    rng = np.random.default_rng(0) if rng is None else rng
    prototypes = rgb_bin_prototypes(bins_per_channel)
    n_bins = prototypes.shape[0]
    base_shapes = _theme_base_shapes(rng, prototypes, themes, smoothing)
    # alpha ~ concentration, matching clustered_histograms' jitter model.
    alphas = np.stack(base_shapes) * concentration * n_bins + 1e-3
    if store is None:
        store = MmapVectorStore(n_bins, dtype=dtype, path=path, capacity=count)
    elif store.dim != n_bins:
        raise QueryError(
            f"store dimensionality {store.dim} does not match "
            f"bins_per_channel^3 = {n_bins}"
        )
    store.ensure_capacity(len(store) + count)
    # Dirty mapped pages count toward RSS until flushed; release them
    # every ~256 MiB so generating 1M x 512-d never looks like holding it.
    drop_every = max(
        1, (256 << 20) // max(1, block_rows * n_bins * store.dtype.itemsize)
    )
    for i, start in enumerate(range(0, count, block_rows)):
        k = min(block_rows, count - start)
        theme_of = rng.integers(0, themes, size=k)
        block = rng.standard_gamma(alphas[theme_of])
        sums = block.sum(axis=1, keepdims=True)
        sums[sums == 0.0] = 1.0  # pragma: no cover - alpha > 0 prevents this
        block /= sums
        store.append_block(block)
        if (i + 1) % drop_every == 0:
            store.drop_pages()
    return store


def gaussian_vectors(
    count: int,
    dim: int,
    *,
    clusters: int = 8,
    spread: float = 0.15,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Generic clustered Gaussian vectors for non-histogram experiments."""
    if count < 1 or dim < 1:
        raise QueryError("count and dim must be >= 1")
    if clusters < 1:
        raise QueryError(f"clusters must be >= 1, got {clusters}")
    if spread <= 0.0:
        raise QueryError("spread must be positive")
    rng = np.random.default_rng(0) if rng is None else rng
    centers = rng.uniform(-1.0, 1.0, size=(clusters, dim))
    labels = rng.integers(0, clusters, size=count)
    return centers[labels] + rng.normal(0.0, spread, size=(count, dim))
