"""R-tree — the representative spatial access method (paper Section 2.1).

SAMs index the *coordinates* of the vectors, independently of the distance
function, by nesting minimum bounding rectangles (MBRs).  This
implementation follows Guttman's original design: dynamic insertion with
least-enlargement descent and quadratic split.  Queries support the
Minkowski family (default L2, the QMap target space) through the standard
MINDIST bound between a point and an MBR.

The paper's point about SAMs — regions are volume-optimized rather than
distance-clustered, so filtering degrades with dimensionality ("curse of
dimensionality") — is demonstrated by bench E_A6, which runs this R-tree
next to the MAMs on the same transformed workload.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

import numpy as np

from .._typing import ArrayLike
from ..exceptions import QueryError, StorageError
from ..mam.base import (
    AccessMethod,
    DistancePort,
    Neighbor,
    _KnnHeap,
    state_array,
    state_float,
    state_int,
)
from ._minkowski import minkowski_port, validate_order

__all__ = ["RTree"]


class _RNode:
    __slots__ = ("lower", "upper", "children", "indices", "is_leaf")

    def __init__(self, dim: int, is_leaf: bool) -> None:
        self.lower = np.full(dim, np.inf)
        self.upper = np.full(dim, -np.inf)
        self.children: list["_RNode"] = []
        self.indices: list[int] = []
        self.is_leaf = is_leaf

    def extend_to(self, point: np.ndarray) -> None:
        np.minimum(self.lower, point, out=self.lower)
        np.maximum(self.upper, point, out=self.upper)

    def extend_to_node(self, other: "_RNode") -> None:
        np.minimum(self.lower, other.lower, out=self.lower)
        np.maximum(self.upper, other.upper, out=self.upper)

    def volume_enlargement(self, point: np.ndarray) -> float:
        new_lower = np.minimum(self.lower, point)
        new_upper = np.maximum(self.upper, point)
        # Margin (perimeter) based enlargement is numerically stable in
        # high dimensions where volumes underflow to zero.
        return float(np.sum(new_upper - new_lower) - np.sum(self.upper - self.lower))


def _mindist(query: np.ndarray, lower: np.ndarray, upper: np.ndarray, p: float) -> float:
    """Minkowski distance from a point to the nearest face of an MBR."""
    gap = np.maximum(np.maximum(lower - query, query - upper), 0.0)
    if np.isinf(p):
        return float(gap.max(initial=0.0))
    return float(np.power(np.power(gap, p).sum(), 1.0 / p))


class RTree(AccessMethod):
    """Guttman R-tree with quadratic split, for Minkowski queries.

    Parameters
    ----------
    database:
        ``(m, n)`` rows to index.
    capacity:
        Maximum entries per node (>= 4 recommended).
    p:
        Minkowski order of the query distance (``float('inf')`` for L∞).

    Notes
    -----
    Unlike the MAMs, the R-tree does not take a black-box distance — its
    whole point is that the distance can be chosen *at query time*
    (Section 2.1).  The refinement distances it does compute are charged to
    an internal :class:`~repro.mam.base.DistancePort` so the cost
    experiments can still count them.
    """

    def __init__(
        self,
        database: ArrayLike,
        *,
        capacity: int = 16,
        p: float = 2.0,
        refine_distance: DistancePort | Callable | None = None,
    ) -> None:
        if capacity < 2:
            raise QueryError(f"node capacity must be >= 2, got {capacity}")
        self._p = validate_order(p)
        # An injected refine_distance (e.g. a CountingDistance over the
        # same Lp) lets the experiments charge refinement evaluations to a
        # shared counter; it must agree with the chosen p.
        if refine_distance is None:
            refine_distance = minkowski_port(self._p)
        super().__init__(database, refine_distance)
        self._capacity = capacity
        self._root = _RNode(self.dim, is_leaf=True)
        for i, row in enumerate(self._data):
            self._insert(row, i)

    @property
    def p(self) -> float:
        """Minkowski order of the query distance."""
        return self._p

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------

    def _init_restore(self, database, distance, state) -> None:
        # SAMs pick the distance at query time, so a snapshot restore does
        # not require one: the stored Minkowski order rebuilds the default
        # port.  An injected port (e.g. a counting one) takes precedence.
        p = state_float(state, "p")
        try:
            self._p = validate_order(p)
        except QueryError as exc:
            raise StorageError(str(exc)) from None
        if distance is None:
            distance = minkowski_port(self._p)
        AccessMethod.__init__(self, database, distance)
        self._restore_state(state)

    def _preorder_nodes(self) -> list[_RNode]:
        nodes: list[_RNode] = []

        def collect(node: _RNode) -> None:
            nodes.append(node)
            for child in node.children:
                collect(child)

        collect(self._root)
        return nodes

    def structural_state(self) -> dict[str, np.ndarray]:
        nodes = self._preorder_nodes()
        ids = {id(node): nid for nid, node in enumerate(nodes)}
        n = len(nodes)
        is_leaf = np.zeros(n, dtype=np.uint8)
        lower = np.empty((n, self.dim), dtype=np.float64)
        upper = np.empty((n, self.dim), dtype=np.float64)
        parent = np.full(n, -1, dtype=np.int64)
        leaf_count = np.zeros(n, dtype=np.int64)
        leaf_items: list[int] = []
        for nid, node in enumerate(nodes):
            is_leaf[nid] = 1 if node.is_leaf else 0
            lower[nid] = node.lower
            upper[nid] = node.upper
            leaf_count[nid] = len(node.indices)
            leaf_items.extend(node.indices)
            for child in node.children:
                parent[ids[id(child)]] = nid
        return {
            "node_is_leaf": is_leaf,
            "node_lower": lower,
            "node_upper": upper,
            "node_parent": parent,
            "leaf_count": leaf_count,
            "leaf_items": np.asarray(leaf_items, dtype=np.int64),
            "capacity": np.int64(self._capacity),
            "p": np.float64(self._p),
        }

    def _restore_state(self, state: dict[str, np.ndarray]) -> list[_RNode]:
        is_leaf = state_array(state, "node_is_leaf")
        lower = state_array(state, "node_lower", dtype=np.float64)
        upper = state_array(state, "node_upper", dtype=np.float64)
        parent = state_array(state, "node_parent", dtype=np.int64)
        leaf_count = state_array(state, "leaf_count", dtype=np.int64)
        leaf_items = state_array(state, "leaf_items", dtype=np.int64)
        capacity = state_int(state, "capacity")
        super()._restore_state(state)
        if capacity < 2:
            raise StorageError(f"node capacity must be >= 2, got {capacity}")
        n = is_leaf.shape[0]
        if n < 1 or lower.shape != (n, self.dim) or upper.shape != (n, self.dim):
            raise StorageError("R-tree snapshot: MBR arrays disagree")
        if parent.shape[0] != n or leaf_count.shape[0] != n:
            raise StorageError("R-tree snapshot: node arrays disagree")
        if parent[0] != -1:
            raise StorageError("R-tree snapshot: first node must be the root")
        if not np.array_equal(np.sort(leaf_items), np.arange(self.size)):
            raise StorageError(
                "R-tree snapshot: leaf entries do not partition the database"
            )
        offsets = np.concatenate(([0], np.cumsum(leaf_count)))
        if offsets[-1] != leaf_items.shape[0]:
            raise StorageError(
                "R-tree snapshot: leaf items do not match the leaf counts"
            )
        nodes: list[_RNode] = []
        for nid in range(n):
            node = _RNode(self.dim, is_leaf=bool(is_leaf[nid]))
            node.lower = lower[nid].copy()
            node.upper = upper[nid].copy()
            if node.is_leaf:
                node.indices = [
                    int(i) for i in leaf_items[offsets[nid] : offsets[nid + 1]]
                ]
            pid = int(parent[nid])
            if nid > 0:
                # Preorder parents precede children; wiring in id order
                # reproduces the original child order.
                if not 0 <= pid < nid or nodes[pid].is_leaf:
                    raise StorageError(
                        f"R-tree snapshot: node {nid} has invalid parent {pid}"
                    )
                nodes[pid].children.append(node)
            nodes.append(node)
        self._capacity = capacity
        self._root = nodes[0]
        return nodes

    def _verify_state_probe(self) -> None:
        # MBRs are exactly tight over their leaf entries — a coordinate
        # check that needs no distance function at all.
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        if not node.indices:
            return
        rows = self._data[node.indices]
        if not (
            np.allclose(node.lower, rows.min(axis=0), rtol=1e-9, atol=1e-12)
            and np.allclose(node.upper, rows.max(axis=0), rtol=1e-9, atol=1e-12)
        ):
            raise StorageError(
                "stored bounding rectangles disagree with the database "
                "(snapshot from a different dataset?)"
            )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _insert(self, point: np.ndarray, index: int) -> None:
        path: list[_RNode] = []
        node = self._root
        while not node.is_leaf:
            path.append(node)
            node = min(
                node.children,
                key=lambda child: (child.volume_enlargement(point),
                                   float(np.sum(child.upper - child.lower))),
            )
        node.indices.append(index)
        node.extend_to(point)
        for ancestor in path:
            ancestor.extend_to(point)
        if len(node.indices) > self._capacity:
            self._split_leaf(node, path)

    def _entry_count(self, node: _RNode) -> int:
        return len(node.indices) if node.is_leaf else len(node.children)

    def _split_leaf(self, node: _RNode, path: list[_RNode]) -> None:
        points = self._data[node.indices]
        group_a, group_b = self._quadratic_partition_points(points)
        node_a = _RNode(self.dim, is_leaf=True)
        node_b = _RNode(self.dim, is_leaf=True)
        for pos in group_a:
            node_a.indices.append(node.indices[pos])
            node_a.extend_to(points[pos])
        for pos in group_b:
            node_b.indices.append(node.indices[pos])
            node_b.extend_to(points[pos])
        self._replace(node, node_a, node_b, path)

    def _split_internal(self, node: _RNode, path: list[_RNode]) -> None:
        centers = np.array([(c.lower + c.upper) / 2.0 for c in node.children])
        group_a, group_b = self._quadratic_partition_points(centers)
        node_a = _RNode(self.dim, is_leaf=False)
        node_b = _RNode(self.dim, is_leaf=False)
        for pos in group_a:
            node_a.children.append(node.children[pos])
            node_a.extend_to_node(node.children[pos])
        for pos in group_b:
            node_b.children.append(node.children[pos])
            node_b.extend_to_node(node.children[pos])
        self._replace(node, node_a, node_b, path)

    def _replace(self, node: _RNode, node_a: _RNode, node_b: _RNode, path: list[_RNode]) -> None:
        if not path:
            new_root = _RNode(self.dim, is_leaf=False)
            new_root.children = [node_a, node_b]
            new_root.extend_to_node(node_a)
            new_root.extend_to_node(node_b)
            self._root = new_root
            return
        parent = path[-1]
        parent.children.remove(node)
        parent.children.extend([node_a, node_b])
        if len(parent.children) > self._capacity:
            self._split_internal(parent, path[:-1])

    def _quadratic_partition_points(self, points: np.ndarray) -> tuple[list[int], list[int]]:
        """Guttman's quadratic PickSeeds + PickNext over point rows."""
        n = points.shape[0]
        # PickSeeds: the pair wasting the most margin if grouped together.
        best_pair, best_waste = (0, 1), -1.0
        for i, j in itertools.combinations(range(n), 2):
            waste = float(np.abs(points[i] - points[j]).sum())
            if waste > best_waste:
                best_pair, best_waste = (i, j), waste
        seed_a, seed_b = best_pair
        group_a, group_b = [seed_a], [seed_b]
        lower_a = points[seed_a].copy()
        upper_a = points[seed_a].copy()
        lower_b = points[seed_b].copy()
        upper_b = points[seed_b].copy()
        min_fill = max(1, n // 3)
        rest = [i for i in range(n) if i not in (seed_a, seed_b)]
        for pos in rest:
            remaining = len(rest) - (len(group_a) + len(group_b) - 2)
            if len(group_a) + remaining <= min_fill:
                target = "a"
            elif len(group_b) + remaining <= min_fill:
                target = "b"
            else:
                enlarge_a = float(
                    np.sum(np.maximum(upper_a, points[pos]) - np.minimum(lower_a, points[pos]))
                    - np.sum(upper_a - lower_a)
                )
                enlarge_b = float(
                    np.sum(np.maximum(upper_b, points[pos]) - np.minimum(lower_b, points[pos]))
                    - np.sum(upper_b - lower_b)
                )
                target = "a" if enlarge_a <= enlarge_b else "b"
            if target == "a":
                group_a.append(pos)
                np.minimum(lower_a, points[pos], out=lower_a)
                np.maximum(upper_a, points[pos], out=upper_a)
            else:
                group_b.append(pos)
                np.minimum(lower_b, points[pos], out=lower_b)
                np.maximum(upper_b, points[pos], out=upper_b)
        return group_a, group_b

    def _register_insert(self, index: int, vector: np.ndarray) -> None:
        """Dynamic insert — the R-tree's native operation (Guttman)."""
        self._insert(vector, index)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def _range_search(self, query: np.ndarray, radius: float) -> list[Neighbor]:
        out: list[Neighbor] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if _mindist(query, node.lower, node.upper, self._p) > radius:
                continue
            if node.is_leaf:
                dists = self._port.many(query, self._data[node.indices])
                for idx, dist in zip(node.indices, dists):
                    if dist <= radius:
                        out.append(Neighbor(float(dist), int(idx)))
            else:
                stack.extend(node.children)
        return out

    def _knn_search(self, query: np.ndarray, k: int) -> list[Neighbor]:
        heap = _KnnHeap(k)
        counter = itertools.count()
        queue: list[tuple[float, int, _RNode]] = [(0.0, next(counter), self._root)]
        while queue:
            dmin, _, node = heapq.heappop(queue)
            if dmin > heap.radius:
                break
            if node.is_leaf:
                dists = self._port.many(query, self._data[node.indices])
                for idx, dist in zip(node.indices, dists):
                    heap.offer(float(dist), int(idx))
            else:
                for child in node.children:
                    child_dmin = _mindist(query, child.lower, child.upper, self._p)
                    if child_dmin <= heap.radius:
                        heapq.heappush(queue, (child_dmin, next(counter), child))
        return heap.neighbors()

    def height(self) -> int:
        """Tree height (1 for a single leaf root)."""
        h, node = 1, self._root
        while not node.is_leaf:
            h += 1
            node = node.children[0]
        return h
