"""VA-file — vector approximation file (Weber et al.), paper Section 2.1.

The VA-file gives up on hierarchical pruning entirely (the honest response
to the curse of dimensionality): each vector is quantized to a few bits per
dimension, and queries scan the *approximations*, which are much smaller
than the vectors.  Cell boundaries yield per-object lower and upper bounds
on the true distance; objects whose lower bound exceeds the running kth
upper bound are filtered, and the survivors are refined with real distance
computations in ascending lower-bound order.

Implemented for the Minkowski family (default L2 — the QMap target space).
Quantization boundaries are per-dimension quantiles of the data, the
standard choice for skewed (e.g. histogram) data.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .._typing import ArrayLike
from ..exceptions import QueryError, StorageError
from ..mam.base import (
    AccessMethod,
    DistancePort,
    Neighbor,
    _KnnHeap,
    state_array,
    state_float,
    state_int,
)
from ._minkowski import minkowski_port, validate_order

__all__ = ["VAFile"]


class VAFile(AccessMethod):
    """Vector approximation file for Minkowski queries.

    Parameters
    ----------
    database:
        ``(m, n)`` rows to index.
    bits:
        Bits per dimension; ``2**bits`` quantization cells per axis.
    p:
        Minkowski order of the query distance (``float('inf')`` for L∞).
    """

    def __init__(
        self,
        database: ArrayLike,
        *,
        bits: int = 4,
        p: float = 2.0,
        refine_distance: "DistancePort | Callable | None" = None,
    ) -> None:
        if not 1 <= bits <= 16:
            raise QueryError(f"bits per dimension must be in [1, 16], got {bits}")
        self._p = validate_order(p)
        # See RTree: an injected counter charges refinements to the caller.
        if refine_distance is None:
            refine_distance = minkowski_port(self._p)
        super().__init__(database, refine_distance)
        self._bits = bits
        cells = 2**bits
        # Per-dimension quantile boundaries: boundaries[d] has cells+1 edges
        # covering the data range exactly.
        quantiles = np.linspace(0.0, 1.0, cells + 1)
        self._boundaries = np.quantile(self._data, quantiles, axis=0)  # (cells+1, n)
        # Make the outer edges open so every point falls inside.
        self._boundaries[0] -= 1e-12
        self._boundaries[-1] += 1e-12
        self._approx = self._quantize(self._data)
        # The per-object cell walls are static — precompute them once so a
        # query only pays the gap arithmetic, not the gather.
        cells_idx = self._approx.astype(np.int64)
        self._cell_lower = np.take_along_axis(self._boundaries, cells_idx, axis=0)
        self._cell_upper = np.take_along_axis(self._boundaries, cells_idx + 1, axis=0)

    @property
    def bits(self) -> int:
        """Bits per dimension."""
        return self._bits

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------

    def _init_restore(self, database, distance, state) -> None:
        # Like the R-tree, the VA-file needs no supplied distance: the
        # stored Minkowski order rebuilds the default refinement port.
        p = state_float(state, "p")
        try:
            self._p = validate_order(p)
        except QueryError as exc:
            raise StorageError(str(exc)) from None
        if distance is None:
            distance = minkowski_port(self._p)
        AccessMethod.__init__(self, database, distance)
        self._restore_state(state)

    def structural_state(self) -> dict[str, np.ndarray]:
        return {
            "bits": np.int64(self._bits),
            "p": np.float64(self._p),
            "boundaries": self._boundaries.copy(),
            "approx": self._approx.copy(),
        }

    def _restore_state(self, state: dict[str, np.ndarray]) -> None:
        bits = state_int(state, "bits")
        boundaries = state_array(state, "boundaries", dtype=np.float64)
        approx = state_array(state, "approx", dtype=np.uint16)
        super()._restore_state(state)
        if not 1 <= bits <= 16:
            raise StorageError(
                f"bits per dimension must be in [1, 16], got {bits}"
            )
        cells = 2**bits
        if boundaries.shape != (cells + 1, self.dim):
            raise StorageError(
                f"VA-file snapshot: boundary grid shape {boundaries.shape} "
                f"does not match ({cells + 1}, {self.dim})"
            )
        if approx.shape != (self.size, self.dim):
            raise StorageError(
                f"VA-file snapshot: approximation shape {approx.shape} "
                f"does not match ({self.size}, {self.dim})"
            )
        if approx.size and int(approx.max()) >= cells:
            raise StorageError(
                "VA-file snapshot: approximation cell out of range"
            )
        self._bits = bits
        self._boundaries = boundaries.copy()
        self._approx = approx.copy()
        cells_idx = self._approx.astype(np.int64)
        self._cell_lower = np.take_along_axis(self._boundaries, cells_idx, axis=0)
        self._cell_upper = np.take_along_axis(self._boundaries, cells_idx + 1, axis=0)

    def _verify_state_probe(self) -> None:
        # Re-quantizing the first row with the stored grid must reproduce
        # its stored approximation — no distance function involved.
        if self.size == 0:
            return
        if not np.array_equal(self._quantize(self._data[:1]), self._approx[:1]):
            raise StorageError(
                "stored approximations disagree with the database "
                "(snapshot from a different dataset?)"
            )

    @property
    def approximation_bytes(self) -> int:
        """Size of the approximation table in bytes (the VA-file's claim)."""
        return self._approx.size * self._approx.itemsize

    def _quantize(self, rows: np.ndarray) -> np.ndarray:
        cells = 2**self._bits
        out = np.empty(rows.shape, dtype=np.uint16)
        for d in range(self.dim):
            out[:, d] = np.clip(
                np.searchsorted(self._boundaries[:, d], rows[:, d], side="right") - 1,
                0,
                cells - 1,
            )
        return out

    def _register_insert(self, index: int, vector: np.ndarray) -> None:
        """Quantize the new object with the existing grid.

        Boundaries are not re-fit (they came from the build-time data
        distribution); the outer cells are clamped, so the approximation
        stays a sound lower/upper bound and queries remain exact —
        drifting data merely loosens the outermost cells.
        """
        approx = self._quantize(vector.reshape(1, -1))
        cells_idx = approx.astype(np.int64)
        self._approx = np.vstack([self._approx, approx])
        self._cell_lower = np.vstack(
            [self._cell_lower, np.take_along_axis(self._boundaries, cells_idx, axis=0)]
        )
        self._cell_upper = np.vstack(
            [self._cell_upper, np.take_along_axis(self._boundaries, cells_idx + 1, axis=0)]
        )

    def _bounds(self, query: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-object lower and upper bounds on d(query, object)."""
        cell_lower = self._cell_lower
        cell_upper = self._cell_upper
        below = np.maximum(cell_lower - query, 0.0)
        above = np.maximum(query - cell_upper, 0.0)
        gap = np.maximum(below, above)  # 0 where query coordinate is inside the cell
        far = np.maximum(np.abs(query - cell_lower), np.abs(query - cell_upper))
        if np.isinf(self._p):
            return gap.max(axis=1, initial=0.0), far.max(axis=1, initial=0.0)
        if self._p == 2.0:  # the common case; pow() is an order slower
            lower = np.sqrt(np.einsum("ij,ij->i", gap, gap))
            upper = np.sqrt(np.einsum("ij,ij->i", far, far))
            return lower, upper
        lower = np.power(np.power(gap, self._p).sum(axis=1), 1.0 / self._p)
        upper = np.power(np.power(far, self._p).sum(axis=1), 1.0 / self._p)
        return lower, upper

    def _range_search(self, query: np.ndarray, radius: float) -> list[Neighbor]:
        lower, upper = self._bounds(query)
        out: list[Neighbor] = []
        certain = np.flatnonzero(upper <= radius)
        maybe = np.flatnonzero((lower <= radius) & (upper > radius))
        # Certain hits still need their exact distance for the result list.
        for group in (certain, maybe):
            if group.size == 0:
                continue
            dists = self._port.many(query, self._data[group])
            for idx, dist in zip(group, dists):
                if dist <= radius:
                    out.append(Neighbor(float(dist), int(idx)))
        return out

    def _knn_search(self, query: np.ndarray, k: int) -> list[Neighbor]:
        lower, upper = self._bounds(query)
        # Phase 1: the kth-smallest upper bound caps the candidate set.
        kth_upper = np.partition(upper, k - 1)[k - 1]
        candidates = np.flatnonzero(lower <= kth_upper)
        # Phase 2: refine candidates in ascending lower-bound order.
        order = candidates[np.argsort(lower[candidates], kind="stable")]
        heap = _KnnHeap(k)
        for idx in order:
            if lower[idx] > heap.radius:
                break
            heap.offer(self._port.pair(query, self._data[idx]), int(idx))
        return heap.neighbors()

    def candidate_ratio(self, query: ArrayLike, k: int) -> float:
        """Fraction of the database surviving phase-1 filtering for a kNN.

        The VA-file's selling point is this ratio staying small in high
        dimensions; exposed for bench E_A6.
        """
        q = np.asarray(query, dtype=np.float64)
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        lower, upper = self._bounds(q)
        kth_upper = np.partition(upper, min(k, self.size) - 1)[min(k, self.size) - 1]
        return float(np.count_nonzero(lower <= kth_upper) / self.size)
