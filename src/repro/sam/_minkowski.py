"""Default Minkowski query distance shared by the SAMs.

R-tree and VA-file pick their distance at query time (the defining SAM
property, paper Section 2.1); when no counting port is injected they fall
back to a plain Lp over the coordinates.  Snapshot restores need to rebuild
that default from the stored Minkowski order alone, so the closures live
here instead of inside each constructor.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..exceptions import QueryError
from ..mam.base import DistancePort

__all__ = ["minkowski_functions", "minkowski_port", "validate_order"]


def validate_order(p: float) -> float:
    """Validate a Minkowski order (``p >= 1``; ``inf`` allowed for L∞)."""
    p = float(p)
    if p < 1.0:
        raise QueryError(f"Minkowski order must satisfy p >= 1, got {p}")
    return p


def minkowski_functions(
    p: float,
) -> tuple[
    Callable[[np.ndarray, np.ndarray], float],
    Callable[[np.ndarray, np.ndarray], np.ndarray],
]:
    """``(dist, dist_many)`` closures for the Minkowski order *p*."""

    def dist(u: np.ndarray, v: np.ndarray) -> float:
        diff = np.abs(u - v)
        if np.isinf(p):
            return float(diff.max(initial=0.0))
        return float(np.power(np.power(diff, p).sum(), 1.0 / p))

    def dist_many(q: np.ndarray, rows: np.ndarray) -> np.ndarray:
        diff = np.abs(rows - q)
        if np.isinf(p):
            return diff.max(axis=1, initial=0.0)
        return np.power(np.power(diff, p).sum(axis=1), 1.0 / p)

    return dist, dist_many


def minkowski_port(p: float) -> DistancePort:
    """A :class:`~repro.mam.base.DistancePort` over the plain Lp distance."""
    dist, dist_many = minkowski_functions(p)
    return DistancePort(dist, one_to_many=dist_many)
