"""Spatial access methods (paper Section 2.1).

SAMs index coordinates rather than a black-box distance — the R-tree family
and the VA-file are the paper's named representatives.  In the QMap model
the transformed (Euclidean) database "can be then indexed by any MAM or
SAM"; bench E_A6 exercises both of these on that space.
"""

from .rtree import RTree
from .vafile import VAFile
from .xtree import XTree

__all__ = ["RTree", "VAFile", "XTree"]
