"""X-tree — R-tree with supernodes (Berchtold, Böhm & Kriegel).

Paper Section 2.1 names the X-tree among the representative SAMs.  Its
idea: in high dimensions, R-tree splits often produce heavily overlapping
rectangles, and overlapping rectangles destroy pruning (every query visits
both halves).  The X-tree measures the overlap a split would create and,
when it exceeds a threshold, refuses to split — keeping an oversized
*supernode* that is scanned linearly instead of being navigated badly.

This implementation extends :class:`~repro.sam.rtree.RTree`: the split
routines first evaluate the tentative partition's overlap (margin-based,
stable in high dimensions where volumes underflow) and fall back to a
supernode when it is too high.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .._typing import ArrayLike
from ..exceptions import QueryError, StorageError
from ..mam.base import DistancePort, state_array, state_float
from .rtree import RTree, _RNode

__all__ = ["XTree"]


def _overlap_fraction(
    lower_a: np.ndarray, upper_a: np.ndarray, lower_b: np.ndarray, upper_b: np.ndarray
) -> float:
    """Mean per-dimension overlap ratio of two MBRs.

    Per dimension: shared extent over union extent (1 when the union
    extent is zero, i.e. both rectangles are flat at the same coordinate).
    The mean across dimensions is 0 for rectangles separated in every
    dimension, 1 for coincident ones, and — unlike volume overlap — does
    not underflow in high dimensions, which is where the X-tree's
    supernode criterion needs to fire.
    """
    shared = np.maximum(
        np.minimum(upper_a, upper_b) - np.maximum(lower_a, lower_b), 0.0
    )
    union = np.maximum(upper_a, upper_b) - np.minimum(lower_a, lower_b)
    ratios = np.where(union > 0.0, shared / np.where(union > 0.0, union, 1.0), 1.0)
    return float(ratios.mean())


class XTree(RTree):
    """R-tree variant that keeps supernodes instead of high-overlap splits.

    Parameters
    ----------
    database, capacity, p, refine_distance:
        As for :class:`~repro.sam.rtree.RTree`.
    max_overlap:
        Mean per-dimension overlap ratio above which a split is refused
        (0 forces supernodes everywhere, 1 degenerates to an R-tree).
        The default 0.75 refuses splits that separate the data in only a
        small fraction of the dimensions — the high-dimensional failure
        mode the X-tree was designed around.
    """

    def __init__(
        self,
        database: ArrayLike,
        *,
        capacity: int = 16,
        p: float = 2.0,
        max_overlap: float = 0.75,
        refine_distance: DistancePort | Callable | None = None,
    ) -> None:
        if not 0.0 <= max_overlap <= 1.0:
            raise QueryError(f"max_overlap must be in [0, 1], got {max_overlap}")
        self._max_overlap = max_overlap
        self._supernodes: set[int] = set()
        super().__init__(
            database, capacity=capacity, p=p, refine_distance=refine_distance
        )

    @property
    def max_overlap(self) -> float:
        """The overlap threshold beyond which splits are refused."""
        return self._max_overlap

    def supernode_count(self) -> int:
        """Number of supernodes currently in the tree (diagnostic)."""
        return len(self._supernodes)

    def structural_state(self) -> dict[str, np.ndarray]:
        state = super().structural_state()
        nodes = self._preorder_nodes()
        flags = np.asarray(
            [1 if id(node) in self._supernodes else 0 for node in nodes],
            dtype=np.uint8,
        )
        state["supernode_flags"] = flags
        state["max_overlap"] = np.float64(self._max_overlap)
        return state

    def _restore_state(self, state: dict[str, np.ndarray]) -> list[_RNode]:
        flags = state_array(state, "supernode_flags")
        max_overlap = state_float(state, "max_overlap")
        if not 0.0 <= max_overlap <= 1.0:
            raise StorageError(
                f"max_overlap must be in [0, 1], got {max_overlap}"
            )
        nodes = super()._restore_state(state)
        if flags.shape[0] != len(nodes):
            raise StorageError(
                "X-tree snapshot: supernode flags do not match the node count"
            )
        self._max_overlap = max_overlap
        self._supernodes = {
            id(node) for node, flag in zip(nodes, flags) if flag
        }
        return nodes

    def _group_mbrs(
        self, points: np.ndarray, group_a: list[int], group_b: list[int]
    ) -> float:
        lower_a, upper_a = points[group_a].min(axis=0), points[group_a].max(axis=0)
        lower_b, upper_b = points[group_b].min(axis=0), points[group_b].max(axis=0)
        return _overlap_fraction(lower_a, upper_a, lower_b, upper_b)

    def _split_leaf(self, node: _RNode, path: list[_RNode]) -> None:
        if id(node) in self._supernodes:
            return
        points = self._data[node.indices]
        group_a, group_b = self._quadratic_partition_points(points)
        if self._group_mbrs(points, group_a, group_b) > self._max_overlap:
            self._supernodes.add(id(node))
            return
        super()._split_leaf(node, path)

    def _split_internal(self, node: _RNode, path: list[_RNode]) -> None:
        if id(node) in self._supernodes:
            return
        centers = np.array([(c.lower + c.upper) / 2.0 for c in node.children])
        group_a, group_b = self._quadratic_partition_points(centers)
        if self._group_mbrs(centers, group_a, group_b) > self._max_overlap:
            self._supernodes.add(id(node))
            return
        super()._split_internal(node, path)
