"""Plan pricing: the paper's Table 2 closed forms plus calibration.

:class:`CostModel` prices every candidate physical plan in the paper's
cost unit — arithmetic operations, with a QFD evaluation worth ``n^2``, a
Euclidean evaluation ``n`` and a QMap transform ``n^2`` — by evaluating
the same Table 2 closed forms the EXPLAIN :class:`~repro.obs.explain.
CostAudit` checks against.  Two inputs it cannot get from the formulas:

* **selectivity** — how many objects a range query touches, estimated
  from an empirical :class:`DistanceHistogram` of sampled pairwise
  distances (kNN selectivity is simply ``k/m``);
* **calibration** — how well each method's filter actually prunes on the
  observed workloads, replayed from ``BENCH_history.jsonl`` records via
  :func:`calibration_from_history`.  The history lines are plain dicts,
  so the planner stays import-clean of :mod:`repro.obs` internals.

Setup costs (e.g. the database reduction a filter-and-refine plan must
pay before its first query) are priced separately from per-query costs,
so the planner can amortize them over the batch size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bench.complexity import theoretical_querying_flops

__all__ = [
    "DistanceHistogram",
    "PredictedCost",
    "CostModel",
    "calibration_from_history",
    "DEFAULT_RANGE_SELECTIVITY",
    "DEFAULT_VISIT_FRACTION",
    "DEFAULT_FILTER_LOOSENESS",
]

#: Fraction of the database a range query is assumed to select when no
#: distance histogram is available (matches the benches' "~10 results on
#: m=1000" calibration target, with slack).
DEFAULT_RANGE_SELECTIVITY = 0.05

#: Fraction of the database a tree traversal is assumed to evaluate when
#: no calibration is available.  Deliberately pessimistic: an
#: uncalibrated exotic index must clearly beat the scan on the closed
#: forms before the planner picks it.
DEFAULT_VISIT_FRACTION = 0.5

#: How many times more candidates than true results a contractive filter
#: (pivot table, SVD/QBIC lower bound) is assumed to pass uncalibrated.
DEFAULT_FILTER_LOOSENESS = 3.0


@dataclass(frozen=True)
class DistanceHistogram:
    """Empirical distance distribution for selectivity estimates.

    Built from any 1-D sample of pairwise distances (e.g. uncounted
    query-to-row samples, or the rows of a pivot table's ``m x p``
    distance matrix).  The sample is stored sorted, so selectivity is a
    binary search and quantiles are rank lookups.
    """

    sample: np.ndarray

    @classmethod
    def from_sample(cls, distances: object) -> "DistanceHistogram":
        arr = np.asarray(distances, dtype=np.float64).ravel()
        arr = arr[np.isfinite(arr)]
        if arr.size == 0:
            raise ValueError("distance sample must not be empty")
        return cls(sample=np.sort(arr))

    def selectivity(self, radius: float) -> float:
        """Estimated fraction of pairwise distances ``<= radius``."""
        hits = int(np.searchsorted(self.sample, float(radius), side="right"))
        return hits / self.sample.size

    def radius_at(self, fraction: float) -> float:
        """The radius below which ~*fraction* of sampled distances fall."""
        fraction = min(max(float(fraction), 0.0), 1.0)
        rank = min(
            self.sample.size - 1, max(0, int(round(fraction * self.sample.size)) - 1)
        )
        return float(self.sample[rank])


@dataclass(frozen=True)
class PredictedCost:
    """A plan's price: one-time setup plus a per-query rate.

    ``setup_flops`` is paid once before the first query (e.g. reducing
    the database for a filter-and-refine plan); ``per_query_flops`` is
    the Table 2-style cost of each query.  ``total(batch_size)`` is what
    the planner minimizes.
    """

    setup_flops: float
    per_query_flops: float

    def total(self, batch_size: int) -> float:
        return self.setup_flops + max(int(batch_size), 1) * self.per_query_flops


def calibration_from_history(records: "list[dict]") -> "dict[tuple[str, str], float]":
    """Per-``(method, model)`` observed visit fractions from history lines.

    Replays ``bench-check`` records (plain dicts, as loaded by
    :func:`repro.bench.load_history`): each ``<method>.<model>.
    query_evaluations`` metric, divided by the record's query count and
    database size, is the fraction of the database that method actually
    evaluated per query on the fixed gate workload.  Later records win,
    so the calibration tracks the current code.  Bound-mode variants
    (``pivot-table+best``) calibrate their base method conservatively:
    the largest observed fraction is kept.
    """
    calibration: dict[tuple[str, str], float] = {}
    for record in records:
        if record.get("bench") != "bench-check":
            continue
        meta = record.get("meta") or {}
        size = int(meta.get("size", 0))
        queries = int(meta.get("queries", 0))
        if size <= 0 or queries <= 0:
            continue
        fresh: dict[tuple[str, str], float] = {}
        for key, value in (record.get("metrics") or {}).items():
            parts = str(key).split(".")
            if len(parts) != 3 or parts[2] != "query_evaluations":
                continue
            method = parts[0].split("+")[0]
            model = parts[1]
            fraction = float(value) / (queries * size)
            fraction = min(max(fraction, 0.0), 1.0)
            previous = fresh.get((method, model))
            if previous is None or fraction > previous:
                fresh[(method, model)] = fraction
        calibration.update(fresh)
    return calibration


class CostModel:
    """Prices physical plans for one workload dimensionality.

    Parameters
    ----------
    calibration:
        ``(method, model) -> visit fraction`` corrections (see
        :func:`calibration_from_history`); missing entries fall back to
        the pessimistic defaults.
    """

    def __init__(
        self,
        *,
        calibration: "dict[tuple[str, str], float] | None" = None,
    ) -> None:
        self._calibration = dict(calibration or {})

    @property
    def calibration(self) -> "dict[tuple[str, str], float]":
        return dict(self._calibration)

    # -- workload statistics -------------------------------------------

    def result_fraction(self, spec) -> float:
        """Estimated fraction of the database in the true answer."""
        m = max(int(spec.m), 1)
        if spec.kind == "knn":
            return min(1.0, max(float(spec.param), 1.0) / m)
        if spec.histogram is not None:
            return min(1.0, spec.histogram.selectivity(float(spec.param)))
        return DEFAULT_RANGE_SELECTIVITY

    def filter_candidates(self, spec, *, looseness: "float | None" = None) -> float:
        """Expected candidates ``x`` a contractive filter passes per query."""
        if looseness is None:
            looseness = DEFAULT_FILTER_LOOSENESS
        m = max(int(spec.m), 1)
        fraction = min(1.0, looseness * self.result_fraction(spec))
        floor = float(spec.param) if spec.kind == "knn" else 1.0
        return min(float(m), max(fraction * m, floor))

    def visit_fraction(self, method: str, model: str) -> float:
        """Calibrated fraction of the database a traversal evaluates."""
        return self._calibration.get((method, model), DEFAULT_VISIT_FRACTION)

    # -- plan pricing --------------------------------------------------

    def scan_cost(self, spec, model: str) -> PredictedCost:
        """Table 2, sequential row: the baseline every plan must beat.

        The QMap scan pays the one-time O(m n^2) database transform as
        setup (Table 1's sequential indexing cost) — amortized over the
        batch, which is exactly why it wins for real workloads and can
        lose to the raw-QFD scan for a single tiny query.
        """
        m, n = int(spec.m), int(spec.dim)
        per_query = theoretical_querying_flops("sequential", model, m=m, n=n)
        setup = float(m) * n * n if model == "qmap" else 0.0
        return PredictedCost(setup_flops=setup, per_query_flops=per_query)

    def probe_cost(self, spec, entry) -> PredictedCost:
        """Price an index probe against a catalog entry.

        Methods with a Table 2 closed form (pivot table, M-tree) are
        priced exactly; every other structure is priced generically as
        ``x`` evaluations at the model's per-evaluation cost, with ``x``
        from the calibrated visit fraction — uncalibrated, that fraction
        is pessimistic enough that only the closed-form structures can
        beat the scan.
        """
        m, n = int(spec.m), int(spec.dim)
        method, model = entry.method, entry.model
        if method in ("sequential", "disk-sequential"):
            # A persisted scan: the QMap variant's transform is already
            # archived, so unlike a fresh DirectScan there is no setup.
            per_query = theoretical_querying_flops(
                "sequential", model, m=m, n=n
            )
            return PredictedCost(setup_flops=0.0, per_query_flops=per_query)
        if method == "pivot-table":
            p = int(entry.n_pivots or 16)
            calibrated = self._calibration.get((method, model))
            if calibrated is not None:
                # The calibrated fraction counts pivot distances too;
                # strip them to recover the candidate rate, then scale
                # by the workload's relative selectivity.
                x = max(calibrated * m - p, float(spec.param if spec.kind == "knn" else 1.0))
            else:
                x = self.filter_candidates(spec)
            per_query = theoretical_querying_flops(
                method, model, m=m, n=n, p=p, x=int(round(x))
            )
            return PredictedCost(setup_flops=0.0, per_query_flops=per_query)
        if method in ("mtree", "paged-mtree"):
            x = int(round(self.visit_fraction("mtree", model) * m))
            per_query = theoretical_querying_flops(
                "mtree", model, m=m, n=n, x=x
            )
            return PredictedCost(setup_flops=0.0, per_query_flops=per_query)
        x = self.visit_fraction(method, model) * m
        if model == "qfd":
            per_query = x * n * n
        else:
            per_query = n * n + x * n
        return PredictedCost(setup_flops=0.0, per_query_flops=per_query)

    def filter_refine_cost(self, spec, *, rank: int) -> PredictedCost:
        """Price a lower-bound filter-and-refine scan (Section 2.3.1).

        Setup: the rank-``k`` reduction of the database (``m * n * k``
        multiply-adds) plus the O(n^3) decomposition that produces the
        map.  Per query: one query reduction (``n * k``), ``m`` cheap
        lower bounds (``k`` each), and one exact O(n^2) QFD refinement
        per surviving candidate.
        """
        m, n = int(spec.m), int(spec.dim)
        k = max(1, int(rank))
        setup = float(n) ** 3 + float(m) * n * k
        x = self.filter_candidates(spec)
        per_query = n * k + m * k + x * n * n
        return PredictedCost(setup_flops=setup, per_query_flops=per_query)
