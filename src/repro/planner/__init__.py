"""Cost-based query planning over the paper's Table 2 model.

The planner answers the question the paper leaves to the reader: *given*
that the same logical query costs wildly different amounts depending on
the model (QFD vs QMap), the access method, and the execution strategy,
which physical path should a query batch actually take?

Four pieces, each import-clean of the index/model/observability layers
(the materializing runner lives in :mod:`repro.models.planning`):

* :mod:`~repro.planner.catalog` — discover built indexes from snapshot
  headers, never loading vectors;
* :mod:`~repro.planner.cost` — price plans with the Table 2 closed
  forms, calibrated by replayed benchmark history;
* :mod:`~repro.planner.plans` — the physical plan nodes (direct scan,
  index probe, filter-and-refine) with executor hints;
* :mod:`~repro.planner.planner` — enumerate, price, argmin, and record
  every considered alternative in a :class:`PlanChoice`.
"""

from .catalog import CatalogEntry, IndexCatalog
from .cost import (
    DEFAULT_FILTER_LOOSENESS,
    DEFAULT_RANGE_SELECTIVITY,
    DEFAULT_VISIT_FRACTION,
    CostModel,
    DistanceHistogram,
    PredictedCost,
    calibration_from_history,
)
from .planner import ConsideredPlan, PlanChoice, Planner, QuerySpec
from .plans import (
    THREAD_BATCH_THRESHOLD,
    DirectScan,
    ExecutorChoice,
    FilterRefine,
    IndexProbe,
    PlanNode,
)

__all__ = [
    "CatalogEntry",
    "IndexCatalog",
    "CostModel",
    "DistanceHistogram",
    "PredictedCost",
    "calibration_from_history",
    "DEFAULT_FILTER_LOOSENESS",
    "DEFAULT_RANGE_SELECTIVITY",
    "DEFAULT_VISIT_FRACTION",
    "PlanNode",
    "DirectScan",
    "IndexProbe",
    "FilterRefine",
    "ExecutorChoice",
    "THREAD_BATCH_THRESHOLD",
    "Planner",
    "QuerySpec",
    "PlanChoice",
    "ConsideredPlan",
]
