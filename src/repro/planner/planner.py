"""The cost-based planner: enumerate alternatives, price, pick argmin.

Given a :class:`QuerySpec` (range vs kNN, parameter, batch size, database
shape, optional distance histogram) and an :class:`~repro.planner.
catalog.IndexCatalog` of built snapshots, :class:`Planner` enumerates
every physical alternative — both direct scans, one probe per compatible
snapshot, and the filter-and-refine pipelines — prices each through the
:class:`~repro.planner.cost.CostModel`, and returns a :class:`PlanChoice`
that records *every* considered alternative with its predicted cost, not
just the winner.  Ties break on the plan name, so planning is
deterministic for a fixed catalog.

The choice is advisory: executing a plan is the job of
:mod:`repro.models.planning`, which keeps this package import-clean of
the model/index layers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import QueryError
from .catalog import IndexCatalog
from .cost import CostModel, DistanceHistogram, PredictedCost
from .plans import DirectScan, ExecutorChoice, FilterRefine, IndexProbe, PlanNode

__all__ = ["QuerySpec", "ConsideredPlan", "PlanChoice", "Planner"]


@dataclass(frozen=True)
class QuerySpec:
    """One query workload, as the planner sees it.

    Attributes
    ----------
    kind, param:
        ``"knn"`` with ``k``, or ``"range"`` with the radius.
    batch_size:
        Queries in the batch; setup costs amortize over it and executor
        hints scale with it.
    m, dim:
        Database size and vector dimensionality.
    histogram:
        Optional empirical distance distribution for range-selectivity
        estimates (kNN selectivity is ``k/m`` and needs no sample).
    """

    kind: str
    param: float
    batch_size: int
    m: int
    dim: int
    histogram: "DistanceHistogram | None" = None

    def __post_init__(self) -> None:
        if self.kind not in ("knn", "range"):
            raise QueryError(f"unknown query kind {self.kind!r}")
        if self.kind == "knn" and int(self.param) < 1:
            raise QueryError(f"k must be >= 1, got {self.param}")
        if self.kind == "range" and float(self.param) < 0.0:
            raise QueryError(f"radius must be non-negative, got {self.param}")


@dataclass(frozen=True)
class ConsideredPlan:
    """One priced alternative inside a :class:`PlanChoice`."""

    plan: PlanNode
    cost: PredictedCost
    total_flops: float
    executor: ExecutorChoice
    chosen: bool = False

    @property
    def name(self) -> str:
        return self.plan.name


@dataclass(frozen=True)
class PlanChoice:
    """The planner's decision, with its full deliberation attached.

    ``considered`` holds every alternative sorted by ascending predicted
    total cost; ``chosen`` is the winner (the cheapest, unless a plan was
    forced by name).  ``predicted_cost`` is the chosen plan's total for
    the whole batch — the number the EXPLAIN header compares against the
    actually observed cost.
    """

    spec: QuerySpec
    considered: "tuple[ConsideredPlan, ...]"
    chosen: ConsideredPlan

    @property
    def predicted_cost(self) -> float:
        return self.chosen.total_flops

    def alternative(self, name: str) -> ConsideredPlan:
        """Look up a considered alternative by plan name."""
        for candidate in self.considered:
            if candidate.name == name:
                return candidate
        known = [candidate.name for candidate in self.considered]
        raise QueryError(f"no plan named {name!r}; considered: {known}")

    def render(
        self,
        *,
        actual_flops: "dict[str, float] | None" = None,
        per_query: bool = False,
    ) -> str:
        """The "considered plans" header: predicted (vs actual) per plan.

        *actual_flops* maps plan names to observed arithmetic costs (from
        the EXPLAIN event buffers); alternatives without a measurement
        show a ``-``.  With *per_query* the predicted column shows the
        per-query rate instead of the batch total — the right comparison
        when the actuals come from explaining a single query.
        """
        what = (
            f"range(r={self.spec.param:g})"
            if self.spec.kind == "range"
            else f"knn(k={int(self.spec.param)})"
        )
        unit = "flops/query" if per_query else "flops"
        lines = [
            f"considered plans for {what}  "
            f"(batch={self.spec.batch_size}, m={self.spec.m}, "
            f"n={self.spec.dim}):"
        ]
        width = max(len(candidate.name) for candidate in self.considered)
        for candidate in self.considered:
            marker = "*" if candidate.chosen else " "
            predicted = (
                candidate.cost.per_query_flops if per_query else candidate.total_flops
            )
            line = (
                f"  {marker} {candidate.name:<{width}}  "
                f"predicted={predicted:.4g} {unit}"
            )
            if candidate.cost.setup_flops and not per_query:
                line += f" (setup {candidate.cost.setup_flops:.3g})"
            if actual_flops is not None:
                actual = actual_flops.get(candidate.name)
                line += (
                    f"  actual={actual:.4g}"
                    if actual is not None
                    else "  actual=-"
                )
            line += f"  [{candidate.executor.describe()}]"
            if candidate.chosen:
                line += "  (chosen)"
            lines.append(line)
        return "\n".join(lines)


class Planner:
    """Enumerates and prices physical plans for query specs.

    Parameters
    ----------
    catalog:
        Discovered index snapshots (``None`` means no probes — the
        planner still offers both scans and the filter pipelines).
    cost_model:
        The pricing model (a default, uncalibrated one if omitted).
    """

    def __init__(
        self,
        catalog: "IndexCatalog | None" = None,
        cost_model: "CostModel | None" = None,
    ) -> None:
        self._catalog = catalog if catalog is not None else IndexCatalog()
        self._cost_model = cost_model if cost_model is not None else CostModel()

    @property
    def catalog(self) -> IndexCatalog:
        return self._catalog

    @property
    def cost_model(self) -> CostModel:
        return self._cost_model

    def alternatives(self, spec: QuerySpec) -> "list[PlanNode]":
        """Every physical alternative for *spec*.

        Always at least three: both direct scans and the SVD
        filter-and-refine pipeline; the average-color pipeline when the
        dimensionality is a color-histogram cube (``bins^3``); one probe
        per dimension-compatible catalog snapshot.
        """
        rank = max(1, int(spec.dim) // 4)
        nodes: list[PlanNode] = [
            DirectScan(model="qfd"),
            DirectScan(model="qmap"),
            FilterRefine(lower_bound="svd", rank=rank),
        ]
        bins = round(float(spec.dim) ** (1.0 / 3.0))
        if bins >= 2 and bins**3 == int(spec.dim):
            nodes.append(FilterRefine(lower_bound="avg_color", rank=3))
        for entry in self._catalog.compatible(int(spec.dim)):
            if entry.size != int(spec.m):
                continue
            nodes.append(IndexProbe(entry=entry))
        return nodes

    def plan(self, spec: QuerySpec, *, force: "str | None" = None) -> PlanChoice:
        """Price every alternative and pick the argmin (or *force* by name).

        The returned :class:`PlanChoice` lists all alternatives sorted by
        predicted total cost; a forced plan is marked chosen even when it
        is not the cheapest, so ``--plan <name>`` keeps the comparison
        visible.
        """
        priced: list[ConsideredPlan] = []
        for node in self.alternatives(spec):
            cost = node.predicted_cost(spec, self._cost_model)
            priced.append(
                ConsideredPlan(
                    plan=node,
                    cost=cost,
                    total_flops=cost.total(spec.batch_size),
                    executor=node.executor_hint(spec.batch_size),
                )
            )
        priced.sort(key=lambda candidate: (candidate.total_flops, candidate.name))
        if force is not None:
            names = [candidate.name for candidate in priced]
            if force not in names:
                raise QueryError(
                    f"no plan named {force!r} for this workload; "
                    f"available: {names}"
                )
            chosen_pos = names.index(force)
        else:
            chosen_pos = 0
        final = tuple(
            ConsideredPlan(
                plan=candidate.plan,
                cost=candidate.cost,
                total_flops=candidate.total_flops,
                executor=candidate.executor,
                chosen=pos == chosen_pos,
            )
            for pos, candidate in enumerate(priced)
        )
        return PlanChoice(spec=spec, considered=final, chosen=final[chosen_pos])
