"""Index discovery: a catalog of built snapshots, probed without vectors.

:class:`IndexCatalog` scans a directory of ``.npz`` index snapshots
through :func:`~repro.persistence.probe_snapshot` — zip headers and
scalar markers only, never the archived rows — and turns each into a
:class:`CatalogEntry`: the physical facts the planner prices a probe
against (method, model, bound mode, shape, record dtype, pivot count,
build costs, workload recipe).

Unreadable or foreign archives are never silently skipped: every failure
is recorded as a warning on the catalog, so ``repro index ls`` (and any
planning run) can surface exactly which files were passed over and why.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..exceptions import StorageError
from ..persistence import SnapshotProbe, probe_snapshot

__all__ = ["CatalogEntry", "IndexCatalog"]

#: Recipe keys ``repro index save`` records; surfaced when all present.
_RECIPE_KEYS = (
    "workload_size",
    "workload_bins",
    "workload_queries",
    "workload_seed",
)


@dataclass(frozen=True)
class CatalogEntry:
    """One discovered snapshot: everything the cost model needs, no rows.

    Attributes
    ----------
    path:
        The archive on disk (feed to ``load_built_index`` to restore).
    method, model:
        Access-method registry name and ``"qfd"`` / ``"qmap"``.
    bound:
        Pivot-table lower-bound mode (``None`` for other methods).
    size, dim:
        Database shape ``(m, n)`` read from the npy header.
    dtype:
        Record dtype of the archived rows; float32 marks an out-of-core
        (mmap) build, float64 the classic heap path.
    format_version, method_version:
        Snapshot format and per-method codec versions.
    n_pivots:
        Pivot count from the state layout (pivot-based methods only).
    build_distance_computations, build_transforms, build_seconds:
        Build costs recorded by :meth:`BuiltIndex.save`.
    workload:
        The recorded synthetic-workload recipe, when the snapshot was
        written by ``repro index save`` (``None`` otherwise).
    """

    path: str
    method: str
    model: str
    bound: "str | None"
    size: int
    dim: int
    dtype: str
    format_version: int
    method_version: int
    n_pivots: "int | None"
    build_distance_computations: int
    build_transforms: int
    build_seconds: float
    workload: "dict[str, int] | None" = None

    @property
    def store(self) -> str:
        """``"mmap"`` for float32 out-of-core archives, else ``"heap"``."""
        return "mmap" if np.dtype(self.dtype) == np.float32 else "heap"

    @property
    def label(self) -> str:
        """Compact ``method[+bound],model`` tag used in plan names."""
        suffix = f"+{self.bound}" if self.bound not in (None, "triangle") else ""
        return f"{self.method}{suffix},{self.model}"

    @classmethod
    def from_probe(cls, probe: SnapshotProbe) -> "CatalogEntry":
        """Build an entry from a snapshot probe.

        Raises :class:`StorageError` when the snapshot was not written
        through a model pipeline (no model marker / QFD matrix) — such
        archives cannot be restored by ``load_built_index`` and therefore
        cannot back an :class:`~repro.planner.plans.IndexProbe` plan.
        """
        model = probe.meta.get("model")
        if model is None or "matrix" not in probe.meta_shapes:
            raise StorageError(
                f"{probe.path}: no model marker/QFD matrix in snapshot "
                "metadata; it was not written by BuiltIndex.save"
            )
        bound: str | None = None
        if "bound" in probe.state_scalars:
            bound = str(probe.state_scalars["bound"])
        n_pivots: int | None = None
        pivot_shape = probe.state_shapes.get("pivot_indices")
        if pivot_shape is not None and len(pivot_shape) == 1:
            n_pivots = int(pivot_shape[0])
        workload: dict[str, int] | None = None
        if all(key in probe.meta for key in _RECIPE_KEYS):
            workload = {
                key[len("workload_") :]: int(probe.meta[key])  # type: ignore[arg-type]
                for key in _RECIPE_KEYS
            }
        return cls(
            path=probe.path,
            method=probe.method,
            model=str(model),
            bound=bound,
            size=probe.size,
            dim=probe.dim,
            dtype=probe.dtype,
            format_version=probe.format_version,
            method_version=probe.method_version,
            n_pivots=n_pivots,
            build_distance_computations=int(
                probe.meta.get("build_distance_computations", 0)  # type: ignore[arg-type]
            ),
            build_transforms=int(probe.meta.get("build_transforms", 0)),  # type: ignore[arg-type]
            build_seconds=float(probe.meta.get("build_seconds", 0.0)),  # type: ignore[arg-type]
            workload=workload,
        )


@dataclass(frozen=True)
class IndexCatalog:
    """The discovered snapshots of one directory, plus scan warnings."""

    entries: "tuple[CatalogEntry, ...]" = ()
    warnings: "tuple[str, ...]" = ()
    directory: "str | None" = None

    @classmethod
    def scan(cls, directory: "str | os.PathLike[str]") -> "IndexCatalog":
        """Probe every ``*.npz`` under *directory* (sorted, not recursive).

        Files that fail to probe — truncated archives, foreign ``.npz``
        artifacts, unsupported versions, snapshots without a model marker
        — become warnings instead of entries; nothing is silently
        skipped.  A missing directory raises :class:`StorageError`.
        """
        root = Path(directory)
        if not root.is_dir():
            raise StorageError(f"index directory {root} does not exist")
        entries: list[CatalogEntry] = []
        warnings: list[str] = []
        for path in sorted(root.glob("*.npz")):
            try:
                entries.append(CatalogEntry.from_probe(probe_snapshot(path)))
            except StorageError as exc:
                # Probe errors usually embed the path already; don't
                # stutter it in the warning line.
                message = str(exc)
                if str(path) not in message:
                    message = f"{path}: {message}"
                warnings.append(message)
        return cls(
            entries=tuple(entries),
            warnings=tuple(warnings),
            directory=str(root),
        )

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def compatible(
        self, dim: int, *, model: "str | None" = None
    ) -> "list[CatalogEntry]":
        """Entries usable for a *dim*-dimensional workload (optional model)."""
        return [
            entry
            for entry in self.entries
            if entry.dim == dim and (model is None or entry.model == model)
        ]
