"""Physical plan nodes: how one logical query batch can actually run.

Three node families, mirroring the paper's three ways of answering the
same QFD query exactly:

* :class:`DirectScan` — a sequential scan under the QFD or QMap model
  (Table 2, first row): zero setup, the baseline;
* :class:`IndexProbe` — restore a built index from a catalog snapshot
  and traverse it (Table 2, pivot-table / M-tree rows);
* :class:`FilterRefine` — the Section 2.3.1 lower-bound pipeline: a
  cheap contractive filter (rank-k SVD reduction or the generalized
  QBIC average-color projection) over a sequential scan, with exact QFD
  refinement of the survivors.

Every node prices itself through the shared :class:`~repro.planner.cost.
CostModel` (``predicted_cost``) and proposes an executor
(``executor_hint``): serial for small batches, threads once the batch is
wide enough to amortize pool startup — never processes, whose workers
cannot update the in-process distance counters the whole reproduction
accounts with.
"""

from __future__ import annotations

from dataclasses import dataclass

from .catalog import CatalogEntry
from .cost import CostModel, PredictedCost

__all__ = [
    "ExecutorChoice",
    "PlanNode",
    "DirectScan",
    "IndexProbe",
    "FilterRefine",
    "THREAD_BATCH_THRESHOLD",
]

#: Batches at least this wide get a thread-pool executor hint.
THREAD_BATCH_THRESHOLD = 16


@dataclass(frozen=True)
class ExecutorChoice:
    """A planner-chosen executor: accepted by ``resolve_executor``.

    Duck-typed by its ``name``/``workers``/``chunk_size`` attributes —
    the engine needs no import of the planner to honor it.
    """

    name: str
    workers: "int | None" = None
    chunk_size: "int | None" = None

    def describe(self) -> str:
        if self.workers:
            return f"{self.name}({self.workers})"
        return self.name


def _default_executor_hint(batch_size: int) -> ExecutorChoice:
    if int(batch_size) >= THREAD_BATCH_THRESHOLD:
        return ExecutorChoice(name="thread")
    return ExecutorChoice(name="serial")


class PlanNode:
    """One physical alternative for a query batch."""

    @property
    def name(self) -> str:
        """Stable identifier, also accepted by ``--plan <name>``."""
        raise NotImplementedError

    def predicted_cost(self, spec, cost_model: CostModel) -> PredictedCost:
        """Price this plan for *spec* (see :class:`PredictedCost`)."""
        raise NotImplementedError

    def executor_hint(self, batch_size: int) -> ExecutorChoice:
        """The executor this plan should run under for *batch_size*."""
        return _default_executor_hint(batch_size)


@dataclass(frozen=True)
class DirectScan(PlanNode):
    """Sequential scan under one model — Table 2's baseline row."""

    model: str = "qmap"

    @property
    def name(self) -> str:
        return f"scan[{self.model}]"

    def predicted_cost(self, spec, cost_model: CostModel) -> PredictedCost:
        return cost_model.scan_cost(spec, self.model)

    def executor_hint(self, batch_size: int) -> ExecutorChoice:
        # A scan's per-query work is embarrassingly parallel and large
        # (the whole database per query), so threads pay off earlier.
        if int(batch_size) >= max(2, THREAD_BATCH_THRESHOLD // 2):
            return ExecutorChoice(name="thread")
        return ExecutorChoice(name="serial")


@dataclass(frozen=True)
class IndexProbe(PlanNode):
    """Restore a cataloged snapshot and traverse the index."""

    entry: CatalogEntry

    @property
    def method(self) -> str:
        return self.entry.method

    @property
    def model(self) -> str:
        return self.entry.model

    @property
    def bound(self) -> "str | None":
        return self.entry.bound

    @property
    def name(self) -> str:
        return f"probe[{self.entry.label}]"

    def predicted_cost(self, spec, cost_model: CostModel) -> PredictedCost:
        return cost_model.probe_cost(spec, self.entry)


@dataclass(frozen=True)
class FilterRefine(PlanNode):
    """Lower-bound filter over a scan, exact QFD refinement (S 2.3.1)."""

    lower_bound: str = "svd"
    rank: int = 16

    def __post_init__(self) -> None:
        if self.lower_bound not in ("svd", "avg_color"):
            raise ValueError(
                f"unknown lower bound {self.lower_bound!r}; "
                "choose 'svd' or 'avg_color'"
            )

    @property
    def name(self) -> str:
        return f"filter-refine[{self.lower_bound},k={int(self.rank)}]"

    def predicted_cost(self, spec, cost_model: CostModel) -> PredictedCost:
        return cost_model.filter_refine_cost(spec, rank=int(self.rank))

    def executor_hint(self, batch_size: int) -> ExecutorChoice:
        # The filter-and-refine scan aggregates per-query stats on the
        # shared scanner object; it runs serially by design.
        return ExecutorChoice(name="serial")
