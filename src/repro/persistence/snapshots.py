"""Save/load any registered access method as a structural snapshot.

``save_index`` flattens the index's structure (tree topology, pivot
tables, page images, ...) into plain arrays; ``load_index`` re-wires it
with **zero** logical distance computations — the entire point of
persisting indexes whose construction cost the paper's experiments
measure in distance evaluations.

Loading verifies integrity by default: structural validation happens in
each method's ``_restore_state`` (shape checks, tree-link checks), and a
sampled bound re-evaluation (``_verify_state_probe``) cross-checks the
stored numbers against the supplied distance function, catching the
classic operational mistake of restoring a snapshot with the wrong QFD
matrix.  The probe runs outside the distance counter, so even a verified
load still reports zero distance evaluations.
"""

from __future__ import annotations

import os
from typing import Callable

import numpy as np

from ..exceptions import StorageError
from ..mam.base import AccessMethod, DistancePort
from .codecs import codec_for, codec_for_class
from .format import IndexSnapshot, read_snapshot, write_snapshot

__all__ = ["load_index", "save_index"]


def save_index(
    index: AccessMethod,
    path: "str | os.PathLike[str]",
    *,
    meta: "dict[str, object] | None" = None,
) -> str:
    """Snapshot *index* (structure + database) to *path*.

    Returns the path actually written (``.npz`` appended if missing).
    *meta* entries are stored under ``meta__*`` keys; values must be
    numpy-convertible without object dtype.
    """
    codec = codec_for_class(type(index))
    database = np.asarray(index.database)
    if database.dtype != np.float32:
        # float32 (the out-of-core record dtype) round-trips as-is so a
        # reload reproduces bit-identical distances; everything else is
        # normalized to the historical float64 representation.  For a
        # memory-mapped database ``asarray`` stays zero-copy — the
        # archive writer streams pages straight out of the mapping.
        database = np.asarray(database, dtype=np.float64)
    snapshot = IndexSnapshot(
        method=codec.method,
        method_version=codec.version,
        database=database,
        state=codec.encode(index),
        meta={k: np.asarray(v) for k, v in (meta or {}).items()},
    )
    return write_snapshot(snapshot, path)


def load_index(
    source: "str | os.PathLike[str] | IndexSnapshot",
    distance: "DistancePort | Callable | None" = None,
    *,
    verify: bool = True,
    database: "np.ndarray | None" = None,
) -> AccessMethod:
    """Restore an index from a snapshot path (or an in-memory snapshot).

    MAM snapshots require the *distance* the index was built with; SAM
    snapshots rebuild their default query distance when none is given.
    With ``verify=True`` (default) a stored bound is re-evaluated against
    the supplied distance — uncounted, so the restore still performs zero
    logical distance computations.

    *database* substitutes the record backing without touching the stored
    structure — the out-of-core restore path: the caller spills the
    snapshot's rows into a memory-mapped store and passes the store's
    view here, so the rebuilt index reads pages instead of a heap copy.
    The override must hold the same values as the archived rows (same
    shape is enforced; contents are the caller's contract, backed by the
    ``verify`` probe).
    """
    if isinstance(source, IndexSnapshot):
        snapshot = source
    else:
        snapshot = read_snapshot(source)
    codec = codec_for(snapshot.method)
    if snapshot.method_version > codec.version:
        raise StorageError(
            f"snapshot of {snapshot.method!r} uses method version "
            f"{snapshot.method_version}; this library reads up to "
            f"version {codec.version}"
        )
    rows = snapshot.database
    if database is not None:
        if database.shape != snapshot.database.shape:
            raise StorageError(
                f"database override shape {database.shape} does not match "
                f"the snapshot's {snapshot.database.shape}"
            )
        rows = database
    index = codec.decode(rows, distance, snapshot.state)
    if verify:
        label = snapshot.path or "snapshot"
        try:
            index._verify_state_probe()
        except StorageError as exc:
            raise StorageError(f"{label}: {exc}") from None
    return index
