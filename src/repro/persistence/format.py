"""The on-disk index snapshot format.

A snapshot is a plain ``.npz`` archive — named numpy arrays only, no
pickled code objects (``np.load`` is used with its default
``allow_pickle=False``, so a tampered archive cannot execute code).  The
layout is versioned and self-describing:

==================  =====================================================
``kind``            always ``"index-snapshot"``
``format_version``  integer; readers reject versions newer than their own
``method``          registry name of the access method (``"mtree"``, ...)
``method_version``  per-method codec version
``database``        the ``(m, n)`` float64 rows the index was built over
``state__*``        the method's structural arrays (tree topology,
                    pivot tables, page images, ... — see each method's
                    ``structural_state``)
``meta__*``         caller-provided metadata (model name, QFD matrix,
                    build costs, workload recipe, ...)
==================  =====================================================

Restoring an index from a snapshot re-wires the structure from these
arrays and performs **zero** logical distance computations.
"""

from __future__ import annotations

import os
import zipfile
from dataclasses import dataclass, field

import numpy as np

from ..exceptions import StorageError
from ._paths import normalize_npz_path

__all__ = [
    "FORMAT_VERSION",
    "META_PREFIX",
    "SNAPSHOT_KIND",
    "STATE_PREFIX",
    "IndexSnapshot",
    "SnapshotProbe",
    "check_kind",
    "probe_snapshot",
    "read_snapshot",
    "write_snapshot",
]

SNAPSHOT_KIND = "index-snapshot"
FORMAT_VERSION = 1
STATE_PREFIX = "state__"
META_PREFIX = "meta__"

#: Archive keys that are not state/meta payload.
_HEADER_KEYS = ("kind", "format_version", "method", "method_version", "database")


def check_kind(archive: "np.lib.npyio.NpzFile", expected: str, path: object) -> None:
    """Raise :class:`StorageError` unless the archive's kind marker matches."""
    kind = str(archive["kind"]) if "kind" in archive else "<missing>"
    if kind != expected:
        raise StorageError(
            f"{path!s} holds a {kind!r} artifact, expected {expected!r}"
        )


@dataclass
class IndexSnapshot:
    """An index snapshot in memory: everything the archive holds.

    ``state`` carries the structural arrays exactly as the method's
    ``structural_state`` produced them; ``meta`` carries caller metadata
    (arrays or numpy scalars).  ``path`` is the archive the snapshot was
    read from, if any — used to label verification errors.
    """

    method: str
    method_version: int
    database: np.ndarray
    state: dict[str, np.ndarray]
    meta: dict[str, np.ndarray] = field(default_factory=dict)
    path: str | None = None


def _reject_objects(label: str, value: object) -> np.ndarray:
    arr = np.asarray(value)
    if arr.dtype.hasobject:
        raise StorageError(
            f"snapshot entry {label!r} has object dtype; only plain numeric "
            "and string arrays can be persisted (no pickling)"
        )
    return arr


def write_snapshot(
    snapshot: IndexSnapshot, path: "str | os.PathLike[str]"
) -> str:
    """Write *snapshot* as a compressed archive, returning the real path."""
    payload: dict[str, np.ndarray] = {
        "kind": np.str_(SNAPSHOT_KIND),
        "format_version": np.int64(FORMAT_VERSION),
        "method": np.str_(snapshot.method),
        "method_version": np.int64(snapshot.method_version),
        "database": _reject_objects("database", snapshot.database),
    }
    for key, value in snapshot.state.items():
        payload[STATE_PREFIX + key] = _reject_objects(key, value)
    for key, value in snapshot.meta.items():
        payload[META_PREFIX + key] = _reject_objects(key, value)
    target = normalize_npz_path(path)
    np.savez_compressed(target, **payload)
    return target


def read_snapshot(path: "str | os.PathLike[str]") -> IndexSnapshot:
    """Read a snapshot archive written by :func:`write_snapshot`.

    Rejects non-snapshot archives, archives written by a *newer* format
    version, and (via numpy's default ``allow_pickle=False``) any archive
    containing pickled objects.
    """
    target = normalize_npz_path(path)
    try:
        archive = np.load(target)
    except OSError as exc:
        raise StorageError(f"cannot read snapshot {path!s}: {exc}") from None
    with archive:
        check_kind(archive, SNAPSHOT_KIND, path)
        version = int(archive["format_version"])
        if version > FORMAT_VERSION:
            raise StorageError(
                f"{path!s} uses snapshot format version {version}; this "
                f"library reads up to version {FORMAT_VERSION}"
            )
        state: dict[str, np.ndarray] = {}
        meta: dict[str, np.ndarray] = {}
        for key in archive.files:
            if key.startswith(STATE_PREFIX):
                state[key[len(STATE_PREFIX) :]] = archive[key]
            elif key.startswith(META_PREFIX):
                meta[key[len(META_PREFIX) :]] = archive[key]
            elif key not in _HEADER_KEYS:
                raise StorageError(
                    f"{path!s}: unexpected snapshot entry {key!r}"
                )
        return IndexSnapshot(
            method=str(archive["method"]),
            method_version=int(archive["method_version"]),
            database=archive["database"],
            state=state,
            meta=meta,
            path=target,
        )


#: Entries at most this many elements are materialized by a probe; larger
#: ones (the database, pivot tables, the QFD matrix, page images, ...)
#: contribute only their shape.  Large enough for every scalar marker and
#: the workload recipe, small enough that probing never decompresses a
#: vector payload.
_PROBE_VALUE_ELEMENTS = 16


@dataclass(frozen=True)
class SnapshotProbe:
    """Header-only view of a snapshot archive: metadata, never vectors.

    Produced by :func:`probe_snapshot` from the ``.npy`` member headers of
    the archive — the database rows and every other large array stay
    compressed on disk, so probing a directory of snapshots is I/O-cheap
    regardless of index size.  Small entries (scalar markers such as the
    model name, the pivot-table bound mode, build costs, and the workload
    recipe) are materialized as plain Python values; everything else is
    reported by shape only.
    """

    path: str
    method: str
    method_version: int
    format_version: int
    shape: "tuple[int, int]"
    dtype: str
    meta: "dict[str, object]"
    meta_shapes: "dict[str, tuple[int, ...]]"
    state_scalars: "dict[str, object]"
    state_shapes: "dict[str, tuple[int, ...]]"

    @property
    def size(self) -> int:
        """Database size ``m`` (rows the index was built over)."""
        return self.shape[0]

    @property
    def dim(self) -> int:
        """Vector dimensionality ``n``."""
        return self.shape[1]


def _scalarize(value: np.ndarray) -> object:
    """A 0-d (or tiny) numpy value as a plain Python object."""
    arr = np.asarray(value)
    if arr.ndim == 0:
        return arr.item()
    return arr.tolist()


def _member_header(
    zf: zipfile.ZipFile, name: str, label: object
) -> "tuple[tuple[int, ...], np.dtype]":
    """Shape and dtype of one ``.npy`` member without reading its data."""
    with zf.open(name) as fh:
        version = np.lib.format.read_magic(fh)
        if version == (1, 0):
            shape, _, dtype = np.lib.format.read_array_header_1_0(fh)
        elif version == (2, 0):
            shape, _, dtype = np.lib.format.read_array_header_2_0(fh)
        else:
            raise StorageError(
                f"{label!s}: entry {name!r} uses unsupported npy format "
                f"version {version}"
            )
    return tuple(int(s) for s in shape), dtype


def _member_value(zf: zipfile.ZipFile, name: str) -> np.ndarray:
    """Fully read one (small) ``.npy`` member."""
    with zf.open(name) as fh:
        return np.lib.format.read_array(fh, allow_pickle=False)


def probe_snapshot(path: "str | os.PathLike[str]") -> SnapshotProbe:
    """Probe a snapshot archive's metadata without loading any vectors.

    Reads only the zip directory, the per-member ``.npy`` headers, and the
    tiny scalar entries (kind/method markers, ``meta__*`` scalars such as
    the model name and build costs, 0-d ``state__*`` markers such as the
    pivot-table bound mode).  The database array — and every other large
    payload — is never decompressed.  Raises :class:`StorageError` for
    anything that is not a readable index snapshot of a supported format
    version, exactly like :func:`read_snapshot` would.
    """
    target = normalize_npz_path(path)
    try:
        zf = zipfile.ZipFile(target)
    except (OSError, zipfile.BadZipFile) as exc:
        raise StorageError(f"cannot read snapshot {path!s}: {exc}") from None
    with zf:
        members: dict[str, str] = {}
        for name in zf.namelist():
            key = name[: -len(".npy")] if name.endswith(".npy") else name
            members[key] = name
        for required in _HEADER_KEYS:
            if required not in members:
                raise StorageError(
                    f"{path!s} is not an index snapshot (missing {required!r})"
                )
        try:
            kind = str(_scalarize(_member_value(zf, members["kind"])))
            if kind != SNAPSHOT_KIND:
                raise StorageError(
                    f"{path!s} holds a {kind!r} artifact, expected "
                    f"{SNAPSHOT_KIND!r}"
                )
            format_version = int(_member_value(zf, members["format_version"]))
            if format_version > FORMAT_VERSION:
                raise StorageError(
                    f"{path!s} uses snapshot format version {format_version}; "
                    f"this library reads up to version {FORMAT_VERSION}"
                )
            method = str(_scalarize(_member_value(zf, members["method"])))
            method_version = int(_member_value(zf, members["method_version"]))
            db_shape, db_dtype = _member_header(zf, members["database"], path)
            if len(db_shape) != 2:
                raise StorageError(
                    f"{path!s}: database entry has shape {db_shape}, "
                    "expected 2-D rows"
                )
            meta: dict[str, object] = {}
            meta_shapes: dict[str, tuple[int, ...]] = {}
            state_scalars: dict[str, object] = {}
            state_shapes: dict[str, tuple[int, ...]] = {}
            for key, name in members.items():
                if key in _HEADER_KEYS:
                    continue
                shape, _ = _member_header(zf, name, path)
                elements = 1
                for extent in shape:
                    elements *= extent
                if key.startswith(META_PREFIX):
                    short = key[len(META_PREFIX) :]
                    if elements <= _PROBE_VALUE_ELEMENTS:
                        meta[short] = _scalarize(_member_value(zf, name))
                    else:
                        meta_shapes[short] = shape
                elif key.startswith(STATE_PREFIX):
                    short = key[len(STATE_PREFIX) :]
                    state_shapes[short] = shape
                    if shape == ():
                        state_scalars[short] = _scalarize(
                            _member_value(zf, name)
                        )
                else:
                    raise StorageError(
                        f"{path!s}: unexpected snapshot entry {key!r}"
                    )
        except StorageError:
            raise
        except (OSError, ValueError, zipfile.BadZipFile) as exc:
            raise StorageError(
                f"cannot probe snapshot {path!s}: {exc}"
            ) from None
    return SnapshotProbe(
        path=target,
        method=method,
        method_version=method_version,
        format_version=format_version,
        shape=(db_shape[0], db_shape[1]),
        dtype=str(db_dtype),
        meta=meta,
        meta_shapes=meta_shapes,
        state_scalars=state_scalars,
        state_shapes=state_shapes,
    )
