"""The on-disk index snapshot format.

A snapshot is a plain ``.npz`` archive — named numpy arrays only, no
pickled code objects (``np.load`` is used with its default
``allow_pickle=False``, so a tampered archive cannot execute code).  The
layout is versioned and self-describing:

==================  =====================================================
``kind``            always ``"index-snapshot"``
``format_version``  integer; readers reject versions newer than their own
``method``          registry name of the access method (``"mtree"``, ...)
``method_version``  per-method codec version
``database``        the ``(m, n)`` float64 rows the index was built over
``state__*``        the method's structural arrays (tree topology,
                    pivot tables, page images, ... — see each method's
                    ``structural_state``)
``meta__*``         caller-provided metadata (model name, QFD matrix,
                    build costs, workload recipe, ...)
==================  =====================================================

Restoring an index from a snapshot re-wires the structure from these
arrays and performs **zero** logical distance computations.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from ..exceptions import StorageError
from ._paths import normalize_npz_path

__all__ = [
    "FORMAT_VERSION",
    "META_PREFIX",
    "SNAPSHOT_KIND",
    "STATE_PREFIX",
    "IndexSnapshot",
    "check_kind",
    "read_snapshot",
    "write_snapshot",
]

SNAPSHOT_KIND = "index-snapshot"
FORMAT_VERSION = 1
STATE_PREFIX = "state__"
META_PREFIX = "meta__"

#: Archive keys that are not state/meta payload.
_HEADER_KEYS = ("kind", "format_version", "method", "method_version", "database")


def check_kind(archive: "np.lib.npyio.NpzFile", expected: str, path: object) -> None:
    """Raise :class:`StorageError` unless the archive's kind marker matches."""
    kind = str(archive["kind"]) if "kind" in archive else "<missing>"
    if kind != expected:
        raise StorageError(
            f"{path!s} holds a {kind!r} artifact, expected {expected!r}"
        )


@dataclass
class IndexSnapshot:
    """An index snapshot in memory: everything the archive holds.

    ``state`` carries the structural arrays exactly as the method's
    ``structural_state`` produced them; ``meta`` carries caller metadata
    (arrays or numpy scalars).  ``path`` is the archive the snapshot was
    read from, if any — used to label verification errors.
    """

    method: str
    method_version: int
    database: np.ndarray
    state: dict[str, np.ndarray]
    meta: dict[str, np.ndarray] = field(default_factory=dict)
    path: str | None = None


def _reject_objects(label: str, value: object) -> np.ndarray:
    arr = np.asarray(value)
    if arr.dtype.hasobject:
        raise StorageError(
            f"snapshot entry {label!r} has object dtype; only plain numeric "
            "and string arrays can be persisted (no pickling)"
        )
    return arr


def write_snapshot(
    snapshot: IndexSnapshot, path: "str | os.PathLike[str]"
) -> str:
    """Write *snapshot* as a compressed archive, returning the real path."""
    payload: dict[str, np.ndarray] = {
        "kind": np.str_(SNAPSHOT_KIND),
        "format_version": np.int64(FORMAT_VERSION),
        "method": np.str_(snapshot.method),
        "method_version": np.int64(snapshot.method_version),
        "database": _reject_objects("database", snapshot.database),
    }
    for key, value in snapshot.state.items():
        payload[STATE_PREFIX + key] = _reject_objects(key, value)
    for key, value in snapshot.meta.items():
        payload[META_PREFIX + key] = _reject_objects(key, value)
    target = normalize_npz_path(path)
    np.savez_compressed(target, **payload)
    return target


def read_snapshot(path: "str | os.PathLike[str]") -> IndexSnapshot:
    """Read a snapshot archive written by :func:`write_snapshot`.

    Rejects non-snapshot archives, archives written by a *newer* format
    version, and (via numpy's default ``allow_pickle=False``) any archive
    containing pickled objects.
    """
    target = normalize_npz_path(path)
    try:
        archive = np.load(target)
    except OSError as exc:
        raise StorageError(f"cannot read snapshot {path!s}: {exc}") from None
    with archive:
        check_kind(archive, SNAPSHOT_KIND, path)
        version = int(archive["format_version"])
        if version > FORMAT_VERSION:
            raise StorageError(
                f"{path!s} uses snapshot format version {version}; this "
                f"library reads up to version {FORMAT_VERSION}"
            )
        state: dict[str, np.ndarray] = {}
        meta: dict[str, np.ndarray] = {}
        for key in archive.files:
            if key.startswith(STATE_PREFIX):
                state[key[len(STATE_PREFIX) :]] = archive[key]
            elif key.startswith(META_PREFIX):
                meta[key[len(META_PREFIX) :]] = archive[key]
            elif key not in _HEADER_KEYS:
                raise StorageError(
                    f"{path!s}: unexpected snapshot entry {key!r}"
                )
        return IndexSnapshot(
            method=str(archive["method"]),
            method_version=int(archive["method_version"]),
            database=archive["database"],
            state=state,
            meta=meta,
            path=target,
        )
