"""Per-method snapshot codecs.

A codec binds a registry name to an access-method class and a codec
version, and mediates between live indexes and snapshot state dicts.  The
default registry mirrors :data:`~repro.models.base.MAM_REGISTRY` and
:data:`~repro.models.base.SAM_REGISTRY`, so every access method the
models can build can also be snapshotted and restored.

The class lookup is by *exact* type (``XTree`` subclasses ``RTree`` but
must round-trip through its own codec, which also carries the supernode
flags).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import StorageError
from ..mam.base import AccessMethod, DistancePort

__all__ = [
    "CODEC_REGISTRY",
    "IndexCodec",
    "codec_for",
    "codec_for_class",
    "register_codec",
    "registered_methods",
]


@dataclass(frozen=True)
class IndexCodec:
    """Snapshot codec for one access-method class.

    ``version`` tracks the *state layout* of the method: bump it when a
    method's ``structural_state`` keys change so older libraries refuse
    newer snapshots instead of mis-restoring them.
    """

    method: str
    cls: type[AccessMethod]
    is_sam: bool
    version: int = 1

    def encode(self, index: AccessMethod) -> dict[str, np.ndarray]:
        """The structural arrays of *index* (no database, no code)."""
        return index.structural_state()

    def decode(
        self,
        database: np.ndarray,
        distance: "DistancePort | None",
        state: dict[str, np.ndarray],
    ) -> AccessMethod:
        """Rebuild an index from *state* with zero distance computations.

        MAMs need the *distance* they were built with (the structure is
        meaningless without it); SAMs rebuild their default Minkowski
        query distance from the stored order when none is supplied.
        """
        return self.cls.from_state(database, distance, state)


CODEC_REGISTRY: dict[str, IndexCodec] = {}


def register_codec(
    method: str,
    cls: type[AccessMethod],
    *,
    is_sam: bool,
    version: int = 1,
) -> IndexCodec:
    """Register (or replace) the codec for *method*."""
    codec = IndexCodec(method=method, cls=cls, is_sam=is_sam, version=version)
    CODEC_REGISTRY[method] = codec
    return codec


def registered_methods() -> list[str]:
    """Sorted registry names with a snapshot codec."""
    return sorted(CODEC_REGISTRY)


def codec_for(method: str) -> IndexCodec:
    """The codec registered for *method* (:class:`StorageError` if none)."""
    try:
        return CODEC_REGISTRY[method]
    except KeyError:
        raise StorageError(
            f"no snapshot codec registered for method {method!r}; "
            f"known methods: {registered_methods()}"
        ) from None


def codec_for_class(cls: type) -> IndexCodec:
    """The codec whose class is exactly *cls* (:class:`StorageError` if none)."""
    for codec in CODEC_REGISTRY.values():
        if codec.cls is cls:
            return codec
    raise StorageError(
        f"no snapshot codec registered for class {cls.__name__!r}; "
        "register one with repro.persistence.register_codec"
    )


#: State-layout versions that differ from the default 1.  pivot-table v2
#: added the ``bound`` mode marker and the optional ``pivot_pair`` matrix
#: (Ptolemaic lower bounds); v1 archives still load — absent keys mean the
#: classic triangle bound — but older libraries refuse v2 snapshots.
_METHOD_VERSIONS = {"pivot-table": 2}


def _register_defaults() -> None:
    from ..models.base import MAM_REGISTRY, SAM_REGISTRY

    for name, cls in MAM_REGISTRY.items():
        register_codec(name, cls, is_sam=False, version=_METHOD_VERSIONS.get(name, 1))
    for name, cls in SAM_REGISTRY.items():
        register_codec(name, cls, is_sam=True, version=_METHOD_VERSIONS.get(name, 1))


_register_defaults()
