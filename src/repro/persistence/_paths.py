"""Path normalization shared by every persistence entry point.

``np.savez_compressed`` silently appends ``.npz`` when the target path
lacks the suffix, while ``np.load`` does not — so ``save(x, "table")``
followed by ``load("table")`` used to fail with a confusing
``FileNotFoundError``.  Normalizing once, here, makes every save/load
pair in the package symmetric regardless of whether the caller spelled
the extension.
"""

from __future__ import annotations

import os

__all__ = ["NPZ_SUFFIX", "normalize_npz_path"]

NPZ_SUFFIX = ".npz"


def normalize_npz_path(path: "str | os.PathLike[str]") -> str:
    """Return *path* as a string guaranteed to end in ``.npz``."""
    text = os.fspath(path)
    if not text.endswith(NPZ_SUFFIX):
        text += NPZ_SUFFIX
    return text
