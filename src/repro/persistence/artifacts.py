"""Persistence of the library's flat numeric artifacts.

A production deployment of the QMap model stores, between sessions:

* the QFD matrix and its Cholesky factor (tiny — n x n, computed once
  "at the time of designing the similarity", paper Section 4),
* the transformed database (the expensive O(m n^2) pass),
* benchmark workloads (database, queries, matrix, repair provenance).

All artifacts are ``.npz`` archives with a ``kind`` marker and explicit
named arrays — no pickling of code objects.  Index structures are handled
by the snapshot layer (:mod:`repro.persistence.snapshots`); the pivot
table save/load functions here are backward-compatible shims over it.
"""

from __future__ import annotations

import os
import warnings
from typing import Callable

import numpy as np

from .._typing import ArrayLike
from ..core.qmap import QMap
from ..core.validation import PDRepair
from ..datasets.workloads import Workload
from ..exceptions import StorageError
from ..mam.base import DistancePort
from ..mam.pivot_table import PivotTable
from ._paths import normalize_npz_path
from .format import SNAPSHOT_KIND, check_kind, read_snapshot
from .snapshots import load_index, save_index

__all__ = [
    "load_pivot_table",
    "load_qmap",
    "load_transformed_database",
    "load_workload",
    "save_pivot_table",
    "save_qmap",
    "save_transformed_database",
    "save_workload",
]


def save_qmap(qmap: QMap, path: "str | os.PathLike[str]") -> None:
    """Persist a QMap: the QFD matrix A and its Cholesky factor B."""
    np.savez_compressed(
        normalize_npz_path(path),
        kind="qmap",
        matrix=qmap.qfd.matrix,
        cholesky=qmap.matrix,
    )


def load_qmap(path: "str | os.PathLike[str]") -> QMap:
    """Load a QMap saved by :func:`save_qmap`.

    The matrix is re-validated and re-factored (O(n^3), negligible); the
    stored factor is cross-checked against the fresh one so silent file
    corruption cannot produce a distance-distorting transform.
    """
    with np.load(normalize_npz_path(path)) as archive:
        check_kind(archive, "qmap", path)
        matrix = archive["matrix"]
        stored_factor = archive["cholesky"]
    qmap = QMap(matrix)
    if not np.allclose(qmap.matrix, stored_factor, rtol=1e-9, atol=1e-12):
        raise StorageError(f"{path!s}: stored Cholesky factor does not match matrix")
    return qmap


def save_workload(workload: Workload, path: "str | os.PathLike[str]") -> None:
    """Persist a benchmark workload (database, queries, matrix, repair)."""
    np.savez_compressed(
        normalize_npz_path(path),
        kind="workload",
        database=workload.database,
        queries=workload.queries,
        matrix=workload.matrix,
        shift=np.float64(workload.matrix_repair.shift),
        min_eigenvalue=np.float64(workload.matrix_repair.min_eigenvalue),
        name=np.str_(workload.name),
    )


def load_workload(path: "str | os.PathLike[str]") -> Workload:
    """Load a workload saved by :func:`save_workload`."""
    with np.load(normalize_npz_path(path)) as archive:
        check_kind(archive, "workload", path)
        matrix = archive["matrix"]
        repair = PDRepair(
            matrix=matrix,
            shift=float(archive["shift"]),
            min_eigenvalue=float(archive["min_eigenvalue"]),
        )
        return Workload(
            database=archive["database"],
            queries=archive["queries"],
            matrix=matrix,
            matrix_repair=repair,
            name=str(archive["name"]),
        )


def save_transformed_database(
    qmap: QMap, database: ArrayLike, path: "str | os.PathLike[str]"
) -> None:
    """Transform *database* and persist both spaces' representations.

    Stores the original rows, the mapped rows, and the matrix — everything
    needed to rebuild any MAM/SAM in O(n)-per-distance work, or to verify
    the mapping on load.
    """
    data = np.asarray(database, dtype=np.float64)
    mapped = qmap.transform_batch(data)
    np.savez_compressed(
        normalize_npz_path(path),
        kind="transformed-database",
        matrix=qmap.qfd.matrix,
        database=data,
        mapped=mapped,
    )


def load_transformed_database(
    path: "str | os.PathLike[str]", *, verify_rows: int = 8
) -> tuple[QMap, np.ndarray, np.ndarray]:
    """Load ``(qmap, database, mapped)`` from :func:`save_transformed_database`.

    A sample of *verify_rows* rows is re-transformed and compared against
    the stored mapping to catch corrupted or mismatched files.
    """
    with np.load(normalize_npz_path(path)) as archive:
        check_kind(archive, "transformed-database", path)
        matrix = archive["matrix"]
        database = archive["database"]
        mapped = archive["mapped"]
    qmap = QMap(matrix)
    if database.shape != mapped.shape:
        raise StorageError(f"{path!s}: database/mapped shape mismatch")
    sample = np.linspace(0, database.shape[0] - 1, min(verify_rows, database.shape[0]))
    for i in sample.astype(int):
        if not np.allclose(qmap.transform(database[i]), mapped[i], rtol=1e-9, atol=1e-9):
            raise StorageError(f"{path!s}: stored mapping disagrees with the matrix")
    return qmap, database, mapped


def save_pivot_table(table: PivotTable, path: "str | os.PathLike[str]") -> None:
    """Persist a LAESA pivot table.

    .. deprecated::
        Thin shim over :func:`repro.persistence.save_index`, which works
        for every registered access method; new archives are written in
        the index-snapshot format (still pickle-free ``.npz``).
    """
    warnings.warn(
        "save_pivot_table is deprecated; use repro.persistence.save_index",
        DeprecationWarning,
        stacklevel=2,
    )
    save_index(table, path)


def load_pivot_table(
    path: "str | os.PathLike[str]", distance: DistancePort | Callable
) -> PivotTable:
    """Load a pivot table saved by :func:`save_pivot_table`.

    Reads both the current index-snapshot format and the legacy
    ``kind="pivot-table"`` archives.  *distance* must be the same function
    the table was built with; a sample entry is re-evaluated to catch
    obvious mismatches.

    .. deprecated::
        Thin shim over :func:`repro.persistence.load_index`.
    """
    warnings.warn(
        "load_pivot_table is deprecated; use repro.persistence.load_index",
        DeprecationWarning,
        stacklevel=2,
    )
    target = normalize_npz_path(path)
    with np.load(target) as archive:
        kind = str(archive["kind"]) if "kind" in archive else "<missing>"
        if kind == "pivot-table":
            instance = PivotTable.from_parts(
                archive["database"],
                distance,
                [int(i) for i in archive["pivot_indices"]],
                archive["table"],
            )
        elif kind != SNAPSHOT_KIND:
            raise StorageError(
                f"{path!s} holds a {kind!r} artifact, expected 'pivot-table'"
            )
    if kind == SNAPSHOT_KIND:
        snapshot = read_snapshot(target)
        if snapshot.method != "pivot-table":
            raise StorageError(
                f"{path!s} holds a {snapshot.method!r} index snapshot, "
                "expected 'pivot-table'"
            )
        instance = load_index(snapshot, distance, verify=False)
    try:
        instance._verify_state_probe()
    except StorageError as exc:
        raise StorageError(f"{path!s}: {exc}") from None
    return instance  # type: ignore[return-value]
