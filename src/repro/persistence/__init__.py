"""Persistence: flat artifacts plus pickle-free index snapshots.

Two layers:

* :mod:`~repro.persistence.artifacts` — the original flat ``.npz``
  artifact store (QMap matrices, workloads, transformed databases), with
  the historical ``save_pivot_table``/``load_pivot_table`` entry points
  kept as shims.
* :mod:`~repro.persistence.snapshots` — versioned structural snapshots
  of *every* registered MAM and SAM through a per-method codec registry:
  ``save_index``/``load_index`` round-trip any built index bit-identically
  with zero distance computations on load.

Everything importable from the old flat ``repro.persistence`` module
remains importable from here.
"""

from ._paths import NPZ_SUFFIX, normalize_npz_path
from .artifacts import (
    load_pivot_table,
    load_qmap,
    load_transformed_database,
    load_workload,
    save_pivot_table,
    save_qmap,
    save_transformed_database,
    save_workload,
)
from .codecs import (
    CODEC_REGISTRY,
    IndexCodec,
    codec_for,
    codec_for_class,
    register_codec,
    registered_methods,
)
from .format import (
    FORMAT_VERSION,
    SNAPSHOT_KIND,
    IndexSnapshot,
    SnapshotProbe,
    probe_snapshot,
    read_snapshot,
    write_snapshot,
)
from .snapshots import load_index, save_index

__all__ = [
    # legacy artifact API
    "save_qmap",
    "load_qmap",
    "save_workload",
    "load_workload",
    "save_transformed_database",
    "load_transformed_database",
    "save_pivot_table",
    "load_pivot_table",
    # snapshot API
    "save_index",
    "load_index",
    "IndexSnapshot",
    "SnapshotProbe",
    "probe_snapshot",
    "read_snapshot",
    "write_snapshot",
    "SNAPSHOT_KIND",
    "FORMAT_VERSION",
    # codec registry
    "IndexCodec",
    "CODEC_REGISTRY",
    "register_codec",
    "registered_methods",
    "codec_for",
    "codec_for_class",
    # paths
    "NPZ_SUFFIX",
    "normalize_npz_path",
]
