"""Shared type aliases and small array-validation helpers.

The helpers centralize the coercion of user-supplied array-likes into the
canonical ``float64`` numpy representations used across the library, so the
individual modules can stay focused on the algorithms.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from .exceptions import DimensionMismatchError, MatrixError

__all__ = [
    "ArrayLike",
    "Vector",
    "Matrix",
    "as_vector",
    "as_vector_batch",
    "as_square_matrix",
]

ArrayLike = Union[Sequence[float], np.ndarray]
Vector = np.ndarray
Matrix = np.ndarray


def as_vector(data: ArrayLike, dim: int | None = None, *, name: str = "vector") -> Vector:
    """Coerce *data* to a 1-D ``float64`` array, optionally checking its length.

    Parameters
    ----------
    data:
        Any sequence of numbers or numpy array.
    dim:
        Expected dimensionality; ``None`` skips the check.
    name:
        Identifier used in error messages.

    Raises
    ------
    DimensionMismatchError
        If the array is not 1-D or its length differs from *dim*.
    """
    arr = np.asarray(data, dtype=np.float64)
    if arr.ndim != 1:
        raise DimensionMismatchError(f"{name} must be 1-D, got shape {arr.shape}")
    if dim is not None and arr.shape[0] != dim:
        raise DimensionMismatchError(
            f"{name} has dimensionality {arr.shape[0]}, expected {dim}"
        )
    return arr


def as_vector_batch(data: ArrayLike, dim: int | None = None, *, name: str = "batch") -> Matrix:
    """Coerce *data* to a 2-D ``(m, n)`` ``float64`` array of row vectors.

    A single 1-D vector is promoted to a one-row batch.
    """
    arr = np.asarray(data, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise DimensionMismatchError(f"{name} must be 2-D, got shape {arr.shape}")
    if dim is not None and arr.shape[1] != dim:
        raise DimensionMismatchError(
            f"{name} has dimensionality {arr.shape[1]}, expected {dim}"
        )
    return arr


def as_square_matrix(data: ArrayLike, *, name: str = "matrix") -> Matrix:
    """Coerce *data* to a square 2-D ``float64`` array.

    Raises
    ------
    MatrixError
        If the array is not square or contains non-finite entries.
    """
    arr = np.asarray(data, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise MatrixError(f"{name} must be square, got shape {arr.shape}")
    if not np.isfinite(arr).all():
        raise MatrixError(f"{name} contains non-finite entries")
    return arr
