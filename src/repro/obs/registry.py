"""Labeled metric instruments behind a thread-safe registry.

The paper's whole argument is a *cost accounting* argument — distance
computations (Tables 1-2), filter hit rates, page I/O — yet those
quantities used to live in four ad-hoc sinks.  This module gives them one
model: named, labeled instruments registered in a
:class:`MetricsRegistry`:

* :class:`Counter` — monotonically increasing totals (distance
  evaluations, filter hits, nodes visited);
* :class:`Gauge` — point-in-time values that may move both ways (tree
  height, cache hit ratio, cholesky-cache occupancy);
* :class:`Histogram` — log-bucketed distributions (per-query seconds,
  evaluations per query, span durations).

A process-wide *active registry* (default: the :data:`NULL_REGISTRY`)
decouples instrumentation points from wiring: hot paths ask
:func:`get_registry` and, when observability is off, hit only a single
attribute check — the disabled path performs no allocation, no locking,
and (critically for the count-baseline fixtures) never evaluates a
distance.

This module deliberately imports nothing from the rest of the library —
the same convention as :mod:`repro.engine.trace` — so every layer,
including :mod:`repro.mam`, can be instrumented without import cycles.
The layering rule is enforced by a ruff ``flake8-tidy-imports`` ban (see
``pyproject.toml``).
"""

from __future__ import annotations

import bisect
import math
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramState",
    "MetricSample",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
    "use_registry",
]

#: Canonical label-set key: sorted ``(name, value)`` pairs.
LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


@dataclass(frozen=True)
class MetricSample:
    """One exported data point of an instrument.

    ``value`` carries counter totals and gauge readings; histogram samples
    instead populate ``histogram`` with the full bucket state.
    """

    name: str
    kind: str
    labels: dict[str, str]
    value: float = 0.0
    histogram: "HistogramState | None" = None


@dataclass(frozen=True)
class HistogramState:
    """Immutable snapshot of one histogram label-set.

    ``bounds`` are the inclusive upper bounds of the log-spaced buckets
    (the last implicit bucket is ``+Inf``); ``counts`` are per-bucket
    (non-cumulative) observation counts of the same length plus one for
    the overflow bucket.
    """

    bounds: tuple[float, ...]
    counts: tuple[int, ...]
    count: int
    total: float

    def quantile(self, q: float) -> float:
        """Estimate the *q*-quantile from the bucket counts.

        Uses nearest-rank placement into the cumulative bucket counts and
        linear interpolation inside the containing bucket, anchored at
        its **upper edge** (the ``le`` bound Prometheus exports): the
        estimate is the lower edge plus the fraction of the bucket's
        observations at or below the rank.  The first bucket's lower edge
        is taken as 0.0 (all recorded quantities are non-negative).

        Error bound: the true quantile lies somewhere in the same bucket,
        so the absolute error is at most one bucket width.  With the
        default power-of-two grid (``2^-20 .. 2^20``) bucket edges are a
        factor of 2 apart, bounding the estimate within one octave of the
        truth — i.e. relative error < 2x, and typically far less since
        the interpolation splits the bucket.  Observations above the last
        bound fall in the overflow bucket and are reported as the last
        finite bound (an underestimate).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile q must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        cumulative = 0
        for pos, bucket_count in enumerate(self.counts):
            if not bucket_count:
                continue
            below = cumulative
            cumulative += bucket_count
            if cumulative >= rank:
                if pos >= len(self.bounds):
                    return self.bounds[-1]
                upper = self.bounds[pos]
                lower = self.bounds[pos - 1] if pos > 0 else min(0.0, upper)
                fraction = (rank - below) / bucket_count
                return lower + fraction * (upper - lower)
        return self.bounds[-1]  # pragma: no cover - count guarantees a hit


class _Instrument:
    """Shared label-keyed storage; subclasses define the write verbs."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._values: dict[LabelKey, float] = {}

    def value(self, **labels: object) -> float:
        """Current value for one label set (0 when never written)."""
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def samples(self) -> list[MetricSample]:
        """One :class:`MetricSample` per label set, in insertion order."""
        with self._lock:
            items = list(self._values.items())
        return [
            MetricSample(self.name, self.kind, dict(key), value)
            for key, value in items
        ]


class Counter(_Instrument):
    """A monotonically increasing total, optionally labeled."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add *amount* (must be >= 0) to the labeled total."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease ({amount})")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount


class Gauge(_Instrument):
    """A point-in-time value that may move in both directions."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        """Overwrite the labeled value."""
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Shift the labeled value by *amount* (negative is fine)."""
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount


#: Default log-bucket grid: powers of two from ~1 microsecond to ~1 Mi.
#: Covers both second-scale durations and count-scale distributions with
#: constant relative resolution, the natural grid for quantities whose
#: interesting structure spans orders of magnitude.
_DEFAULT_BOUNDS: tuple[float, ...] = tuple(2.0**e for e in range(-20, 21))


class Histogram(_Instrument):
    """Log-bucketed distribution of observed values.

    Buckets are fixed at construction (default: powers of two spanning
    ``2^-20 .. 2^20`` plus an overflow bucket), so merging and exporting
    need no re-binning; the paper-style tables read the count/sum pair,
    Prometheus reads the cumulative buckets.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        *,
        bounds: Sequence[float] | None = None,
    ) -> None:
        super().__init__(name, help)
        grid = tuple(float(b) for b in (bounds or _DEFAULT_BOUNDS))
        if list(grid) != sorted(grid) or len(set(grid)) != len(grid):
            raise ValueError(f"histogram {name!r} bounds must strictly increase")
        self.bounds = grid
        self._counts: dict[LabelKey, list[int]] = {}
        self._totals: dict[LabelKey, tuple[int, float]] = {}

    def observe(self, value: float, **labels: object) -> None:
        """Record one observation."""
        value = float(value)
        pos = bisect.bisect_left(self.bounds, value)
        key = _label_key(labels)
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = [0] * (len(self.bounds) + 1)
                self._counts[key] = counts
            counts[pos] += 1
            count, total = self._totals.get(key, (0, 0.0))
            self._totals[key] = (count + 1, total + value)

    def state(self, **labels: object) -> HistogramState:
        """Snapshot of one label set (empty state when never observed)."""
        key = _label_key(labels)
        with self._lock:
            counts = tuple(self._counts.get(key, [0] * (len(self.bounds) + 1)))
            count, total = self._totals.get(key, (0, 0.0))
        return HistogramState(self.bounds, counts, count, total)

    def merge(
        self,
        counts: Sequence[int],
        count: int,
        total: float,
        **labels: object,
    ) -> None:
        """Add another histogram's per-bucket *counts* to one label set.

        Exact (no re-binning): both sides must share this histogram's
        bucket grid — the default grid everywhere in this library, which
        is why worker-process deltas merge losslessly.
        """
        added = [int(c) for c in counts]
        if len(added) != len(self.bounds) + 1:
            raise ValueError(
                f"histogram {self.name!r}: cannot merge {len(added)} buckets "
                f"into a {len(self.bounds) + 1}-bucket grid"
            )
        key = _label_key(labels)
        with self._lock:
            mine = self._counts.get(key)
            if mine is None:
                mine = [0] * (len(self.bounds) + 1)
                self._counts[key] = mine
            for pos, value in enumerate(added):
                mine[pos] += value
            have_count, have_total = self._totals.get(key, (0, 0.0))
            self._totals[key] = (have_count + int(count), have_total + float(total))

    def samples(self) -> list[MetricSample]:
        with self._lock:
            keys = list(self._counts)
        out = []
        for key in keys:
            out.append(
                MetricSample(
                    self.name,
                    self.kind,
                    dict(key),
                    histogram=self.state(**dict(key)),
                )
            )
        return out


@dataclass
class SpanRecord:
    """One completed :func:`repro.obs.spans.span` block.

    Defined here (not in :mod:`repro.obs.spans`) because the registry
    stores completed spans for the JSON-lines exporter.
    """

    name: str
    seconds: float = 0.0
    depth: int = 0
    parent: str | None = None
    status: str = "ok"
    labels: dict[str, str] = field(default_factory=dict)
    #: :func:`time.perf_counter` reading when the span opened (0.0 for
    #: records predating the timeline exporter); only differences between
    #: spans of one process are meaningful.
    start: float = 0.0
    #: :func:`threading.get_ident` of the thread that ran the span.
    thread: int = 0
    #: :func:`os.getpid` of the process that ran the span (0 for records
    #: predating cross-process propagation); worker-process spans merged
    #: back by the engine keep their worker pid, giving the timeline
    #: exporter its per-process lanes.
    pid: int = 0
    #: Trace-context correlation ids (see :mod:`repro.obs.context`);
    #: empty when no :class:`TraceContext` was active.
    trace_id: str = ""
    span_id: str = ""
    parent_span_id: str = ""


class MetricsRegistry:
    """Thread-safe, ordered collection of named instruments.

    Instrument accessors are get-or-create and idempotent: two call sites
    asking for the same counter name share the instrument, and asking for
    an existing name with a different instrument kind raises.
    """

    #: Hot paths test this single attribute to skip all metric work.
    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, _Instrument] = {}
        self._spans: list[SpanRecord] = []

    def _get_or_create(self, cls: type, name: str, help: str, **kwargs) -> _Instrument:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise ValueError(
                        f"metric {name!r} is already registered as a "
                        f"{existing.kind}, not a {cls.kind}"
                    )
                return existing
            instrument = cls(name, help, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the named :class:`Counter`."""
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the named :class:`Gauge`."""
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", *, bounds: Sequence[float] | None = None
    ) -> Histogram:
        """Get or create the named :class:`Histogram`."""
        return self._get_or_create(Histogram, name, help, bounds=bounds)

    def record_span(self, record: SpanRecord) -> None:
        """Store a completed span (called by :func:`repro.obs.spans.span`)."""
        with self._lock:
            self._spans.append(record)

    @property
    def spans(self) -> list[SpanRecord]:
        """Completed spans, in completion order."""
        with self._lock:
            return list(self._spans)

    def instruments(self) -> list[_Instrument]:
        """The registered instruments, in registration order."""
        with self._lock:
            return list(self._instruments.values())

    def snapshot(self) -> list[MetricSample]:
        """Every sample of every instrument, registration-ordered."""
        out: list[MetricSample] = []
        for instrument in self.instruments():
            out.extend(instrument.samples())
        return out

    def clear(self) -> None:
        """Drop all instruments and spans."""
        with self._lock:
            self._instruments.clear()
            self._spans.clear()

    def dump_state(self) -> dict:
        """Picklable dump of every instrument value and completed span.

        The cross-process delta format: a worker process runs its chunk
        against a *fresh* registry, so the full dump **is** the delta,
        and the parent folds it in with :meth:`merge_state`.  Counters
        and histograms merge by addition (exact — histogram grids are
        fixed at construction), gauges by last-write-wins, spans by
        append.
        """
        counters: list[tuple] = []
        gauges: list[tuple] = []
        histograms: list[tuple] = []
        for instrument in self.instruments():
            if isinstance(instrument, Histogram):
                with instrument._lock:
                    items = [
                        (
                            key,
                            list(counts),
                            *instrument._totals.get(key, (0, 0.0)),
                        )
                        for key, counts in instrument._counts.items()
                    ]
                histograms.append(
                    (instrument.name, instrument.help, instrument.bounds, items)
                )
                continue
            with instrument._lock:
                values = list(instrument._values.items())
            target = counters if isinstance(instrument, Counter) else gauges
            target.append((instrument.name, instrument.help, values))
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "spans": self.spans,
        }

    def merge_state(self, state: Mapping) -> None:
        """Fold a :meth:`dump_state` delta from another registry into this one."""
        if not self.enabled:
            return
        for name, help_text, values in state.get("counters", ()):
            counter = self.counter(name, help_text)
            for key, value in values:
                if value:
                    counter.inc(value, **dict(key))
        for name, help_text, values in state.get("gauges", ()):
            gauge = self.gauge(name, help_text)
            for key, value in values:
                gauge.set(value, **dict(key))
        for name, help_text, bounds, items in state.get("histograms", ()):
            histogram = self.histogram(name, help_text, bounds=bounds)
            for key, counts, count, total in items:
                histogram.merge(counts, count, total, **dict(key))
        for record in state.get("spans", ()):
            self.record_span(record)


class _NullCounter(Counter):
    def inc(self, amount: float = 1.0, **labels: object) -> None:
        pass


class _NullGauge(Gauge):
    def set(self, value: float, **labels: object) -> None:
        pass

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        pass


class _NullHistogram(Histogram):
    def observe(self, value: float, **labels: object) -> None:
        pass


class NullRegistry(MetricsRegistry):
    """The disabled registry: every verb is a no-op.

    Instrument accessors hand back shared do-nothing singletons, so code
    written against a live registry runs unchanged — and adds near-zero
    overhead — when observability is off.  This is what guarantees the
    bit-identical count baseline: with the null registry active, no
    instrumentation path allocates, locks, or evaluates anything.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = _NullCounter("null")
        self._null_gauge = _NullGauge("null")
        self._null_histogram = _NullHistogram("null")

    def counter(self, name: str, help: str = "") -> Counter:
        return self._null_counter

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._null_gauge

    def histogram(
        self, name: str, help: str = "", *, bounds: Sequence[float] | None = None
    ) -> Histogram:
        return self._null_histogram

    def record_span(self, record: SpanRecord) -> None:
        pass


#: The process-wide disabled registry (the default active registry).
NULL_REGISTRY = NullRegistry()

# A plain module global (not a contextvar): worker threads spawned by the
# batch engine must see the same registry as the thread that activated it,
# and contextvars do not propagate into ThreadPoolExecutor workers.
_active: MetricsRegistry = NULL_REGISTRY
_active_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The active registry (the :data:`NULL_REGISTRY` unless one was set)."""
    return _active


def set_registry(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Activate *registry* process-wide (``None`` restores the null one).

    Returns the previously active registry so callers can restore it.
    """
    global _active
    with _active_lock:
        previous = _active
        _active = registry if registry is not None else NULL_REGISTRY
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry | None) -> Iterator[MetricsRegistry]:
    """Activate *registry* for the duration of the block."""
    previous = set_registry(registry)
    try:
        yield get_registry()
    finally:
        set_registry(previous)
