"""Process memory measurement for the out-of-core experiments.

The scale-up benchmark's claim is about *memory*, not only speed: the
1M x 512-d testbed must run with a peak resident set far below the ~4 GB
a heap-resident float64 copy of the database would cost.  This module is
the one place that reads the process high-water mark, so benches, build
metrics and reports all agree on the number.

``resource.getrusage`` is the primary source (``ru_maxrss`` — reported in
kilobytes on Linux, bytes on macOS).  Where the :mod:`resource` module is
unavailable, a running :mod:`tracemalloc` session is used instead; note
that tracemalloc only sees Python-level allocations (not mapped pages),
so the fallback under-reports — callers can tell which source produced a
number via :func:`peak_rss_source`.
"""

from __future__ import annotations

import os
import sys
import threading

from .registry import MetricsRegistry, get_registry

try:  # pragma: no cover - platform dependent
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX
    _resource = None

__all__ = [
    "PEAK_RSS",
    "KERNEL_BLOCK_ROWS",
    "peak_rss_bytes",
    "peak_rss_source",
    "current_rss_bytes",
    "record_memory",
    "RssSampler",
]

#: Gauge of the process peak resident set size in bytes (high-water mark).
PEAK_RSS = "repro_peak_rss_bytes"

#: Gauge of the blocked-kernel tile height used by a build (rows).
KERNEL_BLOCK_ROWS = "repro_kernel_block_rows"


def peak_rss_source() -> str:
    """Which measurement backs :func:`peak_rss_bytes` on this platform."""
    if _resource is not None:
        return "getrusage"
    import tracemalloc

    return "tracemalloc" if tracemalloc.is_tracing() else "unavailable"


def peak_rss_bytes() -> int:
    """The process's peak resident set size in bytes (0 when unmeasurable).

    A high-water mark: it never decreases over the process lifetime, so
    phase-accurate measurements run each phase in a fresh (forked)
    process — see ``benchmarks/bench_scale_1m.py``.
    """
    if _resource is not None:
        peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
        if sys.platform == "darwin":  # pragma: no cover - macOS reports bytes
            return int(peak)
        return int(peak) * 1024
    import tracemalloc  # pragma: no cover - exercised only without resource

    if tracemalloc.is_tracing():  # pragma: no cover
        return int(tracemalloc.get_traced_memory()[1])
    return 0  # pragma: no cover


def current_rss_bytes() -> int:
    """The process's *current* resident set size in bytes (0 unknown).

    Reads ``/proc/self/statm`` (Linux); unlike :func:`peak_rss_bytes`
    this is an instantaneous reading, so a sampler polling it can catch
    transient peaks the phase-boundary high-water reads would place in
    the wrong phase.  On platforms without procfs it returns 0 and
    samplers fall back to the high-water mark.
    """
    try:
        with open("/proc/self/statm", "rb") as handle:
            fields = handle.read().split()
        pages = int(fields[1])
        return pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, IndexError, ValueError):  # pragma: no cover - non-Linux
        return 0


class RssSampler:
    """Background daemon thread sampling resident memory at an interval.

    :func:`record_memory` reads the RSS high-water mark point-in-time at
    phase boundaries, so a transient peak *inside* a phase is attributed
    to whichever phase next asks.  A sampler owns the window instead: it
    polls :func:`current_rss_bytes` every ``interval`` seconds between
    :meth:`start` and :meth:`stop`, tracks the maximum it saw, and
    (when a registry is live) keeps the :data:`PEAK_RSS` gauge fresh so
    a mid-phase ``/metrics`` scrape reports memory, not just counts.

    With the null registry active the sampler spawns no thread at all —
    the non-interference invariant extends to memory sampling.  Use as a
    context manager::

        with RssSampler(0.2, model="qfd", method="mtree", phase="build") as s:
            ...  # build
        print(s.peak_seen, s.samples)
    """

    def __init__(
        self,
        interval: float = 0.2,
        *,
        registry: MetricsRegistry | None = None,
        model: str = "",
        method: str = "",
        phase: str = "build",
    ) -> None:
        if interval <= 0.0:
            raise ValueError(f"sampling interval must be positive, got {interval}")
        self.interval = float(interval)
        self._registry = registry
        self._labels = {"model": model, "method": method, "phase": phase}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        self._peak = 0
        self._samples = 0

    @property
    def peak_seen(self) -> int:
        """Largest resident set observed by any sample, in bytes."""
        with self._lock:
            return self._peak

    @property
    def samples(self) -> int:
        """Number of samples taken so far."""
        with self._lock:
            return self._samples

    def sample(self) -> int:
        """Take one sample now (also used by the background thread)."""
        rss = current_rss_bytes() or peak_rss_bytes()
        with self._lock:
            self._peak = max(self._peak, rss)
            self._samples += 1
            peak = self._peak
        reg = self._registry if self._registry is not None else get_registry()
        if reg.enabled and peak:
            reg.gauge(
                PEAK_RSS, "process peak resident set size in bytes (high-water mark)"
            ).set(max(peak, peak_rss_bytes()), **self._labels)
        return rss

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample()

    def start(self) -> "RssSampler":
        if self._thread is not None:
            return self
        reg = self._registry if self._registry is not None else get_registry()
        if not reg.enabled:
            return self  # inert: no thread, no samples, no perturbation
        self._stop.clear()
        self.sample()  # one immediate baseline sample
        self._thread = threading.Thread(
            target=self._run, name="repro-rss-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> int:
        """Stop sampling (taking one final sample) and return the peak."""
        thread = self._thread
        self._thread = None
        if thread is not None:
            self._stop.set()
            thread.join(timeout=5.0)
            self.sample()
        return self.peak_seen

    def __enter__(self) -> "RssSampler":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def record_memory(
    *,
    registry: MetricsRegistry | None = None,
    model: str = "",
    method: str = "",
    phase: str = "build",
    block_rows: int | None = None,
) -> None:
    """Record the current peak RSS (and the kernel tile size, if blocked).

    A no-op with the null registry.  Labels mirror the distance counters
    so one query joins memory against evaluations per model/method.
    """
    reg = registry if registry is not None else get_registry()
    if not reg.enabled:
        return
    peak = peak_rss_bytes()
    if peak:
        reg.gauge(
            PEAK_RSS, "process peak resident set size in bytes (high-water mark)"
        ).set(peak, model=model, method=method, phase=phase)
    if block_rows:
        reg.gauge(
            KERNEL_BLOCK_ROWS, "blocked Gram kernel tile height in rows"
        ).set(int(block_rows), model=model, method=method)
