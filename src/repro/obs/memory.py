"""Process memory measurement for the out-of-core experiments.

The scale-up benchmark's claim is about *memory*, not only speed: the
1M x 512-d testbed must run with a peak resident set far below the ~4 GB
a heap-resident float64 copy of the database would cost.  This module is
the one place that reads the process high-water mark, so benches, build
metrics and reports all agree on the number.

``resource.getrusage`` is the primary source (``ru_maxrss`` — reported in
kilobytes on Linux, bytes on macOS).  Where the :mod:`resource` module is
unavailable, a running :mod:`tracemalloc` session is used instead; note
that tracemalloc only sees Python-level allocations (not mapped pages),
so the fallback under-reports — callers can tell which source produced a
number via :func:`peak_rss_source`.
"""

from __future__ import annotations

import sys

from .registry import MetricsRegistry, get_registry

try:  # pragma: no cover - platform dependent
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX
    _resource = None

__all__ = [
    "PEAK_RSS",
    "KERNEL_BLOCK_ROWS",
    "peak_rss_bytes",
    "peak_rss_source",
    "record_memory",
]

#: Gauge of the process peak resident set size in bytes (high-water mark).
PEAK_RSS = "repro_peak_rss_bytes"

#: Gauge of the blocked-kernel tile height used by a build (rows).
KERNEL_BLOCK_ROWS = "repro_kernel_block_rows"


def peak_rss_source() -> str:
    """Which measurement backs :func:`peak_rss_bytes` on this platform."""
    if _resource is not None:
        return "getrusage"
    import tracemalloc

    return "tracemalloc" if tracemalloc.is_tracing() else "unavailable"


def peak_rss_bytes() -> int:
    """The process's peak resident set size in bytes (0 when unmeasurable).

    A high-water mark: it never decreases over the process lifetime, so
    phase-accurate measurements run each phase in a fresh (forked)
    process — see ``benchmarks/bench_scale_1m.py``.
    """
    if _resource is not None:
        peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
        if sys.platform == "darwin":  # pragma: no cover - macOS reports bytes
            return int(peak)
        return int(peak) * 1024
    import tracemalloc  # pragma: no cover - exercised only without resource

    if tracemalloc.is_tracing():  # pragma: no cover
        return int(tracemalloc.get_traced_memory()[1])
    return 0  # pragma: no cover


def record_memory(
    *,
    registry: MetricsRegistry | None = None,
    model: str = "",
    method: str = "",
    phase: str = "build",
    block_rows: int | None = None,
) -> None:
    """Record the current peak RSS (and the kernel tile size, if blocked).

    A no-op with the null registry.  Labels mirror the distance counters
    so one query joins memory against evaluations per model/method.
    """
    reg = registry if registry is not None else get_registry()
    if not reg.enabled:
        return
    peak = peak_rss_bytes()
    if peak:
        reg.gauge(
            PEAK_RSS, "process peak resident set size in bytes (high-water mark)"
        ).set(peak, model=model, method=method, phase=phase)
    if block_rows:
        reg.gauge(
            KERNEL_BLOCK_ROWS, "blocked Gram kernel tile height in rows"
        ).set(int(block_rows), model=model, method=method)
