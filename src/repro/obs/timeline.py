"""Chrome trace-event timelines from spans and traversal events.

Spans and EXPLAIN plans already carry everything a flame view needs —
what phase ran, for how long, on which thread, and how many distance
evaluations it charged.  This module assembles them into the Chrome
trace-event JSON format (the ``traceEvents`` array of ``ph: "B"/"E"/"X"``
records with microsecond ``ts``/``dur``), which Perfetto and
``chrome://tracing`` load directly:

* :func:`span_trace_events` — each completed
  :class:`~repro.obs.registry.SpanRecord` becomes one complete
  (``"X"``) slice.  ``ts`` comes from the span's
  :func:`~time.perf_counter` start (normalized so the earliest span sits
  at 0), ``tid`` from the worker thread that ran it, so a threaded batch
  renders as parallel lanes of ``query/batch/...`` slices.
* :func:`plan_trace_events` — one query's traversal from an
  :class:`~repro.obs.explain.ExplainPlan`.  Traversal events carry a
  sequence number, not a clock (recording one would perturb the counts
  the plan certifies), so the timeline uses **1 tick = 1 µs of virtual
  time**: a node's slice spans from its ``node_enter`` to the next
  node's — exactly the interval the buffer attributes charges to — and
  the slice ``args`` carry the node's charged evaluation deltas, lower
  bound checks and prunes from the exact per-node aggregates.

:func:`chrome_trace` merges both into one JSON object (spans and
traversal under separate ``pid`` lanes, with ``"M"`` metadata records
naming them); :func:`write_timeline` writes it to disk.  Exposed on the
CLI as ``repro trace export`` and ``--timeline-out`` on
``query``/``explain``.

Layering: consumes only sibling :mod:`repro.obs` data structures (duck
typed — a plan's ``to_dict()`` output works as well as the object), no
imports from :mod:`repro.mam` / :mod:`repro.models`.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterable, Mapping

from .registry import SpanRecord

__all__ = [
    "span_trace_events",
    "plan_trace_events",
    "chrome_trace",
    "write_timeline",
]

#: Synthetic process ids keeping the two lanes separate in the viewer.
SPAN_PID_OFFSET = 0
PLAN_PID_OFFSET = 1_000_000


def _meta(pid: int, name: str) -> dict[str, Any]:
    return {
        "name": "process_name",
        "ph": "M",
        "pid": pid,
        "tid": 0,
        "args": {"name": name},
    }


def span_trace_events(
    spans: Iterable[SpanRecord], *, pid: int | None = None
) -> list[dict[str, Any]]:
    """Render completed spans as complete (``"X"``) trace slices.

    Timestamps are the spans' ``perf_counter`` starts shifted so the
    earliest span is at ``ts=0``; spans recorded before the ``start``
    field existed (all-zero starts) are laid out back-to-back instead so
    old captures still render.

    A span that ran in another process (its record carries the worker's
    ``pid``, merged back by the batch engine) keeps that pid, so a
    ``--executor process`` batch renders one lane per worker process.
    ``perf_counter`` is CLOCK_MONOTONIC-backed and system-wide on Linux,
    so parent and worker starts share one origin.  Trace-context ids
    travel in the slice ``args`` for request-level filtering.
    """
    records = list(spans)
    if pid is None:
        pid = os.getpid()
    timed = [r for r in records if r.start > 0.0]
    origin = min((r.start for r in timed), default=0.0)
    events: list[dict[str, Any]] = []
    fallback_ts = 0.0
    for record in records:
        if record.start > 0.0:
            ts = (record.start - origin) * 1e6
        else:
            ts = fallback_ts
            fallback_ts += record.seconds * 1e6
        args: dict[str, Any] = {"depth": record.depth, "status": record.status}
        if record.parent:
            args["parent"] = record.parent
        if record.trace_id:
            args["trace_id"] = record.trace_id
        if record.span_id:
            args["span_id"] = record.span_id
        if record.parent_span_id:
            args["parent_span_id"] = record.parent_span_id
        args.update(record.labels)
        events.append(
            {
                "name": record.name,
                "cat": "span",
                "ph": "X",
                "ts": ts,
                "dur": record.seconds * 1e6,
                # Spans recorded by this process land on the requested
                # lane; spans merged back from worker processes keep
                # their worker pid so each worker gets its own lane.
                "pid": record.pid if record.pid and record.pid != os.getpid() else pid,
                "tid": record.thread or 0,
                "args": args,
            }
        )
    return events


def _plan_dict(plan: Any) -> Mapping[str, Any]:
    to_dict = getattr(plan, "to_dict", None)
    return to_dict() if callable(to_dict) else plan


def _walk_tree(node: Mapping[str, Any], out: dict[int, Mapping[str, Any]]) -> None:
    out[int(node["token"])] = node
    for child in node.get("children", ()):
        _walk_tree(child, out)


_NODE_ARG_KEYS = (
    "charged_calls",
    "charged_rows",
    "lb_checks",
    "pruned",
    "candidates",
    "results",
)


def plan_trace_events(
    plan: Any, *, pid: int | None = None, tid: int = 1
) -> list[dict[str, Any]]:
    """Render one query's traversal as trace events (1 seq tick = 1 µs).

    Accepts an :class:`~repro.obs.explain.ExplainPlan` or its
    ``to_dict()`` form.  A ``B``/``E`` pair brackets the whole query;
    each recorded ``node_enter`` becomes an ``X`` slice lasting until the
    next node entry (the interval the event buffer attributes charges
    to), with the node's exact aggregates — including the charged
    distance-evaluation deltas — in ``args``.  Nodes whose enter event
    was dropped by the buffer's cap/sampling are absent from the
    timeline (the exact totals still live in the wrapper's ``args``).
    """
    data = _plan_dict(plan)
    if pid is None:
        pid = os.getpid() + PLAN_PID_OFFSET
    events = list(data.get("events", ()))
    enters = [e for e in events if e.get("kind") == "node_enter"]
    nodes: dict[int, Mapping[str, Any]] = {}
    _walk_tree(data["tree"], nodes)
    last_seq = max((int(e["seq"]) for e in events), default=0)
    totals = dict(data.get("totals", {}))
    kind = data.get("kind", "query")
    parameter = data.get("parameter", 0.0)
    if kind == "knn":
        title = f"knn(k={int(parameter)})"
    elif kind == "range":
        title = f"range(r={parameter:g})"
    else:
        title = str(kind)
    name = f"{title} {data.get('method', '?')}/{data.get('model', '?')}"
    common = {"cat": "traversal", "pid": pid, "tid": tid}
    out: list[dict[str, Any]] = [
        {
            "name": name,
            "ph": "B",
            "ts": 0.0,
            "args": {
                **totals,
                "events_dropped": data.get("events_dropped", 0),
                "events_sampled_out": data.get("events_sampled_out", 0),
            },
            **common,
        }
    ]
    for position, event in enumerate(enters):
        start = int(event["seq"])
        if position + 1 < len(enters):
            end = int(enters[position + 1]["seq"])
        else:
            end = last_seq + 1
        node = nodes.get(int(event["node"]), {})
        args = {key: node[key] for key in _NODE_ARG_KEYS if node.get(key)}
        args["token"] = int(event["node"])
        out.append(
            {
                "name": event.get("label") or node.get("label") or f"node {event['node']}",
                "ph": "X",
                "ts": float(start),
                "dur": float(max(end - start, 1)),
                "args": args,
                **common,
            }
        )
    out.append({"name": name, "ph": "E", "ts": float(last_seq + 1), "args": {}, **common})
    return out


def chrome_trace(
    *,
    spans: Iterable[SpanRecord] | None = None,
    plan: Any = None,
    pid: int | None = None,
) -> dict[str, Any]:
    """Assemble spans and/or one plan into a Chrome trace-event document.

    The result is the JSON-object form (``{"traceEvents": [...]}``)
    Perfetto and ``chrome://tracing`` open directly.  Span slices and
    traversal slices get separate ``pid`` lanes with metadata names, so
    wall-clock microseconds and virtual sequence ticks are never mixed
    on one timescale.
    """
    base = os.getpid() if pid is None else int(pid)
    trace_events: list[dict[str, Any]] = []
    if spans is not None:
        span_events = span_trace_events(spans, pid=base + SPAN_PID_OFFSET)
        if span_events:
            trace_events.append(_meta(base + SPAN_PID_OFFSET, "repro spans (wall clock)"))
            # Spans merged back from worker processes keep their worker
            # pid; name each extra lane so the viewer shows where the
            # process executor actually ran the chunks.
            worker_pids = sorted(
                {e["pid"] for e in span_events} - {base + SPAN_PID_OFFSET}
            )
            for worker_pid in worker_pids:
                trace_events.append(
                    _meta(worker_pid, f"repro worker process {worker_pid}")
                )
            trace_events.extend(span_events)
    if plan is not None:
        trace_events.append(
            _meta(base + PLAN_PID_OFFSET, "repro traversal (1 tick = 1 event)")
        )
        trace_events.extend(plan_trace_events(plan, pid=base + PLAN_PID_OFFSET))
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs.timeline"},
    }


def write_timeline(
    path: "str | Path",
    *,
    spans: Iterable[SpanRecord] | None = None,
    plan: Any = None,
    pid: int | None = None,
) -> Path:
    """Write :func:`chrome_trace` output to *path*; returns the path."""
    document = chrome_trace(spans=spans, plan=plan, pid=pid)
    target = Path(path)
    target.write_text(json.dumps(document, indent=1, sort_keys=False) + "\n")
    return target
