"""Nestable, monotonic-clocked timing spans.

A span prices one *phase* of work — ``span("build/pivot-selection")``,
``span("query/refine")`` — the wall-time counterpart of the paper's
distance-computation accounting.  Spans nest through a
:mod:`contextvars` stack (the same propagation scheme as
:class:`~repro.engine.trace.TracingPort`), so concurrently executing
queries each time their own phases without locking, and a span opened
inside another records its parent and depth.

Completed spans land in the active :class:`~repro.obs.registry
.MetricsRegistry` twice: as a :class:`SpanRecord` (for the JSON-lines
event log) and as an observation of the ``repro_span_seconds`` histogram
keyed by span name (for the Prometheus/table exporters).  With the null
registry active, :func:`span` yields without reading the clock at all.

Timing uses :func:`time.perf_counter` — monotonic, so spans are immune
to wall-clock adjustments.
"""

from __future__ import annotations

import contextvars
import threading
from contextlib import contextmanager
from time import perf_counter
from typing import Iterator

from .registry import SpanRecord, get_registry

__all__ = ["SpanRecord", "span", "current_span"]

_SPAN_STACK: contextvars.ContextVar[SpanRecord | None] = contextvars.ContextVar(
    "repro_obs_active_span", default=None
)

#: Histogram receiving every span duration, labeled by span name.
SPAN_SECONDS = "repro_span_seconds"


def current_span() -> SpanRecord | None:
    """The innermost open span of this thread/context, if any."""
    return _SPAN_STACK.get()


@contextmanager
def span(name: str, **labels: object) -> Iterator[SpanRecord | None]:
    """Time the enclosed block as one named phase.

    Exception-safe: the duration is recorded and the stack unwound even
    when the block raises, with the record's ``status`` set to
    ``"error"``.  Yields the open :class:`SpanRecord` (or ``None`` when
    observability is disabled, in which case the block runs untouched).
    """
    registry = get_registry()
    if not registry.enabled:
        yield None
        return
    parent = _SPAN_STACK.get()
    record = SpanRecord(
        name=name,
        depth=0 if parent is None else parent.depth + 1,
        parent=None if parent is None else parent.name,
        labels={k: str(v) for k, v in labels.items()},
        thread=threading.get_ident(),
    )
    token = _SPAN_STACK.set(record)
    start = perf_counter()
    record.start = start
    try:
        yield record
    except BaseException:
        record.status = "error"
        raise
    finally:
        record.seconds = perf_counter() - start
        _SPAN_STACK.reset(token)
        registry.record_span(record)
        registry.histogram(
            SPAN_SECONDS, "wall seconds per instrumented phase"
        ).observe(record.seconds, span=name, **record.labels)
