"""Nestable, monotonic-clocked timing spans.

A span prices one *phase* of work — ``span("build/pivot-selection")``,
``span("query/refine")`` — the wall-time counterpart of the paper's
distance-computation accounting.  Spans nest through a
:mod:`contextvars` stack (the same propagation scheme as
:class:`~repro.engine.trace.TracingPort`), so concurrently executing
queries each time their own phases without locking, and a span opened
inside another records its parent and depth.

When a :class:`~repro.obs.context.TraceContext` is active, every span
additionally carries the request's ``trace_id`` plus its own
``span_id``/``parent_span_id`` — the correlation keys the timeline
exporter and the JSON-lines query log join on, including for spans that
ran in a worker process and were merged back by the engine.

Completed spans land in the active :class:`~repro.obs.registry
.MetricsRegistry` twice: as a :class:`SpanRecord` (for the JSON-lines
event log) and as an observation of the ``repro_span_seconds`` histogram
keyed by span name and exit status (for the Prometheus/table exporters).
With the null registry active, :func:`span` yields without reading the
clock at all.

Timing uses :func:`time.perf_counter` — monotonic, so spans are immune
to wall-clock adjustments.
"""

from __future__ import annotations

import contextvars
import os
import threading
from contextlib import contextmanager
from time import perf_counter
from typing import Iterator

from .context import current_trace_context, new_span_id
from .registry import SpanRecord, get_registry

__all__ = ["SpanRecord", "span", "current_span", "open_span_for_thread"]

_SPAN_STACK: contextvars.ContextVar[SpanRecord | None] = contextvars.ContextVar(
    "repro_obs_active_span", default=None
)

#: Innermost *open* span per thread ident.  The sampling profiler reads
#: this from its own thread to attribute stack samples to phases —
#: contextvars are invisible across threads, a plain dict keyed by
#: :func:`threading.get_ident` is not.  Each thread only ever writes its
#: own key, so GIL-atomic dict ops suffice.
_OPEN_SPANS: dict[int, SpanRecord] = {}

#: Histogram receiving every span duration, labeled by span name.
SPAN_SECONDS = "repro_span_seconds"


def current_span() -> SpanRecord | None:
    """The innermost open span of this thread/context, if any."""
    return _SPAN_STACK.get()


def open_span_for_thread(thread_ident: int) -> SpanRecord | None:
    """The innermost open span of *another* thread (profiler support)."""
    return _OPEN_SPANS.get(thread_ident)


@contextmanager
def span(name: str, **labels: object) -> Iterator[SpanRecord | None]:
    """Time the enclosed block as one named phase.

    Exception-safe: the duration is recorded and the stack unwound even
    when the block raises, with the record's ``status`` set to
    ``"error"``.  Yields the open :class:`SpanRecord` (or ``None`` when
    observability is disabled, in which case the block runs untouched).
    """
    registry = get_registry()
    if not registry.enabled:
        yield None
        return
    parent = _SPAN_STACK.get()
    thread_ident = threading.get_ident()
    record = SpanRecord(
        name=name,
        depth=0 if parent is None else parent.depth + 1,
        parent=None if parent is None else parent.name,
        labels={k: str(v) for k, v in labels.items()},
        thread=thread_ident,
        pid=os.getpid(),
    )
    context = current_trace_context()
    if context is not None:
        record.trace_id = context.trace_id
        record.span_id = new_span_id()
        if parent is not None and parent.span_id:
            record.parent_span_id = parent.span_id
        else:
            record.parent_span_id = context.span_id
    token = _SPAN_STACK.set(record)
    shadowed = _OPEN_SPANS.get(thread_ident)
    _OPEN_SPANS[thread_ident] = record
    start = perf_counter()
    record.start = start
    try:
        yield record
    except BaseException:
        record.status = "error"
        raise
    finally:
        record.seconds = perf_counter() - start
        _SPAN_STACK.reset(token)
        if shadowed is None:
            _OPEN_SPANS.pop(thread_ident, None)
        else:
            _OPEN_SPANS[thread_ident] = shadowed
        registry.record_span(record)
        registry.histogram(
            SPAN_SECONDS, "wall seconds per instrumented phase"
        ).observe(record.seconds, span=name, status=record.status, **record.labels)
