"""Adapters funneling the library's existing telemetry sinks into a registry.

The library already measures everything the paper's tables need — but in
four unrelated sinks: :class:`~repro.distances.base.CountingDistance`
counts evaluations, :class:`~repro.engine.trace.QueryTrace` records
per-query filter/candidate outcomes, :class:`~repro.storage.cache
.CacheStats` tracks page hits/faults, and the cholesky cache keeps its
own hit/miss pair.  The adapters here translate each sink into the
common instrument model without this package importing any of them:
every adapter is duck-typed against the sink's public attributes, so
:mod:`repro.obs` stays import-free of :mod:`repro.mam`,
:mod:`repro.models`, :mod:`repro.engine` and :mod:`repro.storage`
(the layering rule mirrored from :mod:`repro.engine.trace`).

Metric names follow Prometheus conventions (``*_total`` for counters);
``docs/api_guide.md`` maps them onto the paper's Table 1/2 columns.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from .logging import log_event
from .registry import MetricsRegistry, get_registry

__all__ = [
    "DISTANCE_EVALUATIONS",
    "QUERY_ERRORS",
    "TRANSFORMS",
    "DistanceInstrument",
    "record_distance_stats",
    "record_query_error",
    "record_trace",
    "record_traces",
    "record_batch_summary",
    "record_cache_stats",
    "record_cholesky_cache",
    "record_index_description",
]

#: Counter of logical distance evaluations, split like
#: :class:`~repro.distances.base.DistanceStats` (``kind="scalar"|"batched"``).
DISTANCE_EVALUATIONS = "repro_distance_evaluations_total"

#: Counter of vector transformations into the Euclidean space (QMap only).
TRANSFORMS = "repro_transforms_total"

#: Counter of queries that raised, labeled by method/model/kind/error.
QUERY_ERRORS = "repro_query_errors_total"


def _registry(registry: MetricsRegistry | None) -> MetricsRegistry:
    return registry if registry is not None else get_registry()


# ----------------------------------------------------------------------
# CountingDistance
# ----------------------------------------------------------------------

def record_distance_stats(
    stats: Any,
    *,
    registry: MetricsRegistry | None = None,
    model: str = "",
    method: str = "",
    phase: str = "query",
) -> None:
    """Charge one :class:`DistanceStats`-shaped snapshot to the registry.

    *stats* needs ``calls`` and ``batch_rows`` attributes.  Use this for
    one-shot snapshots that will not be read again (e.g. build-phase
    totals, recorded immediately before the model resets its counter);
    for a live counter polled repeatedly, use :class:`DistanceInstrument`.
    """
    reg = _registry(registry)
    if not reg.enabled:
        return
    counter = reg.counter(
        DISTANCE_EVALUATIONS, "logical distance computations (the paper's cost unit)"
    )
    if stats.calls:
        counter.inc(stats.calls, kind="scalar", model=model, method=method, phase=phase)
    if stats.batch_rows:
        counter.inc(
            stats.batch_rows, kind="batched", model=model, method=method, phase=phase
        )


class DistanceInstrument:
    """Incremental mirror of a :class:`CountingDistance` into a registry.

    ``sync()`` reads the source's ``stats`` snapshot and charges only the
    *delta* since the last sync, so the registry's
    :data:`DISTANCE_EVALUATIONS` counter equals the source counter
    exactly at every sync point — the invariant the acceptance tests pin.
    Baselines are kept per registry (by identity), so swapping the active
    registry mid-run never double-charges.  ``rebase()`` realigns the
    baseline after the source counter is reset.
    """

    def __init__(self, source: Any, *, model: str = "", method: str = "") -> None:
        self._source = source
        self._model = model
        self._method = method
        self._baselines: dict[int, tuple[int, int]] = {}

    def sync(self, registry: MetricsRegistry | None = None) -> int:
        """Charge evaluations made since the previous sync (or rebase).

        Returns the total evaluations charged (scalar calls + batched
        rows) so callers — e.g. the live rate board — can reuse the
        exact delta without re-reading the source.  Returns 0 when the
        registry is disabled.
        """
        reg = _registry(registry)
        if not reg.enabled:
            return 0
        stats = self._source.stats
        calls, rows = int(stats.calls), int(stats.batch_rows)
        base_calls, base_rows = self._baselines.get(id(reg), (0, 0))
        if calls < base_calls or rows < base_rows:
            # The source counter was reset behind our back; realign so the
            # post-reset evaluations are charged from zero.
            base_calls, base_rows = 0, 0
        delta_calls, delta_rows = calls - base_calls, rows - base_rows
        self._baselines[id(reg)] = (calls, rows)
        counter = reg.counter(
            DISTANCE_EVALUATIONS,
            "logical distance computations (the paper's cost unit)",
        )
        labels = {"model": self._model, "method": self._method, "phase": "query"}
        if delta_calls:
            counter.inc(delta_calls, kind="scalar", **labels)
        if delta_rows:
            counter.inc(delta_rows, kind="batched", **labels)
        return delta_calls + delta_rows

    def rebase(self) -> None:
        """Re-anchor all baselines at the source's current snapshot."""
        stats = self._source.stats
        for key in self._baselines:
            self._baselines[key] = (int(stats.calls), int(stats.batch_rows))


def record_query_error(
    error: BaseException,
    *,
    registry: MetricsRegistry | None = None,
    model: str = "",
    method: str = "",
    kind: str = "",
) -> None:
    """Account one failed query: error counter plus structured log record.

    Increments :data:`QUERY_ERRORS` (when a registry is active) and
    emits a ``query_error`` record through the active JSON-lines logger
    (when one is active) carrying the current ``trace_id`` — so a query
    that raised inside a worker process still leaves a correlated
    metric and log trail instead of only a bare exception.
    """
    reg = _registry(registry)
    error_type = type(error).__name__
    if reg.enabled:
        reg.counter(QUERY_ERRORS, "queries that raised an exception").inc(
            1, model=model, method=method, kind=kind, error=error_type
        )
    log_event(
        "query_error",
        model=model or None,
        method=method or None,
        kind=kind or None,
        error=error_type,
        message=str(error),
    )


# ----------------------------------------------------------------------
# QueryTrace / TraceSummary
# ----------------------------------------------------------------------

def record_trace(
    trace: Any,
    *,
    registry: MetricsRegistry | None = None,
    method: str = "",
) -> None:
    """Funnel one finished :class:`QueryTrace` into the registry.

    Counts queries, filter outcomes, refined candidates, result sizes and
    the per-MAM node accounting (nodes visited / subtrees pruned by a
    lower bound), and observes the per-query wall-time and
    evaluations-per-query distributions.
    """
    reg = _registry(registry)
    if not reg.enabled:
        return
    kind = str(getattr(trace, "kind", ""))
    labels = {"method": method, "kind": kind}
    reg.counter("repro_queries_total", "executed queries").inc(1, **labels)
    for name, help_text, attr in (
        ("repro_query_filter_checked_total", "objects lower-bound tested", "filter_checked"),
        ("repro_query_filter_hits_total", "objects surviving the filter", "filter_hits"),
        ("repro_query_candidates_total", "objects refined with real distances", "candidates"),
        ("repro_query_results_total", "answer-set sizes", "results"),
        ("repro_query_nodes_visited_total", "index nodes visited", "nodes_visited"),
        (
            "repro_query_subtrees_pruned_total",
            "subtrees discarded by a lower bound",
            "nodes_pruned",
        ),
    ):
        value = int(getattr(trace, attr, 0))
        if value:
            reg.counter(name, help_text).inc(value, **labels)
    reg.histogram("repro_query_seconds", "wall seconds per query").observe(
        float(getattr(trace, "seconds", 0.0)), **labels
    )
    reg.histogram(
        "repro_query_distance_evaluations", "distance evaluations per query"
    ).observe(float(getattr(trace, "distance_evaluations", 0)), **labels)


def record_traces(
    traces: Iterable[Any],
    *,
    registry: MetricsRegistry | None = None,
    method: str = "",
) -> None:
    """Funnel many finished traces (one batch) into the registry."""
    reg = _registry(registry)
    if not reg.enabled:
        return
    for trace in traces:
        record_trace(trace, registry=reg, method=method)


def record_batch_summary(
    summary: Any,
    *,
    registry: MetricsRegistry | None = None,
    method: str = "",
    kind: str = "",
) -> None:
    """Record batch-level throughput facts from a :class:`TraceSummary`."""
    reg = _registry(registry)
    if not reg.enabled:
        return
    batch_seconds = float(getattr(summary, "batch_seconds", 0.0))
    if batch_seconds > 0.0:
        reg.histogram(
            "repro_batch_seconds", "wall seconds per executed query batch"
        ).observe(batch_seconds, method=method, kind=kind)
        reg.gauge(
            "repro_batch_queries_per_second", "throughput of the last batch"
        ).set(getattr(summary, "queries", 0) / batch_seconds, method=method, kind=kind)
    latency = reg.gauge(
        "repro_batch_query_seconds", "per-query wall-time percentiles"
    )
    for quantile in ("p50", "p95"):
        value = float(getattr(summary, f"{quantile}_seconds", 0.0))
        if value > 0.0:
            latency.set(value, method=method, kind=kind, quantile=quantile)


# ----------------------------------------------------------------------
# LRUPageCache / CacheStats
# ----------------------------------------------------------------------

def record_cache_stats(
    stats: Any,
    *,
    registry: MetricsRegistry | None = None,
    cache: str = "page",
) -> None:
    """Mirror a :class:`CacheStats` snapshot into gauges.

    Gauges (not counters) because the source owns the cumulative state —
    the registry simply reflects its current reading, including the
    single pre-derived ``combined_rate``.
    """
    reg = _registry(registry)
    if not reg.enabled:
        return
    accesses = reg.gauge(
        "repro_page_cache_accesses", "page cache accesses by op and outcome"
    )
    accesses.set(stats.hits, cache=cache, op="read", outcome="hit")
    accesses.set(stats.faults, cache=cache, op="read", outcome="fault")
    accesses.set(stats.write_hits, cache=cache, op="write", outcome="hit")
    accesses.set(stats.write_faults, cache=cache, op="write", outcome="fault")
    reg.gauge(
        "repro_page_cache_hit_ratio", "combined read+write cache hit fraction"
    ).set(stats.combined_rate, cache=cache)


# ----------------------------------------------------------------------
# cached_cholesky
# ----------------------------------------------------------------------

def record_cholesky_cache(
    info: Mapping[str, int],
    *,
    registry: MetricsRegistry | None = None,
) -> None:
    """Mirror a :func:`cholesky_cache_info` snapshot into gauges."""
    reg = _registry(registry)
    if not reg.enabled:
        return
    gauge = reg.gauge(
        "repro_cholesky_cache", "content-addressed Cholesky factor cache"
    )
    for stat in ("entries", "hits", "misses"):
        gauge.set(int(info.get(stat, 0)), stat=stat)


# ----------------------------------------------------------------------
# describe_index
# ----------------------------------------------------------------------

def record_index_description(
    description: Any,
    *,
    registry: MetricsRegistry | None = None,
    model: str = "",
    method: str = "",
) -> None:
    """Gauge the structural shape of a built index.

    *description* is duck-typed against
    :class:`~repro.mam.stats.IndexDescription`: ``structure``, ``size``,
    ``nodes``, ``height`` and the ``extra`` dict (fill factors, fanout,
    covering-radius quantiles, ...) all become labeled gauges.
    """
    reg = _registry(registry)
    if not reg.enabled:
        return
    labels = {"model": model, "method": method, "structure": str(description.structure)}
    reg.gauge("repro_index_size", "indexed objects").set(description.size, **labels)
    reg.gauge("repro_index_nodes", "internal+leaf node count").set(
        description.nodes, **labels
    )
    reg.gauge("repro_index_height", "levels root to deepest leaf").set(
        description.height, **labels
    )
    extra = reg.gauge("repro_index_stat", "structure-specific diagnostics")
    for stat, value in dict(getattr(description, "extra", {}) or {}).items():
        extra.set(float(value), stat=stat, **labels)
