"""Query EXPLAIN plans: assembling traversal events into a cost tree.

This module turns a filled :class:`~repro.obs.events.EventBuffer` into an
:class:`ExplainPlan` — a per-query tree of traversal nodes, each carrying
the exact distance-evaluation charges, lower-bound checks, prunes,
candidate verifications and result additions attributed to it — plus the
plan-level totals and the paper's Table 2 audit.

The plan's headline invariant: :attr:`ExplainPlan.charged_total` (the sum
of per-node charges) equals the :class:`~repro.distances.base.
CountingDistance` delta for the same query **exactly**, because the
charges are emitted from the very sites where the counter counts (see
:meth:`~repro.obs.events.EventBuffer.charge`).  :attr:`ExplainPlan.
totals_match` makes the comparison explicit so reports can assert it.

Layering: pure assembly/rendering over :mod:`repro.obs.events` — no
imports from :mod:`repro.mam`, :mod:`repro.models` or
:mod:`repro.bench`.  The runner that knows how to *produce* a plan from a
built index lives in :mod:`repro.models.explain`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .events import ROOT, EventBuffer

__all__ = [
    "ExplainNode",
    "CostAudit",
    "ExplainPlan",
    "assemble_plan",
    "render_text",
]


@dataclass
class ExplainNode:
    """One traversal node of the plan tree with its exact aggregates."""

    token: int
    label: str
    charged_calls: int = 0
    charged_rows: int = 0
    lb_checks: int = 0
    pruned: int = 0
    candidates: int = 0
    results: int = 0
    children: "list[ExplainNode]" = field(default_factory=list)

    @property
    def charged_total(self) -> int:
        """Distance computations charged while this node was current."""
        return self.charged_calls + self.charged_rows

    def to_dict(self) -> dict:
        out: dict = {"token": self.token, "label": self.label}
        for name in (
            "charged_calls",
            "charged_rows",
            "lb_checks",
            "pruned",
            "candidates",
            "results",
        ):
            value = getattr(self, name)
            if value:
                out[name] = value
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out


@dataclass(frozen=True)
class CostAudit:
    """Observed distance work vs the paper's Table 2 closed form.

    ``predicted_flops`` evaluates the Table 2 closed form for the method
    and model at the run's sizes; ``observed_flops`` prices the actually
    recorded evaluations/transforms the same way (``measured_flops``),
    plus any filter arithmetic the structure spends outside the distance
    counters (``observed_filter_flops`` — the pivot table's ``m * p``
    hyper-cube filter, which Table 2 prices but no
    :class:`~repro.distances.base.CountingDistance` ever sees).  With
    the filter term accounted on the observed side, every auditable
    method's ``drift`` is exactly zero.
    """

    method: str
    model: str
    predicted_flops: float
    observed_flops: float
    observed_evaluations: int
    observed_transforms: int
    observed_filter_flops: float = 0.0

    @property
    def drift(self) -> float:
        """``(observed - predicted) / predicted`` (inf for predicted=0)."""
        if self.predicted_flops <= 0.0:
            return float("inf")
        return (self.observed_flops - self.predicted_flops) / self.predicted_flops

    def to_dict(self) -> dict:
        return {
            "method": self.method,
            "model": self.model,
            "predicted_flops": self.predicted_flops,
            "observed_flops": self.observed_flops,
            "observed_evaluations": self.observed_evaluations,
            "observed_transforms": self.observed_transforms,
            "observed_filter_flops": self.observed_filter_flops,
            "drift": self.drift,
        }


@dataclass
class ExplainPlan:
    """A per-query traversal/cost tree with verified totals.

    Attributes
    ----------
    method, model:
        Registry name of the access method and ``"qfd"`` / ``"qmap"``.
    kind, parameter:
        ``"range"`` with the radius, or ``"knn"`` with ``k``.
    root:
        The ``(query)`` pseudo-node; its own charges are pre-traversal
        work (e.g. query-to-pivot distances), its children are the
        top-level traversal nodes.
    counter_calls, counter_rows:
        The :class:`~repro.distances.base.CountingDistance` delta for
        this query (scalar calls / vectorized batch rows).
    events:
        The recorded (bounded, possibly sampled) event dicts.
    answer:
        The query result as ``(index, distance)`` pairs.
    """

    method: str
    model: str
    kind: str
    parameter: float
    root: ExplainNode
    nodes_entered: int
    lb_checks: int
    pruned: int
    candidates_verified: int
    results_added: int
    charged_calls: int
    charged_rows: int
    counter_calls: int
    counter_rows: int
    transforms: int = 0
    #: label -> (checks, pruned): exact per-bound-kind lower-bound
    #: aggregates (e.g. ``pivot-linf`` vs ``pivot-ptolemaic``), enabling
    #: the side-by-side prune-count comparison in :func:`render_text`.
    lb_labels: "dict[str, tuple[int, int]]" = field(default_factory=dict)
    events: list[dict] = field(default_factory=list)
    events_dropped: int = 0
    events_sampled_out: int = 0
    answer: "list[tuple[int, float]]" = field(default_factory=list)
    seconds: float = 0.0
    audit: "CostAudit | None" = None

    @property
    def charged_total(self) -> int:
        """Distance computations attributed to plan nodes (exact)."""
        return self.charged_calls + self.charged_rows

    @property
    def counter_total(self) -> int:
        """Distance computations seen by the model's counter (exact)."""
        return self.counter_calls + self.counter_rows

    @property
    def totals_match(self) -> bool:
        """Whether the plan accounts for every counted evaluation exactly."""
        return (
            self.charged_calls == self.counter_calls
            and self.charged_rows == self.counter_rows
        )

    def to_dict(self) -> dict:
        """JSON-able form of the whole plan."""
        out: dict = {
            "method": self.method,
            "model": self.model,
            "kind": self.kind,
            "parameter": self.parameter,
            "totals": {
                "nodes_entered": self.nodes_entered,
                "lb_checks": self.lb_checks,
                "pruned": self.pruned,
                "candidates_verified": self.candidates_verified,
                "results_added": self.results_added,
                "charged_calls": self.charged_calls,
                "charged_rows": self.charged_rows,
                "charged_total": self.charged_total,
                "counter_calls": self.counter_calls,
                "counter_rows": self.counter_rows,
                "counter_total": self.counter_total,
                "totals_match": self.totals_match,
                "transforms": self.transforms,
            },
            "lb_by_label": {
                label: {"checks": checks, "pruned": pruned}
                for label, (checks, pruned) in sorted(self.lb_labels.items())
            },
            "tree": self.root.to_dict(),
            "answer": [
                {"index": index, "distance": distance}
                for index, distance in self.answer
            ],
            "events": self.events,
            "events_dropped": self.events_dropped,
            "events_sampled_out": self.events_sampled_out,
        }
        if self.seconds:
            out["seconds"] = self.seconds
        if self.audit is not None:
            out["audit"] = self.audit.to_dict()
        return out

    def to_json(self, *, indent: "int | None" = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def render(self) -> str:
        """The human-readable indented tree (see :func:`render_text`)."""
        return render_text(self)


def assemble_plan(
    buffer: EventBuffer,
    *,
    method: str,
    model: str,
    kind: str,
    parameter: float,
    counter_calls: int,
    counter_rows: int,
    transforms: int = 0,
    answer: "list[tuple[int, float]] | None" = None,
    seconds: float = 0.0,
    audit: "CostAudit | None" = None,
) -> ExplainPlan:
    """Build an :class:`ExplainPlan` from a filled event buffer.

    The tree is reconstructed from the buffer's exact per-node registry
    (never from the bounded event list), so a tiny ``max_events`` still
    yields a complete, exactly-charged tree.
    """
    nodes: dict[int, ExplainNode] = {}
    for token, stats in buffer.nodes.items():
        nodes[token] = ExplainNode(
            token=token,
            label=stats.label,
            charged_calls=stats.charged_calls,
            charged_rows=stats.charged_rows,
            lb_checks=stats.lb_checks,
            pruned=stats.pruned,
            candidates=stats.candidates,
            results=stats.results,
        )
    for token, stats in buffer.nodes.items():
        if token == ROOT:
            continue
        parent = nodes.get(stats.parent, nodes[ROOT])
        parent.children.append(nodes[token])
    for node in nodes.values():
        node.children.sort(key=lambda child: child.token)
    return ExplainPlan(
        method=method,
        model=model,
        kind=kind,
        parameter=float(parameter),
        root=nodes[ROOT],
        nodes_entered=buffer.nodes_entered,
        lb_checks=buffer.lb_checks,
        pruned=buffer.pruned,
        candidates_verified=buffer.candidates_verified,
        results_added=buffer.results_added,
        charged_calls=buffer.charged_calls,
        charged_rows=buffer.charged_rows,
        counter_calls=counter_calls,
        counter_rows=counter_rows,
        transforms=transforms,
        lb_labels={
            label: (agg[0], agg[1]) for label, agg in buffer.lb_labels.items()
        },
        events=[event.to_dict() for event in buffer.events],
        events_dropped=buffer.dropped,
        events_sampled_out=buffer.sampled_out,
        answer=list(answer or []),
        seconds=seconds,
        audit=audit,
    )


def _node_line(node: ExplainNode) -> str:
    parts = [node.label or f"node {node.token}"]
    if node.charged_total:
        parts.append(
            f"d={node.charged_total}"
            + (f" ({node.charged_calls}+{node.charged_rows}b)"
               if node.charged_calls and node.charged_rows else "")
        )
    if node.lb_checks:
        parts.append(f"lb={node.lb_checks}")
    if node.pruned:
        parts.append(f"pruned={node.pruned}")
    if node.candidates:
        parts.append(f"cand={node.candidates}")
    if node.results:
        parts.append(f"res={node.results}")
    return "  ".join(parts)


def _render_node(node: ExplainNode, prefix: str, lines: list[str]) -> None:
    last = len(node.children) - 1
    for pos, child in enumerate(node.children):
        branch = "└─ " if pos == last else "├─ "
        lines.append(prefix + branch + _node_line(child))
        extension = "   " if pos == last else "│  "
        _render_node(child, prefix + extension, lines)


def render_text(plan: ExplainPlan) -> str:
    """Render the plan as an indented text tree with a totals footer."""
    what = (
        f"range(r={plan.parameter:g})"
        if plan.kind == "range"
        else f"knn(k={int(plan.parameter)})"
    )
    lines = [f"EXPLAIN {what}  method={plan.method}  model={plan.model}"]
    lines.append(_node_line(plan.root))
    _render_node(plan.root, "", lines)
    check = "OK" if plan.totals_match else "MISMATCH"
    lines.append(
        f"distance computations: charged={plan.charged_total} "
        f"(scalar={plan.charged_calls}, batched={plan.charged_rows})  "
        f"counter={plan.counter_total}  [{check}]"
    )
    lines.append(
        f"traversal: nodes={plan.nodes_entered}  lb_checks={plan.lb_checks}  "
        f"pruned={plan.pruned}  verified={plan.candidates_verified}  "
        f"results={len(plan.answer) or plan.results_added}"
    )
    if plan.lb_labels:
        lines.append("lower bounds (checks -> pruned):")
        width = max(len(label) for label in plan.lb_labels)
        for label in sorted(plan.lb_labels):
            checks, pruned = plan.lb_labels[label]
            rate = pruned / checks if checks else 0.0
            lines.append(
                f"  {label:<{width}}  checks={checks}  pruned={pruned}"
                f"  ({rate:.1%})"
            )
    if plan.transforms:
        lines.append(f"query transforms: {plan.transforms}")
    if plan.events_dropped or plan.events_sampled_out:
        lines.append(
            f"events: {len(plan.events)} recorded, "
            f"{plan.events_dropped} dropped, "
            f"{plan.events_sampled_out} sampled out"
        )
    if plan.audit is not None:
        audit = plan.audit
        line = (
            f"Table 2 audit: predicted={audit.predicted_flops:.4g} flops  "
            f"observed={audit.observed_flops:.4g} flops  "
            f"drift={audit.drift:+.2%}"
        )
        if audit.observed_filter_flops:
            line += f"  (incl. filter {audit.observed_filter_flops:.4g})"
        lines.append(line)
    return "\n".join(lines)
