"""Exporters: one registry, three machine/human-readable surfaces.

* :func:`to_jsonl` — newline-delimited JSON events (metrics then spans),
  the archival format the benches embed and ``--trace-out`` reuses;
* :func:`to_prometheus` — Prometheus text exposition format
  (``name{labels} value`` with ``# HELP``/``# TYPE`` headers), so a
  production deployment can scrape any experiment verbatim;
* :func:`to_table` — aligned human-readable table for terminals.

Everything here consumes only the snapshot model of
:mod:`repro.obs.registry` (plus duck-typed trace records for
:func:`traces_to_jsonl`), keeping the package dependency-free.
"""

from __future__ import annotations

import json
import math
import re
from typing import Any, Iterable, Mapping

from .registry import HistogramState, MetricsRegistry

__all__ = [
    "to_jsonl",
    "to_prometheus",
    "to_table",
    "snapshot_dict",
    "traces_to_jsonl",
    "EXPORT_FORMATS",
    "export",
]

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_OK = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")


def _prom_name(name: str) -> str:
    if _NAME_OK.match(name):
        return name
    return re.sub(r"[^a-zA-Z0-9_:]", "_", name) or "_"


def _prom_label_name(name: str) -> str:
    if _LABEL_OK.match(name):
        return name
    return re.sub(r"[^a-zA-Z0-9_]", "_", name) or "_"


def _prom_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _prom_help(text: str) -> str:
    # HELP lines escape only backslash and newline (not quotes) — a raw
    # newline would start a bogus exposition line and break scrapes.
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _prom_labels(labels: Mapping[str, str], extra: Mapping[str, str] | None = None) -> str:
    merged = {**labels, **(extra or {})}
    if not merged:
        return ""
    inner = ",".join(
        f'{_prom_label_name(k)}="{_prom_label_value(str(v))}"'
        for k, v in sorted(merged.items())
    )
    return "{" + inner + "}"


def _prom_float(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry in Prometheus text exposition format.

    Histograms follow the standard cumulative-bucket convention
    (``_bucket{le=...}`` / ``_sum`` / ``_count``).  Ends with a trailing
    newline, as the format requires.
    """
    lines: list[str] = []
    for instrument in registry.instruments():
        samples = instrument.samples()
        if not samples:
            continue
        name = _prom_name(instrument.name)
        if instrument.help:
            lines.append(f"# HELP {name} {_prom_help(instrument.help)}")
        lines.append(f"# TYPE {name} {instrument.kind}")
        for sample in samples:
            if sample.histogram is not None:
                lines.extend(_prom_histogram(name, sample.labels, sample.histogram))
            else:
                lines.append(
                    f"{name}{_prom_labels(sample.labels)} {_prom_float(sample.value)}"
                )
    return "\n".join(lines) + "\n" if lines else ""


def _prom_histogram(
    name: str, labels: Mapping[str, str], state: HistogramState
) -> list[str]:
    lines = []
    cumulative = 0
    for bound, count in zip(state.bounds, state.counts):
        cumulative += count
        le = {"le": _prom_float(bound)}
        lines.append(f"{name}_bucket{_prom_labels(labels, le)} {cumulative}")
    cumulative += state.counts[-1]
    lines.append(f'{name}_bucket{_prom_labels(labels, {"le": "+Inf"})} {cumulative}')
    lines.append(f"{name}_sum{_prom_labels(labels)} {_prom_float(state.total)}")
    lines.append(f"{name}_count{_prom_labels(labels)} {state.count}")
    return lines


def snapshot_dict(registry: MetricsRegistry) -> dict[str, Any]:
    """JSON-able dict of the whole registry (the benches' ``metrics`` block).

    Shape: ``{"metrics": [...], "spans": [...]}`` with one entry per
    sample — counters/gauges carry ``value``, histograms carry
    ``count``/``sum`` plus the non-empty buckets.
    """
    metrics: list[dict[str, Any]] = []
    for sample in registry.snapshot():
        entry: dict[str, Any] = {
            "name": sample.name,
            "type": sample.kind,
            "labels": dict(sample.labels),
        }
        if sample.histogram is not None:
            state = sample.histogram
            entry["count"] = state.count
            entry["sum"] = state.total
            buckets: dict[str, int] = {}
            for bound, count in zip(state.bounds, state.counts):
                if count:
                    buckets[_prom_float(bound)] = count
            if state.counts[-1]:
                buckets["+Inf"] = state.counts[-1]
            entry["buckets"] = buckets
        else:
            entry["value"] = sample.value
        metrics.append(entry)
    spans = [
        {
            "name": record.name,
            "seconds": record.seconds,
            "depth": record.depth,
            "parent": record.parent,
            "status": record.status,
            **({"labels": record.labels} if record.labels else {}),
        }
        for record in registry.spans
    ]
    return {"metrics": metrics, "spans": spans}


def to_jsonl(registry: MetricsRegistry) -> str:
    """One JSON object per line: every metric sample, then every span."""
    payload = snapshot_dict(registry)
    lines = [json.dumps(entry, sort_keys=True) for entry in payload["metrics"]]
    lines.extend(
        json.dumps({"type": "span", **entry}, sort_keys=True)
        for entry in payload["spans"]
    )
    return "\n".join(lines) + "\n" if lines else ""


def to_table(registry: MetricsRegistry) -> str:
    """Aligned human-readable rendering of the registry."""
    rows: list[tuple[str, str, str, str]] = []
    for sample in registry.snapshot():
        labels = ",".join(f"{k}={v}" for k, v in sorted(sample.labels.items()))
        if sample.histogram is not None:
            state = sample.histogram
            mean = state.total / state.count if state.count else 0.0
            value = f"n={state.count} sum={state.total:.6g} mean={mean:.6g}"
        else:
            value = _prom_float(sample.value)
        rows.append((sample.name, sample.kind, labels, value))
    for record in registry.spans:
        indent = "  " * record.depth
        rows.append(
            (
                f"{indent}{record.name}",
                "span",
                record.status,
                f"{record.seconds:.6f}s",
            )
        )
    if not rows:
        return "(no metrics recorded)\n"
    headers = ("metric", "type", "labels", "value")
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))]
    lines.append("-" * len(lines[0]))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines) + "\n"


def traces_to_jsonl(traces: Iterable[Any]) -> str:
    """Per-query :class:`QueryTrace` records as JSON-lines.

    Duck-typed: any object with a plain attribute ``__dict__`` works; the
    derived ``distance_evaluations`` total is included when present so
    each line is self-describing.
    """
    lines = []
    for trace in traces:
        entry: dict[str, Any] = {"type": "query_trace", **vars(trace)}
        total = getattr(trace, "distance_evaluations", None)
        if total is not None:
            entry["distance_evaluations"] = int(total)
        lines.append(json.dumps(entry, sort_keys=True))
    return "\n".join(lines) + "\n" if lines else ""


#: Exporters by CLI name.
EXPORT_FORMATS = {
    "table": to_table,
    "jsonl": to_jsonl,
    "prom": to_prometheus,
}


def export(registry: MetricsRegistry, fmt: str) -> str:
    """Render *registry* in one of :data:`EXPORT_FORMATS`."""
    try:
        renderer = EXPORT_FORMATS[fmt]
    except KeyError:
        raise ValueError(
            f"unknown metrics format {fmt!r}; choose from {sorted(EXPORT_FORMATS)}"
        ) from None
    return renderer(registry)
